//! Operations across the registered dialects.
//!
//! Qwerty dialect ops follow §5 ("Qwerty IR Operations"); QCircuit dialect
//! ops follow §6 ("QCircuit IR Operations"); `arith` and `scf` ops are the
//! MLIR built-ins the paper's examples use (Figs. 4, 5, C13).

use crate::block::Region;
use crate::gate::GateKind;
use crate::span::SrcSpan;
use crate::value::Value;
use asdf_basis::{Basis, Eigenstate, PrimitiveBasis};

/// The structured payload of an op: which operation it is, plus its
/// compile-time attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    // ------------------------------------------------------------------
    // Qwerty dialect (§5)
    // ------------------------------------------------------------------
    /// `qbprep prim<eigenstate>[dim]`: prepares a qbundle in the given
    /// primitive basis and eigenstate (e.g. `qbprep std<PLUS>[3]` is |000>).
    QbPrep {
        /// Primitive basis to prepare in.
        prim: PrimitiveBasis,
        /// Plus or minus eigenstate for every qubit.
        eigenstate: Eigenstate,
        /// Number of qubits.
        dim: usize,
    },
    /// `qbdiscard %qb`: resets each qubit and returns it to the ancilla
    /// pool.
    QbDiscard,
    /// `qbdiscardz %qb`: like `qbdiscard`, but assumes the qubits are |0>
    /// and skips the reset.
    QbDiscardZ,
    /// `qbtrans %qb by b_in >> b_out phases(...)`: the basis translation op.
    /// Operand 0 is the qbundle; remaining operands are `f64` phase angles
    /// referenced by `Phase::Operand` entries inside the bases.
    QbTrans {
        /// Input basis.
        basis_in: Basis,
        /// Output basis.
        basis_out: Basis,
    },
    /// `qbmeas %qb in b`: measures the qbundle in basis `b`, yielding a
    /// bitbundle.
    QbMeas {
        /// Measurement basis.
        basis: Basis,
    },
    /// `qbpack %q...`: packs N qubits into a `qbundle[N]`.
    QbPack,
    /// `qbunpack %qb`: destructures a `qbundle[N]` into N qubits.
    QbUnpack,
    /// `bitpack %b...`: packs N `i1`s into a `bitbundle[N]`.
    BitPack,
    /// `bitunpack %bb`: destructures a `bitbundle[N]` into N `i1`s.
    BitUnpack,
    /// `func_const @f`: materializes the function value for symbol `f`.
    FuncConst {
        /// Referenced function symbol.
        symbol: String,
    },
    /// `func_adj %f`: the adjoint (reversed) form of a reversible function
    /// value.
    FuncAdj,
    /// `func_pred b %f`: the form of `%f` predicated on basis `b`.
    FuncPred {
        /// Predicate basis.
        pred: Basis,
    },
    /// `call [adj] [pred(b)] @f(...)`: a direct call, optionally adjointed
    /// and/or predicated (§5).
    Call {
        /// Callee symbol.
        callee: String,
        /// Whether the adjoint specialization is called.
        adj: bool,
        /// Predicate basis, if this is a predicated call.
        pred: Option<Basis>,
    },
    /// `call_indirect %f(...)`: calls a function value. Operand 0 is the
    /// callee; the rest are arguments.
    CallIndirect,
    /// An anonymous function value. Operands are captured values; the
    /// single-block region's arguments are `captures ++ params`, and its
    /// terminator is `return`. Lambda lifting (§5.4 step 1) turns these
    /// into private funcs referenced by `func_const`.
    Lambda {
        /// The type of the produced function value.
        func_ty: crate::types::FuncType,
    },
    /// `return %v...`: function/lambda body terminator.
    Return,

    // ------------------------------------------------------------------
    // scf dialect (structured control flow; Appendix C)
    // ------------------------------------------------------------------
    /// `scf.if %cond`: two single-block regions (then, else), each
    /// terminated by `scf.yield`; results are the yielded values.
    ScfIf,
    /// `scf.yield %v...`: terminator of `scf.if` regions.
    Yield,

    // ------------------------------------------------------------------
    // arith dialect (classical scalars; stationary under adjoint, §5.2)
    // ------------------------------------------------------------------
    /// A constant `f64` (phase angles, Fig. 4).
    ConstF64 {
        /// The constant.
        value: f64,
    },
    /// A constant `i1`.
    ConstI1 {
        /// The constant.
        value: bool,
    },
    /// `arith.addf`.
    FAdd,
    /// `arith.subf`.
    FSub,
    /// `arith.mulf`.
    FMul,
    /// `arith.divf`.
    FDiv,
    /// `arith.negf`.
    FNeg,
    /// `arith.xori` on `i1`.
    XorI1,
    /// `arith.andi` on `i1`.
    AndI1,
    /// Logical not on `i1`.
    NotI1,

    // ------------------------------------------------------------------
    // QCircuit dialect (§6)
    // ------------------------------------------------------------------
    /// `qalloc`: allocates a qubit in |0>.
    QAlloc,
    /// `qfree %q`: resets and frees a qubit.
    QFree,
    /// `qfreez %q`: frees a qubit assumed to be |0>, skipping the reset.
    QFreeZ,
    /// `gate G [%c...] %t...`: a controlled gate. The first `num_controls`
    /// qubit operands are controls; the rest are targets. Yields the new
    /// state of every operand qubit.
    Gate {
        /// Which gate.
        gate: GateKind,
        /// How many leading operands are controls.
        num_controls: usize,
    },
    /// `measure %q`: standard-basis measurement, yielding the post-
    /// measurement qubit and an `i1` result.
    Measure,
    /// `arrpack %v...`: packs values into an `array<T>[N]`.
    ArrPack,
    /// `arrunpack %a`: destructures an `array<T>[N]`.
    ArrUnpack,
    /// Creates a callable value for symbol `f` (lowers to
    /// `__quantum__rt__callable_create`). Tracks whether adjoint/controlled
    /// metadata has been applied so QIR emission can pick the entry from the
    /// specialization table.
    CallableCreate {
        /// Referenced function symbol.
        symbol: String,
    },
    /// Marks a callable as adjointed (`__quantum__rt__callable_make_adjoint`).
    CallableAdjoint,
    /// Marks a callable as controlled on `extra` qubits
    /// (`__quantum__rt__callable_make_controlled`).
    CallableControl {
        /// Number of predicate qubits added.
        extra: usize,
    },
    /// Invokes a callable (`__quantum__rt__callable_invoke`). Operand 0 is
    /// the callable; the rest are arguments.
    CallableInvoke,
}

impl OpKind {
    /// Whether this kind terminates a block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, OpKind::Return | OpKind::Yield)
    }

    /// Whether the op is a pure classical computation with no side effects,
    /// eligible for dead-code elimination and rematerialization during
    /// lambda lifting.
    pub fn is_pure_classical(&self) -> bool {
        matches!(
            self,
            OpKind::ConstF64 { .. }
                | OpKind::ConstI1 { .. }
                | OpKind::FAdd
                | OpKind::FSub
                | OpKind::FMul
                | OpKind::FDiv
                | OpKind::FNeg
                | OpKind::XorI1
                | OpKind::AndI1
                | OpKind::NotI1
                | OpKind::FuncConst { .. }
                | OpKind::FuncAdj
                | OpKind::FuncPred { .. }
                | OpKind::Lambda { .. }
                | OpKind::CallableCreate { .. }
                | OpKind::CallableAdjoint
                | OpKind::CallableControl { .. }
        )
    }

    /// A short mnemonic for printing and diagnostics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::QbPrep { .. } => "qwerty.qbprep",
            OpKind::QbDiscard => "qwerty.qbdiscard",
            OpKind::QbDiscardZ => "qwerty.qbdiscardz",
            OpKind::QbTrans { .. } => "qwerty.qbtrans",
            OpKind::QbMeas { .. } => "qwerty.qbmeas",
            OpKind::QbPack => "qwerty.qbpack",
            OpKind::QbUnpack => "qwerty.qbunpack",
            OpKind::BitPack => "qwerty.bitpack",
            OpKind::BitUnpack => "qwerty.bitunpack",
            OpKind::FuncConst { .. } => "qwerty.func_const",
            OpKind::FuncAdj => "qwerty.func_adj",
            OpKind::FuncPred { .. } => "qwerty.func_pred",
            OpKind::Call { .. } => "qwerty.call",
            OpKind::CallIndirect => "qwerty.call_indirect",
            OpKind::Lambda { .. } => "qwerty.lambda",
            OpKind::Return => "return",
            OpKind::ScfIf => "scf.if",
            OpKind::Yield => "scf.yield",
            OpKind::ConstF64 { .. } => "arith.constant",
            OpKind::ConstI1 { .. } => "arith.constant",
            OpKind::FAdd => "arith.addf",
            OpKind::FSub => "arith.subf",
            OpKind::FMul => "arith.mulf",
            OpKind::FDiv => "arith.divf",
            OpKind::FNeg => "arith.negf",
            OpKind::XorI1 => "arith.xori",
            OpKind::AndI1 => "arith.andi",
            OpKind::NotI1 => "arith.noti",
            OpKind::QAlloc => "qcirc.qalloc",
            OpKind::QFree => "qcirc.qfree",
            OpKind::QFreeZ => "qcirc.qfreez",
            OpKind::Gate { .. } => "qcirc.gate",
            OpKind::Measure => "qcirc.measure",
            OpKind::ArrPack => "qcirc.arrpack",
            OpKind::ArrUnpack => "qcirc.arrunpack",
            OpKind::CallableCreate { .. } => "qcirc.callable_create",
            OpKind::CallableAdjoint => "qcirc.callable_adjoint",
            OpKind::CallableControl { .. } => "qcirc.callable_control",
            OpKind::CallableInvoke => "qcirc.callable_invoke",
        }
    }
}

/// An operation: a kind plus SSA operands, results, and nested regions.
#[derive(Debug, Clone)]
pub struct Op {
    /// Which operation, with attributes.
    pub kind: OpKind,
    /// SSA operands, in dialect-defined order.
    pub operands: Vec<Value>,
    /// SSA results.
    pub results: Vec<Value>,
    /// Nested regions (`lambda` has one; `scf.if` has two).
    pub regions: Vec<Region>,
    /// Frontend source range this op was lowered from
    /// ([`SrcSpan::UNKNOWN`] for synthesized ops).
    pub span: SrcSpan,
}

/// Structural equality: spans are locations, not meaning, so two ops
/// differing only in span compare equal.
impl PartialEq for Op {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.operands == other.operands
            && self.results == other.results
            && self.regions == other.regions
    }
}

impl Op {
    /// A region-free op.
    pub fn new(kind: OpKind, operands: Vec<Value>, results: Vec<Value>) -> Self {
        Op { kind, operands, results, regions: Vec::new(), span: SrcSpan::UNKNOWN }
    }

    /// An op with nested regions.
    pub fn with_regions(
        kind: OpKind,
        operands: Vec<Value>,
        results: Vec<Value>,
        regions: Vec<Region>,
    ) -> Self {
        Op { kind, operands, results, regions, span: SrcSpan::UNKNOWN }
    }

    /// The same op with a source span attached.
    #[must_use]
    pub fn with_span(mut self, span: SrcSpan) -> Self {
        self.span = span;
        self
    }

    /// Whether this op terminates its block.
    pub fn is_terminator(&self) -> bool {
        self.kind.is_terminator()
    }

    /// Iterates over every value the op (transitively) uses, including uses
    /// inside nested regions but excluding values defined within them.
    pub fn transitive_uses(&self) -> Vec<Value> {
        let mut uses = self.operands.clone();
        let mut defined: std::collections::HashSet<Value> = std::collections::HashSet::new();
        fn walk(
            region: &Region,
            uses: &mut Vec<Value>,
            defined: &mut std::collections::HashSet<Value>,
        ) {
            for block in &region.blocks {
                defined.extend(block.args.iter().copied());
                for op in &block.ops {
                    uses.extend(op.operands.iter().copied());
                    defined.extend(op.results.iter().copied());
                    for nested in &op.regions {
                        walk(nested, uses, defined);
                    }
                }
            }
        }
        for region in &self.regions {
            walk(region, &mut uses, &mut defined);
        }
        uses.retain(|v| !defined.contains(v));
        uses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    #[test]
    fn terminators() {
        assert!(OpKind::Return.is_terminator());
        assert!(OpKind::Yield.is_terminator());
        assert!(!OpKind::QbPack.is_terminator());
    }

    #[test]
    fn pure_classification() {
        assert!(OpKind::ConstF64 { value: 1.0 }.is_pure_classical());
        assert!(OpKind::FuncConst { symbol: "f".into() }.is_pure_classical());
        assert!(!OpKind::QbPrep {
            prim: PrimitiveBasis::Std,
            eigenstate: Eigenstate::Plus,
            dim: 1
        }
        .is_pure_classical());
        assert!(!OpKind::Measure.is_pure_classical());
    }

    #[test]
    fn transitive_uses_skip_region_locals() {
        // An scf.if whose region uses one outer value and one region-local
        // value.
        let outer = Value::from_index(0);
        let cond = Value::from_index(1);
        let local = Value::from_index(2);
        let inner_op = Op::new(OpKind::FAdd, vec![outer, local], vec![Value::from_index(3)]);
        let yield_op = Op::new(OpKind::Yield, vec![Value::from_index(3)], vec![]);
        let block = Block { args: vec![local], ops: vec![inner_op, yield_op] };
        let if_op = Op::with_regions(
            OpKind::ScfIf,
            vec![cond],
            vec![Value::from_index(4)],
            vec![Region { blocks: vec![block] }],
        );
        let uses = if_op.transitive_uses();
        assert!(uses.contains(&cond));
        assert!(uses.contains(&outer));
        assert!(!uses.contains(&local));
        assert!(!uses.contains(&Value::from_index(3)));
    }
}
