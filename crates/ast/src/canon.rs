//! AST canonicalization (§4.2).
//!
//! "Optimizations require less engineering when done at the AST level —
//! inside the compiler implementation, most of these optimizations are ~5
//! lines of code at the AST level versus ~50 lines at the MLIR level."
//! The rewrites:
//!
//! - remove double-adjointing: `~~f` → `f`;
//! - rewrite `std[N] & f` to `id[N] + f` (because `std[N]` fully spans —
//!   we generalize to any fully-spanning predicate, which has the same
//!   justification);
//! - substitute `~(b1 >> b2)` with `b2 >> b1`;
//! - replace `b3 & (b1 >> b2)` with `b3 + b1 >> b3 + b2`;
//! - float constant folding (performed during type checking, when angle
//!   expressions fold into `Phase::Const`);
//!
//! plus structural cleanups that enable them (`~` distributed over tensor
//! and composition, `~id` → `id`, singleton tensor/compose unwrapping).

use crate::tast::{TExpr, TExprKind, TKernel, TStmt};
use crate::types::Type;

/// Canonicalizes a kernel in place. Returns the number of rewrites applied.
pub fn canonicalize(kernel: &mut TKernel) -> usize {
    let mut total = 0;
    for stmt in &mut kernel.body {
        let expr = match stmt {
            TStmt::Let { value, .. } => value,
            TStmt::Expr(e) => e,
        };
        total += rewrite_to_fixpoint(expr);
    }
    total
}

fn rewrite_to_fixpoint(e: &mut TExpr) -> usize {
    let mut total = 0;
    loop {
        let n = rewrite(e);
        total += n;
        if n == 0 {
            return total;
        }
    }
}

/// One bottom-up pass; returns the number of rewrites applied.
fn rewrite(e: &mut TExpr) -> usize {
    let mut count = 0;
    // Recurse first (bottom-up).
    match &mut e.kind {
        TExprKind::Adjoint(inner) => count += rewrite(inner),
        TExprKind::Pred { func, .. } => count += rewrite(func),
        TExprKind::Tensor(parts) | TExprKind::Compose(parts) => {
            for p in parts {
                count += rewrite(p);
            }
        }
        TExprKind::Pipe { value, func } => {
            count += rewrite(value);
            count += rewrite(func);
        }
        TExprKind::Cond { cond, then_f, else_f } => {
            count += rewrite(cond);
            count += rewrite(then_f);
            count += rewrite(else_f);
        }
        _ => {}
    }

    let replacement: Option<TExprKind> = match &e.kind {
        // ~~f  ->  f
        TExprKind::Adjoint(inner) => match &inner.kind {
            TExprKind::Adjoint(f) => Some(f.kind.clone()),
            // ~(b1 >> b2)  ->  b2 >> b1
            TExprKind::Translation { b_in, b_out } => {
                Some(TExprKind::Translation { b_in: b_out.clone(), b_out: b_in.clone() })
            }
            // ~id  ->  id
            TExprKind::Id { dim } => Some(TExprKind::Id { dim: *dim }),
            // ~(f1 ; f2)  ->  ~f2 ; ~f1
            TExprKind::Compose(parts) => Some(TExprKind::Compose(
                parts
                    .iter()
                    .rev()
                    .map(|p| TExpr {
                        kind: TExprKind::Adjoint(Box::new(p.clone())),
                        ty: p.ty,
                        span: p.span,
                    })
                    .collect(),
            )),
            // ~(f1 + f2)  ->  ~f1 + ~f2
            TExprKind::Tensor(parts) => Some(TExprKind::Tensor(
                parts
                    .iter()
                    .map(|p| TExpr {
                        kind: TExprKind::Adjoint(Box::new(p.clone())),
                        ty: p.ty,
                        span: p.span,
                    })
                    .collect(),
            )),
            _ => None,
        },
        TExprKind::Pred { basis, func } => {
            if basis.fully_spans() {
                // std[N] & f  ->  id[N] + f (and the fully-spanning
                // generalization).
                let id = TExpr {
                    kind: TExprKind::Id { dim: basis.dim() },
                    ty: Type::rev_func(basis.dim()),
                    span: e.span,
                };
                Some(TExprKind::Tensor(vec![id, (**func).clone()]))
            } else {
                match &func.kind {
                    // b3 & (b1 >> b2)  ->  b3 + b1 >> b3 + b2
                    TExprKind::Translation { b_in, b_out } => Some(TExprKind::Translation {
                        b_in: basis.tensor(b_in),
                        b_out: basis.tensor(b_out),
                    }),
                    // b & id  ->  id
                    TExprKind::Id { dim } => Some(TExprKind::Id { dim: basis.dim() + dim }),
                    _ => None,
                }
            }
        }
        // Singleton unwrapping.
        TExprKind::Tensor(parts) if parts.len() == 1 => Some(parts[0].kind.clone()),
        TExprKind::Compose(parts) if parts.len() == 1 => Some(parts[0].kind.clone()),
        _ => None,
    };

    if let Some(kind) = replacement {
        e.kind = kind;
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{instantiate, CaptureValue};
    use crate::parse::parse_program;
    use crate::typecheck::typecheck_kernel;
    use std::collections::HashMap;

    fn checked(src: &str, kernel: &str, captures: Vec<CaptureValue>) -> TKernel {
        let program = parse_program(src).unwrap();
        let inst = instantiate(&program, kernel, &captures, &HashMap::new()).unwrap();
        typecheck_kernel(&program, kernel, &inst).unwrap()
    }

    fn body_expr(kernel: &TKernel) -> &TExpr {
        let TStmt::Expr(e) = kernel.body.last().unwrap() else { panic!() };
        e
    }

    #[test]
    fn double_adjoint_removed() {
        let src = r"
            qpu k(q: qubit) -> qubit {
                q | ~~(std >> pm)
            }
        ";
        let mut kernel = checked(src, "k", vec![]);
        assert!(canonicalize(&mut kernel) > 0);
        let TExprKind::Pipe { func, .. } = &body_expr(&kernel).kind else { panic!() };
        assert!(matches!(func.kind, TExprKind::Translation { .. }));
    }

    #[test]
    fn adjoint_translation_swaps_bases() {
        let src = r"
            qpu k(q: qubit) -> qubit {
                q | ~(std >> pm)
            }
        ";
        let mut kernel = checked(src, "k", vec![]);
        canonicalize(&mut kernel);
        let TExprKind::Pipe { func, .. } = &body_expr(&kernel).kind else { panic!() };
        let TExprKind::Translation { b_in, b_out } = &func.kind else {
            panic!("expected translation, got {:?}", func.kind)
        };
        assert_eq!(b_in.to_string(), "pm");
        assert_eq!(b_out.to_string(), "std");
    }

    #[test]
    fn fully_spanning_pred_becomes_tensor_with_id() {
        let src = r"
            qpu k(qs: qubit[3]) -> qubit[3] {
                qs | std[2] & pm.flip
            }
        ";
        let mut kernel = checked(src, "k", vec![]);
        canonicalize(&mut kernel);
        let TExprKind::Pipe { func, .. } = &body_expr(&kernel).kind else { panic!() };
        let TExprKind::Tensor(parts) = &func.kind else {
            panic!("expected tensor, got {:?}", func.kind)
        };
        assert!(matches!(parts[0].kind, TExprKind::Id { dim: 2 }));
    }

    #[test]
    fn pred_of_translation_folds_into_bases() {
        let src = r"
            qpu k(qs: qubit[3]) -> qubit[3] {
                qs | {'11'} & (std >> pm)
            }
        ";
        let mut kernel = checked(src, "k", vec![]);
        canonicalize(&mut kernel);
        let TExprKind::Pipe { func, .. } = &body_expr(&kernel).kind else { panic!() };
        let TExprKind::Translation { b_in, b_out } = &func.kind else {
            panic!("expected translation, got {:?}", func.kind)
        };
        assert_eq!(b_in.to_string(), "{'11'} + std");
        assert_eq!(b_out.to_string(), "{'11'} + pm");
        // The type is unchanged by canonicalization.
        assert_eq!(func.ty, Type::rev_func(3));
    }

    #[test]
    fn adjoint_distributes_over_compose() {
        let src = r"
            qpu k(q: qubit) -> qubit {
                q | ~((std >> pm) ** 2)
            }
        ";
        let mut kernel = checked(src, "k", vec![]);
        canonicalize(&mut kernel);
        let TExprKind::Pipe { func, .. } = &body_expr(&kernel).kind else { panic!() };
        let TExprKind::Compose(parts) = &func.kind else {
            panic!("expected compose, got {:?}", func.kind)
        };
        // Each part became the reversed translation pm >> std.
        for p in parts {
            let TExprKind::Translation { b_in, .. } = &p.kind else { panic!() };
            assert_eq!(b_in.to_string(), "pm");
        }
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let src = r"
            qpu k(qs: qubit[3]) -> qubit[3] {
                qs | ~~({'11'} & ~(std >> pm))
            }
        ";
        let mut kernel = checked(src, "k", vec![]);
        canonicalize(&mut kernel);
        let again = canonicalize(&mut kernel);
        assert_eq!(again, 0, "second run changes nothing");
    }
}
