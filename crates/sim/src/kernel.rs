//! Stride-based gate kernels and the gate-fusion prepass.
//!
//! The simulation hot path: instead of interpreting [`CircuitOp`]s one at a
//! time with a scan-and-branch over all `2^n` amplitudes (retained as
//! [`StateVector::apply_naive`] for differential testing), a circuit is
//! *compiled* once into a [`KernelProgram`]:
//!
//! - **Fusion**: runs of adjacent uncontrolled single-qubit gates on the
//!   same wire are folded into one 2×2 matrix (gates on disjoint wires
//!   commute, so runs survive interleaving); consecutive controlled
//!   unitaries with identical control/target masks are folded likewise, and
//!   exact-identity products (e.g. `X;X`, `S;Sdg`) are dropped.
//! - **Stride enumeration**: each kernel visits only the
//!   `2^(n-1-#controls)` pair indices satisfying the control mask, by
//!   depositing a dense counter's bits over the free bit positions —
//!   no per-index branching.
//!
//! The same kernels back the batched unitary extraction in
//! [`crate::batch`], which applies a program to many basis columns at once.

use crate::complex::Complex;
use crate::state::StateVector;
use asdf_ir::GateKind;
use asdf_qcircuit::{Circuit, CircuitOp};
use std::f64::consts::FRAC_PI_4;

/// A 2×2 complex matrix, row-major.
pub type Matrix2 = [[Complex; 2]; 2];

/// The exact 2×2 identity.
pub const IDENTITY_2Q: Matrix2 = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]];

/// One fused, mask-resolved operation of a [`KernelProgram`].
///
/// Masks follow the [`StateVector`] convention: qubit 0 is the most
/// significant bit of the amplitude index.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOp {
    /// A (possibly controlled) single-qubit unitary: the fused 2×2 matrix
    /// applied to the target bit wherever every control bit is 1.
    Unitary {
        /// The fused matrix.
        matrix: Matrix2,
        /// Single-bit mask of the target qubit.
        tmask: usize,
        /// OR of the control-qubit masks (0 when uncontrolled).
        cmask: usize,
    },
    /// A (possibly controlled) swap of two qubits.
    Swap {
        /// Single-bit mask of the first swapped qubit.
        amask: usize,
        /// Single-bit mask of the second swapped qubit.
        bmask: usize,
        /// OR of the control-qubit masks (0 when uncontrolled).
        cmask: usize,
    },
    /// A measurement into a classical bit (never fused across).
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        bit: usize,
    },
    /// A reset to |0> (never fused across).
    Reset {
        /// Reset qubit.
        qubit: usize,
    },
}

/// A circuit compiled to fused, mask-resolved kernel ops.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    num_qubits: usize,
    num_bits: usize,
    ops: Vec<KernelOp>,
    source_ops: usize,
}

impl KernelProgram {
    /// Compiles `circuit` into fused kernel ops.
    pub fn compile(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits;
        let mask = |q: usize| 1usize << (n - 1 - q);
        let mut ops: Vec<KernelOp> = Vec::with_capacity(circuit.ops.len());
        let mut pending: Vec<Option<Matrix2>> = vec![None; n];

        fn flush(
            ops: &mut Vec<KernelOp>,
            pending: &mut [Option<Matrix2>],
            wire: usize,
            tmask: usize,
        ) {
            if let Some(matrix) = pending[wire].take() {
                push_unitary(ops, matrix, tmask, 0);
            }
        }

        for op in &circuit.ops {
            match op {
                CircuitOp::Gate { gate: GateKind::Swap, controls, targets } => {
                    for &q in controls.iter().chain(targets) {
                        flush(&mut ops, &mut pending, q, mask(q));
                    }
                    let cmask = controls.iter().fold(0, |acc, &c| acc | mask(c));
                    ops.push(KernelOp::Swap {
                        amask: mask(targets[0]),
                        bmask: mask(targets[1]),
                        cmask,
                    });
                }
                CircuitOp::Gate { gate, controls, targets } if controls.is_empty() => {
                    let wire = targets[0];
                    let acc = pending[wire].unwrap_or(IDENTITY_2Q);
                    pending[wire] = Some(matmul(&matrix_1q(*gate), &acc));
                }
                CircuitOp::Gate { gate, controls, targets } => {
                    for &q in controls.iter().chain(targets) {
                        flush(&mut ops, &mut pending, q, mask(q));
                    }
                    let cmask = controls.iter().fold(0, |acc, &c| acc | mask(c));
                    push_unitary(&mut ops, matrix_1q(*gate), mask(targets[0]), cmask);
                }
                CircuitOp::Measure { qubit, bit } => {
                    flush(&mut ops, &mut pending, *qubit, mask(*qubit));
                    ops.push(KernelOp::Measure { qubit: *qubit, bit: *bit });
                }
                CircuitOp::Reset { qubit } => {
                    flush(&mut ops, &mut pending, *qubit, mask(*qubit));
                    ops.push(KernelOp::Reset { qubit: *qubit });
                }
            }
        }
        for wire in 0..n {
            flush(&mut ops, &mut pending, wire, mask(wire));
        }

        KernelProgram {
            num_qubits: n,
            num_bits: circuit.num_bits(),
            ops,
            source_ops: circuit.ops.len(),
        }
    }

    /// Number of qubits the program acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits the program writes.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// The fused ops, in execution order.
    pub fn ops(&self) -> &[KernelOp] {
        &self.ops
    }

    /// Number of source-circuit ops the program was compiled from.
    pub fn source_ops(&self) -> usize {
        self.source_ops
    }

    /// Whether the program is measurement- and reset-free.
    pub fn is_unitary(&self) -> bool {
        self.ops.iter().all(|op| matches!(op, KernelOp::Unitary { .. } | KernelOp::Swap { .. }))
    }

    /// Applies the program to `state`.
    ///
    /// # Panics
    ///
    /// Panics if the state size does not match, or if the program contains
    /// measurements or resets (those need a seeded executor — see
    /// [`crate::run::Simulator::run_program`]).
    pub fn apply_state(&self, state: &mut StateVector) {
        assert!(self.is_unitary(), "apply_state on a measuring program; use Simulator");
        self.apply_gates(state);
    }

    /// Applies only the unitary ops (gates), skipping measurements and
    /// resets. Callers must have established that the skipped ops do not
    /// affect the amplitudes they read — e.g. the terminal-measurement
    /// analysis of [`crate::run::measurement_distribution`].
    pub fn apply_gates(&self, state: &mut StateVector) {
        assert_eq!(state.num_qubits(), self.num_qubits, "state size mismatch");
        let amps = state.amps_mut();
        for op in &self.ops {
            match op {
                KernelOp::Unitary { matrix, tmask, cmask } => {
                    apply_unitary(amps, matrix, *tmask, *cmask);
                }
                KernelOp::Swap { amask, bmask, cmask } => {
                    apply_swap(amps, *amask, *bmask, *cmask);
                }
                KernelOp::Measure { .. } | KernelOp::Reset { .. } => {}
            }
        }
    }
}

/// Appends a unitary, folding it into the previous op when that op is a
/// unitary on exactly the same control/target masks, and dropping exact
/// identities.
fn push_unitary(ops: &mut Vec<KernelOp>, matrix: Matrix2, tmask: usize, cmask: usize) {
    if let Some(KernelOp::Unitary { matrix: prev, tmask: pt, cmask: pc }) = ops.last_mut() {
        if *pt == tmask && *pc == cmask {
            *prev = matmul(&matrix, prev);
            if *prev == IDENTITY_2Q {
                ops.pop();
            }
            return;
        }
    }
    if matrix == IDENTITY_2Q {
        return;
    }
    ops.push(KernelOp::Unitary { matrix, tmask, cmask });
}

/// `a * b` (apply `b` first, then `a`).
pub fn matmul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    [
        [a[0][0] * b[0][0] + a[0][1] * b[1][0], a[0][0] * b[0][1] + a[0][1] * b[1][1]],
        [a[1][0] * b[0][0] + a[1][1] * b[1][0], a[1][0] * b[0][1] + a[1][1] * b[1][1]],
    ]
}

/// Decomposes `mask` into its single-bit masks, ascending.
pub(crate) fn single_bit_masks(mut mask: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    while mask != 0 {
        let low = mask & mask.wrapping_neg();
        out.push(low);
        mask ^= low;
    }
    out
}

/// Deposits the bits of the dense counter `k` over the bit positions *not*
/// occupied by `fixed` (single-bit masks, ascending): the classic
/// bit-deposit that enumerates exactly the indices with all fixed bits 0.
#[inline]
pub(crate) fn deposit(k: usize, fixed: &[usize]) -> usize {
    let mut index = k;
    for &mask in fixed {
        index = ((index & !(mask - 1)) << 1) | (index & (mask - 1));
    }
    index
}

/// The structural form of a 2×2 matrix, used to pick a cheaper kernel.
/// Zero tests are exact: fused products of structured matrices keep their
/// exact zeros (and phase gates their exact unit corner), so the common
/// post-fusion shapes — phase products, Rz products, multi-controlled X —
/// all classify away from the general case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MatrixForm {
    /// Off-diagonal exactly zero, upper-left exactly one: only |..1..>
    /// amplitudes are scaled (P/T/S/Z and their products).
    Phase,
    /// Off-diagonal exactly zero (Rz and diagonal products).
    Diagonal,
    /// Diagonal exactly zero, both off-diagonal entries exactly one: a
    /// pure amplitude swap (X, CX, CCX...).
    FlipX,
    /// Diagonal exactly zero (Y-like).
    AntiDiagonal,
    /// Anything else.
    General,
}

/// Classifies `matrix` for kernel dispatch.
pub(crate) fn classify(matrix: &Matrix2) -> MatrixForm {
    let [[m00, m01], [m10, m11]] = *matrix;
    if m01 == Complex::ZERO && m10 == Complex::ZERO {
        if m00 == Complex::ONE {
            MatrixForm::Phase
        } else {
            MatrixForm::Diagonal
        }
    } else if m00 == Complex::ZERO && m11 == Complex::ZERO {
        if m01 == Complex::ONE && m10 == Complex::ONE {
            MatrixForm::FlipX
        } else {
            MatrixForm::AntiDiagonal
        }
    } else {
        MatrixForm::General
    }
}

/// Applies a (possibly controlled) 2×2 unitary to the amplitude slice,
/// visiting only the `len >> (1 + #controls)` pairs whose controls are 1,
/// with the update specialized to the matrix form (a fused phase product
/// touches only the |..1..> amplitudes; a multi-controlled X moves
/// amplitudes without any arithmetic).
pub(crate) fn apply_unitary(amps: &mut [Complex], matrix: &Matrix2, tmask: usize, cmask: usize) {
    let [[m00, m01], [m10, m11]] = *matrix;
    let form = classify(matrix);
    if cmask == 0 {
        // Contiguous fast path: every aligned block of 2*tmask amplitudes
        // splits into tmask pairs at distance tmask.
        for chunk in amps.chunks_exact_mut(tmask << 1) {
            let (lo, hi) = chunk.split_at_mut(tmask);
            match form {
                MatrixForm::Phase => {
                    for b in hi.iter_mut() {
                        *b = m11 * *b;
                    }
                }
                MatrixForm::Diagonal => {
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        *a = m00 * *a;
                        *b = m11 * *b;
                    }
                }
                MatrixForm::FlipX => lo.swap_with_slice(hi),
                MatrixForm::AntiDiagonal => {
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        let a0 = *a;
                        *a = m01 * *b;
                        *b = m10 * a0;
                    }
                }
                MatrixForm::General => {
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        let a0 = *a;
                        let a1 = *b;
                        *a = m00 * a0 + m01 * a1;
                        *b = m10 * a0 + m11 * a1;
                    }
                }
            }
        }
    } else {
        let fixed = single_bit_masks(tmask | cmask);
        let pairs = amps.len() >> fixed.len();
        for k in 0..pairs {
            let i = deposit(k, &fixed) | cmask;
            let j = i | tmask;
            match form {
                MatrixForm::Phase => amps[j] = m11 * amps[j],
                MatrixForm::Diagonal => {
                    amps[i] = m00 * amps[i];
                    amps[j] = m11 * amps[j];
                }
                MatrixForm::FlipX => amps.swap(i, j),
                MatrixForm::AntiDiagonal => {
                    let a0 = amps[i];
                    amps[i] = m01 * amps[j];
                    amps[j] = m10 * a0;
                }
                MatrixForm::General => {
                    let a0 = amps[i];
                    let a1 = amps[j];
                    amps[i] = m00 * a0 + m01 * a1;
                    amps[j] = m10 * a0 + m11 * a1;
                }
            }
        }
    }
}

/// Applies a (possibly controlled) swap, exchanging the amplitudes of
/// |..a=1,b=0..> and |..a=0,b=1..> wherever the controls are 1.
pub(crate) fn apply_swap(amps: &mut [Complex], amask: usize, bmask: usize, cmask: usize) {
    let fixed = single_bit_masks(amask | bmask | cmask);
    let pairs = amps.len() >> fixed.len();
    for k in 0..pairs {
        let i = deposit(k, &fixed) | cmask | amask;
        let j = i ^ amask ^ bmask;
        amps.swap(i, j);
    }
}

/// The 2x2 matrix of a single-target gate.
///
/// # Panics
///
/// Panics on [`GateKind::Swap`], which has no 2×2 matrix.
pub fn matrix_1q(gate: GateKind) -> Matrix2 {
    let zero = Complex::ZERO;
    let one = Complex::ONE;
    let i = Complex::I;
    let h = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
    match gate {
        GateKind::X => [[zero, one], [one, zero]],
        GateKind::Y => [[zero, -i], [i, zero]],
        GateKind::Z => [[one, zero], [zero, -one]],
        GateKind::H => [[h, h], [h, -h]],
        GateKind::S => [[one, zero], [zero, i]],
        GateKind::Sdg => [[one, zero], [zero, -i]],
        GateKind::T => [[one, zero], [zero, Complex::from_angle(FRAC_PI_4)]],
        GateKind::Tdg => [[one, zero], [zero, Complex::from_angle(-FRAC_PI_4)]],
        GateKind::Sx => {
            let p = Complex::new(0.5, 0.5);
            let m = Complex::new(0.5, -0.5);
            [[p, m], [m, p]]
        }
        GateKind::Sxdg => {
            let p = Complex::new(0.5, 0.5);
            let m = Complex::new(0.5, -0.5);
            [[m, p], [p, m]]
        }
        GateKind::P(theta) => [[one, zero], [zero, Complex::from_angle(theta)]],
        GateKind::Rx(theta) => {
            let c = Complex::new((theta / 2.0).cos(), 0.0);
            let s = Complex::new(0.0, -(theta / 2.0).sin());
            [[c, s], [s, c]]
        }
        GateKind::Ry(theta) => {
            let c = Complex::new((theta / 2.0).cos(), 0.0);
            let s = Complex::new((theta / 2.0).sin(), 0.0);
            [[c, -s], [s, c]]
        }
        GateKind::Rz(theta) => {
            [[Complex::from_angle(-theta / 2.0), zero], [zero, Complex::from_angle(theta / 2.0)]]
        }
        GateKind::Swap => unreachable!("swap handled separately"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unitary_count(p: &KernelProgram) -> usize {
        p.ops().iter().filter(|op| matches!(op, KernelOp::Unitary { .. })).count()
    }

    #[test]
    fn deposit_enumerates_free_indices() {
        // n = 4, fixed bits 0b0100 and 0b0001: the 4 free patterns land in
        // the remaining positions, fixed bits always 0.
        let fixed = [0b0001usize, 0b0100];
        let all: Vec<usize> = (0..4).map(|k| deposit(k, &fixed)).collect();
        assert_eq!(all, vec![0b0000, 0b0010, 0b1000, 0b1010]);
    }

    #[test]
    fn fuses_single_qubit_runs_across_disjoint_wires() {
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::T, &[], &[1]); // interleaved, different wire
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::H, &[], &[0]);
        let p = KernelProgram::compile(&c);
        // Wire 0's H-T-H run fuses to one matrix; wire 1's T is another.
        assert_eq!(unitary_count(&p), 2);
        assert!(p.is_unitary());
        assert_eq!(p.source_ops(), 4);
    }

    #[test]
    fn fusion_does_not_cross_controls_or_measurements() {
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]); // touches both wires: flushes H
        c.gate(GateKind::H, &[], &[0]);
        c.measure(0, 0);
        c.gate(GateKind::H, &[], &[0]); // must not fuse across the measure
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 5);
        assert!(!p.is_unitary());
        assert!(matches!(p.ops()[3], KernelOp::Measure { qubit: 0, bit: 0 }));
    }

    #[test]
    fn exact_identity_products_are_dropped() {
        let mut c = Circuit::new(1);
        c.gate(GateKind::X, &[], &[0]);
        c.gate(GateKind::X, &[], &[0]);
        c.gate(GateKind::S, &[], &[0]);
        c.gate(GateKind::Sdg, &[], &[0]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 0, "{:?}", p.ops());
        // Adjacent identical-mask controlled pairs cancel too.
        let mut c = Circuit::new(2);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::X, &[0], &[1]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 0, "{:?}", p.ops());
    }

    #[test]
    fn fused_program_matches_gate_by_gate_application() {
        let mut c = Circuit::new(3);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::Ry(0.37), &[], &[2]);
        c.gate(GateKind::Swap, &[0], &[1, 2]);
        c.gate(GateKind::Sdg, &[], &[1]);
        c.gate(GateKind::Z, &[2, 1], &[0]);
        let p = KernelProgram::compile(&c);

        let mut fused = StateVector::zero(3);
        p.apply_state(&mut fused);
        let mut plain = StateVector::zero(3);
        for op in &c.ops {
            if let CircuitOp::Gate { gate, controls, targets } = op {
                plain.apply_naive(*gate, controls, targets);
            }
        }
        for (a, b) in fused.amplitudes().iter().zip(plain.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn apply_state_rejects_measuring_programs() {
        let mut c = Circuit::new(1);
        c.measure(0, 0);
        let p = KernelProgram::compile(&c);
        let result = std::panic::catch_unwind(|| {
            let mut s = StateVector::zero(1);
            p.apply_state(&mut s);
        });
        assert!(result.is_err());
    }
}
