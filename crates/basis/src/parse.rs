//! A small parser for basis expressions, used by tests, documentation
//! examples, and the IR printer round-trip.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! basis    := element ('+' element)*
//! element  := atom ('[' int ']')?
//! atom     := 'std' | 'pm' | 'ij' | 'fourier' | literal
//! literal  := '{' vector (',' vector)* '}'
//! vector   := '-'? quoted ('[' int ']')? ('@' float)?
//! quoted   := '\'' [01pmij]+ '\''
//! ```
//!
//! `[N]` after a built-in sets its dimension; after a literal or vector it
//! is an `N`-fold tensor power. `@theta` attaches a phase in degrees;
//! a leading `-` is shorthand for `@180`.

use crate::{
    Basis, BasisElem, BasisError, BasisLiteral, BasisVector, BitString, Phase, PrimitiveBasis,
};

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src: src.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn expect(&mut self, c: u8) -> Result<(), BasisError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(BasisError::parse(format!(
                "expected {:?}, found {:?}",
                c as char,
                got.map(|b| b as char)
            ))),
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn integer(&mut self) -> Result<usize, BasisError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(BasisError::parse("expected an integer"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| BasisError::parse("integer out of range"))
    }

    fn float(&mut self) -> Result<f64, BasisError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos < self.src.len() && (self.src[self.pos] == b'-' || self.src[self.pos] == b'+') {
            self.pos += 1;
        }
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| BasisError::parse("expected a number after '@'"))
    }

    fn quoted_vector(&mut self) -> Result<(PrimitiveBasis, BasisVector), BasisError> {
        let negate = self.eat(b'-');
        self.expect(b'\'')?;
        let mut prim = None;
        let mut bits = Vec::new();
        loop {
            match self.bump() {
                Some(b'\'') => break,
                Some(c) => {
                    let (p, eig) = PrimitiveBasis::from_char(c as char).ok_or_else(|| {
                        BasisError::parse(format!("invalid qubit character {:?}", c as char))
                    })?;
                    match prim {
                        None => prim = Some(p),
                        Some(existing) if existing != p => {
                            return Err(BasisError::malformed(
                                "all positions of a basis vector must share one primitive basis",
                            ))
                        }
                        Some(_) => {}
                    }
                    bits.push(eig.eigenbit());
                }
                None => return Err(BasisError::parse("unterminated qubit literal")),
            }
        }
        if bits.is_empty() {
            return Err(BasisError::parse("empty qubit literal"));
        }
        // Optional tensor power: 'p'[3] means 'ppp'.
        if self.eat(b'[') {
            let n = self.integer()?;
            self.expect(b']')?;
            if n == 0 {
                return Err(BasisError::parse("tensor power must be positive"));
            }
            let original = bits.clone();
            for _ in 1..n {
                bits.extend_from_slice(&original);
            }
        }
        let mut phase = if negate { Some(Phase::PI) } else { None };
        if self.eat(b'@') {
            let degrees = self.float()?;
            let radians = degrees.to_radians();
            phase = Some(match phase {
                Some(Phase::Const(existing)) => Phase::Const(existing + radians),
                _ => Phase::Const(radians),
            });
        }
        let vector = BasisVector { eigenbits: BitString::from_bits(bits), phase };
        Ok((prim.expect("nonempty vector has a primitive basis"), vector))
    }

    fn literal(&mut self) -> Result<BasisLiteral, BasisError> {
        self.expect(b'{')?;
        let mut prim = None;
        let mut vectors = Vec::new();
        loop {
            let (p, v) = self.quoted_vector()?;
            match prim {
                None => prim = Some(p),
                Some(existing) if existing != p => {
                    return Err(BasisError::malformed(
                        "all vectors of a basis literal must share one primitive basis",
                    ))
                }
                Some(_) => {}
            }
            vectors.push(v);
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        BasisLiteral::new(prim.expect("literal has at least one vector"), vectors)
    }

    fn keyword(&mut self) -> Option<PrimitiveBasis> {
        self.skip_ws();
        for prim in
            [PrimitiveBasis::Fourier, PrimitiveBasis::Std, PrimitiveBasis::Pm, PrimitiveBasis::Ij]
        {
            let kw = prim.keyword().as_bytes();
            if self.src[self.pos..].starts_with(kw) {
                // Must not be followed by an identifier character.
                let after = self.src.get(self.pos + kw.len());
                if !matches!(after, Some(c) if c.is_ascii_alphanumeric() || *c == b'_') {
                    self.pos += kw.len();
                    return Some(prim);
                }
            }
        }
        None
    }

    fn element(&mut self, out: &mut Vec<BasisElem>) -> Result<(), BasisError> {
        if let Some(prim) = self.keyword() {
            let dim = if self.eat(b'[') {
                let n = self.integer()?;
                self.expect(b']')?;
                n
            } else {
                1
            };
            if dim == 0 {
                return Err(BasisError::parse("basis dimension must be positive"));
            }
            out.push(BasisElem::built_in(prim, dim));
            Ok(())
        } else if self.peek() == Some(b'{') {
            let lit = self.literal()?;
            let reps = if self.eat(b'[') {
                let n = self.integer()?;
                self.expect(b']')?;
                n
            } else {
                1
            };
            if reps == 0 {
                return Err(BasisError::parse("tensor power must be positive"));
            }
            for _ in 0..reps {
                out.push(BasisElem::Literal(lit.clone()));
            }
            Ok(())
        } else {
            Err(BasisError::parse(format!(
                "expected a basis element, found {:?}",
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn basis(&mut self) -> Result<Basis, BasisError> {
        let mut elems = Vec::new();
        self.element(&mut elems)?;
        while self.eat(b'+') {
            self.element(&mut elems)?;
        }
        self.skip_ws();
        if self.pos != self.src.len() {
            return Err(BasisError::parse(format!("trailing input starting at byte {}", self.pos)));
        }
        Ok(Basis::new(elems))
    }
}

impl std::str::FromStr for Basis {
    type Err = BasisError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Parser::new(s).basis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_builtins() {
        let b: Basis = "std[2] + pm + fourier[3]".parse().unwrap();
        assert_eq!(b.dim(), 6);
        assert_eq!(b.elements().len(), 3);
        assert!(matches!(
            b.elements()[2],
            BasisElem::BuiltIn { prim: PrimitiveBasis::Fourier, dim: 3 }
        ));
    }

    #[test]
    fn parses_fig3_left() {
        let b: Basis = "{'p'} + fourier[3] + {'1'@45} + pm".parse().unwrap();
        assert_eq!(b.dim(), 6);
        assert!(b.has_phases());
    }

    #[test]
    fn parses_fig3_right() {
        let b: Basis = "{-'p'} + std[2] + ij + {-'11', '10'}".parse().unwrap();
        assert_eq!(b.dim(), 6);
        let BasisElem::Literal(last) = &b.elements()[3] else {
            panic!("expected literal");
        };
        assert_eq!(last.len(), 2);
        assert_eq!(last.vectors()[0].phase, Some(Phase::PI));
    }

    #[test]
    fn parses_vector_power() {
        let b: Basis = "{'p'[3]}".parse().unwrap();
        assert_eq!(b.dim(), 3);
        let b: Basis = "{'0','1'}[4]".parse().unwrap();
        assert_eq!(b.dim(), 4);
        assert_eq!(b.elements().len(), 4);
    }

    #[test]
    fn rejects_mixed_prims_in_literal() {
        assert!("{'0p'}".parse::<Basis>().is_err());
        assert!("{'0','p'}".parse::<Basis>().is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!("std[2] x".parse::<Basis>().is_err());
        assert!("std[0]".parse::<Basis>().is_err());
        assert!("{}".parse::<Basis>().is_err());
    }

    #[test]
    fn phase_degrees_to_radians() {
        let b: Basis = "{'1'@90}".parse().unwrap();
        let BasisElem::Literal(lit) = &b.elements()[0] else { panic!() };
        let Some(Phase::Const(theta)) = lit.vectors()[0].phase else { panic!() };
        assert!((theta - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn negation_plus_phase_compose() {
        let b: Basis = "{-'1'@180}".parse().unwrap();
        let BasisElem::Literal(lit) = &b.elements()[0] else { panic!() };
        let Some(Phase::Const(theta)) = lit.vectors()[0].phase else { panic!() };
        assert!((theta - std::f64::consts::TAU).abs() < 1e-12);
    }
}
