//! The rewrite layer: patterns, the [`Rewriter`] handle, and two drivers.
//!
//! MLIR's canonicalizer "simplifies IR to better enable optimizations (e.g.,
//! through constant folding and dead code elimination)" (§3), and both MLIR
//! and quilc get their rewriting throughput from drivers that only revisit
//! IR touched by a previous rewrite. This module rebuilds that design:
//!
//! - [`RewritePattern`]: a DAG-to-DAG rewrite. Patterns *read* the op at the
//!   rewriter's root (plus its block neighborhood) and *mutate* exclusively
//!   through the [`Rewriter`] handle, so the driver learns exactly which ops
//!   were created, erased, or had operands change and can requeue only the
//!   affected def-use neighborhood.
//! - [`Rewriter`]: the mutation handle. Edits are queued and applied when
//!   the pattern returns `true`; reads always observe the pre-firing IR.
//! - [`GreedyRewriteDriver`]: the worklist driver. Seeds every op, pops in
//!   program order, applies the best-[`benefit`](RewritePattern::benefit)
//!   matching pattern, folds classical dead-code elimination into the same
//!   worklist, and requeues only the reported neighborhood. Supports a
//!   [`Fuel`] cutoff (`ASDF_REWRITE_FUEL`) for bisecting miscompiles and an
//!   optional firing trace (`ASDF_REWRITE_TRACE=1`).
//! - [`RescanDriver`]: the original rescan-from-op-0 fixpoint loop,
//!   retained as a differential reference for equivalence tests and the
//!   `rewrite_driver` bench. It drives the *same* patterns; only the
//!   scheduling differs.

use crate::block::{Block, BlockPath};
use crate::func::Func;
use crate::module::Module;
use crate::op::Op;
use crate::types::{FuncType, Type};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Symbols
// ---------------------------------------------------------------------

/// A read-only snapshot of module-level symbols, available to patterns
/// while a function is mutably borrowed. Built once per driver run and
/// updated incrementally (instead of rebuilt from scratch every driver
/// iteration) via [`SymbolTable::reconcile`] and
/// [`SymbolTable::update_symbol`].
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    sigs: HashMap<String, FuncType>,
}

impl SymbolTable {
    /// Builds the snapshot from a module.
    pub fn from_module(module: &Module) -> Self {
        let mut table = SymbolTable::default();
        table.reconcile(module);
        table
    }

    /// Looks up a symbol's signature.
    pub fn signature(&self, name: &str) -> Option<&FuncType> {
        self.sigs.get(name)
    }

    /// Number of known symbols.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Incrementally reconciles the table with `module`: drops symbols that
    /// no longer exist, adds new ones, and refreshes changed signatures —
    /// without cloning signatures that are already up to date. Returns the
    /// number of entries that changed.
    pub fn reconcile(&mut self, module: &Module) -> usize {
        let mut changed = 0usize;
        self.sigs.retain(|name, _| {
            let live = module.contains(name);
            if !live {
                changed += 1;
            }
            live
        });
        for func in module.funcs() {
            match self.sigs.get(&func.name) {
                Some(sig) if *sig == func.ty => {}
                _ => {
                    self.sigs.insert(func.name.clone(), func.ty.clone());
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Refreshes (or removes) a single symbol from `module` — the
    /// incremental path taken when a pattern reports
    /// [`Rewriter::notify_symbol_changed`]. Returns whether the table
    /// changed.
    pub fn update_symbol(&mut self, module: &Module, name: &str) -> bool {
        match module.func(name) {
            Some(func) => {
                self.sigs.insert(name.to_string(), func.ty.clone());
                true
            }
            None => self.sigs.remove(name).is_some(),
        }
    }
}

// ---------------------------------------------------------------------
// Fuel
// ---------------------------------------------------------------------

const FUEL_UNLIMITED: u64 = u64::MAX;

/// A shared budget of pattern firings, for bisecting miscompiles: with
/// `ASDF_REWRITE_FUEL=N` (or [`Fuel::limited`]), the N+1-th firing and all
/// later ones are suppressed across every driver sharing the cell, while
/// dead-code elimination keeps running. Clones share the same budget.
#[derive(Debug, Clone)]
pub struct Fuel(Arc<AtomicU64>);

impl Fuel {
    /// No cutoff: every firing is allowed.
    pub fn unlimited() -> Self {
        Fuel(Arc::new(AtomicU64::new(FUEL_UNLIMITED)))
    }

    /// Allows exactly `n` pattern firings.
    pub fn limited(n: u64) -> Self {
        Fuel(Arc::new(AtomicU64::new(n.min(FUEL_UNLIMITED - 1))))
    }

    /// `limit.map(Fuel::limited).unwrap_or_else(Fuel::unlimited)`.
    pub fn from_limit(limit: Option<u64>) -> Self {
        match limit {
            Some(n) => Fuel::limited(n),
            None => Fuel::unlimited(),
        }
    }

    /// Whether the budget is spent.
    pub fn is_exhausted(&self) -> bool {
        self.0.load(Ordering::Relaxed) == 0
    }

    /// Remaining firings, or `None` when unlimited.
    pub fn remaining(&self) -> Option<u64> {
        match self.0.load(Ordering::Relaxed) {
            FUEL_UNLIMITED => None,
            n => Some(n),
        }
    }

    /// Consumes one firing; returns whether it was allowed.
    pub fn consume(&self) -> bool {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if current == FUEL_UNLIMITED {
                return true;
            }
            if current == 0 {
                return false;
            }
            match self.0.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel::unlimited()
    }
}

// ---------------------------------------------------------------------
// Configuration and statistics
// ---------------------------------------------------------------------

/// Driver tunables shared by both drivers. `Clone` shares the [`Fuel`]
/// cell, so one budget can span several passes of a pipeline.
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// The firing budget (see [`Fuel`]).
    pub fuel: Fuel,
    /// Record (and print to stderr) a `pattern @ func:block:op` line per
    /// firing.
    pub trace: bool,
    /// How many def-use hops around a change are requeued. Must be at
    /// least the deepest op-graph lookaround of any registered pattern
    /// (the stock patterns look at most 3 hops, e.g. the Fig. 10 relaxed
    /// peephole's `qalloc; x; h` prologue).
    pub neighborhood_radius: usize,
    /// Hard bound on total firings per run; exceeding it panics, which
    /// indicates a non-terminating (cyclic) pattern set.
    pub max_fires: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            fuel: Fuel::unlimited(),
            trace: false,
            neighborhood_radius: 3,
            max_fires: 1_000_000,
        }
    }
}

impl RewriteConfig {
    /// The default configuration with `ASDF_REWRITE_FUEL` (a firing
    /// budget) and `ASDF_REWRITE_TRACE=1` (firing trace) applied from the
    /// environment.
    pub fn from_env() -> Self {
        let mut config = RewriteConfig::default();
        if let Some(limit) = RewriteConfig::env_fuel_limit() {
            config.fuel = Fuel::limited(limit);
        }
        if std::env::var("ASDF_REWRITE_TRACE").is_ok_and(|v| v == "1") {
            config.trace = true;
        }
        config
    }

    /// Parses `ASDF_REWRITE_FUEL`, if set to an integer.
    pub fn env_fuel_limit() -> Option<u64> {
        std::env::var("ASDF_REWRITE_FUEL").ok().and_then(|v| v.parse().ok())
    }

    /// Replaces the fuel cell.
    #[must_use]
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.fuel = fuel;
        self
    }

    /// Enables or disables the firing trace.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Overrides the firing bound.
    #[must_use]
    pub fn with_max_fires(mut self, max_fires: usize) -> Self {
        self.max_fires = max_fires.max(1);
        self
    }
}

/// Statistics from the last driver run.
#[derive(Debug, Clone, Default)]
pub struct RewriteStats {
    /// Firing counts by pattern name.
    pub fired: HashMap<&'static str, usize>,
    /// Total pattern firings.
    pub fires: usize,
    /// Ops removed by the integrated classical dead-code elimination.
    pub dce_erased: usize,
    /// `pattern @ func:block:op` lines, when tracing is enabled.
    pub trace: Vec<String>,
}

// ---------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------

/// A DAG-to-DAG rewrite driven by a [`GreedyRewriteDriver`] (or the
/// reference [`RescanDriver`]).
///
/// A pattern inspects the op at the rewriter's root — plus whatever block
/// context it needs via [`Rewriter::block`], [`Rewriter::find_def`], and
/// [`Rewriter::use_count`] — and, on a match, queues its edits on the
/// handle and returns `true`. Reads must precede mutations: queued edits
/// are applied only after the pattern returns, so every read observes the
/// consistent pre-firing IR.
///
/// # Example
///
/// ```
/// use asdf_ir::rewrite::{GreedyRewriteDriver, Rewriter, RewritePattern};
/// use asdf_ir::{FuncBuilder, FuncType, Module, Op, OpKind, Type, Visibility};
///
/// /// Folds `fneg(const c)` into `const -c`.
/// struct FoldFNeg;
///
/// impl RewritePattern for FoldFNeg {
///     fn name(&self) -> &'static str {
///         "fold-fneg"
///     }
///
///     fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
///         let op = rw.op();
///         if !matches!(op.kind, OpKind::FNeg) {
///             return false;
///         }
///         let (operand, result) = (op.operands[0], op.results[0]);
///         let Some((def_idx, _)) = rw.find_def(operand) else { return false };
///         let OpKind::ConstF64 { value } = rw.block().ops[def_idx].kind else {
///             return false;
///         };
///         rw.replace_root(Op::new(OpKind::ConstF64 { value: -value }, vec![], vec![result]));
///         true
///     }
/// }
///
/// let mut b = FuncBuilder::new(
///     "f",
///     FuncType::new(vec![], vec![Type::F64], false),
///     Visibility::Public,
/// );
/// let mut bb = b.block();
/// let c = bb.push(OpKind::ConstF64 { value: 2.0 }, vec![], vec![Type::F64]);
/// let n = bb.push(OpKind::FNeg, vec![c[0]], vec![Type::F64]);
/// bb.push(OpKind::Return, vec![n[0]], vec![]);
/// let mut module = Module::new();
/// module.add_func(b.finish());
///
/// let mut driver = GreedyRewriteDriver::new();
/// driver.add_pattern(Box::new(FoldFNeg));
/// assert_eq!(driver.run(&mut module), 1);
/// // The fold fired and DCE swept the now-dead constant.
/// assert_eq!(module.func("f").unwrap().body.ops.len(), 2);
/// ```
pub trait RewritePattern {
    /// A stable name for debugging, statistics, and fuel bisection.
    fn name(&self) -> &'static str;

    /// Relative priority: when several patterns match the same op, the
    /// highest benefit fires (ties break by registration order). A useful
    /// convention is the net number of ops the rewrite removes.
    fn benefit(&self) -> usize {
        1
    }

    /// Attempts to rewrite the op at the rewriter's root. On a match,
    /// queue the edits on `rw` and return `true`; otherwise return `false`
    /// without queuing anything.
    fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool;
}

/// An ordered collection of patterns, sorted by descending
/// [`RewritePattern::benefit`] (stable, so registration order breaks
/// ties).
#[derive(Default)]
pub struct PatternSet {
    patterns: Vec<Box<dyn RewritePattern>>,
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> Self {
        PatternSet::default()
    }

    /// Registers a pattern, keeping the set benefit-sorted.
    pub fn add(&mut self, pattern: Box<dyn RewritePattern>) -> &mut Self {
        self.patterns.push(pattern);
        self.patterns.sort_by_key(|p| std::cmp::Reverse(p.benefit()));
        self
    }

    /// Pattern names in matching (benefit) order.
    pub fn names(&self) -> Vec<&'static str> {
        self.patterns.iter().map(|p| p.name()).collect()
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    fn iter(&self) -> impl Iterator<Item = &Box<dyn RewritePattern>> {
        self.patterns.iter()
    }
}

// ---------------------------------------------------------------------
// The Rewriter handle
// ---------------------------------------------------------------------

/// One queued IR edit.
#[derive(Debug)]
enum Mutation {
    /// Replace the op at `idx` of the root block.
    Replace { idx: usize, op: Op },
    /// Erase the op at `idx` of the root block.
    Erase { idx: usize },
    /// Insert `op` before `idx` of the root block.
    InsertBefore { idx: usize, op: Op },
    /// Rewrite every use of `from` (function-wide) to `to`.
    Rauw { from: Value, to: Value },
    /// A module-level symbol changed; refresh the symbol table.
    SymbolChanged { name: String },
}

/// The handle a [`RewritePattern`] reads and mutates through.
///
/// Reads ([`op`](Rewriter::op), [`block`](Rewriter::block),
/// [`find_def`](Rewriter::find_def), [`use_count`](Rewriter::use_count))
/// observe the pre-firing IR; mutations ([`replace_op`](Rewriter::replace_op),
/// [`erase_op`](Rewriter::erase_op),
/// [`insert_before`](Rewriter::insert_before),
/// [`replace_all_uses`](Rewriter::replace_all_uses)) are queued and applied
/// after the pattern returns `true`, and the driver uses the queued record
/// to requeue exactly the changed def-use neighborhood. Structural edits
/// address ops by their **pre-firing index in the root block**; later
/// queued edits need not account for shifts caused by earlier ones.
///
/// # Example
///
/// ```
/// use asdf_ir::rewrite::{Rewriter, RewritePattern};
/// use asdf_ir::OpKind;
///
/// /// Erases `fadd(x, x)` when its result is unused — demonstrating the
/// /// read-then-mutate discipline.
/// struct DropDeadSelfAdd;
///
/// impl RewritePattern for DropDeadSelfAdd {
///     fn name(&self) -> &'static str {
///         "drop-dead-self-add"
///     }
///
///     fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
///         let op = rw.op();
///         let is_self_add = matches!(op.kind, OpKind::FAdd) && op.operands[0] == op.operands[1];
///         let result = op.results[0];
///         if !is_self_add || rw.use_count(result) != 0 {
///             return false;
///         }
///         rw.erase_root();
///         true
///     }
/// }
/// ```
pub struct Rewriter<'a> {
    func: &'a mut Func,
    index: Option<&'a FuncIndex>,
    symbols: &'a SymbolTable,
    path: &'a BlockPath,
    root_idx: usize,
    log: Vec<Mutation>,
}

impl<'a> Rewriter<'a> {
    fn new(
        func: &'a mut Func,
        index: Option<&'a FuncIndex>,
        symbols: &'a SymbolTable,
        path: &'a BlockPath,
        root_idx: usize,
    ) -> Self {
        Rewriter { func, index, symbols, path, root_idx, log: Vec::new() }
    }

    fn assert_clean(&self) {
        debug_assert!(
            self.log.is_empty(),
            "Rewriter reads must precede mutations: queued edits are only \
             applied after the pattern returns, so a read here would observe \
             stale IR"
        );
    }

    // ----- reads (pre-firing IR) -----

    /// The op under consideration (the worklist root).
    pub fn op(&self) -> &Op {
        self.assert_clean();
        &self.block().ops[self.root_idx]
    }

    /// The root op's index within [`Rewriter::block`].
    pub fn root_idx(&self) -> usize {
        self.root_idx
    }

    /// The block containing the root op.
    pub fn block(&self) -> &Block {
        self.assert_clean();
        self.func.block_at(self.path)
    }

    /// The function being rewritten.
    pub fn func(&self) -> &Func {
        self.assert_clean();
        self.func
    }

    /// The type of an SSA value.
    pub fn value_type(&self, v: Value) -> &Type {
        self.func.value_type(v)
    }

    /// Module-level symbol signatures.
    pub fn symbols(&self) -> &SymbolTable {
        self.symbols
    }

    /// The defining op of `v` within the root block, searching backwards
    /// from the root: `(op index, result position)`.
    pub fn find_def(&self, v: Value) -> Option<(usize, usize)> {
        self.assert_clean();
        let block = self.func.block_at(self.path);
        for i in (0..self.root_idx).rev() {
            if let Some(pos) = block.ops[i].results.iter().position(|r| *r == v) {
                return Some((i, pos));
            }
        }
        None
    }

    /// Function-wide use count of `v` (operand uses, including nested
    /// regions). O(1) under the worklist driver's index; a function scan
    /// under the rescan reference driver.
    pub fn use_count(&self, v: Value) -> usize {
        self.assert_clean();
        match self.index {
            Some(index) => index.use_count(v),
            None => self.func.use_count(v),
        }
    }

    // ----- mutations (queued) -----

    /// Allocates a fresh SSA value (immediately; values are arena-indexed
    /// and allocation does not disturb reads).
    pub fn new_value(&mut self, ty: Type) -> Value {
        self.func.new_value(ty)
    }

    /// Queues replacement of the op at pre-firing index `idx` of the root
    /// block.
    pub fn replace_op(&mut self, idx: usize, op: Op) {
        self.log.push(Mutation::Replace { idx, op });
    }

    /// Queues replacement of the root op.
    pub fn replace_root(&mut self, op: Op) {
        self.replace_op(self.root_idx, op);
    }

    /// Queues erasure of the op at pre-firing index `idx` of the root
    /// block. Its results must be dead (or rewired via
    /// [`Rewriter::replace_all_uses`]) once all queued edits apply.
    pub fn erase_op(&mut self, idx: usize) {
        self.log.push(Mutation::Erase { idx });
    }

    /// Queues erasure of the root op.
    pub fn erase_root(&mut self) {
        self.erase_op(self.root_idx);
    }

    /// Queues insertion of `op` before pre-firing index `idx` of the root
    /// block.
    pub fn insert_before(&mut self, idx: usize, op: Op) {
        self.log.push(Mutation::InsertBefore { idx, op });
    }

    /// Queues a function-wide rewrite of every use of `from` to `to`
    /// (applied after all structural edits).
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        self.log.push(Mutation::Rauw { from, to });
    }

    /// Notifies the driver that the pattern changed the module-level
    /// symbol `name` (through some side channel), so the shared
    /// [`SymbolTable`] is refreshed incrementally instead of rebuilt.
    pub fn notify_symbol_changed(&mut self, name: &str) {
        self.log.push(Mutation::SymbolChanged { name: name.to_string() });
    }

    fn has_mutations(&self) -> bool {
        !self.log.is_empty()
    }

    fn into_log(self) -> Vec<Mutation> {
        self.log
    }
}

// ---------------------------------------------------------------------
// The incremental function index
// ---------------------------------------------------------------------

type SlotId = usize;
type BlockId = usize;

#[derive(Debug)]
struct SlotData {
    live: bool,
    block: BlockId,
    pos: usize,
    /// Nested blocks of this (region-bearing) op: `((region, block), id)`.
    children: Vec<((usize, usize), BlockId)>,
}

#[derive(Debug)]
struct BlockData {
    live: bool,
    /// `(owning op slot, region index, block index)`; `None` for the entry
    /// block.
    parent: Option<(SlotId, usize, usize)>,
    /// Slot ids parallel to the block's ops.
    slots: Vec<SlotId>,
}

/// An incrementally maintained def/use/position index over one function,
/// giving the worklist driver stable op identities (slots), O(1) def and
/// user lookups, and O(1) use counts. All mutations flow through
/// [`apply_mutations`], which keeps the index in sync without rescanning
/// the function.
#[derive(Debug)]
struct FuncIndex {
    slots: Vec<SlotData>,
    blocks: Vec<BlockData>,
    /// Defining slot by value index (`None`: block argument or undefined).
    def: Vec<Option<SlotId>>,
    /// Using slots by value index, one entry per use (so `len` is the use
    /// count).
    users: Vec<Vec<SlotId>>,
}

impl FuncIndex {
    fn build(func: &Func) -> FuncIndex {
        let mut index = FuncIndex {
            slots: Vec::new(),
            blocks: Vec::new(),
            def: vec![None; func.num_values()],
            users: vec![Vec::new(); func.num_values()],
        };
        index.index_block(&func.body, None);
        index
    }

    fn grow(&mut self, func: &Func) {
        let n = func.num_values();
        if self.def.len() < n {
            self.def.resize(n, None);
        }
        if self.users.len() < n {
            self.users.resize_with(n, Vec::new);
        }
    }

    fn index_block(&mut self, block: &Block, parent: Option<(SlotId, usize, usize)>) -> BlockId {
        let bid = self.blocks.len();
        self.blocks.push(BlockData { live: true, parent, slots: Vec::new() });
        for (pos, op) in block.ops.iter().enumerate() {
            let slot = self.index_op(op, bid, pos);
            self.blocks[bid].slots.push(slot);
        }
        bid
    }

    fn index_op(&mut self, op: &Op, block: BlockId, pos: usize) -> SlotId {
        let slot = self.slots.len();
        self.slots.push(SlotData { live: true, block, pos, children: Vec::new() });
        for &v in &op.operands {
            self.users[v.index()].push(slot);
        }
        for &r in &op.results {
            self.def[r.index()] = Some(slot);
        }
        for (ri, region) in op.regions.iter().enumerate() {
            for (bi, nested) in region.blocks.iter().enumerate() {
                let child = self.index_block(nested, Some((slot, ri, bi)));
                self.slots[slot].children.push(((ri, bi), child));
            }
        }
        slot
    }

    fn unindex_op(&mut self, op: &Op, slot: SlotId) {
        self.slots[slot].live = false;
        for &v in &op.operands {
            self.users[v.index()].retain(|&s| s != slot);
        }
        for &r in &op.results {
            if self.def[r.index()] == Some(slot) {
                self.def[r.index()] = None;
            }
        }
        let children = std::mem::take(&mut self.slots[slot].children);
        for ((ri, bi), child) in children {
            self.unindex_block(&op.regions[ri].blocks[bi], child);
        }
    }

    fn unindex_block(&mut self, block: &Block, bid: BlockId) {
        self.blocks[bid].live = false;
        let slots = std::mem::take(&mut self.blocks[bid].slots);
        for (pos, slot) in slots.into_iter().enumerate() {
            self.unindex_op(&block.ops[pos], slot);
        }
    }

    fn use_count(&self, v: Value) -> usize {
        self.users.get(v.index()).map(Vec::len).unwrap_or(0)
    }

    fn def_slot(&self, v: Value) -> Option<SlotId> {
        self.def.get(v.index()).copied().flatten()
    }

    /// The path of a block, reconstructed from maintained positions.
    fn block_path(&self, bid: BlockId) -> BlockPath {
        let mut rev = Vec::new();
        let mut current = bid;
        while let Some((slot, ri, bi)) = self.blocks[current].parent {
            rev.push((self.slots[slot].pos, ri, bi));
            current = self.slots[slot].block;
        }
        rev.reverse();
        rev
    }

    fn block_id_at(&self, path: &BlockPath) -> BlockId {
        let mut current: BlockId = 0;
        for &(op_idx, ri, bi) in path {
            let slot = self.blocks[current].slots[op_idx];
            current = self.slots[slot]
                .children
                .iter()
                .find(|((r, b), _)| *r == ri && *b == bi)
                .expect("indexed child block")
                .1;
        }
        current
    }

    fn location(&self, slot: SlotId) -> (BlockPath, usize) {
        (self.block_path(self.slots[slot].block), self.slots[slot].pos)
    }

    fn op<'f>(&self, func: &'f Func, slot: SlotId) -> &'f Op {
        let (path, pos) = self.location(slot);
        &func.block_at(&path).ops[pos]
    }

    /// Index-maintained RAUW: rewrites the operands of exactly the ops in
    /// `from`'s user list (O(uses), not a function scan).
    fn replace_all_uses(&mut self, func: &mut Func, from: Value, to: Value) {
        let mut slots = std::mem::take(&mut self.users[from.index()]);
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            if !self.slots[slot].live {
                continue;
            }
            let (path, pos) = self.location(slot);
            let op = &mut func.block_at_mut(&path).ops[pos];
            let mut moved = 0usize;
            for operand in &mut op.operands {
                if *operand == from {
                    *operand = to;
                    moved += 1;
                }
            }
            debug_assert!(moved > 0, "user list entry without a matching operand");
            self.users[to.index()].extend(std::iter::repeat_n(slot, moved));
        }
    }
}

// ---------------------------------------------------------------------
// Applying queued mutations
// ---------------------------------------------------------------------

/// What a firing changed, as reported by the [`Rewriter`] log.
#[derive(Debug, Default)]
struct AppliedChange {
    /// Values whose def or users changed — the seeds of the neighborhood
    /// requeue.
    touched: Vec<Value>,
    /// Slots of created (inserted or replacement) ops, including ops
    /// inside their regions.
    created: Vec<SlotId>,
    /// Symbols the pattern reported as changed.
    symbols_changed: Vec<String>,
}

/// Applies a queued mutation log to `func` (root block at `path`),
/// keeping `index` in sync when present. Edits address pre-firing
/// indices; application order is replaces, erases, inserts, then RAUWs.
fn apply_mutations(
    func: &mut Func,
    path: &BlockPath,
    log: Vec<Mutation>,
    mut index: Option<&mut FuncIndex>,
) -> AppliedChange {
    let mut change = AppliedChange::default();
    let mut replaces: Vec<(usize, Op)> = Vec::new();
    let mut erases: Vec<usize> = Vec::new();
    let mut inserts: Vec<(usize, Op)> = Vec::new();
    let mut rauws: Vec<(Value, Value)> = Vec::new();
    for mutation in log {
        match mutation {
            Mutation::Replace { idx, op } => replaces.push((idx, op)),
            Mutation::Erase { idx } => erases.push(idx),
            Mutation::InsertBefore { idx, op } => inserts.push((idx, op)),
            Mutation::Rauw { from, to } => rauws.push((from, to)),
            Mutation::SymbolChanged { name } => change.symbols_changed.push(name),
        }
    }
    erases.sort_unstable();
    erases.dedup();
    debug_assert!(
        replaces.iter().all(|(idx, _)| !erases.contains(idx)),
        "an op may be replaced or erased in one firing, not both"
    );

    if let Some(ix) = index.as_deref_mut() {
        ix.grow(func);
    }
    let bid = index.as_deref().map(|ix| ix.block_id_at(path));

    // 1. Replaces, at unshifted indices.
    for (idx, new_op) in replaces {
        change.touched.extend(new_op.operands.iter().chain(new_op.results.iter()));
        if let (Some(ix), Some(bid)) = (index.as_deref_mut(), bid) {
            let old_slot = ix.blocks[bid].slots[idx];
            // Clone-free would need simultaneous &Func and &mut index;
            // replaced ops are small (region-bearing replacements already
            // clone in the pattern).
            let old = func.block_at(path).ops[idx].clone();
            change.touched.extend(old.operands.iter().chain(old.results.iter()));
            ix.unindex_op(&old, old_slot);
            // Everything index_op allocates — the op itself plus every op
            // inside its regions — is newly created and must be requeued.
            let first_new = ix.slots.len();
            let new_slot = ix.index_op(&new_op, bid, idx);
            ix.blocks[bid].slots[idx] = new_slot;
            change.created.extend(first_new..ix.slots.len());
        } else {
            let old = &func.block_at(path).ops[idx];
            change.touched.extend(old.operands.iter().chain(old.results.iter()));
        }
        func.block_at_mut(path).ops[idx] = new_op;
    }

    // 2. Erases, descending so indices stay valid.
    for &idx in erases.iter().rev() {
        let old = func.block_at_mut(path).ops.remove(idx);
        change.touched.extend(old.operands.iter().chain(old.results.iter()));
        if let (Some(ix), Some(bid)) = (index.as_deref_mut(), bid) {
            let slot = ix.blocks[bid].slots.remove(idx);
            ix.unindex_op(&old, slot);
            for i in idx..ix.blocks[bid].slots.len() {
                let s = ix.blocks[bid].slots[i];
                ix.slots[s].pos -= 1;
            }
        }
    }

    // 3. Inserts, ascending, with indices adjusted for the erases and for
    //    previously applied inserts.
    inserts.sort_by_key(|(idx, _)| *idx);
    for (applied_inserts, (orig_idx, op)) in inserts.into_iter().enumerate() {
        let shift = erases.iter().filter(|&&e| e < orig_idx).count();
        let eff = orig_idx - shift + applied_inserts;
        change.touched.extend(op.operands.iter().chain(op.results.iter()));
        if let (Some(ix), Some(bid)) = (index.as_deref_mut(), bid) {
            for i in eff..ix.blocks[bid].slots.len() {
                let s = ix.blocks[bid].slots[i];
                ix.slots[s].pos += 1;
            }
            let first_new = ix.slots.len();
            let slot = ix.index_op(&op, bid, eff);
            ix.blocks[bid].slots.insert(eff, slot);
            change.created.extend(first_new..ix.slots.len());
        }
        func.block_at_mut(path).ops.insert(eff, op);
    }

    // 4. RAUWs, in queued order.
    for (from, to) in rauws {
        if from == to {
            continue;
        }
        change.touched.push(from);
        change.touched.push(to);
        match index.as_deref_mut() {
            Some(ix) => ix.replace_all_uses(func, from, to),
            None => func.replace_all_uses(from, to),
        }
    }

    change
}

// ---------------------------------------------------------------------
// The worklist driver
// ---------------------------------------------------------------------

/// The worklist-driven greedy pattern engine.
///
/// Seeds every op of every function, pops in program order, applies the
/// best-benefit matching pattern, and requeues only the def-use
/// neighborhood the [`Rewriter`] reported — so optimization cost scales
/// with the number of firings, not firings × function size like the
/// retained [`RescanDriver`]. Classical dead-code elimination runs on the
/// same worklist (a popped pure op whose results are all unused is
/// erased), replacing the separate DCE sweeps of the old driver.
#[derive(Default)]
pub struct GreedyRewriteDriver {
    patterns: PatternSet,
    config: RewriteConfig,
    /// Statistics from the last [`run`](GreedyRewriteDriver::run).
    pub stats: RewriteStats,
}

impl GreedyRewriteDriver {
    /// An empty driver (only DCE) with the default configuration.
    pub fn new() -> Self {
        GreedyRewriteDriver::default()
    }

    /// A driver over `patterns` with the default configuration.
    pub fn from_patterns(patterns: PatternSet) -> Self {
        GreedyRewriteDriver { patterns, ..GreedyRewriteDriver::default() }
    }

    /// A driver over `patterns` with an explicit configuration.
    pub fn with_config(patterns: PatternSet, config: RewriteConfig) -> Self {
        GreedyRewriteDriver { patterns, config, stats: RewriteStats::default() }
    }

    /// Registers a pattern.
    pub fn add_pattern(&mut self, pattern: Box<dyn RewritePattern>) -> &mut Self {
        self.patterns.add(pattern);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &RewriteConfig {
        &self.config
    }

    /// Replaces the configuration.
    pub fn set_config(&mut self, config: RewriteConfig) {
        self.config = config;
    }

    /// Runs every function of `module` to its rewrite fixpoint; returns
    /// total pattern firings. Builds a fresh [`SymbolTable`] for the run.
    ///
    /// # Panics
    ///
    /// Panics when [`RewriteConfig::max_fires`] is exceeded, which
    /// indicates a non-terminating (cyclic) pattern set.
    pub fn run(&mut self, module: &mut Module) -> usize {
        let mut symbols = SymbolTable::default();
        self.run_with_symbols(module, &mut symbols)
    }

    /// [`run`](GreedyRewriteDriver::run) against a caller-held symbol
    /// table, reconciled incrementally instead of rebuilt — the path pass
    /// pipelines use so repeated canonicalize rounds do not re-snapshot
    /// unchanged signatures.
    ///
    /// # Panics
    ///
    /// Panics when [`RewriteConfig::max_fires`] is exceeded.
    pub fn run_with_symbols(&mut self, module: &mut Module, symbols: &mut SymbolTable) -> usize {
        symbols.reconcile(module);
        self.stats = RewriteStats::default();
        let mut total = 0usize;
        let mut notes: Vec<String> = Vec::new();
        // Patterns are intra-function and signatures never change mid-run,
        // so one pass over the functions reaches the module fixpoint; the
        // per-function worklist reaches the function fixpoint.
        for name in module.func_names() {
            let func = module.func_mut(&name).expect("name snapshot is stable");
            total += self.run_func(func, &name, symbols, &mut notes);
            for note in notes.drain(..) {
                symbols.update_symbol(module, &note);
            }
        }
        total
    }

    fn run_func(
        &mut self,
        func: &mut Func,
        func_name: &str,
        symbols: &SymbolTable,
        symbol_notes: &mut Vec<String>,
    ) -> usize {
        let mut index = FuncIndex::build(func);
        // Seed in reverse so LIFO pops visit ops in program order.
        let mut worklist: Vec<SlotId> = (0..index.slots.len()).rev().collect();
        let mut in_list: Vec<bool> = vec![true; index.slots.len()];
        let mut scratch = NeighborhoodScratch::default();
        let mut fires = 0usize;

        while let Some(slot) = worklist.pop() {
            in_list[slot] = false;
            if !index.slots[slot].live {
                continue;
            }
            let (path, idx) = index.location(slot);

            // Patterns first (matching the rescan reference's ordering),
            // best benefit wins; then integrated DCE.
            let mut fired = false;
            if !self.config.fuel.is_exhausted() {
                for pattern in self.patterns.iter() {
                    let mut rw = Rewriter::new(func, Some(&index), symbols, &path, idx);
                    if pattern.match_and_rewrite(&mut rw) {
                        debug_assert!(
                            rw.has_mutations(),
                            "pattern '{}' reported a match without queuing edits",
                            pattern.name()
                        );
                        if !self.config.fuel.consume() {
                            break;
                        }
                        let log = rw.into_log();
                        if self.config.trace {
                            // Preorder block number, matching the rescan
                            // driver's coordinates (O(func), trace-only).
                            let block_no = func
                                .block_paths()
                                .iter()
                                .position(|p| *p == path)
                                .unwrap_or(usize::MAX);
                            let line =
                                format!("{} @ {}:{}:{}", pattern.name(), func_name, block_no, idx);
                            eprintln!("[rewrite] {line}");
                            self.stats.trace.push(line);
                        }
                        let change = apply_mutations(func, &path, log, Some(&mut index));
                        *self.stats.fired.entry(pattern.name()).or_default() += 1;
                        self.stats.fires += 1;
                        fires += 1;
                        assert!(
                            self.stats.fires <= self.config.max_fires,
                            "rewrite driver did not reach a fixpoint after {} firings \
                             (cyclic pattern set?)",
                            self.config.max_fires
                        );
                        symbol_notes.extend(change.symbols_changed);
                        if in_list.len() < index.slots.len() {
                            in_list.resize(index.slots.len(), false);
                        }
                        for &s in &change.created {
                            if !in_list[s] {
                                in_list[s] = true;
                                worklist.push(s);
                            }
                        }
                        enqueue_neighborhood(
                            self.config.neighborhood_radius,
                            func,
                            &index,
                            &change.touched,
                            &mut worklist,
                            &mut in_list,
                            &mut scratch,
                        );
                        fired = true;
                        break;
                    }
                    debug_assert!(
                        !rw.has_mutations(),
                        "pattern '{}' queued edits but reported no match",
                        pattern.name()
                    );
                }
            }
            if fired {
                continue;
            }

            // Integrated DCE: a pure classical op whose results are all
            // unused. (Quantum/linear ops are never dead: an unused linear
            // result is a verifier error, not dead code.)
            let op = &func.block_at(&path).ops[idx];
            if op.kind.is_pure_classical()
                && !op.results.is_empty()
                && op.results.iter().all(|r| index.use_count(*r) == 0)
            {
                let change =
                    apply_mutations(func, &path, vec![Mutation::Erase { idx }], Some(&mut index));
                self.stats.dce_erased += 1;
                enqueue_neighborhood(
                    self.config.neighborhood_radius,
                    func,
                    &index,
                    &change.touched,
                    &mut worklist,
                    &mut in_list,
                    &mut scratch,
                );
            }
        }
        fires
    }
}

/// Reusable dense marker buffers for the neighborhood walk: epoch-stamped
/// vectors instead of per-firing hash sets.
#[derive(Default)]
struct NeighborhoodScratch {
    epoch: u32,
    slot_mark: Vec<u32>,
    value_mark: Vec<u32>,
    frontier: Vec<Value>,
    next: Vec<Value>,
    adjacent: Vec<SlotId>,
}

/// Requeues the def-use neighborhood of the touched values, out to
/// `radius` hops — enough for every registered pattern's lookaround to
/// observe the change.
#[allow(clippy::too_many_arguments)]
fn enqueue_neighborhood(
    radius: usize,
    func: &Func,
    index: &FuncIndex,
    touched: &[Value],
    worklist: &mut Vec<SlotId>,
    in_list: &mut Vec<bool>,
    scratch: &mut NeighborhoodScratch,
) {
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    if scratch.slot_mark.len() < index.slots.len() {
        scratch.slot_mark.resize(index.slots.len(), 0);
    }
    if scratch.value_mark.len() < index.users.len() {
        scratch.value_mark.resize(index.users.len(), 0);
    }
    if in_list.len() < index.slots.len() {
        in_list.resize(index.slots.len(), false);
    }

    scratch.frontier.clear();
    for &v in touched {
        if v.index() < scratch.value_mark.len() && scratch.value_mark[v.index()] != epoch {
            scratch.value_mark[v.index()] = epoch;
            scratch.frontier.push(v);
        }
    }
    for depth in 0..radius {
        scratch.adjacent.clear();
        for &v in &scratch.frontier {
            if let Some(s) = index.def_slot(v) {
                if index.slots[s].live && scratch.slot_mark[s] != epoch {
                    scratch.slot_mark[s] = epoch;
                    scratch.adjacent.push(s);
                }
            }
            if v.index() < index.users.len() {
                for &s in &index.users[v.index()] {
                    if index.slots[s].live && scratch.slot_mark[s] != epoch {
                        scratch.slot_mark[s] = epoch;
                        scratch.adjacent.push(s);
                    }
                }
            }
        }
        scratch.next.clear();
        for &s in &scratch.adjacent {
            if !in_list[s] {
                in_list[s] = true;
                worklist.push(s);
            }
            if depth + 1 < radius {
                let op = index.op(func, s);
                for &v in op.operands.iter().chain(op.results.iter()) {
                    if v.index() < scratch.value_mark.len()
                        && scratch.value_mark[v.index()] != epoch
                    {
                        scratch.value_mark[v.index()] = epoch;
                        scratch.next.push(v);
                    }
                }
            }
        }
        if scratch.next.is_empty() {
            break;
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
}

// ---------------------------------------------------------------------
// The rescan reference driver
// ---------------------------------------------------------------------

/// The pre-worklist driver, retained as a differential reference: after
/// every firing it rescans the whole module from op 0. Same patterns,
/// same [`Rewriter`] API, same interleaved DCE — only the scheduling
/// differs, which is what the `rewrite_driver` bench and the equivalence
/// proptests measure.
#[derive(Default)]
pub struct RescanDriver {
    patterns: PatternSet,
    config: RewriteConfig,
    /// Statistics from the last [`run`](RescanDriver::run).
    pub stats: RewriteStats,
}

impl RescanDriver {
    /// A driver over `patterns` with the default configuration.
    pub fn from_patterns(patterns: PatternSet) -> Self {
        RescanDriver { patterns, ..RescanDriver::default() }
    }

    /// A driver over `patterns` with an explicit configuration.
    pub fn with_config(patterns: PatternSet, config: RewriteConfig) -> Self {
        RescanDriver { patterns, config, stats: RewriteStats::default() }
    }

    /// Registers a pattern.
    pub fn add_pattern(&mut self, pattern: Box<dyn RewritePattern>) -> &mut Self {
        self.patterns.add(pattern);
        self
    }

    /// Runs to a fixpoint by rescanning after every firing; returns total
    /// pattern firings.
    ///
    /// # Panics
    ///
    /// Panics if the module keeps changing beyond a large round bound,
    /// which indicates a non-terminating rewrite pair.
    pub fn run(&mut self, module: &mut Module) -> usize {
        self.stats = RewriteStats::default();
        let symbols = SymbolTable::from_module(module);
        let mut total = 0usize;
        for round in 0.. {
            assert!(round < 10_000, "canonicalization did not reach a fixpoint");
            let mut changed = false;
            for name in module.func_names() {
                let func = module.func_mut(&name).expect("name snapshot is stable");
                while self.rewrite_once(func, &name, &symbols) {
                    changed = true;
                    total += 1;
                }
                let erased = dce_func(func);
                if erased > 0 {
                    self.stats.dce_erased += erased;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        total
    }

    /// Scans the function and fires at most one pattern.
    fn rewrite_once(&mut self, func: &mut Func, func_name: &str, symbols: &SymbolTable) -> bool {
        if self.config.fuel.is_exhausted() {
            return false;
        }
        for (block_no, path) in func.block_paths().into_iter().enumerate() {
            let len = func.block_at(&path).ops.len();
            for op_idx in 0..len {
                for pattern in self.patterns.iter() {
                    let mut rw = Rewriter::new(func, None, symbols, &path, op_idx);
                    if pattern.match_and_rewrite(&mut rw) {
                        if !self.config.fuel.consume() {
                            return false;
                        }
                        if self.config.trace {
                            let line = format!(
                                "{} @ {}:{}:{}",
                                pattern.name(),
                                func_name,
                                block_no,
                                op_idx
                            );
                            eprintln!("[rewrite] {line}");
                            self.stats.trace.push(line);
                        }
                        let log = rw.into_log();
                        apply_mutations(func, &path, log, None);
                        *self.stats.fired.entry(pattern.name()).or_default() += 1;
                        self.stats.fires += 1;
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Removes pure classical ops whose results are all unused, iterating
/// until stable; returns the number of ops removed. Quantum (linear) ops
/// are never removed: an unused linear result is a verifier error, not
/// dead code. (The worklist driver folds this into its worklist; this
/// standalone sweep serves the rescan reference and direct callers.)
pub fn dce_func(func: &mut Func) -> usize {
    let mut erased = 0usize;
    loop {
        // Count uses of every value across the whole function.
        let mut use_counts = vec![0usize; func.num_values()];
        count_uses(&func.body, &mut use_counts);

        // Remove from at most one block per round: deleting ops shifts op
        // indices, which invalidates the paths of nested blocks.
        let mut removed = 0usize;
        for path in func.block_paths() {
            let block = func.block_at(&path);
            let dead: Vec<usize> = block
                .ops
                .iter()
                .enumerate()
                .filter(|(_, op)| {
                    op.kind.is_pure_classical()
                        && !op.results.is_empty()
                        && op.results.iter().all(|r| use_counts[r.index()] == 0)
                })
                .map(|(i, _)| i)
                .collect();
            if !dead.is_empty() {
                let block = func.block_at_mut(&path);
                for &i in dead.iter().rev() {
                    block.ops.remove(i);
                }
                removed = dead.len();
                break;
            }
        }
        if removed == 0 {
            return erased;
        }
        erased += removed;
    }
}

fn count_uses(block: &crate::block::Block, counts: &mut [usize]) {
    for op in &block.ops {
        for v in &op.operands {
            counts[v.index()] += 1;
        }
        for region in &op.regions {
            for nested in &region.blocks {
                count_uses(nested, counts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncBuilder, Visibility};
    use crate::op::OpKind;
    use crate::types::Type;

    /// A toy pattern: folds `fadd(const a, const b)` into a constant.
    struct FoldFAdd;

    impl RewritePattern for FoldFAdd {
        fn name(&self) -> &'static str {
            "fold-fadd"
        }

        fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
            let op = rw.op();
            if !matches!(op.kind, OpKind::FAdd) {
                return false;
            }
            let (lhs, rhs, result) = (op.operands[0], op.operands[1], op.results[0]);
            let constant = |rw: &Rewriter<'_>, v: Value| -> Option<f64> {
                let (idx, _) = rw.find_def(v)?;
                match rw.block().ops[idx].kind {
                    OpKind::ConstF64 { value } => Some(value),
                    _ => None,
                }
            };
            let (Some(a), Some(b)) = (constant(rw, lhs), constant(rw, rhs)) else {
                return false;
            };
            rw.replace_root(Op::new(OpKind::ConstF64 { value: a + b }, vec![], vec![result]));
            true
        }
    }

    fn fadd_module() -> Module {
        let mut b = FuncBuilder::new(
            "f",
            FuncType::new(vec![], vec![Type::F64], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let a = bb.push(OpKind::ConstF64 { value: 1.5 }, vec![], vec![Type::F64]);
        let c = bb.push(OpKind::ConstF64 { value: 2.5 }, vec![], vec![Type::F64]);
        let sum = bb.push(OpKind::FAdd, vec![a[0], c[0]], vec![Type::F64]);
        bb.push(OpKind::Return, vec![sum[0]], vec![]);
        let mut module = Module::new();
        module.add_func(b.finish());
        module
    }

    #[test]
    fn worklist_folds_and_dces() {
        let mut module = fadd_module();
        let mut driver = GreedyRewriteDriver::new();
        driver.add_pattern(Box::new(FoldFAdd));
        let fired = driver.run(&mut module);
        assert_eq!(fired, 1);
        assert_eq!(driver.stats.fired.get("fold-fadd"), Some(&1));
        assert_eq!(driver.stats.dce_erased, 2, "both source constants died");

        let func = module.func("f").unwrap();
        assert_eq!(func.body.ops.len(), 2);
        assert!(
            matches!(func.body.ops[0].kind, OpKind::ConstF64 { value } if (value - 4.0).abs() < 1e-12)
        );
        crate::verify::verify_module(&module).unwrap();
    }

    #[test]
    fn rescan_reference_reaches_the_same_normal_form() {
        let mut wl = fadd_module();
        let mut rs = fadd_module();
        let mut worklist = GreedyRewriteDriver::new();
        worklist.add_pattern(Box::new(FoldFAdd));
        let mut rescan = RescanDriver::default();
        rescan.add_pattern(Box::new(FoldFAdd));
        assert_eq!(worklist.run(&mut wl), rescan.run(&mut rs));
        assert_eq!(wl.to_string(), rs.to_string());
        assert_eq!(worklist.stats.fired, rescan.stats.fired);
    }

    #[test]
    fn worklist_rewrites_inside_nested_regions() {
        let mut b = FuncBuilder::new(
            "g",
            FuncType::new(vec![Type::I1], vec![Type::F64], false),
            Visibility::Public,
        );
        let cond = b.args()[0];
        let mut bb = b.block();
        let then_block = bb.subblock(vec![], |sb| {
            let a = sb.push(OpKind::ConstF64 { value: 1.0 }, vec![], vec![Type::F64]);
            let c = sb.push(OpKind::ConstF64 { value: 2.0 }, vec![], vec![Type::F64]);
            let s = sb.push(OpKind::FAdd, vec![a[0], c[0]], vec![Type::F64]);
            sb.push(OpKind::Yield, vec![s[0]], vec![]);
        });
        let else_block = bb.subblock(vec![], |sb| {
            let a = sb.push(OpKind::ConstF64 { value: 3.0 }, vec![], vec![Type::F64]);
            sb.push(OpKind::Yield, vec![a[0]], vec![]);
        });
        let result = bb.push_with_regions(
            OpKind::ScfIf,
            vec![cond],
            vec![Type::F64],
            vec![
                crate::block::Region::single(then_block),
                crate::block::Region::single(else_block),
            ],
        );
        bb.push(OpKind::Return, vec![result[0]], vec![]);
        let mut module = Module::new();
        module.add_func(b.finish());

        let mut driver = GreedyRewriteDriver::new();
        driver.add_pattern(Box::new(FoldFAdd));
        assert_eq!(driver.run(&mut module), 1, "the nested fadd folds");
        crate::verify::verify_module(&module).unwrap();
        let func = module.func("g").unwrap();
        let then = &func.body.ops[0].regions[0].blocks[0];
        assert_eq!(then.ops.len(), 2, "folded const + yield:\n{func}");
    }

    /// Rewrites that cascade: P-gate-style chained folds where each fold
    /// creates the next opportunity (here: repeated fadd folding over a
    /// left-leaning sum tree).
    #[test]
    fn cascaded_opportunities_converge() {
        let mut b = FuncBuilder::new(
            "h",
            FuncType::new(vec![], vec![Type::F64], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let mut acc = bb.push(OpKind::ConstF64 { value: 1.0 }, vec![], vec![Type::F64])[0];
        for i in 0..10 {
            let c = bb.push(OpKind::ConstF64 { value: i as f64 }, vec![], vec![Type::F64]);
            acc = bb.push(OpKind::FAdd, vec![acc, c[0]], vec![Type::F64])[0];
        }
        bb.push(OpKind::Return, vec![acc], vec![]);
        let mut module = Module::new();
        module.add_func(b.finish());

        let mut driver = GreedyRewriteDriver::new();
        driver.add_pattern(Box::new(FoldFAdd));
        assert_eq!(driver.run(&mut module), 10, "every fold enables the next");
        let func = module.func("h").unwrap();
        assert_eq!(func.body.ops.len(), 2, "one constant + return:\n{func}");
        assert!(
            matches!(func.body.ops[0].kind, OpKind::ConstF64 { value } if (value - 46.0).abs() < 1e-9)
        );
    }

    /// Two patterns that undo each other: the driver must hit its firing
    /// bound instead of spinning forever.
    struct FlipConst {
        from: f64,
        to: f64,
        label: &'static str,
    }

    impl RewritePattern for FlipConst {
        fn name(&self) -> &'static str {
            self.label
        }

        fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
            let op = rw.op();
            let OpKind::ConstF64 { value } = op.kind else { return false };
            if (value - self.from).abs() > 1e-9 {
                return false;
            }
            let result = op.results[0];
            rw.replace_root(Op::new(OpKind::ConstF64 { value: self.to }, vec![], vec![result]));
            true
        }
    }

    #[test]
    #[should_panic(expected = "did not reach a fixpoint")]
    fn cyclic_pattern_pair_hits_the_firing_bound() {
        let mut module = fadd_module();
        let config = RewriteConfig::default().with_max_fires(64);
        let mut set = PatternSet::new();
        set.add(Box::new(FlipConst { from: 1.5, to: 9.0, label: "flip-up" }));
        set.add(Box::new(FlipConst { from: 9.0, to: 1.5, label: "flip-down" }));
        let mut driver = GreedyRewriteDriver::with_config(set, config);
        driver.run(&mut module);
    }

    #[test]
    fn fuel_cuts_off_firings_deterministically() {
        let run_with_fuel = |limit: u64| -> (usize, String) {
            let mut module = fadd_module();
            let config = RewriteConfig::default().with_fuel(Fuel::limited(limit));
            let mut set = PatternSet::new();
            set.add(Box::new(FoldFAdd));
            let mut driver = GreedyRewriteDriver::with_config(set, config);
            let fired = driver.run(&mut module);
            (fired, module.to_string())
        };
        let (f0, m0) = run_with_fuel(0);
        assert_eq!(f0, 0, "no firings with zero fuel");
        let (f1, m1) = run_with_fuel(1);
        assert_eq!(f1, 1);
        // Determinism: the same fuel gives the same module, twice.
        assert_eq!(m0, run_with_fuel(0).1);
        assert_eq!(m1, run_with_fuel(1).1);
        assert_ne!(m0, m1);
    }

    #[test]
    fn fuel_is_shared_across_clones() {
        let fuel = Fuel::limited(3);
        let clone = fuel.clone();
        assert!(fuel.consume());
        assert!(clone.consume());
        assert!(fuel.consume());
        assert!(!clone.consume(), "budget is shared, not per-clone");
        assert!(fuel.is_exhausted());
        assert_eq!(fuel.remaining(), Some(0));
        assert_eq!(Fuel::unlimited().remaining(), None);
    }

    #[test]
    fn higher_benefit_pattern_fires_first() {
        struct TaggedFold {
            label: &'static str,
            benefit: usize,
        }
        impl RewritePattern for TaggedFold {
            fn name(&self) -> &'static str {
                self.label
            }
            fn benefit(&self) -> usize {
                self.benefit
            }
            fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
                let op = rw.op();
                if !matches!(op.kind, OpKind::FAdd) {
                    return false;
                }
                let (operands, result) = (op.operands.clone(), op.results[0]);
                rw.replace_root(Op::new(OpKind::FMul, operands, vec![result]));
                true
            }
        }
        let mut module = fadd_module();
        let mut driver = GreedyRewriteDriver::new();
        driver.add_pattern(Box::new(TaggedFold { label: "low", benefit: 1 }));
        driver.add_pattern(Box::new(TaggedFold { label: "high", benefit: 5 }));
        driver.run(&mut module);
        assert_eq!(driver.stats.fired.get("high"), Some(&1));
        assert_eq!(driver.stats.fired.get("low"), None);
    }

    #[test]
    fn trace_records_firing_locations() {
        let mut module = fadd_module();
        let config = RewriteConfig::default().with_trace(true);
        let mut set = PatternSet::new();
        set.add(Box::new(FoldFAdd));
        let mut driver = GreedyRewriteDriver::with_config(set, config);
        driver.run(&mut module);
        assert_eq!(driver.stats.trace.len(), 1);
        assert_eq!(driver.stats.trace[0], "fold-fadd @ f:0:2");
    }

    /// A pattern using `insert_before`: splits `fadd(a, a)` into
    /// `c = fmul(a, a); fadd -> replaced by fneg(c)` — contrived, but it
    /// exercises insertion through the queued-mutation path.
    struct SplitSelfAdd;

    impl RewritePattern for SplitSelfAdd {
        fn name(&self) -> &'static str {
            "split-self-add"
        }

        fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
            let op = rw.op();
            if !matches!(op.kind, OpKind::FAdd) || op.operands[0] != op.operands[1] {
                return false;
            }
            let (a, result, idx) = (op.operands[0], op.results[0], rw.root_idx());
            let mid = rw.new_value(Type::F64);
            rw.insert_before(idx, Op::new(OpKind::FMul, vec![a, a], vec![mid]));
            rw.replace_root(Op::new(OpKind::FNeg, vec![mid], vec![result]));
            true
        }
    }

    #[test]
    fn insert_before_keeps_index_and_ir_in_sync() {
        let mut b = FuncBuilder::new(
            "s",
            FuncType::new(vec![Type::F64], vec![Type::F64], false),
            Visibility::Public,
        );
        let arg = b.args()[0];
        let mut bb = b.block();
        let sum = bb.push(OpKind::FAdd, vec![arg, arg], vec![Type::F64]);
        bb.push(OpKind::Return, vec![sum[0]], vec![]);
        let mut module = Module::new();
        module.add_func(b.finish());

        let mut driver = GreedyRewriteDriver::new();
        driver.add_pattern(Box::new(SplitSelfAdd));
        assert_eq!(driver.run(&mut module), 1);
        crate::verify::verify_module(&module).unwrap();
        let func = module.func("s").unwrap();
        assert_eq!(func.body.ops.len(), 3);
        assert!(matches!(func.body.ops[0].kind, OpKind::FMul));
        assert!(matches!(func.body.ops[1].kind, OpKind::FNeg));
    }

    /// Replaces `fsub` with an `scf.if` whose regions contain freshly
    /// created, foldable `fadd(const, const)` ops — the worklist must
    /// requeue ops created *inside the regions* of a replacement op.
    struct WrapInIf;

    impl RewritePattern for WrapInIf {
        fn name(&self) -> &'static str {
            "wrap-in-if"
        }

        fn benefit(&self) -> usize {
            5
        }

        fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
            let op = rw.op();
            if !matches!(op.kind, OpKind::FSub) {
                return false;
            }
            let result = op.results[0];
            let cond = rw.func().body.args[0];
            let mut regions = Vec::new();
            for base in [2.0, 3.0] {
                let (a, b, s) =
                    (rw.new_value(Type::F64), rw.new_value(Type::F64), rw.new_value(Type::F64));
                let block = crate::block::Block {
                    args: vec![],
                    ops: vec![
                        Op::new(OpKind::ConstF64 { value: base }, vec![], vec![a]),
                        Op::new(OpKind::ConstF64 { value: base + 1.0 }, vec![], vec![b]),
                        Op::new(OpKind::FAdd, vec![a, b], vec![s]),
                        Op::new(OpKind::Yield, vec![s], vec![]),
                    ],
                };
                regions.push(crate::block::Region::single(block));
            }
            rw.replace_root(Op::with_regions(OpKind::ScfIf, vec![cond], vec![result], regions));
            true
        }
    }

    #[test]
    fn ops_created_inside_replacement_regions_are_requeued() {
        let build = || {
            let mut b = FuncBuilder::new(
                "w",
                FuncType::new(vec![Type::I1], vec![Type::F64], false),
                Visibility::Public,
            );
            let mut bb = b.block();
            let c = bb.push(OpKind::ConstF64 { value: 1.0 }, vec![], vec![Type::F64]);
            let m = bb.push(OpKind::FSub, vec![c[0], c[0]], vec![Type::F64]);
            bb.push(OpKind::Return, vec![m[0]], vec![]);
            let mut module = Module::new();
            module.add_func(b.finish());
            module
        };
        let drive = |module: &mut Module| -> (usize, String) {
            let mut driver = GreedyRewriteDriver::new();
            driver.add_pattern(Box::new(WrapInIf));
            driver.add_pattern(Box::new(FoldFAdd));
            let fires = driver.run(module);
            (fires, module.to_string())
        };
        let mut module = build();
        let (fires, printed) = drive(&mut module);
        assert_eq!(fires, 3, "one wrap + two nested folds in a single run:\n{printed}");
        crate::verify::verify_module(&module).unwrap();

        // And the rescan reference reaches the same normal form.
        let mut rescan_module = build();
        let mut rescan = RescanDriver::default();
        rescan.add_pattern(Box::new(WrapInIf));
        rescan.add_pattern(Box::new(FoldFAdd));
        assert_eq!(rescan.run(&mut rescan_module), fires);
        assert_eq!(rescan_module.to_string(), printed);
    }

    #[test]
    fn symbol_table_reconciles_incrementally() {
        let stub = |name: &str| {
            let mut b =
                FuncBuilder::new(name, FuncType::new(vec![], vec![], false), Visibility::Private);
            b.block().push(OpKind::Return, vec![], vec![]);
            b.finish()
        };
        let mut module = Module::new();
        module.add_func(stub("a"));
        module.add_func(stub("b"));
        let mut table = SymbolTable::from_module(&module);
        assert_eq!(table.len(), 2);
        assert_eq!(table.reconcile(&module), 0, "nothing changed");

        module.remove_func("b");
        module.add_func(stub("c"));
        assert_eq!(table.reconcile(&module), 2, "one removal + one addition");
        assert!(table.signature("b").is_none());
        assert!(table.signature("c").is_some());

        module.remove_func("c");
        assert!(table.update_symbol(&module, "c"), "single-symbol removal");
        assert!(!table.update_symbol(&module, "never-existed"));
        assert!(table.signature("c").is_none());
    }

    #[test]
    fn dce_keeps_used_and_quantum_ops() {
        let mut b = FuncBuilder::new(
            "g",
            FuncType::new(vec![], vec![Type::Qubit], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let _unused = bb.push(OpKind::ConstF64 { value: 0.0 }, vec![], vec![Type::F64]);
        let q = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        bb.push(OpKind::Return, vec![q[0]], vec![]);
        let mut func = b.finish();
        assert_eq!(dce_func(&mut func), 1);
        assert_eq!(func.body.ops.len(), 2, "qalloc and return survive");
    }

    #[test]
    fn env_fuel_limit_parses() {
        // Pure parse path (the env var itself is process-global, so the
        // test only checks the unset default).
        if std::env::var("ASDF_REWRITE_FUEL").is_err() {
            assert_eq!(RewriteConfig::env_fuel_limit(), None);
        }
    }
}
