//! Minimal complex arithmetic (kept in-repo; no external numeric crates).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` parts.
///
/// The layout is `#[repr(C)]` — `re` then `im`, no padding — so the
/// [`crate::simd`] kernels can reinterpret a `[Complex]` slice as the
/// interleaved `[re, im, re, im, ...]` `f64` lanes they vectorize over.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// A complex number from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i theta}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }

    /// Whether both parts are within `eps` of `other`'s.
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() < eps && (self.im - other.im).abs() < eps
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.norm_sqr() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euler() {
        let i = Complex::from_angle(std::f64::consts::FRAC_PI_2);
        assert!(i.approx_eq(Complex::I, 1e-12));
        let minus_one = Complex::from_angle(std::f64::consts::PI);
        assert!(minus_one.approx_eq(-Complex::ONE, 1e-12));
    }
}
