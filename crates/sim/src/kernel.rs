//! Stride-based gate kernels and the gate-fusion prepass.
//!
//! The simulation hot path: instead of interpreting [`CircuitOp`]s one at a
//! time with a scan-and-branch over all `2^n` amplitudes (retained as
//! [`StateVector::apply_naive`] for differential testing), a circuit is
//! *compiled* once into a [`KernelProgram`]:
//!
//! - **Fusion**: runs of adjacent uncontrolled single-qubit gates on the
//!   same wire are folded into one 2×2 matrix (gates on disjoint wires
//!   commute, so runs survive interleaving); consecutive controlled
//!   unitaries with identical control/target masks are folded likewise, and
//!   exact-identity products (e.g. `X;X`, `S;Sdg`) are dropped.
//! - **Stride enumeration**: each kernel visits only the
//!   `2^(n-1-#controls)` pair indices satisfying the control mask, by
//!   depositing a dense counter's bits over the free bit positions —
//!   no per-index branching.
//!
//! The same kernels back the batched unitary extraction in
//! [`crate::batch`], which applies a program to many basis columns at once.

use crate::complex::Complex;
use crate::simd;
use crate::state::StateVector;
use asdf_ir::GateKind;
use asdf_qcircuit::{Circuit, CircuitOp};
use std::f64::consts::FRAC_PI_4;
use threadpool::ThreadPool;

/// A 2×2 complex matrix, row-major.
pub type Matrix2 = [[Complex; 2]; 2];

/// A 4×4 complex matrix, row-major, over the local basis of a fused
/// two-qubit kernel (bit 0 of the local index ↔ the lower wire mask,
/// bit 1 ↔ the higher wire mask).
pub type Matrix4 = [[Complex; 4]; 4];

/// The exact 2×2 identity.
pub const IDENTITY_2Q: Matrix2 = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]];

/// The exact 4×4 identity.
pub const IDENTITY_4Q: Matrix4 = {
    let (o, z) = (Complex::ONE, Complex::ZERO);
    [[o, z, z, z], [z, o, z, z], [z, z, o, z], [z, z, z, o]]
};

/// One fused, mask-resolved operation of a [`KernelProgram`].
///
/// Masks follow the [`StateVector`] convention: qubit 0 is the most
/// significant bit of the amplitude index.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOp {
    /// A (possibly controlled) single-qubit unitary: the fused 2×2 matrix
    /// applied to the target bit wherever every control bit is 1.
    Unitary {
        /// The fused matrix.
        matrix: Matrix2,
        /// Single-bit mask of the target qubit.
        tmask: usize,
        /// OR of the control-qubit masks (0 when uncontrolled).
        cmask: usize,
    },
    /// A fused two-qubit unitary over two wires, produced by the second
    /// fusion stage ([`KernelProgram::compile`]) from adjacent runs of ops
    /// whose wires fit in one pair — one memory pass where the source ops
    /// took several.
    Unitary4 {
        /// The fused 4×4 matrix over the local basis: bit 0 of the local
        /// index is the `lomask` wire, bit 1 the `himask` wire.
        matrix: Box<Matrix4>,
        /// Single-bit mask of the lower wire (`lomask < himask`).
        lomask: usize,
        /// Single-bit mask of the higher wire.
        himask: usize,
    },
    /// A (possibly controlled) swap of two qubits.
    Swap {
        /// Single-bit mask of the first swapped qubit.
        amask: usize,
        /// Single-bit mask of the second swapped qubit.
        bmask: usize,
        /// OR of the control-qubit masks (0 when uncontrolled).
        cmask: usize,
    },
    /// A measurement into a classical bit (never fused across).
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        bit: usize,
    },
    /// A reset to |0> (never fused across).
    Reset {
        /// Reset qubit.
        qubit: usize,
    },
}

/// A circuit compiled to fused, mask-resolved kernel ops.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    num_qubits: usize,
    num_bits: usize,
    ops: Vec<KernelOp>,
    source_ops: usize,
}

impl KernelProgram {
    /// Compiles `circuit` into fused kernel ops: single-qubit run fusion
    /// ([`Self::compile_unfused`]) followed by two-qubit quad fusion, which
    /// collapses adjacent ops whose wires fit in one pair into a single
    /// [`KernelOp::Unitary4`] memory pass.
    pub fn compile(circuit: &Circuit) -> Self {
        let mut program = Self::compile_unfused(circuit);
        program.ops = fuse_quads(std::mem::take(&mut program.ops));
        program
    }

    /// Compiles `circuit` with single-qubit fusion only — the pre-quad
    /// pipeline, retained as the differential-testing and benchmarking
    /// baseline for the 4×4 fusion stage.
    pub fn compile_unfused(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits;
        let mask = |q: usize| 1usize << (n - 1 - q);
        let mut ops: Vec<KernelOp> = Vec::with_capacity(circuit.ops.len());
        let mut pending: Vec<Option<Matrix2>> = vec![None; n];

        fn flush(
            ops: &mut Vec<KernelOp>,
            pending: &mut [Option<Matrix2>],
            wire: usize,
            tmask: usize,
        ) {
            if let Some(matrix) = pending[wire].take() {
                push_unitary(ops, matrix, tmask, 0);
            }
        }

        for op in &circuit.ops {
            match op {
                CircuitOp::Gate { gate: GateKind::Swap, controls, targets } => {
                    for &q in controls.iter().chain(targets) {
                        flush(&mut ops, &mut pending, q, mask(q));
                    }
                    let cmask = controls.iter().fold(0, |acc, &c| acc | mask(c));
                    ops.push(KernelOp::Swap {
                        amask: mask(targets[0]),
                        bmask: mask(targets[1]),
                        cmask,
                    });
                }
                CircuitOp::Gate { gate, controls, targets } if controls.is_empty() => {
                    let wire = targets[0];
                    let acc = pending[wire].unwrap_or(IDENTITY_2Q);
                    pending[wire] = Some(matmul(&matrix_1q(*gate), &acc));
                }
                CircuitOp::Gate { gate, controls, targets } => {
                    for &q in controls.iter().chain(targets) {
                        flush(&mut ops, &mut pending, q, mask(q));
                    }
                    let cmask = controls.iter().fold(0, |acc, &c| acc | mask(c));
                    push_unitary(&mut ops, matrix_1q(*gate), mask(targets[0]), cmask);
                }
                CircuitOp::Measure { qubit, bit } => {
                    flush(&mut ops, &mut pending, *qubit, mask(*qubit));
                    ops.push(KernelOp::Measure { qubit: *qubit, bit: *bit });
                }
                CircuitOp::Reset { qubit } => {
                    flush(&mut ops, &mut pending, *qubit, mask(*qubit));
                    ops.push(KernelOp::Reset { qubit: *qubit });
                }
            }
        }
        for wire in 0..n {
            flush(&mut ops, &mut pending, wire, mask(wire));
        }

        KernelProgram {
            num_qubits: n,
            num_bits: circuit.num_bits(),
            ops,
            source_ops: circuit.ops.len(),
        }
    }

    /// Number of qubits the program acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits the program writes.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// The fused ops, in execution order.
    pub fn ops(&self) -> &[KernelOp] {
        &self.ops
    }

    /// Number of source-circuit ops the program was compiled from.
    pub fn source_ops(&self) -> usize {
        self.source_ops
    }

    /// Whether the program is measurement- and reset-free.
    pub fn is_unitary(&self) -> bool {
        self.ops.iter().all(|op| {
            matches!(
                op,
                KernelOp::Unitary { .. } | KernelOp::Unitary4 { .. } | KernelOp::Swap { .. }
            )
        })
    }

    /// Applies the program to `state`.
    ///
    /// # Panics
    ///
    /// Panics if the state size does not match, or if the program contains
    /// measurements or resets (those need a seeded executor — see
    /// [`crate::run::Simulator::run_program`]).
    pub fn apply_state(&self, state: &mut StateVector) {
        assert!(self.is_unitary(), "apply_state on a measuring program; use Simulator");
        self.apply_gates(state);
    }

    /// Applies only the unitary ops (gates), skipping measurements and
    /// resets, on one thread. Callers must have established that the
    /// skipped ops do not affect the amplitudes they read — e.g. the
    /// terminal-measurement analysis of
    /// [`crate::run::measurement_distribution`].
    pub fn apply_gates(&self, state: &mut StateVector) {
        self.apply_gates_pooled(state, &ThreadPool::new(1));
    }

    /// [`Self::apply_gates`] with each gate's pair enumeration split across
    /// `pool`. Pairs partition disjointly, so workers never synchronize,
    /// and the per-element arithmetic is identical on every path: the
    /// result is **bit-identical** for every worker count (and to
    /// [`Self::apply_gates_scalar`]).
    pub fn apply_gates_pooled(&self, state: &mut StateVector, pool: &ThreadPool) {
        assert_eq!(state.num_qubits(), self.num_qubits, "state size mismatch");
        let amps = state.amps_mut();
        for op in &self.ops {
            apply_op_pooled(amps, op, pool);
        }
    }

    /// The scalar reference application: per-pair deposit loops with plain
    /// [`Complex`] arithmetic, no SIMD lanes and no pool. Retained for the
    /// SIMD-vs-scalar equivalence suites and as the benchmark baseline
    /// (with [`Self::compile_unfused`], this is exactly the pre-SIMD
    /// kernel path).
    pub fn apply_gates_scalar(&self, state: &mut StateVector) {
        assert_eq!(state.num_qubits(), self.num_qubits, "state size mismatch");
        let amps = state.amps_mut();
        for op in &self.ops {
            match op {
                KernelOp::Unitary { matrix, tmask, cmask } => {
                    apply_unitary_scalar(amps, matrix, *tmask, *cmask);
                }
                KernelOp::Unitary4 { matrix, lomask, himask } => {
                    apply_unitary4_scalar(amps, matrix, *lomask, *himask);
                }
                KernelOp::Swap { amask, bmask, cmask } => {
                    apply_swap_scalar(amps, *amask, *bmask, *cmask);
                }
                KernelOp::Measure { .. } | KernelOp::Reset { .. } => {}
            }
        }
    }
}

/// Applies one gate op (measure/reset ops are skipped) with its pair
/// enumeration split across `pool`.
pub(crate) fn apply_op_pooled(amps: &mut [Complex], op: &KernelOp, pool: &ThreadPool) {
    match op {
        KernelOp::Unitary { matrix, tmask, cmask } => {
            apply_unitary_pooled(amps, matrix, *tmask, *cmask, pool);
        }
        KernelOp::Unitary4 { matrix, lomask, himask } => {
            apply_unitary4_pooled(amps, matrix, *lomask, *himask, pool);
        }
        KernelOp::Swap { amask, bmask, cmask } => {
            apply_swap_pooled(amps, *amask, *bmask, *cmask, pool);
        }
        KernelOp::Measure { .. } | KernelOp::Reset { .. } => {}
    }
}

/// Appends a unitary, folding it into the previous op when that op is a
/// unitary on exactly the same control/target masks, and dropping exact
/// identities.
fn push_unitary(ops: &mut Vec<KernelOp>, matrix: Matrix2, tmask: usize, cmask: usize) {
    if let Some(KernelOp::Unitary { matrix: prev, tmask: pt, cmask: pc }) = ops.last_mut() {
        if *pt == tmask && *pc == cmask {
            *prev = matmul(&matrix, prev);
            if *prev == IDENTITY_2Q {
                ops.pop();
            }
            return;
        }
    }
    if matrix == IDENTITY_2Q {
        return;
    }
    ops.push(KernelOp::Unitary { matrix, tmask, cmask });
}

/// The wires an op touches, as an OR of single-bit masks (`usize::MAX` for
/// measure/reset, which fuse with nothing).
fn op_wires(op: &KernelOp) -> usize {
    match op {
        KernelOp::Unitary { tmask, cmask, .. } => tmask | cmask,
        KernelOp::Unitary4 { lomask, himask, .. } => lomask | himask,
        KernelOp::Swap { amask, bmask, cmask } => amask | bmask | cmask,
        KernelOp::Measure { .. } | KernelOp::Reset { .. } => usize::MAX,
    }
}

/// An open fusion group: consecutive ops (in program order) whose wires
/// all fit inside `wires` (at most two bits).
struct Group {
    wires: usize,
    ops: Vec<KernelOp>,
}

/// The second fusion stage: greedily groups adjacent ops whose combined
/// wires fit in one qubit pair and collapses each multi-op group into a
/// single [`KernelOp::Unitary4`] pass. Ops on disjoint wires commute, so
/// a group stays open while unrelated ops stream past it; an op touching
/// two single-wire groups merges them (the H⊗H·CX shape).
///
/// Groups whose fused matrix stays diagonal are always worth emitting
/// fused (k scaling passes become one). A *general* 4×4 costs ~2× the
/// arithmetic of a general 2×2 per amplitude, so a general fusion is only
/// emitted when it replaces at least two general passes or three ops —
/// otherwise the original specialized ops are kept.
fn fuse_quads(ops: Vec<KernelOp>) -> Vec<KernelOp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut open: Vec<Group> = Vec::new();
    for op in ops {
        let wires = op_wires(&op);
        if matches!(op, KernelOp::Measure { .. } | KernelOp::Reset { .. }) {
            for group in open.drain(..) {
                flush_group(&mut out, group);
            }
            out.push(op);
            continue;
        }
        if wires.count_ones() > 2 {
            // A 3+-wire op (multi-controlled) fuses with nothing, but
            // commutes past every group it does not touch.
            open.retain_mut(|group| {
                let keep = group.wires & wires == 0;
                if !keep {
                    flush_group(
                        &mut out,
                        std::mem::replace(group, Group { wires: 0, ops: vec![] }),
                    );
                }
                keep
            });
            out.push(op);
            continue;
        }
        let touching: Vec<usize> =
            (0..open.len()).filter(|&g| open[g].wires & wires != 0).collect();
        match touching[..] {
            [] => open.push(Group { wires, ops: vec![op] }),
            [g] => {
                let union = open[g].wires | wires;
                if union.count_ones() <= 2 {
                    open[g].wires = union;
                    open[g].ops.push(op);
                } else {
                    flush_group(&mut out, open.remove(g));
                    open.push(Group { wires, ops: vec![op] });
                }
            }
            [g1, g2] => {
                let union = open[g1].wires | open[g2].wires | wires;
                if union.count_ones() <= 2 {
                    // Two single-wire groups bridged by a two-wire op: their
                    // ops are on disjoint wires and commute, so concatenation
                    // preserves the product.
                    let tail = open.remove(g2);
                    open[g1].wires = union;
                    open[g1].ops.extend(tail.ops);
                    open[g1].ops.push(op);
                } else {
                    let tail = open.remove(g2);
                    flush_group(&mut out, open.remove(g1));
                    flush_group(&mut out, tail);
                    open.push(Group { wires, ops: vec![op] });
                }
            }
            _ => unreachable!("a two-wire op touches at most two groups"),
        }
    }
    for group in open.drain(..) {
        flush_group(&mut out, group);
    }
    out
}

/// Emits one fusion group: single ops pass through unchanged, single-wire
/// runs fold as 2×2, and two-wire groups fold as 4×4 when the cost
/// heuristic favors it (see [`fuse_quads`]).
fn flush_group(out: &mut Vec<KernelOp>, mut group: Group) {
    if group.ops.len() <= 1 {
        if let Some(op) = group.ops.pop() {
            out.push(op);
        }
        return;
    }
    if group.wires.count_ones() < 2 {
        // Only uncontrolled single-qubit unitaries ever land in a
        // one-wire group; fold them as a 2×2.
        let mut matrix = IDENTITY_2Q;
        for op in &group.ops {
            let KernelOp::Unitary { matrix: m, .. } = op else {
                unreachable!("one-wire group holds only 1q unitaries")
            };
            matrix = matmul(m, &matrix);
        }
        push_unitary(out, matrix, group.wires, 0);
        return;
    }
    let bits = single_bit_masks(group.wires);
    let (lomask, himask) = (bits[0], bits[1]);
    let mut matrix = IDENTITY_4Q;
    let mut unfused_cost = 0.0f64;
    for op in &group.ops {
        unfused_cost += op_cost(op);
        matrix = matmul4(&embed4(op, lomask, himask), &matrix);
    }
    if matrix == IDENTITY_4Q {
        return;
    }
    // Fuse only when the single 4×4 sweep is cheaper than replaying the
    // group op by op. A monomial (or diagonal) product costs one complex
    // multiply per amplitude in one pass over memory, so it wins once the
    // group holds more than a couple of cheap ops; a dense product costs
    // four multiplies per amplitude — as much arithmetic as two general
    // 2×2 passes — and only wins by saving memory sweeps.
    let fused = KernelOp::Unitary4 { matrix: Box::new(matrix), lomask, himask };
    if op_cost(&fused) < unfused_cost {
        out.push(fused);
    } else {
        out.append(&mut group.ops);
    }
}

/// Embeds a one- or two-wire op into the 4×4 local basis of the wire pair
/// (`lomask` ↔ local bit 0, `himask` ↔ local bit 1).
fn embed4(op: &KernelOp, lomask: usize, himask: usize) -> Matrix4 {
    let mut m4 = [[Complex::ZERO; 4]; 4];
    match op {
        KernelOp::Unitary { matrix, tmask, cmask } => {
            let tbit = usize::from(*tmask == himask);
            debug_assert_eq!(if tbit == 1 { himask } else { lomask }, *tmask);
            for (row, m4_row) in m4.iter_mut().enumerate() {
                for (col, entry) in m4_row.iter_mut().enumerate() {
                    let (t_out, o_out) = ((row >> tbit) & 1, (row >> (1 - tbit)) & 1);
                    let (t_in, o_in) = ((col >> tbit) & 1, (col >> (1 - tbit)) & 1);
                    if o_out != o_in {
                        continue; // diagonal in the spectator/control bit
                    }
                    *entry = if *cmask != 0 && o_out == 0 {
                        // Control bit 0: identity block.
                        if t_out == t_in {
                            Complex::ONE
                        } else {
                            Complex::ZERO
                        }
                    } else {
                        matrix[t_out][t_in]
                    };
                }
            }
        }
        KernelOp::Swap { .. } => {
            // Uncontrolled only: a controlled swap has three wires and
            // never enters a group.
            m4[0][0] = Complex::ONE;
            m4[1][2] = Complex::ONE;
            m4[2][1] = Complex::ONE;
            m4[3][3] = Complex::ONE;
        }
        KernelOp::Unitary4 { matrix, .. } => return **matrix,
        KernelOp::Measure { .. } | KernelOp::Reset { .. } => {
            unreachable!("measure/reset never enter a fusion group")
        }
    }
    m4
}

/// `a * b` for 4×4 matrices (apply `b` first, then `a`).
pub(crate) fn matmul4(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[Complex::ZERO; 4]; 4];
    for (row, out_row) in out.iter_mut().enumerate() {
        for (col, entry) in out_row.iter_mut().enumerate() {
            let mut acc = a[row][0] * b[0][col];
            for k in 1..4 {
                acc += a[row][k] * b[k][col];
            }
            *entry = acc;
        }
    }
    out
}

/// The diagonal of `matrix` when every off-diagonal entry is exactly zero
/// (fused products of diagonal ops keep their exact zeros), else `None`.
pub(crate) fn diagonal4(matrix: &Matrix4) -> Option<[Complex; 4]> {
    for (row, m_row) in matrix.iter().enumerate() {
        for (col, entry) in m_row.iter().enumerate() {
            if row != col && *entry != Complex::ZERO {
                return None;
            }
        }
    }
    Some([matrix[0][0], matrix[1][1], matrix[2][2], matrix[3][3]])
}

/// Monomial (generalized-permutation) structure of `matrix`: exactly one
/// nonzero per row and per column. Returns `(src, scale)` such that the
/// update is `out[row] = scale[row] * in[src[row]]` — one complex multiply
/// per amplitude, like a diagonal, regardless of the permutation.
///
/// Products of phase/diagonal/X/CX/CZ/swap-type factors are monomial, and
/// the exact zeros of the factors survive [`matmul4`], so this covers most
/// fusion groups of the compiled gate mix (every group without an H/Ry/Sx
/// style dense factor).
pub(crate) fn monomial4(matrix: &Matrix4) -> Option<([usize; 4], [Complex; 4])> {
    let mut src = [0usize; 4];
    let mut scale = [Complex::ZERO; 4];
    let mut used_cols = 0usize;
    for (row, m_row) in matrix.iter().enumerate() {
        let mut nonzero = None;
        for (col, entry) in m_row.iter().enumerate() {
            if *entry != Complex::ZERO {
                if nonzero.is_some() {
                    return None;
                }
                nonzero = Some(col);
            }
        }
        let col = nonzero?;
        if used_cols & (1 << col) != 0 {
            return None;
        }
        used_cols |= 1 << col;
        src[row] = col;
        scale[row] = m_row[col];
    }
    Some((src, scale))
}

/// How a fused 4×4 product is applied — cheapest matching structure first.
pub(crate) enum QuadForm {
    /// Every off-diagonal entry exactly zero: per-row complex scales,
    /// identity rows skipped.
    Diagonal([Complex; 4]),
    /// One nonzero per row/column: `out[r] = scale[r] * in[src[r]]`.
    Monomial([usize; 4], [Complex; 4]),
    /// Dense: the full 16-term update.
    General,
}

pub(crate) fn quad_form(matrix: &Matrix4) -> QuadForm {
    if let Some(diag) = diagonal4(matrix) {
        QuadForm::Diagonal(diag)
    } else if let Some((src, scale)) = monomial4(matrix) {
        QuadForm::Monomial(src, scale)
    } else {
        QuadForm::General
    }
}

/// Estimated cost of one full-state application of `op`, for the fusion
/// profitability test: complex multiplies per amplitude, plus 0.3 per
/// full-state memory sweep (0.15 for half-state passes). A phase pass is
/// one multiply over half the amplitudes; flips and swaps move data with
/// no arithmetic at all; a dense 4×4 sweep is four multiplies per
/// amplitude but a single pass over memory.
fn op_cost(op: &KernelOp) -> f64 {
    match op {
        KernelOp::Unitary { matrix, .. } => match classify(matrix) {
            MatrixForm::Phase => 0.65,
            MatrixForm::Diagonal | MatrixForm::AntiDiagonal => 1.3,
            MatrixForm::FlipX => 0.3,
            MatrixForm::General => 2.3,
        },
        KernelOp::Swap { .. } => 0.3,
        KernelOp::Unitary4 { matrix, .. } => match quad_form(matrix) {
            QuadForm::Diagonal(_) => 1.0,
            QuadForm::Monomial(..) => 1.3,
            QuadForm::General => 4.3,
        },
        KernelOp::Measure { .. } | KernelOp::Reset { .. } => 0.0,
    }
}

/// `a * b` (apply `b` first, then `a`).
pub fn matmul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    [
        [a[0][0] * b[0][0] + a[0][1] * b[1][0], a[0][0] * b[0][1] + a[0][1] * b[1][1]],
        [a[1][0] * b[0][0] + a[1][1] * b[1][0], a[1][0] * b[0][1] + a[1][1] * b[1][1]],
    ]
}

/// Decomposes `mask` into its single-bit masks, ascending.
pub(crate) fn single_bit_masks(mut mask: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    while mask != 0 {
        let low = mask & mask.wrapping_neg();
        out.push(low);
        mask ^= low;
    }
    out
}

/// Deposits the bits of the dense counter `k` over the bit positions *not*
/// occupied by `fixed` (single-bit masks, ascending): the classic
/// bit-deposit that enumerates exactly the indices with all fixed bits 0.
#[inline]
pub(crate) fn deposit(k: usize, fixed: &[usize]) -> usize {
    let mut index = k;
    for &mask in fixed {
        index = ((index & !(mask - 1)) << 1) | (index & (mask - 1));
    }
    index
}

/// The structural form of a 2×2 matrix, used to pick a cheaper kernel.
/// Zero tests are exact: fused products of structured matrices keep their
/// exact zeros (and phase gates their exact unit corner), so the common
/// post-fusion shapes — phase products, Rz products, multi-controlled X —
/// all classify away from the general case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MatrixForm {
    /// Off-diagonal exactly zero, upper-left exactly one: only |..1..>
    /// amplitudes are scaled (P/T/S/Z and their products).
    Phase,
    /// Off-diagonal exactly zero (Rz and diagonal products).
    Diagonal,
    /// Diagonal exactly zero, both off-diagonal entries exactly one: a
    /// pure amplitude swap (X, CX, CCX...).
    FlipX,
    /// Diagonal exactly zero (Y-like).
    AntiDiagonal,
    /// Anything else.
    General,
}

/// Classifies `matrix` for kernel dispatch.
pub(crate) fn classify(matrix: &Matrix2) -> MatrixForm {
    let [[m00, m01], [m10, m11]] = *matrix;
    if m01 == Complex::ZERO && m10 == Complex::ZERO {
        if m00 == Complex::ONE {
            MatrixForm::Phase
        } else {
            MatrixForm::Diagonal
        }
    } else if m00 == Complex::ZERO && m11 == Complex::ZERO {
        if m01 == Complex::ONE && m10 == Complex::ONE {
            MatrixForm::FlipX
        } else {
            MatrixForm::AntiDiagonal
        }
    } else {
        MatrixForm::General
    }
}

/// Applies a (possibly controlled) 2×2 unitary on one thread — the
/// serial entry point used by [`StateVector::apply`].
pub(crate) fn apply_unitary(amps: &mut [Complex], matrix: &Matrix2, tmask: usize, cmask: usize) {
    apply_unitary_pooled(amps, matrix, tmask, cmask, &ThreadPool::new(1));
}

/// Applies a (possibly controlled) swap on one thread.
pub(crate) fn apply_swap(amps: &mut [Complex], amask: usize, bmask: usize, cmask: usize) {
    apply_swap_pooled(amps, amask, bmask, cmask, &ThreadPool::new(1));
}

/// A raw amplitude base pointer that may cross scoped-thread boundaries.
/// Soundness rests on the pair enumeration: every worker derives slices
/// only over its own runs, and runs are pairwise disjoint.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The wrapped pointer. Going through a method (rather than the field)
    /// makes 2021-edition closures capture the `Send + Sync` wrapper as a
    /// whole instead of disjointly borrowing the raw-pointer field.
    #[inline]
    fn ptr(self) -> *mut Complex {
        self.0
    }
}

/// Two disjoint contiguous runs of `len` amplitudes at `i0` and `i0 + gap`.
///
/// # Safety
///
/// Both ranges must be in bounds of the allocation behind `base`, with
/// `len <= gap` (disjointness), and no other live reference may overlap
/// them.
unsafe fn run_pair<'a>(
    base: SendPtr,
    i0: usize,
    gap: usize,
    len: usize,
) -> (&'a mut [Complex], &'a mut [Complex]) {
    debug_assert!(len <= gap);
    (
        std::slice::from_raw_parts_mut(base.ptr().add(i0), len),
        std::slice::from_raw_parts_mut(base.ptr().add(i0 + gap), len),
    )
}

/// Applies a (possibly controlled) 2×2 unitary, splitting the pair
/// enumeration across `pool`.
///
/// Consecutive dense counter values deposit into contiguous amplitude
/// indices below the lowest fixed bit, so the pairs decompose into
/// **runs**: two contiguous, disjoint slices of `run_len` amplitudes at
/// distance `tmask`. Each run is one [`crate::simd`] slice kernel
/// (specialized per matrix form), and runs partition disjointly across
/// workers — no synchronization, and bit-identical results for every
/// worker count.
pub(crate) fn apply_unitary_pooled(
    amps: &mut [Complex],
    matrix: &Matrix2,
    tmask: usize,
    cmask: usize,
    pool: &ThreadPool,
) {
    let [[m00, m01], [m10, m11]] = *matrix;
    let form = classify(matrix);
    let fixed = single_bit_masks(tmask | cmask);
    let pairs = amps.len() >> fixed.len();
    if pairs == 0 {
        return;
    }
    if cmask == 0 && tmask == 1 {
        // The target is the least significant index bit: pairs are the
        // adjacent amplitude couples (2k, 2k+1) — one interleaved-pair
        // vector kernel over each worker's contiguous span.
        let base = SendPtr(amps.as_mut_ptr());
        pool.for_each_range(pairs, |range| {
            // SAFETY: span [2*start, 2*end) is in bounds and disjoint
            // across the partitioned ranges.
            let span = unsafe {
                std::slice::from_raw_parts_mut(base.ptr().add(range.start << 1), range.len() << 1)
            };
            match form {
                MatrixForm::Phase | MatrixForm::Diagonal => {
                    simd::interleaved_diag_run(span, m00, m11);
                }
                MatrixForm::FlipX | MatrixForm::AntiDiagonal => {
                    simd::interleaved_antidiag_run(span, m01, m10);
                }
                MatrixForm::General => simd::interleaved_general_run(span, m00, m01, m10, m11),
            }
        });
        return;
    }
    let run_len = fixed[0].min(pairs);
    if run_len < 2 {
        // A control sits on the least significant bit: pairs are strided,
        // not contiguous. Per-pair deposit with scalar arithmetic (the
        // expressions match the slice kernels bit for bit).
        let base = SendPtr(amps.as_mut_ptr());
        pool.for_each_range(pairs, |range| {
            for k in range {
                let i = deposit(k, &fixed) | cmask;
                let j = i | tmask;
                // SAFETY: each (i, j) pair is visited exactly once across
                // all workers.
                let (lo, hi) = unsafe { (&mut *base.ptr().add(i), &mut *base.ptr().add(j)) };
                apply_pair_scalar(lo, hi, form, m00, m01, m10, m11);
            }
        });
        return;
    }
    let runs = pairs / run_len;
    let base = SendPtr(amps.as_mut_ptr());
    pool.for_each_range(runs, |range| {
        for r in range {
            let i0 = deposit(r * run_len, &fixed) | cmask;
            // SAFETY: runs are pairwise disjoint and in bounds;
            // run_len <= fixed[0] <= tmask.
            let (lo, hi) = unsafe { run_pair(base, i0, tmask, run_len) };
            match form {
                MatrixForm::Phase => simd::cmul_run(hi, m11),
                MatrixForm::Diagonal => {
                    simd::cmul_run(lo, m00);
                    simd::cmul_run(hi, m11);
                }
                MatrixForm::FlipX => lo.swap_with_slice(hi),
                MatrixForm::AntiDiagonal => simd::pair_antidiagonal_run(lo, hi, m01, m10),
                MatrixForm::General => simd::pair_general_run(lo, hi, m00, m01, m10, m11),
            }
        }
    });
}

/// One scalar 2×2 pair update, form-specialized, with the same IEEE
/// expressions as the slice kernels.
#[inline]
fn apply_pair_scalar(
    lo: &mut Complex,
    hi: &mut Complex,
    form: MatrixForm,
    m00: Complex,
    m01: Complex,
    m10: Complex,
    m11: Complex,
) {
    match form {
        MatrixForm::Phase => *hi = m11 * *hi,
        MatrixForm::Diagonal => {
            *lo = m00 * *lo;
            *hi = m11 * *hi;
        }
        MatrixForm::FlipX => std::mem::swap(lo, hi),
        MatrixForm::AntiDiagonal => {
            let a0 = *lo;
            *lo = m01 * *hi;
            *hi = m10 * a0;
        }
        MatrixForm::General => {
            let a0 = *lo;
            let a1 = *hi;
            *lo = m00 * a0 + m01 * a1;
            *hi = m10 * a0 + m11 * a1;
        }
    }
}

/// Applies a fused two-qubit unitary, splitting the quad enumeration
/// across `pool`. Each quad run is four contiguous disjoint slices (local
/// basis order); diagonal and monomial products reduce to one complex
/// multiply per amplitude.
pub(crate) fn apply_unitary4_pooled(
    amps: &mut [Complex],
    matrix: &Matrix4,
    lomask: usize,
    himask: usize,
    pool: &ThreadPool,
) {
    let fixed = [lomask, himask];
    let quads = amps.len() >> 2;
    if quads == 0 {
        return;
    }
    let form = quad_form(matrix);
    let run_len = lomask.min(quads);
    let base = SendPtr(amps.as_mut_ptr());
    if run_len < 2 {
        // The low wire is the least significant index bit: each quad's
        // slices are singletons, which drown in slice-kernel setup. Apply
        // per quad with scalar arithmetic (same IEEE expressions).
        pool.for_each_range(quads, |range| {
            for k in range {
                let i0 = deposit(k, &fixed);
                let idx = [i0, i0 | lomask, i0 | himask, i0 | himask | lomask];
                // SAFETY: a quad's four indices are distinct, and each
                // quad is visited exactly once across all workers.
                unsafe { apply_quad_at(base, idx, &form, matrix) };
            }
        });
        return;
    }
    let runs = quads / run_len;
    pool.for_each_range(runs, |range| {
        for r in range {
            let i0 = deposit(r * run_len, &fixed);
            // SAFETY: the four slices of one quad run are pairwise
            // disjoint (run_len <= lomask and 2*lomask <= himask) and
            // quad runs partition the amplitudes.
            let (s0, s1) = unsafe { run_pair(base, i0, lomask, run_len) };
            let (s2, s3) = unsafe { run_pair(base, i0 + himask, lomask, run_len) };
            match &form {
                QuadForm::Diagonal(d) => {
                    for (slice, &scale) in [s0, s1, s2, s3].into_iter().zip(d) {
                        if scale != Complex::ONE {
                            simd::cmul_run(slice, scale);
                        }
                    }
                }
                QuadForm::Monomial(src, scale) => {
                    simd::quad_monomial_run([s0, s1, s2, s3], *src, *scale);
                }
                QuadForm::General => simd::quad_general_run([s0, s1, s2, s3], matrix),
            }
        }
    });
}

/// One scalar quad update at amplitude indices `idx`, form-specialized,
/// with the same IEEE expressions as the quad slice kernels.
///
/// # Safety
///
/// All four indices must be in bounds of the allocation behind `base`,
/// pairwise distinct, and not aliased by any other live reference.
#[inline]
unsafe fn apply_quad_at(base: SendPtr, idx: [usize; 4], form: &QuadForm, matrix: &Matrix4) {
    match form {
        QuadForm::Diagonal(d) => {
            for (&scale, &slot) in d.iter().zip(&idx) {
                if scale != Complex::ONE {
                    let amp = &mut *base.ptr().add(slot);
                    *amp = scale * *amp;
                }
            }
        }
        QuadForm::Monomial(src, scale) => {
            let a = idx.map(|i| *base.ptr().add(i));
            for (row, &slot) in idx.iter().enumerate() {
                *base.ptr().add(slot) = scale[row] * a[src[row]];
            }
        }
        QuadForm::General => {
            let a = idx.map(|i| *base.ptr().add(i));
            for (row, &slot) in idx.iter().enumerate() {
                let mut acc = matrix[row][0] * a[0];
                for col in 1..4 {
                    acc += matrix[row][col] * a[col];
                }
                *base.ptr().add(slot) = acc;
            }
        }
    }
}

/// Applies a (possibly controlled) swap, splitting the run enumeration
/// across `pool`: each run is a [`<[_]>::swap_with_slice`] of two
/// contiguous disjoint slices.
pub(crate) fn apply_swap_pooled(
    amps: &mut [Complex],
    amask: usize,
    bmask: usize,
    cmask: usize,
    pool: &ThreadPool,
) {
    let fixed = single_bit_masks(amask | bmask | cmask);
    let pairs = amps.len() >> fixed.len();
    if pairs == 0 {
        return;
    }
    let run_len = fixed[0].min(pairs);
    let runs = pairs / run_len;
    let gap = amask.max(bmask) - amask.min(bmask);
    let base = SendPtr(amps.as_mut_ptr());
    pool.for_each_range(runs, |range| {
        for r in range {
            let i = deposit(r * run_len, &fixed) | cmask | amask;
            let j = i ^ amask ^ bmask;
            // SAFETY: disjoint by the pair enumeration; for powers of two
            // p > q, p - q >= q >= fixed[0] >= run_len, so the slices at
            // min(i, j) and min(i, j) + gap never overlap.
            let (lo, hi) = unsafe { run_pair(base, i.min(j), gap, run_len) };
            lo.swap_with_slice(hi);
        }
    });
}

/// The pre-SIMD 2×2 application: per-pair deposit loops with plain
/// [`Complex`] arithmetic (plus the contiguous uncontrolled fast path),
/// exactly as shipped before the run/SIMD rework. Reference for the
/// equivalence suites and the benchmark baseline.
pub(crate) fn apply_unitary_scalar(
    amps: &mut [Complex],
    matrix: &Matrix2,
    tmask: usize,
    cmask: usize,
) {
    let [[m00, m01], [m10, m11]] = *matrix;
    let form = classify(matrix);
    if cmask == 0 {
        // Contiguous fast path: every aligned block of 2*tmask amplitudes
        // splits into tmask pairs at distance tmask.
        for chunk in amps.chunks_exact_mut(tmask << 1) {
            let (lo, hi) = chunk.split_at_mut(tmask);
            match form {
                MatrixForm::Phase => {
                    for b in hi.iter_mut() {
                        *b = m11 * *b;
                    }
                }
                MatrixForm::Diagonal => {
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        *a = m00 * *a;
                        *b = m11 * *b;
                    }
                }
                MatrixForm::FlipX => lo.swap_with_slice(hi),
                MatrixForm::AntiDiagonal => {
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        let a0 = *a;
                        *a = m01 * *b;
                        *b = m10 * a0;
                    }
                }
                MatrixForm::General => {
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        let a0 = *a;
                        let a1 = *b;
                        *a = m00 * a0 + m01 * a1;
                        *b = m10 * a0 + m11 * a1;
                    }
                }
            }
        }
    } else {
        let fixed = single_bit_masks(tmask | cmask);
        let pairs = amps.len() >> fixed.len();
        for k in 0..pairs {
            let i = deposit(k, &fixed) | cmask;
            let j = i | tmask;
            match form {
                MatrixForm::Phase => amps[j] = m11 * amps[j],
                MatrixForm::Diagonal => {
                    amps[i] = m00 * amps[i];
                    amps[j] = m11 * amps[j];
                }
                MatrixForm::FlipX => amps.swap(i, j),
                MatrixForm::AntiDiagonal => {
                    let a0 = amps[i];
                    amps[i] = m01 * amps[j];
                    amps[j] = m10 * a0;
                }
                MatrixForm::General => {
                    let a0 = amps[i];
                    let a1 = amps[j];
                    amps[i] = m00 * a0 + m01 * a1;
                    amps[j] = m10 * a0 + m11 * a1;
                }
            }
        }
    }
}

/// The scalar reference for [`KernelOp::Unitary4`]: per-quad deposit loop
/// with plain [`Complex`] arithmetic, form dispatch and accumulation order
/// matching the pooled path bit for bit.
pub(crate) fn apply_unitary4_scalar(
    amps: &mut [Complex],
    matrix: &Matrix4,
    lomask: usize,
    himask: usize,
) {
    let fixed = [lomask, himask];
    let quads = amps.len() >> 2;
    let form = quad_form(matrix);
    let len = amps.len();
    let base = SendPtr(amps.as_mut_ptr());
    for k in 0..quads {
        let i0 = deposit(k, &fixed);
        let idx = [i0, i0 | lomask, i0 | himask, i0 | himask | lomask];
        debug_assert!(idx.iter().all(|&i| i < len));
        // SAFETY: a quad's four indices are distinct and in bounds, and
        // `amps` is exclusively borrowed.
        unsafe { apply_quad_at(base, idx, &form, matrix) };
    }
}

/// The scalar reference swap: per-pair deposit loop, exactly the pre-run
/// implementation.
pub(crate) fn apply_swap_scalar(amps: &mut [Complex], amask: usize, bmask: usize, cmask: usize) {
    let fixed = single_bit_masks(amask | bmask | cmask);
    let pairs = amps.len() >> fixed.len();
    for k in 0..pairs {
        let i = deposit(k, &fixed) | cmask | amask;
        let j = i ^ amask ^ bmask;
        amps.swap(i, j);
    }
}

/// The 2x2 matrix of a single-target gate.
///
/// # Panics
///
/// Panics on [`GateKind::Swap`], which has no 2×2 matrix.
pub fn matrix_1q(gate: GateKind) -> Matrix2 {
    let zero = Complex::ZERO;
    let one = Complex::ONE;
    let i = Complex::I;
    let h = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
    match gate {
        GateKind::X => [[zero, one], [one, zero]],
        GateKind::Y => [[zero, -i], [i, zero]],
        GateKind::Z => [[one, zero], [zero, -one]],
        GateKind::H => [[h, h], [h, -h]],
        GateKind::S => [[one, zero], [zero, i]],
        GateKind::Sdg => [[one, zero], [zero, -i]],
        GateKind::T => [[one, zero], [zero, Complex::from_angle(FRAC_PI_4)]],
        GateKind::Tdg => [[one, zero], [zero, Complex::from_angle(-FRAC_PI_4)]],
        GateKind::Sx => {
            let p = Complex::new(0.5, 0.5);
            let m = Complex::new(0.5, -0.5);
            [[p, m], [m, p]]
        }
        GateKind::Sxdg => {
            let p = Complex::new(0.5, 0.5);
            let m = Complex::new(0.5, -0.5);
            [[m, p], [p, m]]
        }
        GateKind::P(theta) => [[one, zero], [zero, Complex::from_angle(theta)]],
        GateKind::Rx(theta) => {
            let c = Complex::new((theta / 2.0).cos(), 0.0);
            let s = Complex::new(0.0, -(theta / 2.0).sin());
            [[c, s], [s, c]]
        }
        GateKind::Ry(theta) => {
            let c = Complex::new((theta / 2.0).cos(), 0.0);
            let s = Complex::new((theta / 2.0).sin(), 0.0);
            [[c, -s], [s, c]]
        }
        GateKind::Rz(theta) => {
            [[Complex::from_angle(-theta / 2.0), zero], [zero, Complex::from_angle(theta / 2.0)]]
        }
        GateKind::Swap => unreachable!("swap handled separately"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unitary_count(p: &KernelProgram) -> usize {
        p.ops().iter().filter(|op| matches!(op, KernelOp::Unitary { .. })).count()
    }

    #[test]
    fn deposit_enumerates_free_indices() {
        // n = 4, fixed bits 0b0100 and 0b0001: the 4 free patterns land in
        // the remaining positions, fixed bits always 0.
        let fixed = [0b0001usize, 0b0100];
        let all: Vec<usize> = (0..4).map(|k| deposit(k, &fixed)).collect();
        assert_eq!(all, vec![0b0000, 0b0010, 0b1000, 0b1010]);
    }

    #[test]
    fn fuses_single_qubit_runs_across_disjoint_wires() {
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::T, &[], &[1]); // interleaved, different wire
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::H, &[], &[0]);
        let p = KernelProgram::compile(&c);
        // Wire 0's H-T-H run fuses to one matrix; wire 1's T is another.
        assert_eq!(unitary_count(&p), 2);
        assert!(p.is_unitary());
        assert_eq!(p.source_ops(), 4);
    }

    #[test]
    fn fusion_does_not_cross_controls_or_measurements() {
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]); // touches both wires: flushes H
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::Swap, &[], &[0, 1]);
        c.measure(0, 0);
        c.gate(GateKind::H, &[], &[0]); // must not fuse across the measure
                                        // (The adjacent H(0); T(0) pair folds in the 2×2 stage already.)
        let unfused = KernelProgram::compile_unfused(&c);
        assert_eq!(unfused.ops().len(), 6, "{:?}", unfused.ops());
        assert!(matches!(unfused.ops()[4], KernelOp::Measure { qubit: 0, bit: 0 }));
        // The quad stage folds the whole group before the measurement into
        // one 4×4 pass, still without crossing the measurement.
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 3, "{:?}", p.ops());
        assert!(matches!(p.ops()[0], KernelOp::Unitary4 { .. }));
        assert!(matches!(p.ops()[1], KernelOp::Measure { qubit: 0, bit: 0 }));
        assert!(matches!(p.ops()[2], KernelOp::Unitary { .. }));
        assert!(!p.is_unitary());
    }

    #[test]
    fn quad_fusion_merges_bridged_single_wire_groups() {
        // H(0); H(1); CX(0,1); T(0); T(1): the CX bridges two single-wire
        // groups into one pair group whose five passes cost more than a
        // general 4×4 sweep, so it fuses.
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::H, &[], &[1]);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::T, &[], &[1]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 1, "{:?}", p.ops());
        assert!(matches!(p.ops()[0], KernelOp::Unitary4 { .. }));
    }

    #[test]
    fn quad_fusion_keeps_cheap_pairs_unfused() {
        // H(0); CX(0,1): one general pass plus one flip pass beat a dense
        // 4×4 sweep (four multiplies per amplitude) — the cost model
        // leaves them alone.
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 2, "{:?}", p.ops());
        assert!(p.ops().iter().all(|op| matches!(op, KernelOp::Unitary { .. })));
    }

    #[test]
    fn quad_fusion_fuses_monomial_products() {
        // T(0); CX(0,1); T(1): the product has one nonzero per row/column,
        // so the fused sweep is one multiply per amplitude — cheaper than
        // replaying two phase passes and a flip pass.
        let mut c = Circuit::new(2);
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::T, &[], &[1]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 1, "{:?}", p.ops());
        let KernelOp::Unitary4 { matrix, .. } = &p.ops()[0] else {
            panic!("expected Unitary4: {:?}", p.ops())
        };
        assert!(diagonal4(matrix).is_none());
        let (src, _) = monomial4(matrix).expect("product should be monomial");
        assert_ne!(src, [0, 1, 2, 3], "the CX permutes the quad");
    }

    #[test]
    fn quad_fusion_emits_diagonal_products_fused() {
        // T(0); CZ(0,1); T(1): all diagonal in the pair — three passes
        // become one diagonal 4×4.
        let mut c = Circuit::new(2);
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::Z, &[0], &[1]);
        c.gate(GateKind::T, &[], &[1]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 1, "{:?}", p.ops());
        let KernelOp::Unitary4 { matrix, .. } = &p.ops()[0] else {
            panic!("expected Unitary4: {:?}", p.ops())
        };
        assert!(diagonal4(matrix).is_some());
    }

    #[test]
    fn quad_fusion_commutes_disjoint_ops_past_open_groups() {
        // The CCX on wires 1-3 must flush the {1,2} group but may pass the
        // {0} group, which keeps absorbing afterwards.
        let mut c = Circuit::new(4);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::H, &[], &[1]);
        c.gate(GateKind::X, &[1], &[2]);
        c.gate(GateKind::H, &[], &[2]);
        c.gate(GateKind::T, &[], &[1]);
        c.gate(GateKind::T, &[], &[2]);
        c.gate(GateKind::X, &[1, 2], &[3]);
        c.gate(GateKind::T, &[], &[0]);
        let p = KernelProgram::compile(&c);
        // Expected: Unitary4(1,2) [T·T·H·CX·H], CCX, Unitary(0) [T·H fused].
        assert_eq!(p.ops().len(), 3, "{:?}", p.ops());
        assert!(matches!(p.ops()[0], KernelOp::Unitary4 { .. }));
        assert!(matches!(p.ops()[1], KernelOp::Unitary { cmask, .. } if cmask != 0));
        assert!(matches!(p.ops()[2], KernelOp::Unitary { cmask: 0, .. }));
        // And the reordering is semantics-preserving.
        let mut fused = StateVector::zero(4);
        p.apply_state(&mut fused);
        let mut plain = StateVector::zero(4);
        for op in &c.ops {
            if let CircuitOp::Gate { gate, controls, targets } = op {
                plain.apply_naive(*gate, controls, targets);
            }
        }
        for (a, b) in fused.amplitudes().iter().zip(plain.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn exact_identity_products_are_dropped() {
        let mut c = Circuit::new(1);
        c.gate(GateKind::X, &[], &[0]);
        c.gate(GateKind::X, &[], &[0]);
        c.gate(GateKind::S, &[], &[0]);
        c.gate(GateKind::Sdg, &[], &[0]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 0, "{:?}", p.ops());
        // Adjacent identical-mask controlled pairs cancel too.
        let mut c = Circuit::new(2);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::X, &[0], &[1]);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.ops().len(), 0, "{:?}", p.ops());
    }

    #[test]
    fn fused_program_matches_gate_by_gate_application() {
        let mut c = Circuit::new(3);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::T, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::Ry(0.37), &[], &[2]);
        c.gate(GateKind::Swap, &[0], &[1, 2]);
        c.gate(GateKind::Sdg, &[], &[1]);
        c.gate(GateKind::Z, &[2, 1], &[0]);
        let p = KernelProgram::compile(&c);

        let mut fused = StateVector::zero(3);
        p.apply_state(&mut fused);
        let mut plain = StateVector::zero(3);
        for op in &c.ops {
            if let CircuitOp::Gate { gate, controls, targets } = op {
                plain.apply_naive(*gate, controls, targets);
            }
        }
        for (a, b) in fused.amplitudes().iter().zip(plain.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn apply_state_rejects_measuring_programs() {
        let mut c = Circuit::new(1);
        c.measure(0, 0);
        let p = KernelProgram::compile(&c);
        let result = std::panic::catch_unwind(|| {
            let mut s = StateVector::zero(1);
            p.apply_state(&mut s);
        });
        assert!(result.is_err());
    }
}
