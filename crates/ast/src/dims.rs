//! Dimension-variable and angle expressions.
//!
//! Qwerty supports *dimension variables*: functions polymorphic over an
//! integer dimension (§4, "AST expansion"). Dimension expressions appear in
//! types (`bit[N]`), tensor powers (`'p'[N]`), repetition (`f ** N`), and
//! angle arithmetic (`'1'@(180/N)`); expansion substitutes bindings and
//! folds everything to constants.

use crate::error::FrontendError;
use std::collections::HashMap;
use std::fmt;

/// An integer dimension expression.
#[derive(Debug, Clone, PartialEq)]
pub enum DimExpr {
    /// A constant.
    Const(i64),
    /// A dimension variable (e.g. `N`).
    Var(String),
    /// Sum.
    Add(Box<DimExpr>, Box<DimExpr>),
    /// Difference.
    Sub(Box<DimExpr>, Box<DimExpr>),
    /// Product.
    Mul(Box<DimExpr>, Box<DimExpr>),
}

impl DimExpr {
    /// Evaluates under `bindings`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::Dimension`] on unbound variables.
    pub fn eval(&self, bindings: &HashMap<String, i64>) -> Result<i64, FrontendError> {
        Ok(match self {
            DimExpr::Const(v) => *v,
            DimExpr::Var(name) => *bindings.get(name).ok_or_else(|| {
                FrontendError::dim_err(format!("unbound dimension variable {name}"))
            })?,
            DimExpr::Add(a, b) => a.eval(bindings)? + b.eval(bindings)?,
            DimExpr::Sub(a, b) => a.eval(bindings)? - b.eval(bindings)?,
            DimExpr::Mul(a, b) => a.eval(bindings)? * b.eval(bindings)?,
        })
    }

    /// Evaluates to a nonnegative qubit/bit count.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::Dimension`] on unbound variables or
    /// negative results.
    pub fn eval_usize(&self, bindings: &HashMap<String, i64>) -> Result<usize, FrontendError> {
        let v = self.eval(bindings)?;
        usize::try_from(v).map_err(|_| {
            FrontendError::dim_err(format!("dimension {self} evaluated to negative {v}"))
        })
    }

    /// The set of variables mentioned.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            DimExpr::Const(_) => {}
            DimExpr::Var(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            DimExpr::Add(a, b) | DimExpr::Sub(a, b) | DimExpr::Mul(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

impl fmt::Display for DimExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimExpr::Const(v) => write!(f, "{v}"),
            DimExpr::Var(name) => f.write_str(name),
            DimExpr::Add(a, b) => write!(f, "({a} + {b})"),
            DimExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            DimExpr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

/// An angle expression in degrees (Qwerty writes `bv@theta` with `theta` in
/// degrees, evoking `bv⟲theta`).
#[derive(Debug, Clone, PartialEq)]
pub enum AngleExpr {
    /// A literal number of degrees.
    Degrees(f64),
    /// A dimension variable used as a number.
    Dim(DimExpr),
    /// Sum.
    Add(Box<AngleExpr>, Box<AngleExpr>),
    /// Difference.
    Sub(Box<AngleExpr>, Box<AngleExpr>),
    /// Product.
    Mul(Box<AngleExpr>, Box<AngleExpr>),
    /// Quotient.
    Div(Box<AngleExpr>, Box<AngleExpr>),
    /// Negation.
    Neg(Box<AngleExpr>),
}

impl AngleExpr {
    /// Folds to radians under dimension bindings (the float constant
    /// folding of §4.2 happens here, during expansion).
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::Dimension`] on unbound variables or
    /// division by zero.
    pub fn eval_radians(&self, bindings: &HashMap<String, i64>) -> Result<f64, FrontendError> {
        Ok(self.eval_degrees(bindings)?.to_radians())
    }

    fn eval_degrees(&self, bindings: &HashMap<String, i64>) -> Result<f64, FrontendError> {
        Ok(match self {
            AngleExpr::Degrees(v) => *v,
            AngleExpr::Dim(d) => d.eval(bindings)? as f64,
            AngleExpr::Add(a, b) => a.eval_degrees(bindings)? + b.eval_degrees(bindings)?,
            AngleExpr::Sub(a, b) => a.eval_degrees(bindings)? - b.eval_degrees(bindings)?,
            AngleExpr::Mul(a, b) => a.eval_degrees(bindings)? * b.eval_degrees(bindings)?,
            AngleExpr::Div(a, b) => {
                let denom = b.eval_degrees(bindings)?;
                if denom == 0.0 {
                    return Err(FrontendError::dim_err(
                        "division by zero in angle expression".to_string(),
                    ));
                }
                a.eval_degrees(bindings)? / denom
            }
            AngleExpr::Neg(a) => -a.eval_degrees(bindings)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn dim_arithmetic() {
        let e = DimExpr::Add(
            Box::new(DimExpr::Mul(Box::new(DimExpr::Const(2)), Box::new(DimExpr::Var("N".into())))),
            Box::new(DimExpr::Const(1)),
        );
        assert_eq!(e.eval(&bind(&[("N", 4)])).unwrap(), 9);
        assert!(e.eval(&bind(&[])).is_err());
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["N".to_string()]);
    }

    #[test]
    fn negative_dimension_rejected() {
        let e = DimExpr::Sub(Box::new(DimExpr::Const(1)), Box::new(DimExpr::Const(3)));
        assert!(e.eval_usize(&bind(&[])).is_err());
    }

    #[test]
    fn angle_folding() {
        let e = AngleExpr::Div(
            Box::new(AngleExpr::Degrees(180.0)),
            Box::new(AngleExpr::Dim(DimExpr::Var("N".into()))),
        );
        let r = e.eval_radians(&bind(&[("N", 2)])).unwrap();
        assert!((r - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let zero_div =
            AngleExpr::Div(Box::new(AngleExpr::Degrees(1.0)), Box::new(AngleExpr::Degrees(0.0)));
        assert!(zero_div.eval_radians(&bind(&[])).is_err());
    }
}
