//! The Qwerty frontend: surface syntax, typed AST, dimension-variable
//! expansion, linear type checking, and AST canonicalization (§4 of the
//! ASDF paper).
//!
//! The published ASDF extracts `@qpu` / `@classical` Python functions via
//! the Python `ast` module and converts the untyped Python AST into a typed
//! Qwerty AST. This reproduction gives Qwerty a standalone text syntax that
//! maps 1:1 onto the same typed AST, so every downstream phase the paper
//! describes — expansion, type checking (including polynomial-time span
//! equivalence checking, §4.1), canonicalization (§4.2), and lowering —
//! operates exactly as published. Example program (Fig. 1):
//!
//! ```text
//! classical f[N](secret: bit[N], x: bit[N]) -> bit {
//!     (secret & x).xor_reduce()
//! }
//!
//! qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
//!     'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
//! }
//! ```
//!
//! Pipeline: [`parse::parse_program`] → [`expand::instantiate`] (dimension
//! variables inferred from captures and substituted; `f ** N` repetition
//! unrolled) → [`typecheck::typecheck_kernel`] (linear qubit types, basis
//! validation, span checking) → [`canon::canonicalize`] (the §4.2
//! rewrites) → the typed AST consumed by `asdf-core`.

pub mod ast;
pub mod canon;
pub mod diag;
pub mod dims;
pub mod error;
pub mod expand;
pub mod lex;
pub mod parse;
pub mod pretty;
pub mod tast;
pub mod typecheck;
pub mod types;

pub use ast::{ClassicalFunc, Item, Program, QpuFunc};
pub use diag::{line_col, Diagnostic, Label, LineCol, Severity, Span};
pub use error::FrontendError;
pub use expand::CaptureValue;
pub use tast::{TClassical, TExpr, TExprKind, TKernel};
pub use types::{Type, ValueKind};
