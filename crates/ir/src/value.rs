//! SSA values.

use std::fmt;

/// An SSA value identifier, scoped to one [`Func`]'s value arena.
///
/// Values are created by [`FuncBuilder`] methods and typed by the function's
/// arena; a `Value` from one function must never be used in another (the
/// verifier will catch out-of-range ids, but not cross-function confusion
/// of in-range ids).
///
/// [`Func`]: crate::Func
/// [`FuncBuilder`]: crate::FuncBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub(crate) u32);

impl Value {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a value from a raw arena index. Intended for analyses
    /// that store per-value data in dense vectors.
    pub fn from_index(index: usize) -> Self {
        Value(u32::try_from(index).expect("value index overflow"))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}
