//! Source spans and structured diagnostics.
//!
//! Every token the lexer produces carries a byte-offset [`Span`]; the
//! parser threads those spans onto AST nodes, and the type checker
//! attaches the span of the offending expression to every
//! [`FrontendError`](crate::FrontendError) it raises. A [`Diagnostic`]
//! is the renderable form: an error code, a severity, labeled spans,
//! and notes. [`Diagnostic::render`] maps byte offsets back to
//! line:column positions with [`line_col`] and prints a caret-underlined
//! source snippet:
//!
//! ```text
//! error[E0004]: piped value has type bit[2] but the function expects qubit[2]
//!   --> line 3, column 5
//!    |
//!  3 |     q | std[2].measure | std[2].measure
//!    |     ^^^^^^^^^^^^^^^^^^
//! ```

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end: end.max(start) }
    }

    /// A zero-width span at `offset` (e.g. end of input).
    pub fn at(offset: usize) -> Span {
        Span { start: offset, end: offset }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Whether this is the unknown/placeholder span.
    pub fn is_empty(self) -> bool {
        self.start == 0 && self.end == 0
    }
}

/// A 1-based line and column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column, counted in characters (not bytes).
    pub col: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps a byte offset into `source` to a 1-based line and column.
///
/// Columns count characters, so multi-byte UTF-8 sequences advance the
/// column by one. Offsets past the end of the source land one past the
/// last character of the final line.
///
/// # Example
///
/// ```
/// use asdf_ast::diag::line_col;
/// let src = "ab\ncde";
/// assert_eq!((line_col(src, 0).line, line_col(src, 0).col), (1, 1));
/// assert_eq!((line_col(src, 4).line, line_col(src, 4).col), (2, 2));
/// ```
pub fn line_col(source: &str, offset: usize) -> LineCol {
    let offset = floor_char_boundary(source, offset);
    let mut line = 1;
    let mut line_start = 0;
    for (i, b) in source.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    let col = source[line_start..offset].chars().count() + 1;
    LineCol { line, col }
}

/// The largest char boundary `<= offset` (clamped to the source length),
/// so byte offsets from arbitrary spans can never split a multi-byte
/// UTF-8 sequence when slicing.
fn floor_char_boundary(source: &str, offset: usize) -> usize {
    let mut offset = offset.min(source.len());
    while offset > 0 && !source.is_char_boundary(offset) {
        offset -= 1;
    }
    offset
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A hard error: compilation cannot continue.
    Error,
    /// A warning: compilation continues.
    Warning,
    /// Supplementary information attached to another diagnostic.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// A span with an optional message, pointing into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// The source range the label underlines.
    pub span: Span,
    /// Message printed after the carets (may be empty).
    pub message: String,
}

/// A structured, renderable compiler diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable error code, e.g. `E0004`.
    pub code: &'static str,
    /// Severity of the diagnostic.
    pub severity: Severity,
    /// Primary message.
    pub message: String,
    /// Labeled source ranges, primary first.
    pub labels: Vec<Label>,
    /// Free-form notes rendered after the snippet.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error-severity diagnostic with no labels.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A new warning-severity diagnostic with no labels (lint codes use
    /// the `W0xxx` namespace, mirroring the `E0xxx` error codes).
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attaches a labeled span.
    #[must_use]
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label { span, message: message.into() });
        self
    }

    /// Attaches a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic against the source it refers to, with
    /// line:column positions and a caret-underlined snippet per label.
    pub fn render(&self, source: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        for label in &self.labels {
            let lc = line_col(source, label.span.start);
            out.push_str(&format!("  --> line {}, column {}\n", lc.line, lc.col));
            let line_text = source.lines().nth(lc.line - 1).unwrap_or("");
            let gutter = format!("{:>3}", lc.line);
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {line_text}\n"));
            // Caret width: the labeled range clamped to this line, at
            // least one caret, counted in characters.
            let line_remaining = line_text.chars().count().saturating_sub(lc.col - 1);
            let span_chars = {
                let start = floor_char_boundary(source, label.span.start);
                let end = floor_char_boundary(source, label.span.end).max(start);
                source[start..end].chars().count().max(1)
            };
            let carets = span_chars.clamp(1, line_remaining.max(1));
            out.push_str(&format!("{pad} | {}{}", " ".repeat(lc.col - 1), "^".repeat(carets)));
            if !label.message.is_empty() {
                out.push(' ');
                out.push_str(&label.message);
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_maps_multi_line_input() {
        let src = "qpu k() -> bit {\n    '0' | std.measure\n}\n";
        // Offset 0: start of file.
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        // Offset of `'0'` on line 2: 17 bytes of line 1 + newline + 4 spaces.
        let offset = src.find("'0'").unwrap();
        assert_eq!(line_col(src, offset), LineCol { line: 2, col: 5 });
        // The closing brace on line 3.
        let offset = src.rfind('}').unwrap();
        assert_eq!(line_col(src, offset), LineCol { line: 3, col: 1 });
        // Past the end clamps to one past the final character.
        assert_eq!(line_col(src, src.len() + 10), LineCol { line: 4, col: 1 });
    }

    #[test]
    fn line_col_counts_characters_not_bytes() {
        let src = "# π comment\nx";
        let offset = src.find('x').unwrap();
        assert_eq!(line_col(src, offset), LineCol { line: 2, col: 1 });
        let offset = src.find("comment").unwrap();
        // `# π ` is 4 characters but 5 bytes.
        assert_eq!(line_col(src, offset), LineCol { line: 1, col: 5 });
    }

    #[test]
    fn render_underlines_the_labeled_range() {
        let src = "line one\nline two here\n";
        let span = Span::new(src.find("two").unwrap(), src.find("two").unwrap() + 3);
        let d = Diagnostic::error("E0004", "type error: something is off")
            .with_label(span, "this part")
            .with_note("see the manual");
        let rendered = d.render(src);
        assert!(rendered.contains("error[E0004]: type error: something is off"));
        assert!(rendered.contains("--> line 2, column 6"));
        assert!(rendered.contains("  2 | line two here"));
        assert!(rendered.contains("^^^ this part"));
        assert!(rendered.contains("= note: see the manual"));
    }

    #[test]
    fn render_survives_spans_inside_multi_byte_characters() {
        // A span whose end lands mid-character (as a byte-oriented lexer
        // could produce) must render, not panic.
        let src = "qpu k() -> bit { \u{03c0} }";
        let start = src.find('\u{03c0}').unwrap();
        let bad = Diagnostic::error("E0001", "lex error: unexpected character")
            .with_label(Span::new(start, start + 1), "");
        let rendered = bad.render(src);
        assert!(rendered.contains("error[E0001]"), "{rendered}");
        // line_col is equally safe on a mid-character offset.
        assert_eq!(line_col(src, start + 1).line, 1);
    }

    #[test]
    fn span_merging() {
        assert_eq!(Span::new(3, 7).to(Span::new(5, 12)), Span::new(3, 12));
        assert!(Span::default().is_empty());
        assert!(!Span::new(0, 1).is_empty());
    }
}
