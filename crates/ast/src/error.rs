//! Frontend errors.

use std::error::Error;
use std::fmt;

/// An error raised while lexing, parsing, expanding, or type checking a
/// Qwerty program.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset into the source.
        offset: usize,
        /// Description.
        message: String,
    },
    /// Parse error at a byte offset.
    Parse {
        /// Byte offset into the source.
        offset: usize,
        /// Description.
        message: String,
    },
    /// A dimension variable could not be inferred or evaluated.
    Dimension(String),
    /// A type error (includes linearity violations and basis
    /// well-formedness).
    Type(String),
    /// Span equivalence failed for a basis translation (§4.1).
    Span(String),
    /// A name was not found.
    Unbound(String),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            FrontendError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            FrontendError::Dimension(msg) => write!(f, "dimension error: {msg}"),
            FrontendError::Type(msg) => write!(f, "type error: {msg}"),
            FrontendError::Span(msg) => write!(f, "span equivalence error: {msg}"),
            FrontendError::Unbound(name) => write!(f, "unbound name: {name}"),
        }
    }
}

impl Error for FrontendError {}

impl From<asdf_basis::BasisError> for FrontendError {
    fn from(err: asdf_basis::BasisError) -> Self {
        match err {
            asdf_basis::BasisError::SpanMismatch(_)
            | asdf_basis::BasisError::DimensionMismatch { .. }
            | asdf_basis::BasisError::CannotFactor(_) => FrontendError::Span(err.to_string()),
            other => FrontendError::Type(other.to_string()),
        }
    }
}
