//! Cost of the lattice dataflow analyses and the asdf-lint driver.
//!
//! Lints are opt-in on the compile path, so their cost budget is "cheap
//! enough to leave on in a service": this bench measures the full
//! `lint_module` driver (three fixpoint analyses per function) and the
//! individual analyses over the post-pipeline modules of the paper
//! suite — the exact IR the session lints in production.

use asdf_baselines::Benchmark;
use asdf_bench::qwerty_program;
use asdf_core::{CompileOptions, Compiler};
use asdf_ir::Module;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// The post-pipeline modules of the paper suite at width `n`.
fn suite_modules(n: usize) -> Vec<(String, Module)> {
    Benchmark::paper_suite(n)
        .into_iter()
        .map(|(name, benchmark)| {
            let (src, kernel, captures, dims) = qwerty_program(&benchmark);
            let mut options = CompileOptions::default();
            options.dims.extend(dims);
            let compiled = Compiler::compile(&src, kernel, &captures, &options).unwrap();
            (name.to_string(), compiled.module)
        })
        .collect()
}

fn bench_lint_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint_module");
    for n in [8usize, 16] {
        for (name, module) in suite_modules(n) {
            group.bench_with_input(BenchmarkId::new(name, n), &module, |b, module| {
                b.iter(|| {
                    asdf_analysis::lint_module(module, &asdf_analysis::LintOptions::default())
                });
            });
        }
    }
    group.finish();
}

fn bench_individual_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_fixpoint");
    let modules = suite_modules(16);
    let Some((name, module)) = modules.into_iter().next() else {
        return;
    };
    let funcs: Vec<_> = module.func_names();
    group.bench_function(format!("measure/{name}"), |b| {
        b.iter(|| {
            for f in &funcs {
                let func = module.expect_func(f).unwrap();
                let mut analysis = asdf_analysis::MeasureAnalysis;
                criterion::black_box(asdf_analysis::analyze(func, &mut analysis));
            }
        });
    });
    group.bench_function(format!("liveness/{name}"), |b| {
        b.iter(|| {
            for f in &funcs {
                let func = module.expect_func(f).unwrap();
                let mut analysis = asdf_analysis::LivenessAnalysis;
                criterion::black_box(asdf_analysis::analyze(func, &mut analysis));
            }
        });
    });
    group.bench_function(format!("state/{name}"), |b| {
        b.iter(|| {
            for f in &funcs {
                let func = module.expect_func(f).unwrap();
                let mut analysis = asdf_analysis::StateAnalysis;
                criterion::black_box(asdf_analysis::analyze(func, &mut analysis));
            }
        });
    });
    group.bench_function(format!("clifford_summary/{name}"), |b| {
        b.iter(|| criterion::black_box(asdf_analysis::summarize_module(&module)));
    });
    group.finish();
}

criterion_group!(benches, bench_lint_driver, bench_individual_analyses);
criterion_main!(benches);
