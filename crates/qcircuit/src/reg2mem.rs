//! SSA-to-register conversion ("a process akin to reg2mem in QSSA", §7).
//!
//! OpenQASM 3 has no SSA values, so qubit dataflow must become register
//! accesses: each `qalloc` claims a register (reusing freed registers via a
//! free list), gates thread each operand qubit's register through to the
//! corresponding result, and `qfree`/`qfreez` return registers to the
//! pool.

use crate::circuit::Circuit;
use asdf_ir::{Func, IrError, OpKind, Type, Value};
use std::collections::HashMap;

/// Converts a fully-lowered, straight-line QCircuit-dialect function into a
/// [`Circuit`].
///
/// The function must contain only `qalloc`, `qfree`, `qfreez`, `gate`,
/// `measure`, classical constants, and `return`; anything else (calls,
/// callables, control flow) means inlining did not finish, which mirrors
/// the paper's note that OpenQASM 3 generation "is currently dependent on
/// inlining succeeding" (§7).
///
/// # Errors
///
/// Returns [`IrError::Unsupported`] when a non-straight-line op remains.
pub fn lower_to_circuit(func: &Func) -> Result<Circuit, IrError> {
    let mut circuit = Circuit::new(0);
    // Values map to register lists: single qubits map to one register,
    // qbundle values (function arguments and pack results) to several.
    let mut regs_of: HashMap<Value, Vec<usize>> = HashMap::new();
    let mut free_list: Vec<usize> = Vec::new();
    let mut next_bit = 0usize;

    // Classical bit ordering: if the function returns a bitbundle built by
    // a final bitpack, the pack's operand order defines the output bit
    // indices (measurements may occur in any order).
    let mut bit_index_of: HashMap<Value, usize> = HashMap::new();
    if let Some(ret) = func.body.terminator() {
        for ret_operand in &ret.operands {
            for op in &func.body.ops {
                if matches!(op.kind, OpKind::BitPack) && op.results.contains(ret_operand) {
                    for (i, bit) in op.operands.iter().enumerate() {
                        bit_index_of.insert(*bit, i);
                    }
                }
            }
        }
    }

    // Function arguments of qubit/qbundle type get dedicated registers
    // (kernels with qubit parameters, e.g. a standalone subroutine).
    for &arg in &func.body.args {
        match func.value_type(arg) {
            Type::Qubit => {
                let reg = circuit.add_qubit();
                regs_of.insert(arg, vec![reg]);
            }
            Type::QBundle(n) => {
                let regs: Vec<usize> = (0..*n).map(|_| circuit.add_qubit()).collect();
                regs_of.insert(arg, regs);
            }
            _ => {}
        }
    }

    for (idx, op) in func.body.ops.iter().enumerate() {
        match &op.kind {
            OpKind::QAlloc => {
                let reg = free_list.pop().unwrap_or_else(|| circuit.add_qubit());
                regs_of.insert(op.results[0], vec![reg]);
            }
            OpKind::QFree => {
                let reg = single_reg(&regs_of, op.operands[0], idx)?;
                circuit.reset(reg);
                free_list.push(reg);
            }
            OpKind::QFreeZ => {
                let reg = single_reg(&regs_of, op.operands[0], idx)?;
                free_list.push(reg);
            }
            OpKind::QbUnpack => {
                let regs = regs_of
                    .get(&op.operands[0])
                    .cloned()
                    .ok_or_else(|| untracked(op.operands[0], idx))?;
                for (result, reg) in op.results.iter().zip(regs) {
                    regs_of.insert(*result, vec![reg]);
                }
            }
            OpKind::QbPack => {
                let mut regs = Vec::with_capacity(op.operands.len());
                for v in &op.operands {
                    regs.extend(regs_of.get(v).cloned().ok_or_else(|| untracked(*v, idx))?);
                }
                regs_of.insert(op.results[0], regs);
            }
            OpKind::Gate { gate, num_controls } => {
                let regs: Vec<usize> = op
                    .operands
                    .iter()
                    .map(|v| single_reg(&regs_of, *v, idx))
                    .collect::<Result<_, _>>()?;
                circuit.gate(*gate, &regs[..*num_controls], &regs[*num_controls..]);
                for (operand_reg, result) in regs.iter().zip(&op.results) {
                    regs_of.insert(*result, vec![*operand_reg]);
                }
            }
            OpKind::Measure => {
                let r = single_reg(&regs_of, op.operands[0], idx)?;
                let bit = bit_index_of.get(&op.results[1]).copied().unwrap_or_else(|| {
                    let b = next_bit;
                    next_bit += 1;
                    b
                });
                circuit.measure(r, bit);
                regs_of.insert(op.results[0], vec![r]);
            }
            OpKind::Return => {}
            // Classical bookkeeping ops carry no quantum state.
            OpKind::BitPack | OpKind::BitUnpack => {}
            OpKind::ConstF64 { .. } | OpKind::ConstI1 { .. } => {}
            other => {
                return Err(IrError::Unsupported(format!(
                    "op {} survives lowering; inlining/lowering incomplete",
                    other.mnemonic()
                )))
            }
        }
    }
    Ok(circuit)
}

fn single_reg(map: &HashMap<Value, Vec<usize>>, v: Value, idx: usize) -> Result<usize, IrError> {
    match map.get(&v) {
        Some(regs) if regs.len() == 1 => Ok(regs[0]),
        Some(regs) => Err(IrError::Unsupported(format!(
            "op {idx} expects a single qubit but value {v} carries {} registers",
            regs.len()
        ))),
        None => Err(untracked(v, idx)),
    }
}

fn untracked(v: Value, idx: usize) -> IrError {
    IrError::Unsupported(format!("op {idx} reads qubit value {v} with no register"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::{FuncBuilder, FuncType, GateKind, Visibility};

    #[test]
    fn allocates_and_reuses_registers() {
        let mut b = FuncBuilder::new(
            "k",
            FuncType::new(vec![], vec![Type::I1, Type::I1], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        // First qubit: H then measure, then free.
        let q0 = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let h0 = bb.push(
            OpKind::Gate { gate: GateKind::H, num_controls: 0 },
            vec![q0[0]],
            vec![Type::Qubit],
        );
        let m0 = bb.push(OpKind::Measure, vec![h0[0]], vec![Type::Qubit, Type::I1]);
        bb.push(OpKind::QFree, vec![m0[0]], vec![]);
        // Second qubit: allocated after the free, reuses register 0.
        let q1 = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let m1 = bb.push(OpKind::Measure, vec![q1[0]], vec![Type::Qubit, Type::I1]);
        bb.push(OpKind::QFreeZ, vec![m1[0]], vec![]);
        bb.push(OpKind::Return, vec![m0[1], m1[1]], vec![]);
        let func = b.finish();
        asdf_ir::verify::verify_func(&func, None).unwrap();

        let circuit = lower_to_circuit(&func).unwrap();
        assert_eq!(circuit.num_qubits, 1, "freed register was reused");
        assert_eq!(circuit.num_bits(), 2);
        assert_eq!(circuit.measure_count(), 2);
        // qfree emitted a reset.
        assert!(circuit.ops.iter().any(|op| matches!(op, crate::circuit::CircuitOp::Reset { .. })));
    }

    #[test]
    fn gate_controls_map_through() {
        let mut b = FuncBuilder::new("k", FuncType::new(vec![], vec![], false), Visibility::Public);
        let mut bb = b.block();
        let a = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let c = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let g = bb.push(
            OpKind::Gate { gate: GateKind::X, num_controls: 1 },
            vec![a[0], c[0]],
            vec![Type::Qubit, Type::Qubit],
        );
        bb.push(OpKind::QFreeZ, vec![g[0]], vec![]);
        bb.push(OpKind::QFreeZ, vec![g[1]], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let circuit = lower_to_circuit(&b.finish()).unwrap();
        assert_eq!(circuit.num_qubits, 2);
        let crate::circuit::CircuitOp::Gate { controls, targets, .. } = &circuit.ops[0] else {
            panic!()
        };
        assert_eq!((controls[0], targets[0]), (0, 1));
    }

    #[test]
    fn rejects_unlowered_ops() {
        let mut b = FuncBuilder::new("k", FuncType::new(vec![], vec![], false), Visibility::Public);
        let mut bb = b.block();
        bb.push(OpKind::CallableCreate { symbol: "f".into() }, vec![], vec![Type::Callable]);
        bb.push(OpKind::Return, vec![], vec![]);
        assert!(lower_to_circuit(&b.finish()).is_err());
    }
}
