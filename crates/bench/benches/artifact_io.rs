//! Artifact I/O bench: serialization throughput and the cold-start win
//! of the persistent disk cache.
//!
//! Four measurements on the Fig. 1 Bernstein–Vazirani program:
//!
//! - **encode** — [`Artifact::encode`] of the compiled artifact;
//! - **decode** — [`Artifact::decode`] (full validation: checksum,
//!   section bounds, content hash) of the encoded bytes;
//! - **pipeline cold start** — a fresh [`Session`] compiling from
//!   scratch (parse + frontend + full pass pipeline);
//! - **disk-hit cold start** — a fresh [`Session`] over a warm cache
//!   directory: parse + frontend + disk decode, zero pipeline runs.
//!
//! Each run appends a trajectory point to `BENCH_compile.json` at the
//! repo root. `--smoke` (or env `ARTIFACT_IO_SMOKE=1`) shrinks the
//! workload for CI.

use asdf_artifact::Artifact;
use asdf_ast::CaptureValue;
use asdf_core::{compiled_to_artifact, CompileRequest, Session};
use criterion::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BV_SRC: &str = r"
    classical f[N](secret: bit[N], x: bit[N]) -> bit {
        (secret & x).xor_reduce()
    }
    qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
        'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
    }
";

fn bv_request(secret: &str) -> CompileRequest {
    CompileRequest::kernel("kernel").with_capture(CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(secret)],
    })
}

/// Median wall-clock of `samples` runs (after one warmup).
fn median_time<O>(samples: usize, mut f: impl FnMut() -> O) -> Duration {
    black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn append_trajectory_point(point: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_compile.json");
    let rewritten = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) => {
                    let body = body.trim_end();
                    if body.ends_with('[') {
                        format!("{body}\n  {point}\n]\n")
                    } else {
                        format!("{body},\n  {point}\n]\n")
                    }
                }
                None => format!("[\n  {point}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {point}\n]\n"),
    };
    match std::fs::write(&path, rewritten) {
        Ok(()) => println!("trajectory point appended to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("ARTIFACT_IO_SMOKE").is_ok_and(|v| v == "1");
    let (secret, samples, codec_batch) = if smoke { ("1101", 10, 50) } else { ("110100", 30, 500) };
    let request = bv_request(secret);
    println!(
        "artifact_io: BV secret {secret}, {samples} samples{}",
        if smoke { " (smoke)" } else { "" }
    );

    // Compile once; all codec measurements work over this artifact.
    let session = Session::new(BV_SRC).unwrap();
    let compiled = session.compile(&request).unwrap();
    let artifact = compiled_to_artifact(&compiled, vec![0xbe, 0xc4]);
    let bytes = artifact.encode();
    let size = bytes.len();

    let encode_total = median_time(samples, || {
        for _ in 0..codec_batch {
            black_box(artifact.encode());
        }
    });
    let encode = encode_total / codec_batch as u32;
    let decode_total = median_time(samples, || {
        for _ in 0..codec_batch {
            black_box(Artifact::decode(&bytes).unwrap());
        }
    });
    let decode = decode_total / codec_batch as u32;
    let mib = size as f64 / (1024.0 * 1024.0);
    println!(
        "encode              median {:>10.3?}  ({:>8.1} MiB/s, {size} bytes)",
        encode,
        mib / encode.as_secs_f64()
    );
    println!(
        "decode              median {:>10.3?}  ({:>8.1} MiB/s)",
        decode,
        mib / decode.as_secs_f64()
    );

    // Cold start, both ways: full pipeline vs disk hit.
    let dir = std::env::temp_dir().join(format!("asdf-bench-artifact-io-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pipeline_cold = median_time(samples, || {
        let session = Session::new(BV_SRC).unwrap();
        session.compile(&request).unwrap()
    });
    // Warm the cache directory once, then measure fresh sessions over it.
    Session::builder(BV_SRC).disk_cache(&dir).build().unwrap().compile(&request).unwrap();
    let disk_cold = median_time(samples, || {
        let session = Session::builder(BV_SRC).disk_cache(&dir).build().unwrap();
        let compiled = session.compile(&request).unwrap();
        assert_eq!(session.cache_stats().artifact_misses, 0, "must be a disk hit");
        compiled
    });
    let cold_start_speedup = pipeline_cold.as_secs_f64() / disk_cold.as_secs_f64();
    println!(
        "cold start          pipeline {pipeline_cold:>10.3?} vs disk hit {disk_cold:>10.3?}   speedup {cold_start_speedup:.2}x"
    );
    assert!(
        cold_start_speedup >= 1.0,
        "acceptance: a disk hit must not be slower than the full pipeline, got {cold_start_speedup:.2}x"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let point = format!(
        "{{\"bench\": \"artifact_io\", \"mode\": \"{}\", \"program\": \"bv\", \
         \"artifact_bytes\": {size}, \"encode_us\": {:.3}, \"decode_us\": {:.3}, \
         \"pipeline_cold_us\": {:.1}, \"disk_cold_us\": {:.1}, \"cold_start_speedup\": {:.2}}}",
        if smoke { "smoke" } else { "full" },
        us(encode),
        us(decode),
        us(pipeline_cold),
        us(disk_cold),
        cold_start_speedup,
    );
    append_trajectory_point(&point);
}
