//! XOR-AND-inverter graphs (XAGs): the classical logic network ASDF builds
//! from `@classical` functions via mockturtle (§6.4).
//!
//! Nodes are n-ary `And` / `Xor` over complementable signals, with the
//! classical optimizations the paper relies on applied during
//! construction: constant folding, operand flattening (so `and_reduce`
//! over N bits becomes one N-ary AND, which embeds as one N-controlled X —
//! the shape Fig. 10's relaxed peephole targets), duplicate-operand
//! folding, and structural hashing.

use std::collections::HashMap;
use std::fmt;

/// A reference to a node output, possibly complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal {
    node: u32,
    inverted: bool,
}

impl Signal {
    /// The complemented signal.
    #[allow(clippy::should_implement_trait)] // named after XAG terminology
    pub fn not(self) -> Signal {
        Signal { node: self.node, inverted: !self.inverted }
    }

    /// The node this signal reads.
    pub fn node(self) -> usize {
        self.node as usize
    }

    /// Whether the signal complements the node output.
    pub fn is_inverted(self) -> bool {
        self.inverted
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    /// Constant false (node 0 only).
    ConstFalse,
    /// Primary input.
    Input(u32),
    /// N-ary AND of at least two signals.
    And(Vec<Signal>),
    /// N-ary XOR of at least two non-inverted signals (inversions are
    /// hoisted into the consuming signal).
    Xor(Vec<Signal>),
}

/// An XOR-AND-inverter graph with primary inputs and outputs.
///
/// # Example
///
/// ```
/// use asdf_logic::Xag;
///
/// // f(a, b) = a AND (NOT b)
/// let mut g = Xag::new(2);
/// let a = g.input(0);
/// let b = g.input(1);
/// let f = g.and2(a, b.not());
/// g.set_outputs(vec![f]);
/// assert_eq!(g.eval(&[true, false]), vec![true]);
/// assert_eq!(g.eval(&[true, true]), vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct Xag {
    nodes: Vec<Node>,
    num_inputs: usize,
    outputs: Vec<Signal>,
    hash: HashMap<Node, u32>,
}

impl Xag {
    /// A network with `num_inputs` primary inputs and no outputs yet.
    pub fn new(num_inputs: usize) -> Self {
        let mut nodes = vec![Node::ConstFalse];
        for i in 0..num_inputs {
            nodes.push(Node::Input(i as u32));
        }
        Xag { nodes, num_inputs, outputs: Vec::new(), hash: HashMap::new() }
    }

    /// The constant-false signal.
    pub fn const_false(&self) -> Signal {
        Signal { node: 0, inverted: false }
    }

    /// The constant-true signal.
    pub fn const_true(&self) -> Signal {
        Signal { node: 0, inverted: true }
    }

    /// The signal for primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input(&self, i: usize) -> Signal {
        assert!(i < self.num_inputs, "input {i} out of range");
        Signal { node: (i + 1) as u32, inverted: false }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Declares the network outputs.
    pub fn set_outputs(&mut self, outputs: Vec<Signal>) {
        self.outputs = outputs;
    }

    /// The declared outputs.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Whether a signal is one of the two constants; returns its value.
    pub fn as_const(&self, s: Signal) -> Option<bool> {
        matches!(self.nodes[s.node()], Node::ConstFalse).then_some(s.inverted)
    }

    fn intern(&mut self, node: Node) -> Signal {
        if let Some(&id) = self.hash.get(&node) {
            return Signal { node: id, inverted: false };
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(node.clone());
        self.hash.insert(node, id);
        Signal { node: id, inverted: false }
    }

    /// Binary AND with folding.
    pub fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        self.and_many(vec![a, b])
    }

    /// N-ary AND with flattening and folding: nested non-inverted ANDs are
    /// inlined, constants folded, duplicates removed, and `a AND NOT a`
    /// collapses to false.
    pub fn and_many(&mut self, operands: Vec<Signal>) -> Signal {
        let mut flat: Vec<Signal> = Vec::new();
        let mut stack = operands;
        stack.reverse();
        while let Some(s) = stack.pop() {
            if let Some(value) = self.as_const(s) {
                if !value {
                    return self.const_false();
                }
                continue; // AND with true is dropped.
            }
            match &self.nodes[s.node()] {
                Node::And(inner) if !s.inverted => {
                    for v in inner.iter().rev() {
                        stack.push(*v);
                    }
                }
                _ => flat.push(s),
            }
        }
        flat.sort();
        flat.dedup();
        for w in flat.windows(2) {
            if w[0].node == w[1].node {
                return self.const_false(); // a AND NOT a
            }
        }
        match flat.len() {
            0 => self.const_true(),
            1 => flat[0],
            _ => self.intern(Node::And(flat)),
        }
    }

    /// Binary XOR with folding.
    pub fn xor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.xor_many(vec![a, b])
    }

    /// N-ary XOR with flattening and folding: nested XORs are inlined,
    /// inversions hoisted out as an output complement, constants folded,
    /// and duplicate operands cancelled (GF(2)).
    pub fn xor_many(&mut self, operands: Vec<Signal>) -> Signal {
        let mut parity = false;
        let mut flat: Vec<Signal> = Vec::new();
        let mut stack = operands;
        stack.reverse();
        while let Some(s) = stack.pop() {
            if let Some(value) = self.as_const(s) {
                parity ^= value;
                continue;
            }
            let plain = Signal { node: s.node, inverted: false };
            parity ^= s.inverted;
            match &self.nodes[plain.node()] {
                Node::Xor(inner) => {
                    for v in inner.iter().rev() {
                        stack.push(*v);
                    }
                }
                _ => flat.push(plain),
            }
        }
        flat.sort();
        // Cancel pairs (a XOR a = 0).
        let mut cancelled: Vec<Signal> = Vec::new();
        for s in flat {
            if cancelled.last() == Some(&s) {
                cancelled.pop();
            } else {
                cancelled.push(s);
            }
        }
        let base = match cancelled.len() {
            0 => self.const_false(),
            1 => cancelled[0],
            _ => self.intern(Node::Xor(cancelled)),
        };
        if parity {
            base.not()
        } else {
            base
        }
    }

    /// Evaluates the network on classical inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input width mismatch");
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                Node::ConstFalse => false,
                Node::Input(k) => inputs[*k as usize],
                Node::And(ops) => ops.iter().all(|s| values[s.node()] ^ s.inverted),
                Node::Xor(ops) => {
                    ops.iter().fold(false, |acc, s| acc ^ (values[s.node()] ^ s.inverted))
                }
            };
        }
        self.outputs.iter().map(|s| values[s.node()] ^ s.inverted).collect()
    }

    /// AND nodes reachable from the outputs, in topological order. These
    /// are the nodes that cost an ancilla in the tweedledum-style
    /// embedding.
    pub fn live_and_nodes(&self) -> Vec<usize> {
        let live = self.live_set();
        (0..self.nodes.len())
            .filter(|&i| live[i] && matches!(self.nodes[i], Node::And(_)))
            .collect()
    }

    /// All nodes reachable from the outputs, in topological order.
    pub fn live_nodes(&self) -> Vec<usize> {
        let live = self.live_set();
        (0..self.nodes.len()).filter(|&i| live[i]).collect()
    }

    fn live_set(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|s| s.node()).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            match &self.nodes[i] {
                Node::And(ops) | Node::Xor(ops) => {
                    stack.extend(ops.iter().map(|s| s.node()));
                }
                _ => {}
            }
        }
        live
    }

    /// The operand signals of an AND/XOR node.
    ///
    /// # Panics
    ///
    /// Panics if the node is an input or constant.
    pub fn node_operands(&self, node: usize) -> &[Signal] {
        match &self.nodes[node] {
            Node::And(ops) | Node::Xor(ops) => ops,
            other => panic!("node {node} ({other:?}) has no operands"),
        }
    }

    /// Whether a node is an AND node.
    pub fn is_and(&self, node: usize) -> bool {
        matches!(self.nodes[node], Node::And(_))
    }

    /// Whether a node is an XOR node.
    pub fn is_xor(&self, node: usize) -> bool {
        matches!(self.nodes[node], Node::Xor(_))
    }

    /// Whether a node is a primary input; returns its index.
    pub fn as_input(&self, node: usize) -> Option<usize> {
        match self.nodes[node] {
            Node::Input(k) => Some(k as usize),
            _ => None,
        }
    }

    /// The *parity support* of a signal: the set of input/AND nodes whose
    /// XOR (plus a constant) equals the signal. This is what lets XOR
    /// chains compile to in-place CNOTs with no ancillas (§8.3).
    pub fn parity_support(&self, signal: Signal) -> (Vec<usize>, bool) {
        let mut support: Vec<usize> = Vec::new();
        let mut parity = signal.inverted;
        let mut stack = vec![signal.node()];
        while let Some(node) = stack.pop() {
            match &self.nodes[node] {
                Node::ConstFalse => {}
                Node::Input(_) | Node::And(_) => support.push(node),
                Node::Xor(ops) => {
                    for s in ops {
                        parity ^= s.inverted;
                        stack.push(s.node());
                    }
                }
            }
        }
        support.sort_unstable();
        // XOR cancels duplicate support entries pairwise.
        let mut cancelled: Vec<usize> = Vec::new();
        for node in support {
            if cancelled.last() == Some(&node) {
                cancelled.pop();
            } else {
                cancelled.push(node);
            }
        }
        (cancelled, parity)
    }
}

impl fmt::Display for Xag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "xag: {} inputs, {} nodes, {} outputs",
            self.num_inputs,
            self.nodes.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Xag::new(1);
        let a = g.input(0);
        assert_eq!(g.and2(a, g.const_false()), g.const_false());
        assert_eq!(g.and2(a, g.const_true()), a);
        assert_eq!(g.and2(a, a), a);
        assert_eq!(g.and2(a, a.not()), g.const_false());
        assert_eq!(g.xor2(a, g.const_false()), a);
        assert_eq!(g.xor2(a, g.const_true()), a.not());
        assert_eq!(g.xor2(a, a), g.const_false());
        assert_eq!(g.xor2(a, a.not()), g.const_true());
    }

    #[test]
    fn structural_hashing_dedupes() {
        let mut g = Xag::new(2);
        let (a, b) = (g.input(0), g.input(1));
        let x = g.and2(a, b);
        let y = g.and2(b, a);
        assert_eq!(x, y, "commuted operands intern to one node");
    }

    #[test]
    fn and_reduce_flattens_to_one_node() {
        // and_reduce over 8 bits: one 8-ary AND node, one ancilla later.
        let mut g = Xag::new(8);
        let mut acc = g.input(0);
        for i in 1..8 {
            let next = g.input(i);
            acc = g.and2(acc, next);
        }
        g.set_outputs(vec![acc]);
        assert_eq!(g.live_and_nodes().len(), 1);
        assert_eq!(g.node_operands(acc.node()).len(), 8);
        assert_eq!(g.eval(&[true; 8]), vec![true]);
        assert_eq!(g.eval(&[false; 8]), vec![false]);
    }

    #[test]
    fn xor_reduce_has_no_and_nodes() {
        let mut g = Xag::new(6);
        let mut acc = g.input(0);
        for i in 1..6 {
            let next = g.input(i);
            acc = g.xor2(acc, next);
        }
        g.set_outputs(vec![acc]);
        assert!(g.live_and_nodes().is_empty());
        assert_eq!(g.eval(&[true, true, false, false, false, false]), vec![false]);
        assert_eq!(g.eval(&[true, false, false, false, false, true]), vec![false]);
        assert_eq!(g.eval(&[true, false, false, false, false, false]), vec![true]);
    }

    #[test]
    fn parity_support_cancels() {
        let mut g = Xag::new(3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let ab = g.xor2(a, b);
        let abc = g.xor2(ab, c);
        let back = g.xor2(abc, b); // b cancels
        let (support, parity) = g.parity_support(back);
        assert_eq!(support, vec![a.node(), c.node()]);
        assert!(!parity);
        let (_, parity_inv) = g.parity_support(back.not());
        assert!(parity_inv);
    }

    #[test]
    fn bv_oracle_shape() {
        // (secret & x).xor_reduce() with constant secret folds to a parity
        // of the selected inputs: no AND nodes at all.
        let secret = [true, false, true, false];
        let mut g = Xag::new(4);
        let mut terms = Vec::new();
        for (i, &s) in secret.iter().enumerate() {
            let xin = g.input(i);
            let bit = if s { xin } else { g.const_false() };
            terms.push(bit);
        }
        let out = g.xor_many(terms);
        g.set_outputs(vec![out]);
        assert!(g.live_and_nodes().is_empty());
        assert_eq!(g.eval(&[true, true, false, true]), vec![true]);
        assert_eq!(g.eval(&[true, true, true, true]), vec![false]);
    }
}
