//! Qwerty IR canonicalization (§5.4 and Appendix C).
//!
//! The paper's sequence: (1) lift all lambdas to funcs referenced by
//! `func_const`s; (2) canonicalize so every
//! `call_indirect(func_const @f)()` becomes `call @f()` — including
//! patterns through `func_adj`/`func_pred`, which fold into `adj`/`pred`
//! call attributes; (3) inline repeatedly. The Appendix C patterns push
//! `call_indirect`/`func_adj`/`func_pred` into the forks of an `scf.if`
//! that defines their callee.

use crate::error::CoreError;
use asdf_ir::block::BlockPath;
use asdf_ir::clone::clone_ops_into;
use asdf_ir::rewrite::{GreedyRewriteDriver, PatternSet, RewriteConfig, RewritePattern, Rewriter};
use asdf_ir::{Func, FuncBuilder, Module, Op, OpKind, Value, Visibility};
use std::collections::HashMap;

/// The Qwerty-level canonicalization patterns as a [`PatternSet`].
pub fn qwerty_patterns() -> PatternSet {
    let mut set = PatternSet::new();
    set.add(Box::new(FoldDoubleAdj));
    set.add(Box::new(IndirectToDirect));
    set.add(Box::new(IfPushdown));
    set.add(Box::new(AdjPredIfPushdown));
    set
}

/// A worklist driver loaded with the Qwerty-level patterns.
pub fn qwerty_canonicalizer() -> GreedyRewriteDriver {
    GreedyRewriteDriver::from_patterns(qwerty_patterns())
}

/// [`qwerty_canonicalizer`] under an explicit configuration (fuel, trace).
pub fn qwerty_canonicalizer_with(config: RewriteConfig) -> GreedyRewriteDriver {
    GreedyRewriteDriver::with_config(qwerty_patterns(), config)
}

/// Lambda lifting (§5.4 step 1): replaces every `lambda` op with a private
/// func plus `func_const`. Captures are *rematerialized* — the pure
/// classical ops defining them are cloned into the lifted function — which
/// covers everything Qwerty lowering produces (constants, `func_const`s,
/// other lambdas, `func_adj`/`func_pred` wrappers).
///
/// # Errors
///
/// Returns [`CoreError::Unsupported`] if a capture is not rematerializable.
pub fn lift_lambdas(module: &mut Module) -> Result<usize, CoreError> {
    let mut lifted = 0usize;
    loop {
        let Some((func_name, path, op_idx)) = find_lambda(module) else {
            return Ok(lifted);
        };
        lift_one(module, &func_name, &path, op_idx)?;
        lifted += 1;
    }
}

fn find_lambda(module: &Module) -> Option<(String, BlockPath, usize)> {
    for func in module.funcs() {
        for path in func.block_paths() {
            for (i, op) in func.block_at(&path).ops.iter().enumerate() {
                if matches!(op.kind, OpKind::Lambda { .. }) {
                    return Some((func.name.clone(), path, i));
                }
            }
        }
    }
    None
}

fn lift_one(
    module: &mut Module,
    func_name: &str,
    path: &BlockPath,
    op_idx: usize,
) -> Result<(), CoreError> {
    let name = module.fresh_name("lambda");
    let src = module.expect_func(func_name)?.clone();
    let op = &src.block_at(path).ops[op_idx];
    let OpKind::Lambda { func_ty } = &op.kind else {
        return Err(CoreError::Ir("lift target is not a lambda".into()));
    };

    let builder = FuncBuilder::new(&name, func_ty.clone(), Visibility::Private);
    let new_args = builder.args().to_vec();
    let mut lifted = builder.finish();

    // Map lambda-block params (after captures) to the new func's args.
    let block = op.regions[0].only_block();
    let num_captures = op.operands.len();
    let mut map: HashMap<Value, Value> = HashMap::new();
    for (param, arg) in block.args[num_captures..].iter().zip(new_args) {
        map.insert(*param, arg);
    }

    // Rematerialize captures: clone the pure defining slices.
    let defs = whole_func_defs(&src);
    let mut remat_ops: Vec<Op> = Vec::new();
    for (capture, block_arg) in op.operands.iter().zip(&block.args[..num_captures]) {
        let v = rematerialize(&src, &defs, *capture, &mut lifted, &mut map, &mut remat_ops)?;
        map.insert(*block_arg, v);
    }

    // Clone the body.
    let body_ops = clone_ops_into(&src, &block.ops, &mut lifted, &mut map);
    lifted.body.ops = remat_ops;
    lifted.body.ops.extend(body_ops);
    module.add_func(lifted);

    // Replace the lambda with a func_const.
    let func = module.func_mut(func_name).expect("source func exists");
    let results = func.block_at(path).ops[op_idx].results.clone();
    func.block_at_mut(path).ops[op_idx] =
        Op::new(OpKind::FuncConst { symbol: name }, vec![], results);
    Ok(())
}

/// value -> (path, op index) for every op-defined value in the function.
fn whole_func_defs(func: &Func) -> HashMap<Value, (BlockPath, usize)> {
    let mut defs = HashMap::new();
    for path in func.block_paths() {
        for (i, op) in func.block_at(&path).ops.iter().enumerate() {
            for r in &op.results {
                defs.insert(*r, (path.clone(), i));
            }
        }
    }
    defs
}

/// Clones the pure-classical backward slice of `v` into `dest`.
fn rematerialize(
    src: &Func,
    defs: &HashMap<Value, (BlockPath, usize)>,
    v: Value,
    dest: &mut Func,
    map: &mut HashMap<Value, Value>,
    out_ops: &mut Vec<Op>,
) -> Result<Value, CoreError> {
    if let Some(mapped) = map.get(&v) {
        return Ok(*mapped);
    }
    let Some((path, op_idx)) = defs.get(&v) else {
        return Err(CoreError::Unsupported(format!(
            "lambda capture {v} is a block argument and cannot be rematerialized"
        )));
    };
    let op = src.block_at(path).ops[*op_idx].clone();
    if !op.kind.is_pure_classical() {
        return Err(CoreError::Unsupported(format!(
            "lambda capture {v} is defined by non-pure op {}",
            op.kind.mnemonic()
        )));
    }
    for operand in &op.operands {
        rematerialize(src, defs, *operand, dest, map, out_ops)?;
    }
    let cloned = clone_ops_into(src, std::slice::from_ref(&op), dest, map);
    out_ops.extend(cloned);
    Ok(map[&v])
}

/// `func_adj(func_adj(x))` → `x`.
pub struct FoldDoubleAdj;

impl RewritePattern for FoldDoubleAdj {
    fn name(&self) -> &'static str {
        "fold-double-adj"
    }

    fn benefit(&self) -> usize {
        2
    }

    fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
        let op = rw.op();
        if !matches!(op.kind, OpKind::FuncAdj) {
            return false;
        }
        let inner = op.operands[0];
        let result = op.results[0];
        let Some((inner_idx, _)) = rw.find_def(inner) else {
            return false;
        };
        let inner_op = &rw.block().ops[inner_idx];
        if !matches!(inner_op.kind, OpKind::FuncAdj) {
            return false;
        }
        let original = inner_op.operands[0];
        rw.erase_root();
        rw.replace_all_uses(result, original);
        true
    }
}

/// `call_indirect` through `func_adj`/`func_pred` wrappers of a
/// `func_const @f` → `call [adj] [pred(b)] @f` (§5.4's worked example).
pub struct IndirectToDirect;

impl RewritePattern for IndirectToDirect {
    fn name(&self) -> &'static str {
        "indirect-to-direct-call"
    }

    fn benefit(&self) -> usize {
        2
    }

    fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
        let op = rw.op();
        if !matches!(op.kind, OpKind::CallIndirect) {
            return false;
        }
        let block = rw.block();
        // Walk the wrapper chain outward-in.
        let mut adj = false;
        let mut preds: Vec<asdf_basis::Basis> = Vec::new();
        let mut current = op.operands[0];
        let callee = loop {
            let Some(def) =
                block.ops[..rw.root_idx()].iter().find(|o| o.results.contains(&current))
            else {
                return false;
            };
            match &def.kind {
                OpKind::FuncAdj => {
                    adj = !adj;
                    current = def.operands[0];
                }
                OpKind::FuncPred { pred } => {
                    preds.push(pred.clone());
                    current = def.operands[0];
                }
                OpKind::FuncConst { symbol } => break symbol.clone(),
                _ => return false,
            }
        };
        // Outermost predicates prepend leftmost.
        let pred = preds.into_iter().reduce(|outer, inner| outer.tensor(&inner));
        let operands = op.operands[1..].to_vec();
        let results = op.results.clone();
        rw.replace_root(Op::new(OpKind::Call { callee, adj, pred }, operands, results));
        true
    }
}

/// Appendix C: `call_indirect` whose callee is defined by an `scf.if`
/// yielding function values is pushed into both forks. The `scf.if` moves
/// down to the call's position so every argument still dominates it.
pub struct IfPushdown;

impl RewritePattern for IfPushdown {
    fn name(&self) -> &'static str {
        "if-pushdown-call-indirect"
    }

    fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
        let op = rw.op();
        if !matches!(op.kind, OpKind::CallIndirect) {
            return false;
        }
        let callee = op.operands[0];
        let block = rw.block();
        let Some(if_idx) = block.ops[..rw.root_idx()]
            .iter()
            .position(|o| matches!(o.kind, OpKind::ScfIf) && o.results.contains(&callee))
        else {
            return false;
        };
        if rw.use_count(callee) != 1 {
            return false;
        }
        let args = op.operands[1..].to_vec();
        let result_tys: Vec<asdf_ir::Type> =
            op.results.iter().map(|r| rw.value_type(*r).clone()).collect();
        let call_results = op.results.clone();
        let if_op = block.ops[if_idx].clone();
        let yield_pos =
            if_op.results.iter().position(|r| *r == callee).expect("callee is an scf.if result");

        // Rebuild each region: call the yielded function, yield the call's
        // results instead.
        let mut new_regions = Vec::with_capacity(if_op.regions.len());
        for region in &if_op.regions {
            let mut region = region.clone();
            let blk = region.only_block_mut();
            let terminator = blk.ops.pop().expect("region has a terminator");
            debug_assert!(matches!(terminator.kind, OpKind::Yield));
            let yielded_func = terminator.operands[yield_pos];
            let inner_results: Vec<Value> =
                result_tys.iter().map(|t| rw.new_value(t.clone())).collect();
            let mut call_operands = vec![yielded_func];
            call_operands.extend(args.iter().copied());
            blk.ops.push(Op::new(OpKind::CallIndirect, call_operands, inner_results.clone()));
            // Yield the original values minus the consumed func, plus the
            // call results. (Qwerty lowering yields exactly one value, so
            // this is just the call results.)
            let mut new_yield: Vec<Value> = terminator.operands.clone();
            new_yield.remove(yield_pos);
            new_yield.extend(inner_results);
            blk.ops.push(Op::new(OpKind::Yield, new_yield, vec![]));
            new_regions.push(region);
        }

        // The new scf.if sits at the call's position; its results are the
        // old scf.if's other results followed by the call's results.
        let mut new_results: Vec<Value> = if_op.results.clone();
        new_results.remove(yield_pos);
        new_results.extend(call_results);
        rw.replace_root(Op::with_regions(
            OpKind::ScfIf,
            if_op.operands.clone(),
            new_results,
            new_regions,
        ));
        rw.erase_op(if_idx);
        true
    }
}

/// Appendix C (variant): `func_adj`/`func_pred` of an `scf.if` result is
/// pushed into both forks.
pub struct AdjPredIfPushdown;

impl RewritePattern for AdjPredIfPushdown {
    fn name(&self) -> &'static str {
        "if-pushdown-adj-pred"
    }

    fn match_and_rewrite(&self, rw: &mut Rewriter<'_>) -> bool {
        let op = rw.op();
        if !matches!(op.kind, OpKind::FuncAdj | OpKind::FuncPred { .. }) {
            return false;
        }
        let operand = op.operands[0];
        let block = rw.block();
        let Some(if_idx) = block.ops[..rw.root_idx()]
            .iter()
            .position(|o| matches!(o.kind, OpKind::ScfIf) && o.results.contains(&operand))
        else {
            return false;
        };
        if rw.use_count(operand) != 1 {
            return false;
        }
        let wrapper_kind = op.kind.clone();
        let wrapper_results = op.results.clone();
        let result_ty = rw.value_type(op.results[0]).clone();
        let if_op = block.ops[if_idx].clone();
        let yield_pos =
            if_op.results.iter().position(|r| *r == operand).expect("operand is an scf.if result");

        let mut new_regions = Vec::with_capacity(if_op.regions.len());
        for region in &if_op.regions {
            let mut region = region.clone();
            let blk = region.only_block_mut();
            let mut terminator = blk.ops.pop().expect("region has a terminator");
            let inner = rw.new_value(result_ty.clone());
            blk.ops.push(Op::new(
                wrapper_kind.clone(),
                vec![terminator.operands[yield_pos]],
                vec![inner],
            ));
            terminator.operands[yield_pos] = inner;
            blk.ops.push(terminator);
            new_regions.push(region);
        }

        let mut new_results = if_op.results.clone();
        new_results[yield_pos] = wrapper_results[0];
        rw.replace_root(Op::with_regions(
            OpKind::ScfIf,
            if_op.operands.clone(),
            new_results,
            new_regions,
        ));
        rw.erase_op(if_idx);
        true
    }
}
