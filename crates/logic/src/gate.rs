//! Reversible gates and classical reversible circuits.

use crate::perm::Permutation;
use std::fmt;

/// A multi-controlled X (Toffoli family) gate over classical lines.
///
/// Controls carry a polarity: `true` means control-on-1 (positive), `false`
/// control-on-0 (negative). Negative controls arise from inverted operands
/// during logic-network embedding; quantum lowering conjugates them with
/// `X` gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McxGate {
    /// `(line, positive)` control pairs.
    pub controls: Vec<(usize, bool)>,
    /// Target line whose bit is flipped when all controls match.
    pub target: usize,
}

impl McxGate {
    /// An uncontrolled NOT.
    pub fn not(target: usize) -> Self {
        McxGate { controls: Vec::new(), target }
    }

    /// A CNOT with a positive control.
    pub fn cnot(control: usize, target: usize) -> Self {
        McxGate { controls: vec![(control, true)], target }
    }

    /// A positively-controlled MCX.
    pub fn mcx(controls: impl IntoIterator<Item = usize>, target: usize) -> Self {
        McxGate { controls: controls.into_iter().map(|c| (c, true)).collect(), target }
    }

    /// Whether the gate would fire for classical input `bits`.
    pub fn fires(&self, bits: &[bool]) -> bool {
        self.controls.iter().all(|&(line, pos)| bits[line] == pos)
    }

    /// Applies the gate to a classical bit vector in place.
    ///
    /// # Panics
    ///
    /// Panics if any referenced line is out of range.
    pub fn apply(&self, bits: &mut [bool]) {
        if self.fires(bits) {
            bits[self.target] = !bits[self.target];
        }
    }
}

impl fmt::Display for McxGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("mcx [")?;
        for (i, (line, pos)) in self.controls.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}{line}", if *pos { "" } else { "!" })?;
        }
        write!(f, "] -> {}", self.target)
    }
}

/// A reversible classical circuit: a cascade of [`McxGate`]s over `lines`
/// bit lines, executed left to right.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RevCircuit {
    /// Number of lines.
    pub lines: usize,
    /// Gate cascade in execution order.
    pub gates: Vec<McxGate>,
}

impl RevCircuit {
    /// An empty circuit on `lines` lines.
    pub fn new(lines: usize) -> Self {
        RevCircuit { lines, gates: Vec::new() }
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references lines outside the circuit.
    pub fn push(&mut self, gate: McxGate) {
        assert!(gate.target < self.lines, "target line out of range");
        assert!(gate.controls.iter().all(|&(l, _)| l < self.lines), "control line out of range");
        assert!(
            gate.controls.iter().all(|&(l, _)| l != gate.target),
            "control may not equal target"
        );
        self.gates.push(gate);
    }

    /// Runs the circuit on classical input bits.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.lines`.
    pub fn run(&self, input: &[bool]) -> Vec<bool> {
        assert_eq!(input.len(), self.lines, "input width mismatch");
        let mut bits = input.to_vec();
        for gate in &self.gates {
            gate.apply(&mut bits);
        }
        bits
    }

    /// The permutation this circuit computes (exponential in `lines`; for
    /// verification of small circuits).
    ///
    /// # Panics
    ///
    /// Panics if `lines > 20`.
    pub fn to_permutation(&self) -> Permutation {
        assert!(self.lines <= 20, "too many lines to tabulate");
        let size = 1usize << self.lines;
        let mut table = Vec::with_capacity(size);
        for x in 0..size {
            let bits: Vec<bool> =
                (0..self.lines).map(|i| (x >> (self.lines - 1 - i)) & 1 == 1).collect();
            let out = self.run(&bits);
            let y = out.iter().fold(0usize, |acc, &b| (acc << 1) | usize::from(b));
            table.push(y);
        }
        Permutation::from_table(table).expect("reversible circuits are bijections")
    }

    /// Total control count across gates (the cost metric transformation-
    /// based synthesis minimizes greedily).
    pub fn control_cost(&self) -> usize {
        self.gates.iter().map(|g| g.controls.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnot_truth_table() {
        let mut c = RevCircuit::new(2);
        c.push(McxGate::cnot(0, 1));
        assert_eq!(c.run(&[false, false]), vec![false, false]);
        assert_eq!(c.run(&[true, false]), vec![true, true]);
        assert_eq!(c.run(&[true, true]), vec![true, false]);
    }

    #[test]
    fn negative_controls() {
        let mut c = RevCircuit::new(2);
        c.push(McxGate { controls: vec![(0, false)], target: 1 });
        assert_eq!(c.run(&[false, false]), vec![false, true]);
        assert_eq!(c.run(&[true, false]), vec![true, false]);
    }

    #[test]
    fn toffoli_permutation() {
        let mut c = RevCircuit::new(3);
        c.push(McxGate::mcx([0, 1], 2));
        let p = c.to_permutation();
        // Only 110 <-> 111 swap.
        assert_eq!(p.apply(0b110), 0b111);
        assert_eq!(p.apply(0b111), 0b110);
        assert_eq!(p.apply(0b101), 0b101);
    }

    #[test]
    #[should_panic(expected = "control may not equal target")]
    fn rejects_control_on_target() {
        let mut c = RevCircuit::new(2);
        c.push(McxGate::cnot(1, 1));
    }
}
