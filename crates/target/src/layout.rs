//! Initial placement of logical qubits onto physical qubits.
//!
//! A good initial layout puts frequently-interacting logical qubits on
//! nearby physical qubits, so the router inserts fewer SWAPs. The
//! heuristic here is interaction-graph-driven: weight each logical pair
//! by how many two-qubit gates connect them, seed the heaviest logical
//! qubit at the best-connected physical node, then place the rest one at
//! a time where they minimize weighted distance to their already-placed
//! partners. Circuits with no two-qubit gates fall back to the trivial
//! identity layout.

use crate::topology::CouplingGraph;
use asdf_qcircuit::{Circuit, CircuitOp};

/// Chooses a physical qubit for each logical qubit of `circuit`.
///
/// Returns `layout` with `layout[logical] = physical`, a permutation-like
/// injection into `0..graph.num_qubits()`.
///
/// # Panics
///
/// Panics if the circuit is wider than the graph (capacity is checked by
/// [`Target::route`](crate::Target::route) before getting here).
pub fn initial_layout(circuit: &Circuit, graph: &CouplingGraph) -> Vec<usize> {
    let n_logical = circuit.num_qubits;
    let n_physical = graph.num_qubits();
    assert!(n_logical <= n_physical, "circuit wider than target");

    let weights = interaction_weights(circuit);
    let total: u64 = weights.iter().flatten().sum();
    if total == 0 {
        // Trivial fallback: no two-qubit structure to exploit.
        return (0..n_logical).collect();
    }

    let mut layout = vec![usize::MAX; n_logical];
    let mut used = vec![false; n_physical];

    // Seed: heaviest logical qubit onto the best-connected physical node.
    let seed = (0..n_logical)
        .max_by_key(|&l| (weights[l].iter().sum::<u64>(), n_logical - l))
        .expect("total > 0 implies at least one qubit");
    let hub = graph.max_degree_node();
    layout[seed] = hub;
    used[hub] = true;

    // Greedy: repeatedly place the unplaced logical qubit with the most
    // interaction weight toward placed ones, at the free physical node
    // minimizing weighted distance to its placed partners.
    loop {
        let next = (0..n_logical).filter(|&l| layout[l] == usize::MAX).max_by_key(|&l| {
            let w: u64 =
                (0..n_logical).filter(|&m| layout[m] != usize::MAX).map(|m| weights[l][m]).sum();
            (w, n_logical - l)
        });
        let Some(l) = next else { break };
        let best = (0..n_physical)
            .filter(|&p| !used[p])
            .min_by_key(|&p| {
                let cost: u64 = (0..n_logical)
                    .filter(|&m| layout[m] != usize::MAX)
                    .map(|m| weights[l][m].saturating_mul(graph.distance(p, layout[m]) as u64))
                    .sum();
                (cost, p)
            })
            .expect("n_logical <= n_physical leaves a free node");
        layout[l] = best;
        used[best] = true;
    }
    layout
}

/// `weights[a][b]` = number of two-qubit gates touching both `a` and `b`.
fn interaction_weights(circuit: &Circuit) -> Vec<Vec<u64>> {
    let n = circuit.num_qubits;
    let mut weights = vec![vec![0u64; n]; n];
    for op in &circuit.ops {
        if let CircuitOp::Gate { .. } = op {
            let qubits = op.qubits();
            for (i, &a) in qubits.iter().enumerate() {
                for &b in &qubits[i + 1..] {
                    weights[a][b] += 1;
                    weights[b][a] += 1;
                }
            }
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::GateKind;

    #[test]
    fn no_interactions_gives_identity_layout() {
        let mut c = Circuit::new(3);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::H, &[], &[2]);
        assert_eq!(initial_layout(&c, &CouplingGraph::linear(5)), vec![0, 1, 2]);
    }

    #[test]
    fn layout_is_an_injection() {
        let mut c = Circuit::new(4);
        c.gate(GateKind::X, &[0], &[3]);
        c.gate(GateKind::X, &[1], &[2]);
        c.gate(GateKind::X, &[0], &[3]);
        let layout = initial_layout(&c, &CouplingGraph::grid(2, 3));
        let mut seen = layout.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "no physical qubit reused: {layout:?}");
        assert!(layout.iter().all(|&p| p < 6));
    }

    #[test]
    fn interacting_pairs_land_adjacent() {
        // 0-3 interact heavily, 1-2 interact; on linear-4 each pair
        // should end up coupled, which the identity layout fails at.
        let mut c = Circuit::new(4);
        for _ in 0..3 {
            c.gate(GateKind::X, &[0], &[3]);
        }
        c.gate(GateKind::X, &[1], &[2]);
        let g = CouplingGraph::linear(4);
        let layout = initial_layout(&c, &g);
        assert_eq!(g.distance(layout[0], layout[3]), 1, "heavy pair coupled: {layout:?}");
        assert_eq!(g.distance(layout[1], layout[2]), 1, "light pair coupled: {layout:?}");
    }
}
