//! Synthesizing circuits from `@classical` functions (§6.4).
//!
//! The flow mirrors the paper: the typed classical AST becomes a logic
//! network (`asdf-logic`'s XAG, standing in for mockturtle), the network is
//! folded/optimized during construction, and a Bennett embedding
//! `U_f |x>|y> = |x>|y XOR f(x)>` is generated (standing in for
//! tweedledum). `f.xor` requests that embedding directly; `f.sign`
//! requests `U'_f |x> = (-1)^{f(x)} |x>`, generated "by passing |−⟩
//! ancilla to the output of the Bennett embedding" — producing exactly the
//! ancilla shape the relaxed peephole of Fig. 10 later collapses into a
//! multi-controlled Z.

use crate::error::CoreError;
use crate::gates::GateCtx;
use asdf_ast::ast::CExpr;
use asdf_ast::{FrontendError, TClassical};
use asdf_ir::{Func, FuncBuilder, FuncType, GateKind, OpKind, Type, Visibility};
use asdf_logic::{embed, EmbedStyle, Signal, Xag};
use std::collections::HashMap;

/// Builds the (folded, structurally hashed) logic network of a classical
/// instance, with capture bits substituted as constants.
///
/// # Errors
///
/// Returns [`CoreError::Frontend`] on malformed bodies (the type checker
/// prevents these).
pub fn build_xag(tc: &TClassical) -> Result<Xag, CoreError> {
    let mut xag = Xag::new(tc.n_in);
    let mut env: HashMap<&str, Vec<Signal>> = HashMap::new();
    let mut offset = 0usize;
    for (i, (name, width)) in tc.params.iter().enumerate() {
        if i < tc.capture_bits.len() {
            let signals = tc.capture_bits[i]
                .iter()
                .map(|&b| if b { xag.const_true() } else { xag.const_false() })
                .collect();
            env.insert(name, signals);
        } else {
            let signals = (offset..offset + width).map(|k| xag.input(k)).collect();
            env.insert(name, signals);
            offset += width;
        }
    }
    let outputs = lower_cexpr(&tc.body, &env, tc, &mut xag)?;
    if outputs.len() != tc.n_out {
        return Err(CoreError::Frontend(FrontendError::type_err(format!(
            "classical body produced {} bits, expected {}",
            outputs.len(),
            tc.n_out
        ))));
    }
    xag.set_outputs(outputs);
    Ok(xag)
}

fn lower_cexpr(
    e: &CExpr,
    env: &HashMap<&str, Vec<Signal>>,
    tc: &TClassical,
    xag: &mut Xag,
) -> Result<Vec<Signal>, CoreError> {
    Ok(match e {
        CExpr::Var(name) => env.get(name.as_str()).cloned().ok_or_else(|| {
            CoreError::Frontend(FrontendError::unbound(format!("classical variable {name}")))
        })?,
        CExpr::And(a, b) => binary(e, a, b, env, tc, xag, Xag::and2)?,
        CExpr::Or(a, b) => {
            // a | b = ~(~a & ~b) over XAG primitives.
            let (va, vb) = (lower_cexpr(a, env, tc, xag)?, lower_cexpr(b, env, tc, xag)?);
            widths_match(&va, &vb)?;
            va.into_iter().zip(vb).map(|(x, y)| xag.and2(x.not(), y.not()).not()).collect()
        }
        CExpr::Xor(a, b) => binary(e, a, b, env, tc, xag, Xag::xor2)?,
        CExpr::Not(a) => lower_cexpr(a, env, tc, xag)?.into_iter().map(Signal::not).collect(),
        CExpr::Index(a, idx) => {
            let bits = lower_cexpr(a, env, tc, xag)?;
            let i = idx.eval_usize(&tc.dims).map_err(CoreError::Frontend)?;
            vec![*bits.get(i).ok_or_else(|| {
                CoreError::Frontend(FrontendError::type_err(format!("bit index {i} out of range")))
            })?]
        }
        CExpr::Repeat(a, n) => {
            let bits = lower_cexpr(a, env, tc, xag)?;
            let n = n.eval_usize(&tc.dims).map_err(CoreError::Frontend)?;
            vec![bits[0]; n]
        }
        CExpr::XorReduce(a) => {
            let bits = lower_cexpr(a, env, tc, xag)?;
            vec![xag.xor_many(bits)]
        }
        CExpr::AndReduce(a) => {
            let bits = lower_cexpr(a, env, tc, xag)?;
            vec![xag.and_many(bits)]
        }
    })
}

fn binary(
    _e: &CExpr,
    a: &CExpr,
    b: &CExpr,
    env: &HashMap<&str, Vec<Signal>>,
    tc: &TClassical,
    xag: &mut Xag,
    op: fn(&mut Xag, Signal, Signal) -> Signal,
) -> Result<Vec<Signal>, CoreError> {
    let va = lower_cexpr(a, env, tc, xag)?;
    let vb = lower_cexpr(b, env, tc, xag)?;
    widths_match(&va, &vb)?;
    Ok(va.into_iter().zip(vb).map(|(x, y)| op(xag, x, y)).collect())
}

fn widths_match(a: &[Signal], b: &[Signal]) -> Result<(), CoreError> {
    if a.len() == b.len() {
        Ok(())
    } else {
        Err(CoreError::Frontend(FrontendError::type_err(format!(
            "bitwise width mismatch: {} vs {}",
            a.len(),
            b.len()
        ))))
    }
}

/// Generates the `f.xor` function: `qbundle[n_in + n_out] -rev->` the same,
/// computing `|x>|y> -> |x>|y XOR f(x)>`.
///
/// # Errors
///
/// Propagates network construction/embedding failures.
pub fn xor_func(name: &str, tc: &TClassical) -> Result<Func, CoreError> {
    let xag = build_xag(tc)?;
    let embedding = embed::embed_xor(&xag, EmbedStyle::InPlaceXor).map_err(CoreError::Synthesis)?;
    let width = tc.n_in + tc.n_out;
    let mut b = FuncBuilder::new(name, FuncType::rev_qbundle(width), Visibility::Private);
    let arg = b.args()[0];
    let mut bb = b.block();
    let qubits = bb.push(OpKind::QbUnpack, vec![arg], vec![Type::Qubit; width]);

    // Wire map: embedding line -> position in our tracker. Inputs first,
    // then outputs, then freshly allocated ancillas.
    let mut values = qubits.clone();
    let mut line_to_pos: Vec<usize> = Vec::with_capacity(embedding.circuit.lines);
    line_to_pos.extend(0..width);
    let ancilla_count = embedding.ancilla_lines.len();
    for _ in 0..ancilla_count {
        let anc = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        line_to_pos.push(values.len());
        values.push(anc[0]);
    }

    let mut ctx = GateCtx { bb: &mut bb, values };
    emit_rev_circuit(&mut ctx, &embedding.circuit.gates, &line_to_pos);
    let values = ctx.values;

    for &ancilla in &values[width..width + ancilla_count] {
        bb.push_op(asdf_ir::Op::new(OpKind::QFreeZ, vec![ancilla], vec![]));
    }
    let packed = bb.push(OpKind::QbPack, values[..width].to_vec(), vec![Type::QBundle(width)]);
    bb.push(OpKind::Return, vec![packed[0]], vec![]);
    Ok(b.finish())
}

/// Generates the `f.sign` function: `qbundle[n_in] -rev->` the same,
/// computing `|x> -> (-1)^{f(x)} |x>` by feeding a `|−⟩` ancilla to the
/// Bennett embedding output (the Fig. 10 shape).
///
/// # Errors
///
/// Returns [`CoreError::Unsupported`] unless `n_out == 1`.
pub fn sign_func(name: &str, tc: &TClassical) -> Result<Func, CoreError> {
    if tc.n_out != 1 {
        return Err(CoreError::Unsupported(
            ".sign requires a single-output classical function".to_string(),
        ));
    }
    let xag = build_xag(tc)?;
    let embedding = embed::embed_xor(&xag, EmbedStyle::InPlaceXor).map_err(CoreError::Synthesis)?;
    let width = tc.n_in;
    let mut b = FuncBuilder::new(name, FuncType::rev_qbundle(width), Visibility::Private);
    let arg = b.args()[0];
    let mut bb = b.block();
    let qubits = bb.push(OpKind::QbUnpack, vec![arg], vec![Type::Qubit; width]);

    let mut values = qubits.clone();
    let mut line_to_pos: Vec<usize> = Vec::with_capacity(embedding.circuit.lines);
    line_to_pos.extend(0..width);
    // The output line becomes a |−⟩ ancilla: qalloc; X; H.
    let minus = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
    let minus_pos = values.len();
    line_to_pos.push(minus_pos);
    values.push(minus[0]);
    let ancilla_count = embedding.ancilla_lines.len();
    for _ in 0..ancilla_count {
        let anc = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        line_to_pos.push(values.len());
        values.push(anc[0]);
    }

    let mut ctx = GateCtx { bb: &mut bb, values };
    ctx.gate(GateKind::X, &[], &[minus_pos]);
    ctx.gate(GateKind::H, &[], &[minus_pos]);
    emit_rev_circuit(&mut ctx, &embedding.circuit.gates, &line_to_pos);
    ctx.gate(GateKind::H, &[], &[minus_pos]);
    ctx.gate(GateKind::X, &[], &[minus_pos]);
    let values = ctx.values;

    for &scratch in &values[minus_pos..] {
        bb.push_op(asdf_ir::Op::new(OpKind::QFreeZ, vec![scratch], vec![]));
    }
    let packed = bb.push(OpKind::QbPack, values[..width].to_vec(), vec![Type::QBundle(width)]);
    bb.push(OpKind::Return, vec![packed[0]], vec![]);
    Ok(b.finish())
}

/// Emits a classical reversible cascade as QCircuit gates, translating
/// negative controls into X-conjugation.
fn emit_rev_circuit(
    ctx: &mut GateCtx<'_, '_>,
    gates: &[asdf_logic::McxGate],
    line_to_pos: &[usize],
) {
    for gate in gates {
        let pattern: Vec<(usize, bool)> =
            gate.controls.iter().map(|&(line, positive)| (line_to_pos[line], positive)).collect();
        let target = line_to_pos[gate.target];
        ctx.under_controls(pattern, |ctx, controls| {
            ctx.gate(GateKind::X, controls, &[target]);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ast::expand::{instantiate, CaptureValue};
    use asdf_ast::parse::parse_program;
    use asdf_ast::typecheck::typecheck_kernel;
    use std::collections::HashMap as Map;

    fn fig1_classical() -> TClassical {
        let src = r"
            classical f[N](secret: bit[N], x: bit[N]) -> bit {
                (secret & x).xor_reduce()
            }
            qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
                'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
            }
        ";
        let program = parse_program(src).unwrap();
        let captures = vec![CaptureValue::CFunc {
            name: "f".into(),
            captures: vec![CaptureValue::bits_from_str("1011")],
        }];
        let inst = instantiate(&program, "kernel", &captures, &Map::new()).unwrap();
        let kernel = typecheck_kernel(&program, "kernel", &inst).unwrap();
        kernel.classical[0].clone()
    }

    #[test]
    fn bv_oracle_xag_matches_eval() {
        let tc = fig1_classical();
        let xag = build_xag(&tc).unwrap();
        for x in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| (x >> (3 - i)) & 1 == 1).collect();
            assert_eq!(xag.eval(&bits), tc.eval(&bits).unwrap(), "x = {x:04b}");
        }
        // A linear oracle needs no AND nodes at all.
        assert!(xag.live_and_nodes().is_empty());
    }

    #[test]
    fn xor_func_is_well_formed() {
        let tc = fig1_classical();
        let func = xor_func("f_xor", &tc).unwrap();
        assert_eq!(func.ty, FuncType::rev_qbundle(5));
        asdf_ir::verify::verify_func(&func, None).unwrap();
    }

    #[test]
    fn sign_func_has_minus_ancilla_shape() {
        let tc = fig1_classical();
        let func = sign_func("f_sign", &tc).unwrap();
        assert_eq!(func.ty, FuncType::rev_qbundle(4));
        asdf_ir::verify::verify_func(&func, None).unwrap();
        // The Fig. 10 shape: qalloc, X, H ... H, X, qfreez.
        let kinds: Vec<&OpKind> = func.body.ops.iter().map(|op| &op.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, OpKind::QAlloc)));
        assert!(kinds.iter().any(|k| matches!(k, OpKind::QFreeZ)));
        let h_count =
            kinds.iter().filter(|k| matches!(k, OpKind::Gate { gate: GateKind::H, .. })).count();
        assert!(h_count >= 2, "prep and unprep Hadamards present");
    }
}
