//! Quickstart: compile the paper's Fig. 1 program (Bernstein–Vazirani)
//! end-to-end, print the OpenQASM 3, and simulate it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qwerty_asdf::ast::expand::CaptureValue;
use qwerty_asdf::core::{CompileRequest, Session};
use qwerty_asdf::sim::sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Qwerty program of Fig. 1, in this repository's text syntax.
    let source = r"
        classical f[N](secret: bit[N], x: bit[N]) -> bit {
            (secret & x).xor_reduce()
        }

        qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";

    // A session parses once and serves any number of compilations; the
    // one-shot `Compiler::compile` is sugar over a throwaway session.
    let session = Session::new(source)?;

    // Instantiate the kernel, capturing the secret string — N is inferred
    // from its length (§4, "AST expansion").
    let secret = "1101";
    let request = CompileRequest::kernel("kernel").with_capture(CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(secret)],
    });
    let compiled = session.compile(&request)?;

    let circuit = compiled.circuit.clone().expect("BV inlines to a straight-line circuit");
    println!("--- OpenQASM 3 ---\n{}", session.emit(&compiled, "qasm")?);

    // The same request again is served from the artifact cache.
    let _warm = session.compile(&request)?;
    assert_eq!(session.cache_stats().artifact_hits, 1);

    // One query of the oracle recovers the whole secret.
    let counts = sample(&circuit, 100, 42);
    println!("--- 100 shots ---");
    for (bits, count) in &counts {
        println!("{bits}: {count}");
    }
    assert_eq!(counts[secret], 100);
    println!("\nrecovered secret {secret} in a single query");
    Ok(())
}
