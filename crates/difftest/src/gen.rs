//! The seeded generator of well-typed Qwerty programs.
//!
//! Programs are built *bottom-up over the typed surface*: every generated
//! case is a pipeline of reversible endofunction stages of a known width,
//! so the rendered program typechecks by construction. The generator
//! covers the combinatorial corners the hand-written tests never reach:
//! basis literals and translations (including partial-span literals with
//! phases and negations), tensor products of unequal chunks, nested
//! predication, adjoints, `**` repetition, `(f | g)` composition,
//! dimension-variable instantiation at several `N`, and `classical`
//! functions embedded via `.sign` / `.xor` (whose circuits go through the
//! `crates/logic` XAG synthesis pipeline).
//!
//! A [`GenCase`] is a structured value, not a string: the shrinker edits
//! it directly, and [`GenCase::render`] turns it into source text through
//! `asdf_ast::pretty` — so even the reproduction path exercises the real
//! lexer and parser.

use asdf_ast::ast::{
    CExpr, ClassicalFunc, Expr, ExprKind, Item, Param, Program, QpuFunc, QubitChar, Stmt, TypeExpr,
    VectorSyntax,
};
use asdf_ast::dims::{AngleExpr, DimExpr};
use asdf_ast::expand::CaptureValue;
use asdf_ast::pretty::render_program;
use asdf_basis::{Eigenstate, PrimitiveBasis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Tunables for the generator.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Maximum logical (interface) qubits per program.
    pub max_width: usize,
    /// Maximum nesting depth of composite stages.
    pub max_depth: usize,
    /// Maximum number of top-level pipeline stages.
    pub max_stages: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { max_width: 4, max_depth: 2, max_stages: 4 }
    }
}

/// How the kernel receives its qubits.
#[derive(Debug, Clone, PartialEq)]
pub enum InputMode {
    /// State preparation from a qubit literal (one character per qubit).
    /// Symbolic cases replicate the first character over `N`.
    Prep(Vec<QubitChar>),
    /// A `qubit[width]` runtime parameter. The recorded basis bits are the
    /// input used when comparing measurement distributions (unitary
    /// comparison sweeps all basis inputs instead).
    Arg(Vec<bool>),
}

/// The optional terminal measurement basis (over the full width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureBasis {
    /// `std[n].measure`.
    Std,
    /// `pm[n].measure`.
    Pm,
}

/// A generated `classical` function.
#[derive(Debug, Clone, PartialEq)]
pub struct GenClassical {
    /// Item name (`f0`, `f1`, ...; also the kernel parameter name).
    pub name: String,
    /// Non-capture input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
    /// Constant bits for a leading capture parameter `s`, if any.
    pub capture: Option<Vec<bool>>,
    /// Body over `s` (capture) and `x` (input).
    pub body: CExpr,
}

/// One reversible endofunction stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Qubits the stage acts on.
    pub width: usize,
    /// The stage's shape.
    pub kind: StageKind,
}

/// Stage shapes. Every variant denotes a reversible `qubit[w] -> qubit[w]`
/// function, so arbitrary nesting stays well-typed.
#[derive(Debug, Clone, PartialEq)]
pub enum StageKind {
    /// `id[w]`.
    Id,
    /// `from[w] >> to[w]` between built-in bases (spans are both full).
    BuiltinTrans {
        /// Input basis.
        from: PrimitiveBasis,
        /// Output basis.
        to: PrimitiveBasis,
    },
    /// A literal translation `{v...} >> {v...}` whose two sides share a
    /// span: either the same vector set reordered/rephased (partial span),
    /// or two full sets over possibly different primitive bases.
    LiteralTrans {
        /// Per-position primitive basis of the input side.
        prim_in: PrimitiveBasis,
        /// Input vectors as eigenbit patterns (width bits each).
        vecs_in: Vec<u64>,
        /// Phase in degrees per input vector (`None` = no `@`).
        phases_in: Vec<Option<f64>>,
        /// Negation flags per input vector.
        neg_in: Vec<bool>,
        /// Per-position primitive basis of the output side.
        prim_out: PrimitiveBasis,
        /// Output vectors (a permutation of `vecs_in` unless both sides
        /// are full).
        vecs_out: Vec<u64>,
        /// Phase in degrees per output vector.
        phases_out: Vec<Option<f64>>,
        /// Negation flags per output vector.
        neg_out: Vec<bool>,
    },
    /// `prim.flip` on one qubit.
    Flip {
        /// The basis flipped (never `Fourier`).
        prim: PrimitiveBasis,
    },
    /// Tensor product of sub-stages (widths sum).
    Tensor(Vec<Stage>),
    /// `pred & inner`: predication on a basis over the leading qubits.
    Pred {
        /// Primitive basis of the predicate literal's positions.
        prim: PrimitiveBasis,
        /// Predicate vectors as eigenbit patterns.
        vecs: Vec<u64>,
        /// Predicate width.
        pred_width: usize,
        /// The predicated function.
        inner: Box<Stage>,
    },
    /// `~inner`.
    Adjoint(Box<Stage>),
    /// `inner ** count`.
    Repeat {
        /// Repeated stage.
        inner: Box<Stage>,
        /// Fold count (>= 2).
        count: usize,
    },
    /// `(a | b | ...)` — left-to-right composition of same-width stages.
    Compose(Vec<Stage>),
    /// `fK.sign`: the phase-oracle embed of classical function `K`
    /// (`n_in == width`, `n_out == 1`).
    Sign {
        /// Index into [`GenCase::classical`].
        classical: usize,
    },
    /// `fK.xor`: the Bennett embed (`n_in + n_out == width`).
    Xor {
        /// Index into [`GenCase::classical`].
        classical: usize,
    },
}

/// A generated differential-test case.
#[derive(Debug, Clone, PartialEq)]
pub struct GenCase {
    /// Case number within the sweep.
    pub index: usize,
    /// The per-case RNG seed (derived from the sweep seed and index).
    pub seed: u64,
    /// Logical width (the kernel's qubit interface).
    pub width: usize,
    /// `Some("N")` when the program is written over a dimension variable
    /// instantiated at `width`.
    pub sym_dim: Option<String>,
    /// Whether symbolic cases rely on capture-based dimvar *inference*
    /// instead of an explicit binding.
    pub infer_dim: bool,
    /// Input mode.
    pub input: InputMode,
    /// Terminal measurement, if any.
    pub measure: Option<MeasureBasis>,
    /// The stage pipeline (each of width [`GenCase::width`]).
    pub stages: Vec<Stage>,
    /// Classical functions referenced by `Sign` / `Xor` stages.
    pub classical: Vec<GenClassical>,
}

/// Generates case `index` of the sweep seeded by `sweep_seed`.
pub fn gen_case(sweep_seed: u64, index: usize, opts: &GenOptions) -> GenCase {
    let seed = sweep_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let symbolic = rng.gen_range_usize(8) == 0;
    let mut case =
        if symbolic { gen_symbolic(&mut rng, opts) } else { gen_concrete(&mut rng, opts) };
    case.index = index;
    case.seed = seed;
    case
}

fn gen_concrete(rng: &mut StdRng, opts: &GenOptions) -> GenCase {
    let width = 1 + rng.gen_range_usize(opts.max_width.max(1));
    let mut classical = Vec::new();
    let num_stages = 1 + rng.gen_range_usize(opts.max_stages.max(1));
    let stages: Vec<Stage> =
        (0..num_stages).map(|_| gen_stage(rng, width, opts.max_depth, &mut classical)).collect();
    let input = if rng.gen_bool(0.5) {
        InputMode::Prep((0..width).map(|_| random_char(rng)).collect())
    } else {
        InputMode::Arg((0..width).map(|_| rng.gen_bool(0.5)).collect())
    };
    let measure = match rng.gen_range_usize(4) {
        0 | 1 => None,
        2 => Some(MeasureBasis::Std),
        _ => Some(MeasureBasis::Pm),
    };
    GenCase {
        index: 0,
        seed: 0,
        width,
        sym_dim: None,
        infer_dim: false,
        input,
        measure,
        stages,
        classical,
    }
}

/// Symbolic cases: the whole program is written over a dimension variable
/// `N` and instantiated at `width`. Stages are restricted to full-width
/// shapes that have a symbolic spelling.
fn gen_symbolic(rng: &mut StdRng, opts: &GenOptions) -> GenCase {
    let width = 1 + rng.gen_range_usize(3);
    let mut classical = Vec::new();
    let num_stages = 1 + rng.gen_range_usize(opts.max_stages.max(1));
    let stages: Vec<Stage> =
        (0..num_stages).map(|_| gen_sym_stage(rng, width, 1, &mut classical)).collect();
    let infer_dim = classical.iter().any(|c| c.capture.is_some()) && rng.gen_bool(0.5);
    let input = InputMode::Prep(vec![random_char(rng); width]);
    let measure = if rng.gen_bool(0.5) { Some(MeasureBasis::Std) } else { None };
    GenCase {
        index: 0,
        seed: 0,
        width,
        sym_dim: Some("N".to_string()),
        infer_dim,
        input,
        measure,
        stages,
        classical,
    }
}

fn random_char(rng: &mut StdRng) -> QubitChar {
    let prim =
        [PrimitiveBasis::Std, PrimitiveBasis::Pm, PrimitiveBasis::Ij][rng.gen_range_usize(3)];
    let eig = if rng.gen_bool(0.5) { Eigenstate::Plus } else { Eigenstate::Minus };
    (prim, eig)
}

fn separable_prim(rng: &mut StdRng) -> PrimitiveBasis {
    [PrimitiveBasis::Std, PrimitiveBasis::Pm, PrimitiveBasis::Ij][rng.gen_range_usize(3)]
}

fn any_prim(rng: &mut StdRng) -> PrimitiveBasis {
    [PrimitiveBasis::Std, PrimitiveBasis::Pm, PrimitiveBasis::Ij, PrimitiveBasis::Fourier]
        [rng.gen_range_usize(4)]
}

fn random_phase(rng: &mut StdRng) -> Option<f64> {
    match rng.gen_range_usize(5) {
        0 => Some(45.0),
        1 => Some(90.0),
        2 => Some(180.0),
        _ => None,
    }
}

/// A random reversible stage of exactly `width` qubits.
fn gen_stage(
    rng: &mut StdRng,
    width: usize,
    depth: usize,
    classical: &mut Vec<GenClassical>,
) -> Stage {
    debug_assert!(width >= 1);
    // Leaf-only at depth 0 or width 1 composites that need >= 2 qubits.
    let composite = depth > 0 && rng.gen_bool(0.5);
    if composite {
        match rng.gen_range_usize(5) {
            0 if width >= 2 => {
                // Tensor: split into 2..=3 chunks.
                let parts = split_width(rng, width);
                return Stage {
                    width,
                    kind: StageKind::Tensor(
                        parts
                            .into_iter()
                            .map(|w| gen_stage(rng, w, depth - 1, classical))
                            .collect(),
                    ),
                };
            }
            1 if width >= 2 => {
                // Predication on the leading qubits.
                let pred_width = 1 + rng.gen_range_usize((width - 1).min(2));
                let inner = gen_stage(rng, width - pred_width, depth - 1, classical);
                let prim = separable_prim(rng);
                let vecs = random_subset(rng, pred_width);
                return Stage {
                    width,
                    kind: StageKind::Pred { prim, vecs, pred_width, inner: Box::new(inner) },
                };
            }
            2 => {
                let inner = gen_stage(rng, width, depth - 1, classical);
                return Stage { width, kind: StageKind::Adjoint(Box::new(inner)) };
            }
            3 => {
                let inner = gen_stage(rng, width, depth - 1, classical);
                let count = 2 + rng.gen_range_usize(2);
                return Stage { width, kind: StageKind::Repeat { inner: Box::new(inner), count } };
            }
            _ => {
                let n = 2 + rng.gen_range_usize(2);
                let stages = (0..n).map(|_| gen_stage(rng, width, depth - 1, classical)).collect();
                return Stage { width, kind: StageKind::Compose(stages) };
            }
        }
    }
    gen_leaf(rng, width, classical)
}

fn gen_leaf(rng: &mut StdRng, width: usize, classical: &mut Vec<GenClassical>) -> Stage {
    let kind = match rng.gen_range_usize(6) {
        0 => StageKind::Id,
        1 => {
            let from = any_prim(rng);
            let mut to = any_prim(rng);
            if to == from {
                to = if from == PrimitiveBasis::Std {
                    PrimitiveBasis::Pm
                } else {
                    PrimitiveBasis::Std
                };
            }
            StageKind::BuiltinTrans { from, to }
        }
        2 if width <= 2 => gen_literal_trans(rng, width),
        3 if width == 1 => StageKind::Flip { prim: separable_prim(rng) },
        4 => {
            let idx = gen_classical(rng, width, 1, classical);
            StageKind::Sign { classical: idx }
        }
        5 if width >= 2 => {
            let n_in = 1 + rng.gen_range_usize(width - 1);
            let n_out = width - n_in;
            let idx = gen_classical(rng, n_in, n_out, classical);
            StageKind::Xor { classical: idx }
        }
        _ => StageKind::BuiltinTrans { from: PrimitiveBasis::Std, to: PrimitiveBasis::Pm },
    };
    Stage { width, kind }
}

/// Symbolic full-width stages: shapes with an `N`-parameterized spelling.
fn gen_sym_stage(
    rng: &mut StdRng,
    width: usize,
    depth: usize,
    classical: &mut Vec<GenClassical>,
) -> Stage {
    if depth > 0 && rng.gen_bool(0.4) {
        match rng.gen_range_usize(3) {
            0 => {
                let inner = gen_sym_stage(rng, width, depth - 1, classical);
                return Stage { width, kind: StageKind::Adjoint(Box::new(inner)) };
            }
            1 => {
                let inner = gen_sym_stage(rng, width, depth - 1, classical);
                let count = 2 + rng.gen_range_usize(2);
                return Stage { width, kind: StageKind::Repeat { inner: Box::new(inner), count } };
            }
            _ => {
                let stages =
                    (0..2).map(|_| gen_sym_stage(rng, width, depth - 1, classical)).collect();
                return Stage { width, kind: StageKind::Compose(stages) };
            }
        }
    }
    let kind = match rng.gen_range_usize(3) {
        0 => StageKind::Id,
        1 => {
            let from = any_prim(rng);
            let mut to = any_prim(rng);
            if to == from {
                to = if from == PrimitiveBasis::Std {
                    PrimitiveBasis::Pm
                } else {
                    PrimitiveBasis::Std
                };
            }
            StageKind::BuiltinTrans { from, to }
        }
        _ => {
            let idx = gen_sym_classical(rng, width, classical);
            StageKind::Sign { classical: idx }
        }
    };
    Stage { width, kind }
}

fn split_width(rng: &mut StdRng, width: usize) -> Vec<usize> {
    let mut parts = Vec::new();
    let mut remaining = width;
    while remaining > 0 {
        let take = if parts.len() == 2 || remaining == 1 {
            remaining
        } else {
            1 + rng.gen_range_usize(remaining - 1)
        };
        parts.push(take);
        remaining -= take;
    }
    parts
}

/// A nonempty random subset of the `2^width` eigenbit patterns.
fn random_subset(rng: &mut StdRng, width: usize) -> Vec<u64> {
    let space = 1u64 << width;
    let size = 1 + rng.gen_range_usize(space.min(4) as usize);
    let mut all: Vec<u64> = (0..space).collect();
    // Partial Fisher-Yates for the prefix we keep.
    for i in 0..size {
        let j = i + rng.gen_range_usize(all.len() - i);
        all.swap(i, j);
    }
    all.truncate(size);
    all
}

fn gen_literal_trans(rng: &mut StdRng, width: usize) -> StageKind {
    let full = rng.gen_bool(0.4);
    if full {
        // Full span both sides: primitives and orders may differ freely.
        let space = 1u64 << width;
        let perm = |rng: &mut StdRng| {
            let mut v: Vec<u64> = (0..space).collect();
            for i in 0..v.len() {
                let j = i + rng.gen_range_usize(v.len() - i);
                v.swap(i, j);
            }
            v
        };
        let vecs_in = perm(rng);
        let vecs_out = perm(rng);
        let phases_in = vecs_in.iter().map(|_| random_phase(rng)).collect();
        let phases_out = vecs_out.iter().map(|_| random_phase(rng)).collect();
        let neg_in = vecs_in.iter().map(|_| rng.gen_bool(0.2)).collect();
        let neg_out = vecs_out.iter().map(|_| rng.gen_bool(0.2)).collect();
        StageKind::LiteralTrans {
            prim_in: separable_prim(rng),
            vecs_in,
            phases_in,
            neg_in,
            prim_out: separable_prim(rng),
            vecs_out,
            phases_out,
            neg_out,
        }
    } else {
        // Partial span: the same vector set on both sides (same primitive),
        // reordered, rephased, renegated.
        let prim = separable_prim(rng);
        let vecs_in = random_subset(rng, width);
        let mut vecs_out = vecs_in.clone();
        for i in 0..vecs_out.len() {
            let j = i + rng.gen_range_usize(vecs_out.len() - i);
            vecs_out.swap(i, j);
        }
        let phases_in = vecs_in.iter().map(|_| random_phase(rng)).collect();
        let phases_out = vecs_out.iter().map(|_| random_phase(rng)).collect();
        let neg_in = vecs_in.iter().map(|_| rng.gen_bool(0.2)).collect();
        let neg_out = vecs_out.iter().map(|_| rng.gen_bool(0.2)).collect();
        StageKind::LiteralTrans {
            prim_in: prim,
            vecs_in,
            phases_in,
            neg_in,
            prim_out: prim,
            vecs_out,
            phases_out,
            neg_out,
        }
    }
}

/// Generates (and registers) a classical function with the given widths;
/// returns its index.
fn gen_classical(
    rng: &mut StdRng,
    n_in: usize,
    n_out: usize,
    classical: &mut Vec<GenClassical>,
) -> usize {
    let capture = if rng.gen_bool(0.5) {
        Some((0..n_in).map(|_| rng.gen_bool(0.5)).collect::<Vec<bool>>())
    } else {
        None
    };
    let x = || Box::new(CExpr::Var("x".to_string()));
    let s = || Box::new(CExpr::Var("s".to_string()));
    let idx = |rng: &mut StdRng| DimExpr::Const(rng.gen_range_usize(n_in) as i64);
    let body = if n_out == 1 {
        match (rng.gen_range_usize(5), capture.is_some()) {
            (0, true) => CExpr::XorReduce(Box::new(CExpr::And(x(), s()))),
            (1, true) => CExpr::XorReduce(Box::new(CExpr::Xor(x(), s()))),
            (2, _) => CExpr::AndReduce(x()),
            (3, _) => CExpr::Index(x(), idx(rng)),
            _ => CExpr::XorReduce(x()),
        }
    } else if n_out == n_in {
        match (rng.gen_range_usize(4), capture.is_some()) {
            (0, true) => CExpr::Xor(x(), s()),
            (1, true) => CExpr::Or(Box::new(CExpr::And(x(), s())), Box::new(CExpr::Not(x()))),
            (2, _) => CExpr::Not(x()),
            _ => CExpr::Var("x".to_string()),
        }
    } else {
        CExpr::Repeat(Box::new(CExpr::Index(x(), idx(rng))), DimExpr::Const(n_out as i64))
    };
    let name = format!("f{}", classical.len());
    classical.push(GenClassical { name, n_in, n_out, capture, body });
    classical.len() - 1
}

/// A symbolic classical function over `N` with `n_out == 1`.
fn gen_sym_classical(rng: &mut StdRng, width: usize, classical: &mut Vec<GenClassical>) -> usize {
    let capture = if rng.gen_bool(0.5) {
        Some((0..width).map(|_| rng.gen_bool(0.5)).collect::<Vec<bool>>())
    } else {
        None
    };
    let x = || Box::new(CExpr::Var("x".to_string()));
    let s = || Box::new(CExpr::Var("s".to_string()));
    let body = match (rng.gen_range_usize(3), capture.is_some()) {
        (0, true) => CExpr::XorReduce(Box::new(CExpr::And(x(), s()))),
        (1, _) => CExpr::AndReduce(x()),
        _ => CExpr::XorReduce(x()),
    };
    let name = format!("f{}", classical.len());
    classical.push(GenClassical { name, n_in: width, n_out: 1, capture, body });
    classical.len() - 1
}

// ----------------------------------------------------------------------
// Rendering
// ----------------------------------------------------------------------

/// Everything needed to compile a case.
#[derive(Debug, Clone)]
pub struct RenderedCase {
    /// The program source text.
    pub source: String,
    /// Captures for the kernel's leading `cfunc` parameters.
    pub captures: Vec<CaptureValue>,
    /// Explicit dimension bindings (empty when inferred or concrete).
    pub dims: HashMap<String, i64>,
    /// The kernel name.
    pub kernel: String,
}

impl GenCase {
    /// Classical indices actually referenced by the current stages (the
    /// shrinker may have dropped some).
    pub fn used_classical(&self) -> Vec<usize> {
        let mut used = Vec::new();
        fn walk(stage: &Stage, used: &mut Vec<usize>) {
            match &stage.kind {
                StageKind::Sign { classical } | StageKind::Xor { classical }
                    if !used.contains(classical) =>
                {
                    used.push(*classical);
                }
                StageKind::Tensor(parts) | StageKind::Compose(parts) => {
                    for p in parts {
                        walk(p, used);
                    }
                }
                StageKind::Pred { inner, .. }
                | StageKind::Adjoint(inner)
                | StageKind::Repeat { inner, .. } => walk(inner, used),
                _ => {}
            }
        }
        for stage in &self.stages {
            walk(stage, &mut used);
        }
        used.sort_unstable();
        used
    }

    /// Renders the case to source + captures + dims.
    pub fn render(&self) -> RenderedCase {
        let sym = self.sym_dim.as_deref();
        let mut items = Vec::new();
        let used = self.used_classical();
        for &ci in &used {
            items.push(Item::Classical(self.render_classical(&self.classical[ci], sym)));
        }

        let dim = |n: usize| match sym {
            Some(v) => DimExpr::Var(v.to_string()),
            None => DimExpr::Const(n as i64),
        };

        let mut params = Vec::new();
        for &ci in &used {
            let c = &self.classical[ci];
            params.push(Param {
                name: c.name.clone(),
                ty: TypeExpr::CFunc(dim_for(c.n_in, sym), dim_for_out(c, sym)),
            });
        }
        let mut body_expr: Expr = match &self.input {
            InputMode::Prep(chars) => match sym {
                Some(_) => ExprKind::Pow(
                    Box::new(ExprKind::QLit { chars: vec![chars[0]], phase: None }.into()),
                    dim(self.width),
                )
                .into(),
                None => ExprKind::QLit { chars: chars.clone(), phase: None }.into(),
            },
            InputMode::Arg(_) => {
                params.push(Param { name: "qs".to_string(), ty: TypeExpr::Qubit(dim(self.width)) });
                ExprKind::Var("qs".to_string()).into()
            }
        };
        for stage in &self.stages {
            body_expr =
                ExprKind::Pipe(Box::new(body_expr), Box::new(self.render_stage(stage, sym))).into();
        }
        let ret = match self.measure {
            Some(basis) => {
                let prim = match basis {
                    MeasureBasis::Std => PrimitiveBasis::Std,
                    MeasureBasis::Pm => PrimitiveBasis::Pm,
                };
                body_expr = ExprKind::Pipe(
                    Box::new(body_expr),
                    Box::new(
                        ExprKind::Measure(Box::new(
                            ExprKind::BuiltinBasis(prim, dim(self.width)).into(),
                        ))
                        .into(),
                    ),
                )
                .into();
                TypeExpr::Bit(dim(self.width))
            }
            None => TypeExpr::Qubit(dim(self.width)),
        };

        let kernel = QpuFunc {
            name: "k".to_string(),
            dim_vars: sym.map(|v| vec![v.to_string()]).unwrap_or_default(),
            params,
            ret,
            body: vec![Stmt::Expr(body_expr)],
        };
        items.push(Item::Qpu(kernel));

        let captures: Vec<CaptureValue> = used
            .iter()
            .map(|&ci| {
                let c = &self.classical[ci];
                CaptureValue::CFunc {
                    name: c.name.clone(),
                    captures: c
                        .capture
                        .as_ref()
                        .map(|bits| vec![CaptureValue::Bits(bits.clone())])
                        .into_iter()
                        .flatten()
                        .collect(),
                }
            })
            .collect();

        let mut dims = HashMap::new();
        if self.sym_dim.is_some() && !self.infer_dim {
            dims.insert("N".to_string(), self.width as i64);
        }

        RenderedCase {
            source: render_program(&Program { items }),
            captures,
            dims,
            kernel: "k".to_string(),
        }
    }

    fn render_classical(&self, c: &GenClassical, sym: Option<&str>) -> ClassicalFunc {
        let mut params = Vec::new();
        if c.capture.is_some() {
            params.push(Param { name: "s".to_string(), ty: TypeExpr::Bit(dim_for(c.n_in, sym)) });
        }
        params.push(Param { name: "x".to_string(), ty: TypeExpr::Bit(dim_for(c.n_in, sym)) });
        ClassicalFunc {
            name: c.name.clone(),
            dim_vars: sym.map(|v| vec![v.to_string()]).unwrap_or_default(),
            params,
            ret: TypeExpr::Bit(dim_for_out(c, sym)),
            body: c.body.clone(),
        }
    }

    fn render_stage(&self, stage: &Stage, sym: Option<&str>) -> Expr {
        let dim = |n: usize| match sym {
            Some(v) if n == self.width => DimExpr::Var(v.to_string()),
            _ => DimExpr::Const(n as i64),
        };
        match &stage.kind {
            StageKind::Id => ExprKind::Id(dim(stage.width)).into(),
            StageKind::BuiltinTrans { from, to } => ExprKind::Translation(
                Box::new(ExprKind::BuiltinBasis(*from, dim(stage.width)).into()),
                Box::new(ExprKind::BuiltinBasis(*to, dim(stage.width)).into()),
            )
            .into(),
            StageKind::LiteralTrans {
                prim_in,
                vecs_in,
                phases_in,
                neg_in,
                prim_out,
                vecs_out,
                phases_out,
                neg_out,
            } => ExprKind::Translation(
                Box::new(literal(stage.width, *prim_in, vecs_in, phases_in, neg_in)),
                Box::new(literal(stage.width, *prim_out, vecs_out, phases_out, neg_out)),
            )
            .into(),
            StageKind::Flip { prim } => {
                ExprKind::Flip(Box::new(ExprKind::BuiltinBasis(*prim, DimExpr::Const(1)).into()))
                    .into()
            }
            StageKind::Tensor(parts) => {
                let mut iter = parts.iter();
                let first = self.render_stage(iter.next().expect("nonempty tensor"), sym);
                iter.fold(first, |acc, p| {
                    ExprKind::Tensor(Box::new(acc), Box::new(self.render_stage(p, sym))).into()
                })
            }
            StageKind::Pred { prim, vecs, pred_width, inner } => {
                let pred: Expr = if vecs.len() == 1 {
                    ExprKind::QLit { chars: chars_of(*pred_width, *prim, vecs[0]), phase: None }
                        .into()
                } else {
                    literal(
                        *pred_width,
                        *prim,
                        vecs,
                        &vec![None; vecs.len()],
                        &vec![false; vecs.len()],
                    )
                };
                ExprKind::Pred(Box::new(pred), Box::new(self.render_stage(inner, sym))).into()
            }
            StageKind::Adjoint(inner) => {
                ExprKind::Adjoint(Box::new(self.render_stage(inner, sym))).into()
            }
            StageKind::Repeat { inner, count } => ExprKind::Repeat(
                Box::new(self.render_stage(inner, sym)),
                DimExpr::Const(*count as i64),
            )
            .into(),
            StageKind::Compose(parts) => {
                let mut iter = parts.iter();
                let first = self.render_stage(iter.next().expect("nonempty compose"), sym);
                iter.fold(first, |acc, p| {
                    ExprKind::Pipe(Box::new(acc), Box::new(self.render_stage(p, sym))).into()
                })
            }
            StageKind::Sign { classical } => ExprKind::Sign(Box::new(
                ExprKind::Var(self.classical[*classical].name.clone()).into(),
            ))
            .into(),
            StageKind::Xor { classical } => ExprKind::Xor(Box::new(
                ExprKind::Var(self.classical[*classical].name.clone()).into(),
            ))
            .into(),
        }
    }
}

fn dim_for(n: usize, sym: Option<&str>) -> DimExpr {
    match sym {
        Some(v) => DimExpr::Var(v.to_string()),
        None => DimExpr::Const(n as i64),
    }
}

fn dim_for_out(c: &GenClassical, sym: Option<&str>) -> DimExpr {
    match sym {
        // Symbolic classicals are always N -> 1.
        Some(_) => DimExpr::Const(1),
        None => DimExpr::Const(c.n_out as i64),
    }
}

fn chars_of(width: usize, prim: PrimitiveBasis, bits: u64) -> Vec<QubitChar> {
    (0..width)
        .map(|pos| {
            let bit = bits >> (width - 1 - pos) & 1 == 1;
            (prim, Eigenstate::from_eigenbit(bit))
        })
        .collect()
}

fn literal(
    width: usize,
    prim: PrimitiveBasis,
    vecs: &[u64],
    phases: &[Option<f64>],
    negs: &[bool],
) -> Expr {
    ExprKind::BasisLit(
        vecs.iter()
            .zip(phases)
            .zip(negs)
            .map(|((&bits, phase), &negated)| VectorSyntax {
                chars: chars_of(width, prim, bits),
                power: None,
                negated,
                phase: phase.map(AngleExpr::Degrees),
            })
            .collect(),
    )
    .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ast::parse::parse_program;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let opts = GenOptions::default();
        for index in 0..32 {
            let a = gen_case(42, index, &opts);
            let b = gen_case(42, index, &opts);
            assert_eq!(a, b);
            assert_eq!(a.render().source, b.render().source);
        }
        assert_ne!(gen_case(1, 0, &opts).render().source, gen_case(2, 0, &opts).render().source);
    }

    #[test]
    fn rendered_cases_parse() {
        let opts = GenOptions::default();
        for index in 0..200 {
            let case = gen_case(7, index, &opts);
            let rendered = case.render();
            parse_program(&rendered.source).unwrap_or_else(|e| {
                panic!("case {index} does not parse: {e}\n{}", rendered.source)
            });
        }
    }
}
