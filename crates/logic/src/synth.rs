//! Transformation-based reversible synthesis.
//!
//! ASDF lowers the permutation core of a basis translation with "the
//! multidirectional transformation-based synthesis algorithm [33, 50]
//! implemented in the Tweedledum library" (§6.3). This module implements
//! the Miller–Maslov–Dueck algorithm \[33\]: walk truth-table rows in
//! increasing order and append MCX gates that fix each row without
//! disturbing already-fixed rows; plus the bidirectional refinement \[50\]
//! that may fix a row from the *input* side when that is cheaper.

use crate::gate::{McxGate, RevCircuit};
use crate::perm::Permutation;

/// Synthesizes `perm` with the bidirectional transformation-based
/// algorithm (the default, like tweedledum).
pub fn synthesize(perm: &Permutation) -> RevCircuit {
    synthesize_with(perm, Direction::Bidirectional)
}

/// Which sides of the truth table the algorithm may fix rows from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Classic MMD: always transform the output value toward the row index.
    Unidirectional,
    /// Per row, pick the cheaper of output-side and input-side fixing \[50\].
    Bidirectional,
}

/// Synthesizes `perm` into an MCX cascade.
///
/// The returned circuit `C` satisfies `C.to_permutation() == *perm` with
/// line 0 carrying the most significant bit.
pub fn synthesize_with(perm: &Permutation, direction: Direction) -> RevCircuit {
    let n = perm.num_bits();
    let size = 1usize << n;
    let mut table = perm.table().to_vec();

    // Gates prepended at the circuit front (input side), in application
    // order, and gates for the circuit back (output side), collected in
    // the order applied to the table (so reversed on assembly).
    let mut front: Vec<MaskGate> = Vec::new();
    let mut back: Vec<MaskGate> = Vec::new();

    for x in 0..size {
        let y = table[x];
        if y == x {
            continue;
        }
        // Output side: transform y into x.
        let out_gates = fix_value_gates(y, x);
        let out_cost: usize = out_gates.iter().map(|g| g.cmask.count_ones() as usize).sum();

        let use_input = if direction == Direction::Bidirectional {
            // Input side: transform x into the row currently mapping to x.
            let x_in = table.iter().position(|&v| v == x).expect("bijection");
            let in_gates = fix_value_gates(x, x_in);
            let in_cost: usize = in_gates.iter().map(|g| g.cmask.count_ones() as usize).sum();
            if in_cost < out_cost {
                Some(in_gates)
            } else {
                None
            }
        } else {
            None
        };

        match use_input {
            Some(in_gates) => {
                // `fix_value_gates` lists gates so the *first* one acts on x
                // first; an input-side update composes on the right
                // (f <- f o g), so the table must absorb them in reverse:
                // f o g_r o ... o g_1 applied to x runs g_1 first.
                for g in in_gates.into_iter().rev() {
                    let old = table.clone();
                    for (v, slot) in table.iter_mut().enumerate() {
                        *slot = old[g.apply(v)];
                    }
                    front.push(g);
                }
            }
            None => {
                for g in out_gates {
                    // f <- g o f : map every output through the gate.
                    for slot in table.iter_mut() {
                        *slot = g.apply(*slot);
                    }
                    back.push(g);
                }
            }
        }
        debug_assert_eq!(table[x], x);
    }
    debug_assert!(table.iter().enumerate().all(|(i, &v)| i == v));

    let mut circuit = RevCircuit::new(n);
    for g in front.iter().chain(back.iter().rev()) {
        circuit.push(g.to_mcx(n));
    }
    circuit
}

/// An MCX over integer bit masks (bit `n-1-l` of the mask is line `l`).
#[derive(Debug, Clone, Copy)]
struct MaskGate {
    cmask: usize,
    tmask: usize,
}

impl MaskGate {
    fn apply(self, v: usize) -> usize {
        if v & self.cmask == self.cmask {
            v ^ self.tmask
        } else {
            v
        }
    }

    fn to_mcx(self, n: usize) -> McxGate {
        let target =
            (0..n).find(|l| self.tmask >> (n - 1 - l) & 1 == 1).expect("target mask has one bit");
        let controls =
            (0..n).filter(|l| self.cmask >> (n - 1 - l) & 1 == 1).map(|l| (l, true)).collect();
        McxGate { controls, target }
    }
}

/// MMD per-row gate construction: gates (applied in order) transforming
/// `cur` into `goal`, touching no value `v < min(cur, goal)` whose bits do
/// not cover the controls. First turns on missing bits (controls = the ones
/// of the evolving value), then turns off excess bits (controls = the other
/// ones of the evolving value).
fn fix_value_gates(mut cur: usize, goal: usize) -> Vec<MaskGate> {
    let mut gates = Vec::new();
    let mut need_on = goal & !cur;
    while need_on != 0 {
        let bit = need_on & need_on.wrapping_neg();
        gates.push(MaskGate { cmask: cur, tmask: bit });
        cur |= bit;
        need_on &= !bit;
    }
    let mut need_off = cur & !goal;
    while need_off != 0 {
        let bit = need_off & need_off.wrapping_neg();
        gates.push(MaskGate { cmask: cur & !bit, tmask: bit });
        cur &= !bit;
        need_off &= !bit;
    }
    debug_assert_eq!(cur, goal);
    gates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(perm: &Permutation, direction: Direction) -> RevCircuit {
        let circuit = synthesize_with(perm, direction);
        assert_eq!(&circuit.to_permutation(), perm, "direction {direction:?}");
        circuit
    }

    #[test]
    fn identity_needs_no_gates() {
        let p = Permutation::identity(3);
        assert!(synthesize(&p).gates.is_empty());
    }

    #[test]
    fn swap_example_from_paper() {
        // {'01','10'} >> {'10','01'} is a SWAP (§2.2).
        let p = Permutation::from_partial(2, &[(0b01, 0b10), (0b10, 0b01)]).unwrap();
        let c = check(&p, Direction::Bidirectional);
        assert!(!c.gates.is_empty());
    }

    #[test]
    fn fig9_permutations() {
        // Fig. 9 right element: |0> -> |1>, |1> -> |0> (an X gate).
        let p = Permutation::from_partial(1, &[(0, 1), (1, 0)]).unwrap();
        let c = check(&p, Direction::Bidirectional);
        assert_eq!(c.gates.len(), 1);
        assert!(c.gates[0].controls.is_empty());
        // Fig. 9 left element: 00->00, 01->10, 10->01, 11->11.
        let p = Permutation::from_partial(2, &[(0b01, 0b10), (0b10, 0b01)]).unwrap();
        check(&p, Direction::Unidirectional);
    }

    #[test]
    fn all_three_bit_cycles() {
        // A handful of structured 3-bit permutations.
        let rotate = Permutation::from_table((0..8).map(|x| (x + 1) % 8).collect()).unwrap();
        check(&rotate, Direction::Unidirectional);
        check(&rotate, Direction::Bidirectional);
        let reverse = Permutation::from_table((0..8).rev().collect()).unwrap();
        check(&reverse, Direction::Unidirectional);
        check(&reverse, Direction::Bidirectional);
    }

    #[test]
    fn bidirectional_not_worse_on_known_hard_case() {
        // The classic MMD example benefits from input-side fixing.
        let p = Permutation::from_table(vec![1, 0, 3, 2, 5, 7, 4, 6]).unwrap();
        let uni = check(&p, Direction::Unidirectional);
        let bi = check(&p, Direction::Bidirectional);
        assert!(bi.control_cost() <= uni.control_cost());
    }

    #[test]
    fn exhaustive_two_bit_permutations() {
        // All 24 permutations of 2 bits synthesize correctly.
        let items = [0usize, 1, 2, 3];
        let mut count = 0;
        for a in items {
            for b in items {
                for c in items {
                    for d in items {
                        let table = vec![a, b, c, d];
                        if let Ok(p) = Permutation::from_table(table) {
                            check(&p, Direction::Unidirectional);
                            check(&p, Direction::Bidirectional);
                            count += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(count, 24);
    }
}
