//! Offline shim for a scoped thread pool.
//!
//! The build environment has no network access to a crate registry, so this
//! in-tree crate provides the small parallel-execution surface the
//! simulator's kernels need: a [`ThreadPool`] with a fixed worker count and
//! borrow-friendly data-parallel loops built on [`std::thread::scope`].
//! Unlike the registry `threadpool` crate (whose jobs must be `'static`),
//! scoped spawning lets kernels parallelize over borrowed amplitude
//! buffers with no `Arc`/channel plumbing — and no external dependencies.
//!
//! Threads are spawned per call and joined before the call returns; there
//! is no persistent worker state, so a pool is cheap to construct and the
//! zero-worker/one-worker cases degrade to plain serial loops (important
//! for the simulator, whose inputs are usually far too small to amortize a
//! thread spawn).

use std::num::NonZeroUsize;

/// A fixed-width scoped thread pool.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool running `workers` tasks concurrently (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ThreadPool { workers: workers.max(1) }
    }

    /// A pool sized to the machine's available parallelism (1 if unknown).
    pub fn with_available_parallelism() -> Self {
        ThreadPool::new(std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits `data` into disjoint chunks of at most `chunk_len` elements
    /// and runs `f(chunk_index, chunk)` over all of them, distributing
    /// chunks round-robin across the pool's workers. Runs serially when
    /// the pool has one worker or there is only one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let num_chunks = data.len().div_ceil(chunk_len.max(1));
        if self.workers == 1 || num_chunks <= 1 {
            for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(index, chunk);
            }
            return;
        }
        let num_queues = self.workers.min(num_chunks);
        let mut queues: Vec<Vec<(usize, &mut [T])>> = (0..num_queues).map(|_| Vec::new()).collect();
        for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            queues[index % num_queues].push((index, chunk));
        }
        std::thread::scope(|scope| {
            for queue in queues {
                scope.spawn(|| {
                    for (index, chunk) in queue {
                        f(index, chunk);
                    }
                });
            }
        });
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_chunk_exactly_once() {
        for workers in [1, 2, 3, 8] {
            let pool = ThreadPool::new(workers);
            let mut data = vec![0u32; 103];
            let calls = AtomicUsize::new(0);
            pool.for_each_chunk(&mut data, 10, |index, chunk| {
                calls.fetch_add(1, Ordering::SeqCst);
                for x in chunk.iter_mut() {
                    *x += 1 + index as u32;
                }
            });
            assert_eq!(calls.load(Ordering::SeqCst), 11, "workers={workers}");
            for (i, x) in data.iter().enumerate() {
                assert_eq!(*x, 1 + (i / 10) as u32, "workers={workers} element {i}");
            }
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).workers(), 1);
        assert!(ThreadPool::default().workers() >= 1);
    }

    #[test]
    fn empty_data_is_a_no_op() {
        let pool = ThreadPool::new(4);
        let mut data: Vec<u8> = Vec::new();
        pool.for_each_chunk(&mut data, 16, |_, _| panic!("no chunks expected"));
    }
}
