//! The conformance suite: golden artifact hashes, golden replay traces,
//! fast-path validation against the scalar reference interpreter, a
//! sabotage-detection check, and artifact round-trip stability over the
//! generated corpus.
//!
//! Regenerate goldens after an intentional compiler change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p asdf-conformance
//! ```

use asdf_conformance::{check_golden, corpus, difftest_corpus, example_corpus, TRACE_SEED};
use asdf_core::{compiled_to_artifact, CompileRequest, Session};
use asdf_difftest::gen::{gen_case, GenOptions};
use asdf_ir::GateKind;
use asdf_qcircuit::CircuitOp;
use asdf_sim::trace::{record_trace, replay_divergence, state_digest, Trace};
use asdf_sim::Simulator;
use proptest::prelude::*;
use std::fmt::Write as _;

/// Every corpus entry's artifact content hash, pinned in one golden
/// file: any semantic change to what the compiler produces for these
/// programs shows up as a reviewed diff.
#[test]
fn artifact_content_hashes_match_goldens() {
    let mut listing = String::new();
    for entry in corpus() {
        let _ = writeln!(listing, "{} {:016x}", entry.name, entry.content_hash());
    }
    check_golden("artifact_hashes.txt", &listing);
}

/// Every static-circuit corpus entry's seeded execution trace, replayed
/// against the freshly compiled circuit: a miscompiled step is caught at
/// the first diverging gate.
#[test]
fn golden_traces_replay_without_divergence() {
    let mut traced = 0;
    for entry in corpus() {
        let (_, compiled) = entry.compile();
        let Some(circuit) = &compiled.circuit else {
            continue; // e.g. teleport: no static circuit, hash-only entry
        };
        traced += 1;
        let trace = record_trace(circuit, TRACE_SEED);
        let text = trace.to_text();
        assert_eq!(
            Trace::from_text(&text).as_ref(),
            Ok(&trace),
            "trace text must round-trip for {}",
            entry.name
        );
        check_golden(&format!("traces/{}.trace", entry.name), &text);

        // Replaying the checked-in golden against the fresh circuit must
        // be step-for-step clean.
        let golden_text = std::fs::read_to_string(
            asdf_conformance::golden_dir().join(format!("traces/{}.trace", entry.name)),
        )
        .expect("golden trace exists (run GOLDEN_REGEN=1 cargo test -p asdf-conformance)");
        let golden = Trace::from_text(&golden_text).expect("golden trace parses");
        if let Some(divergence) = replay_divergence(&golden, circuit) {
            panic!(
                "golden trace for {} diverged: {divergence}\n\
                 If intentional, regenerate with GOLDEN_REGEN=1 cargo test -p asdf-conformance",
                entry.name
            );
        }
    }
    assert!(traced >= 10, "most of the corpus must carry traces (got {traced})");
}

/// The fused / kernel-based fast paths must agree step-for-final-state
/// with the scalar reference interpreter: same seed, same measured bits,
/// same quantized final-state digest — single-threaded and threaded.
#[test]
fn fast_paths_agree_with_the_scalar_reference() {
    let mut checked = 0;
    for entry in corpus() {
        let (_, compiled) = entry.compile();
        let Some(circuit) = &compiled.circuit else { continue };
        let reference = record_trace(circuit, TRACE_SEED);
        for threads in [1, 2] {
            let mut simulator = Simulator::with_threads(TRACE_SEED, threads);
            let run = simulator.run(circuit);
            assert_eq!(
                run.bits, reference.bits,
                "{} (threads={threads}): fast path measured different bits",
                entry.name
            );
            assert_eq!(
                state_digest(&run.state),
                reference.final_digest,
                "{} (threads={threads}): fast path final state diverged",
                entry.name
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "most of the corpus must be checked (got {checked})");
}

/// A sabotaged pass — here simulated by mutating one compiled gate —
/// must be caught by trace replay, at the exact step it corrupts.
#[test]
fn sabotaged_circuits_are_caught_by_replay() {
    let entry = &example_corpus()[0]; // quickstart
    let (_, compiled) = entry.compile();
    let circuit = compiled.circuit.as_ref().expect("quickstart inlines");
    let golden = record_trace(circuit, TRACE_SEED);
    assert_eq!(replay_divergence(&golden, circuit), None, "clean circuit replays clean");

    // Flip the first Hadamard into a Z, as a miscompiled pass would.
    let mut sabotaged = circuit.clone();
    let step = sabotaged
        .ops
        .iter()
        .position(|op| matches!(op, CircuitOp::Gate { gate: GateKind::H, .. }))
        .expect("quickstart starts in superposition");
    let CircuitOp::Gate { controls, targets, .. } = sabotaged.ops[step].clone() else {
        unreachable!()
    };
    sabotaged.ops[step] = CircuitOp::Gate { gate: GateKind::Z, controls, targets };
    let divergence = replay_divergence(&golden, &sabotaged).expect("sabotage must be caught");
    assert_eq!(divergence.step, step, "divergence pinpoints the corrupted step");

    // Dropping a trailing op is caught as a length divergence.
    let mut truncated = circuit.clone();
    truncated.ops.pop();
    assert!(replay_divergence(&golden, &truncated).is_some());
}

/// Artifact round-trip stability over the generated corpus: for every
/// difftest entry, encode → decode → re-encode is byte-identical and
/// preserves the content hash.
#[test]
fn generated_artifacts_round_trip_byte_identically() {
    for entry in difftest_corpus() {
        let (_, compiled) = entry.compile();
        let artifact = compiled_to_artifact(&compiled, vec![0xc0, 0x4f]);
        let bytes = artifact.encode();
        let decoded = asdf_artifact::Artifact::decode(&bytes)
            .unwrap_or_else(|e| panic!("{} failed to decode: {e}", entry.name));
        assert_eq!(decoded.encode(), bytes, "{}: re-encode must be byte-identical", entry.name);
        assert_eq!(decoded.content_hash(), artifact.content_hash(), "{}", entry.name);
        assert_eq!(decoded.entry, artifact.entry, "{}", entry.name);
        assert_eq!(decoded.circuit, artifact.circuit, "{}", entry.name);
    }
}

/// Compiles one freshly generated difftest case and asserts its artifact
/// encodes, decodes, and re-encodes byte-identically.
fn round_trip_generated(sweep_seed: u64, index: usize) {
    let rendered = gen_case(sweep_seed, index, &GenOptions::default()).render();
    let Ok(session) = Session::new(&rendered.source) else { return };
    let mut request = CompileRequest::kernel(&rendered.kernel).with_captures(&rendered.captures);
    for (name, value) in &rendered.dims {
        request = request.with_dim(name, *value);
    }
    let Ok(compiled) = session.compile(&request) else { return };
    let artifact = compiled_to_artifact(&compiled, vec![sweep_seed as u8, index as u8]);
    let bytes = artifact.encode();
    let decoded = asdf_artifact::Artifact::decode(&bytes)
        .unwrap_or_else(|e| panic!("seed {sweep_seed} case {index} failed to decode: {e}"));
    assert_eq!(
        decoded.encode(),
        bytes,
        "seed {sweep_seed} case {index}: re-encode must be byte-identical"
    );
}

proptest! {
    /// Random difftest programs round-trip through the artifact format
    /// byte-identically — the serializer has no program-shape blind spots.
    #[test]
    fn random_generated_artifacts_round_trip(
        sweep_seed in 0u64..1u64 << 32,
        index in 0usize..8,
    ) {
        round_trip_generated(sweep_seed, index);
    }
}

/// A small end-to-end disk-cache sweep: the whole corpus compiled twice
/// over one cache directory — the second pass must run zero pipelines
/// and produce identical content hashes.
#[test]
fn corpus_sweep_with_disk_cache_is_hit_stable() {
    let dir = std::env::temp_dir().join(format!("asdf-conformance-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let entries = corpus();

    let compile_all = |expect_fresh: bool| -> Vec<u64> {
        entries
            .iter()
            .map(|entry| {
                let session: Session = Session::builder(&entry.source)
                    .disk_cache(&dir)
                    .build()
                    .expect("session builds");
                let request = CompileRequest::kernel(&entry.kernel)
                    .with_captures(&entry.captures)
                    .with_options(entry.options.clone());
                let compiled = session.compile(&request).expect("corpus compiles");
                let stats = session.cache_stats();
                if expect_fresh {
                    assert_eq!(
                        stats.artifact_misses, 1,
                        "{}: first pass runs the pipeline",
                        entry.name
                    );
                } else {
                    assert_eq!(
                        stats.artifact_misses, 0,
                        "{}: second pass must not run the pipeline",
                        entry.name
                    );
                    assert_eq!(stats.disk_hits, 1, "{}: second pass hits the disk", entry.name);
                }
                compiled_to_artifact(&compiled, Vec::new()).content_hash()
            })
            .collect()
    };

    let fresh = compile_all(true);
    let revived = compile_all(false);
    assert_eq!(fresh, revived, "disk-revived artifacts hash identically");
    let _ = std::fs::remove_dir_all(&dir);
}
