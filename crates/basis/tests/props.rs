//! Property-based tests for basis structure and span checking.

use asdf_basis::{
    span, Basis, BasisElem, BasisLiteral, BasisVector, BitString, Phase, PrimitiveBasis,
};
use proptest::prelude::*;

fn arb_prim() -> impl Strategy<Value = PrimitiveBasis> {
    prop_oneof![Just(PrimitiveBasis::Std), Just(PrimitiveBasis::Pm), Just(PrimitiveBasis::Ij),]
}

/// A random well-formed basis literal of dimension 1..=4.
fn arb_literal() -> impl Strategy<Value = BasisLiteral> {
    (arb_prim(), 1usize..=4).prop_flat_map(|(prim, dim)| {
        let total = 1usize << dim;
        proptest::sample::subsequence((0..total).collect::<Vec<_>>(), 1..=total).prop_map(
            move |values| {
                let vectors = values
                    .into_iter()
                    .map(|v| BasisVector::new(BitString::from_value(v as u128, dim)))
                    .collect();
                BasisLiteral::new(prim, vectors).expect("distinct values form a literal")
            },
        )
    })
}

fn arb_elem() -> impl Strategy<Value = BasisElem> {
    prop_oneof![
        (arb_prim(), 1usize..=4).prop_map(|(p, d)| BasisElem::built_in(p, d)),
        (1usize..=3).prop_map(|d| BasisElem::built_in(PrimitiveBasis::Fourier, d)),
        arb_literal().prop_map(BasisElem::Literal),
    ]
}

fn arb_basis() -> impl Strategy<Value = Basis> {
    proptest::collection::vec(arb_elem(), 1..=5).prop_map(Basis::new)
}

/// A random std-only basis element of exactly `dim` qubits.
fn arb_std_elem_of_dim(dim: usize) -> BoxedStrategy<BasisElem> {
    let total = 1usize << dim;
    let literal = proptest::sample::subsequence((0..total).collect::<Vec<_>>(), 1..=total)
        .prop_map(move |values| {
            let vectors = values
                .into_iter()
                .map(|v| BasisVector::new(BitString::from_value(v as u128, dim)))
                .collect();
            BasisElem::Literal(BasisLiteral::new(PrimitiveBasis::Std, vectors).unwrap())
        });
    prop_oneof![Just(BasisElem::built_in(PrimitiveBasis::Std, dim)), literal,].boxed()
}

/// A random std-only basis of exactly `dim` qubits, split into random
/// elements of dimension at most 3.
fn arb_std_basis_of_dim(dim: usize) -> BoxedStrategy<Basis> {
    proptest::collection::vec(any::<bool>(), dim.saturating_sub(1))
        .prop_flat_map(move |cuts| {
            let mut chunk_dims = Vec::new();
            let mut cur = 1;
            for cut in cuts {
                if cut || cur == 3 {
                    chunk_dims.push(cur);
                    cur = 1;
                } else {
                    cur += 1;
                }
            }
            chunk_dims.push(cur);
            chunk_dims.into_iter().map(arb_std_elem_of_dim).collect::<Vec<_>>().prop_map(Basis::new)
        })
        .boxed()
}

/// A pair of std-only bases of equal total dimension.
fn arb_std_basis_pair() -> impl Strategy<Value = (Basis, Basis)> {
    (1usize..=6).prop_flat_map(|dim| (arb_std_basis_of_dim(dim), arb_std_basis_of_dim(dim)))
}

/// A literal that carries random phases on random vectors.
fn arb_phased_literal() -> impl Strategy<Value = BasisLiteral> {
    (arb_literal(), proptest::collection::vec(proptest::option::of(-6.0f64..6.0), 16)).prop_map(
        |(lit, phases)| {
            let vectors = lit
                .vectors()
                .iter()
                .enumerate()
                .map(|(i, v)| BasisVector {
                    eigenbits: v.eigenbits.clone(),
                    phase: phases[i % phases.len()].map(Phase::Const),
                })
                .collect();
            BasisLiteral::new(lit.prim(), vectors).unwrap()
        },
    )
}

proptest! {
    /// Every basis spans itself (Algorithm B1 reflexivity).
    #[test]
    fn span_equiv_reflexive(b in arb_basis()) {
        span::check_span_equiv(&b, &b).unwrap();
    }

    /// Span equivalence is symmetric.
    #[test]
    fn span_equiv_symmetric(a in arb_basis(), b in arb_basis()) {
        let ab = span::check_span_equiv(&a, &b).is_ok();
        let ba = span::check_span_equiv(&b, &a).is_ok();
        prop_assert_eq!(ab, ba);
    }

    /// Phases never affect spans: a phased literal spans its phase-free form.
    #[test]
    fn phases_invisible_to_span(lit in arb_phased_literal()) {
        let phased = Basis::literal(lit.clone());
        let bare = Basis::literal(lit.normalized());
        span::check_span_equiv(&phased, &bare).unwrap();
    }

    /// Normalization is idempotent.
    #[test]
    fn normalization_idempotent(b in arb_basis()) {
        let once = b.normalized();
        let twice = once.normalized();
        prop_assert_eq!(once, twice);
    }

    /// Tensor products of literals factor back into their factors.
    #[test]
    fn product_factors_back(pre in arb_literal(), suf in arb_literal()) {
        prop_assume!(pre.prim() == suf.prim());
        let prod = pre.product(&suf).unwrap();
        let (p, s) = prod.factor_prefix(pre.dim()).unwrap();
        let (pn, pren) = (p.normalized(), pre.normalized());
        let (sn, sufn) = (s.normalized(), suf.normalized());
        prop_assert_eq!(pn.vectors(), pren.vectors());
        prop_assert_eq!(sn.vectors(), sufn.vectors());
    }

    /// The fast checker agrees with the naive exponential expansion on
    /// std-only bases.
    #[test]
    fn fast_matches_naive_on_std((l, r) in arb_std_basis_pair()) {
        let fast = span::check_span_equiv(&l, &r).is_ok();
        let naive = span::check_span_equiv_naive(&l, &r).is_ok();
        prop_assert_eq!(fast, naive);
    }

    /// A tensor power of a fully-spanning literal spans the built-in basis
    /// of the same primitive basis and dimension.
    #[test]
    fn full_literal_power_spans_builtin(prim in arb_prim(), n in 1usize..=5) {
        let flip = BasisLiteral::new(
            prim,
            vec![
                BasisVector::new(BitString::from_value(1, 1)),
                BasisVector::new(BitString::from_value(0, 1)),
            ],
        )
        .unwrap();
        let powered = Basis::literal(flip).power(n);
        let builtin = Basis::built_in(prim, n);
        span::check_span_equiv(&powered, &builtin).unwrap();
    }
}
