//! Differential testing for the ASDF reproduction.
//!
//! The paper's central claim (§7) is that optimized and unoptimized
//! compilations of the same Qwerty program are *equivalent*. This crate
//! turns that claim into executable infrastructure, in the tradition of
//! Quilc's randomized equivalence checking:
//!
//! 1. [`gen`] — a seeded generator of well-typed Qwerty programs, built
//!    bottom-up over the AST so every emitted program typechecks by
//!    construction, covering basis translations, literals with phases,
//!    tensoring, predication, adjoints, repetition, dimension variables,
//!    and `.sign`/`.xor` classical embeds;
//! 2. [`driver`] — compiles each program under the full
//!    [`asdf_core::CompileOptions::matrix`] (Opt/No-Opt × peephole ×
//!    decomposition styles) and cross-checks all configuration pairs;
//! 3. [`oracle`] — exact unitary-column comparison for measurement-free
//!    programs (ancilla-subspace aware), exact or sampled distribution
//!    comparison for measuring programs, dynamic interpretation for
//!    configurations that keep callables;
//! 4. [`shrink`]/[`report`] — greedy minimization of failing cases into
//!    self-contained reproducers.
//!
//! Run a sweep from the command line:
//!
//! ```text
//! cargo run --release -p asdf-difftest --bin difftest -- --seed 42 --cases 500
//! ```

pub mod bisect;
pub mod driver;
pub mod gen;
pub mod oracle;
pub mod report;
pub mod shrink;

pub use bisect::{fuel_bisect, BisectFinding};
pub use driver::{CaseOutcome, ConfigReport, Harness, SweepOptions, SweepReport};
pub use gen::{gen_case, GenCase, GenOptions, RenderedCase};
pub use oracle::{compare, extract, Comparison, OracleOptions, Semantics};
pub use report::Mismatch;
pub use shrink::minimize;
