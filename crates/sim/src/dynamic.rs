//! A dynamic interpreter for QCircuit-dialect IR: the reproduction's
//! qir-runner (§7).
//!
//! The straight-line [`crate::run::Simulator`] cannot execute programs with
//! classical control flow (`scf.if` over measurement results, as in
//! teleportation, Fig. C13). This interpreter walks the IR op by op,
//! allocating qubits dynamically, branching on measured bits, and
//! recursing through direct calls — the Unrestricted-profile execution
//! model.

use crate::complex::Complex;
use crate::state::StateVector;
use asdf_ir::{Func, GateKind, Module, Op, OpKind, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// An argument passed to an interpreted function.
#[derive(Debug, Clone)]
pub enum ArgValue {
    /// A single qubit with the given amplitudes (normalized by the caller).
    Qubit(Complex, Complex),
    /// A register of qubits, each starting in |0> or |1>.
    QubitsBasis(Vec<bool>),
}

/// The result of interpreting a function.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// Classical bits of the returned bitbundle (empty for qubit returns).
    pub bits: Vec<bool>,
    /// Physical indices of returned qubits (for qubit/qbundle returns).
    pub returned_qubits: Vec<usize>,
    /// The final global state (all allocated qubits).
    pub state: StateVector,
}

#[derive(Debug, Clone)]
enum Data {
    Qubit(usize),
    Bundle(Vec<usize>),
    Bit(bool),
    Bits(Vec<bool>),
    F64(#[allow(dead_code)] f64),
    /// A callable value (`callable_create` and friends): the referenced
    /// symbol plus whether the adjoint specialization has been selected.
    /// Mirrors the QIR runtime's functable pointer + flags representation.
    Callable {
        symbol: String,
        adj: bool,
    },
}

/// Interprets `module.func(entry)` with the given arguments and seed.
///
/// # Errors
///
/// Returns a message for unsupported ops (callables must be inlined or
/// converted to direct calls first).
pub fn run_dynamic(
    module: &Module,
    entry: &str,
    args: &[ArgValue],
    seed: u64,
) -> Result<DynamicRun, String> {
    let func = module.func(entry).ok_or_else(|| format!("unknown function @{entry}"))?;
    let mut interp =
        Interp { module, state: StateVector::zero(0), rng: StdRng::seed_from_u64(seed) };
    // Materialize arguments.
    let mut arg_data = Vec::new();
    for arg in args {
        match arg {
            ArgValue::Qubit(a0, a1) => {
                let q = interp.alloc();
                interp.set_single(q, *a0, *a1);
                arg_data.push(Data::Bundle(vec![q]));
            }
            ArgValue::QubitsBasis(bits) => {
                let qs: Vec<usize> = bits
                    .iter()
                    .map(|&b| {
                        let q = interp.alloc();
                        if b {
                            interp.state.apply(GateKind::X, &[], &[q]);
                        }
                        q
                    })
                    .collect();
                arg_data.push(Data::Bundle(qs));
            }
        }
    }
    let results = interp.call(func, arg_data)?;
    let mut bits = Vec::new();
    let mut returned_qubits = Vec::new();
    for r in results {
        match r {
            Data::Bit(b) => bits.push(b),
            Data::Bits(bs) => bits.extend(bs),
            Data::Qubit(q) => returned_qubits.push(q),
            Data::Bundle(qs) => returned_qubits.extend(qs),
            Data::F64(_) | Data::Callable { .. } => {}
        }
    }
    Ok(DynamicRun { bits, returned_qubits, state: interp.state })
}

struct Interp<'m> {
    module: &'m Module,
    state: StateVector,
    rng: StdRng,
}

impl Interp<'_> {
    fn alloc(&mut self) -> usize {
        self.state = self.state.with_appended_zero_qubit();
        self.state.num_qubits() - 1
    }

    fn set_single(&mut self, q: usize, a0: Complex, a1: Complex) {
        // Rotate |0> into a0|0> + a1|1> via Ry then phase.
        let theta = 2.0 * a1.abs().atan2(a0.abs());
        self.state.apply(GateKind::Ry(theta), &[], &[q]);
        let rel = a1.im.atan2(a1.re) - a0.im.atan2(a0.re);
        if rel.abs() > 1e-12 {
            self.state.apply(GateKind::P(rel), &[], &[q]);
        }
    }

    fn call(&mut self, func: &Func, args: Vec<Data>) -> Result<Vec<Data>, String> {
        if args.len() != func.body.args.len() {
            return Err(format!(
                "@{} expects {} arguments, got {}",
                func.name,
                func.body.args.len(),
                args.len()
            ));
        }
        let mut env: HashMap<Value, Data> = func.body.args.iter().copied().zip(args).collect();
        self.exec_block(func, &func.body.ops, &mut env)
    }

    /// Executes ops; returns the terminator's operands.
    fn exec_block(
        &mut self,
        func: &Func,
        ops: &[Op],
        env: &mut HashMap<Value, Data>,
    ) -> Result<Vec<Data>, String> {
        for op in ops {
            if op.is_terminator() {
                return op
                    .operands
                    .iter()
                    .map(|v| {
                        env.get(v).cloned().ok_or_else(|| format!("terminator reads unbound {v}"))
                    })
                    .collect();
            }
            self.exec_op(func, op, env)?;
        }
        Err("block has no terminator".to_string())
    }

    fn qubit(&self, env: &HashMap<Value, Data>, v: Value) -> Result<usize, String> {
        match env.get(&v) {
            Some(Data::Qubit(q)) => Ok(*q),
            Some(Data::Bundle(qs)) if qs.len() == 1 => Ok(qs[0]),
            other => Err(format!("value {v} is not a qubit ({other:?})")),
        }
    }

    fn exec_op(
        &mut self,
        func: &Func,
        op: &Op,
        env: &mut HashMap<Value, Data>,
    ) -> Result<(), String> {
        match &op.kind {
            OpKind::QAlloc => {
                let q = self.alloc();
                env.insert(op.results[0], Data::Qubit(q));
            }
            OpKind::QFree | OpKind::QFreeZ => {
                let q = self.qubit(env, op.operands[0])?;
                if matches!(op.kind, OpKind::QFree) {
                    let p1 = self.state.prob_one(q);
                    if p1 > 1e-12 {
                        let outcome = self.rng.gen_bool(p1.clamp(0.0, 1.0));
                        self.state.collapse(q, outcome);
                        if outcome {
                            self.state.apply(GateKind::X, &[], &[q]);
                        }
                    }
                }
            }
            OpKind::Gate { gate, num_controls } => {
                let qs: Vec<usize> =
                    op.operands.iter().map(|v| self.qubit(env, *v)).collect::<Result<_, _>>()?;
                self.state.apply(*gate, &qs[..*num_controls], &qs[*num_controls..]);
                for (q, r) in qs.iter().zip(&op.results) {
                    env.insert(*r, Data::Qubit(*q));
                }
            }
            OpKind::Measure => {
                let q = self.qubit(env, op.operands[0])?;
                let p1 = self.state.prob_one(q);
                let outcome = self.rng.gen_bool(p1.clamp(0.0, 1.0));
                self.state.collapse(q, outcome);
                env.insert(op.results[0], Data::Qubit(q));
                env.insert(op.results[1], Data::Bit(outcome));
            }
            OpKind::QbPack => {
                let qs: Vec<usize> =
                    op.operands.iter().map(|v| self.qubit(env, *v)).collect::<Result<_, _>>()?;
                env.insert(op.results[0], Data::Bundle(qs));
            }
            OpKind::QbUnpack => {
                let Some(Data::Bundle(qs)) = env.get(&op.operands[0]).cloned() else {
                    return Err("qbunpack of a non-bundle".to_string());
                };
                for (r, q) in op.results.iter().zip(qs) {
                    env.insert(*r, Data::Qubit(q));
                }
            }
            OpKind::BitPack => {
                let bits: Vec<bool> = op
                    .operands
                    .iter()
                    .map(|v| match env.get(v) {
                        Some(Data::Bit(b)) => Ok(*b),
                        other => Err(format!("bitpack of non-bit {other:?}")),
                    })
                    .collect::<Result<_, _>>()?;
                env.insert(op.results[0], Data::Bits(bits));
            }
            OpKind::BitUnpack => {
                let Some(Data::Bits(bits)) = env.get(&op.operands[0]).cloned() else {
                    return Err("bitunpack of a non-bitbundle".to_string());
                };
                for (r, b) in op.results.iter().zip(bits) {
                    env.insert(*r, Data::Bit(b));
                }
            }
            OpKind::ConstF64 { value } => {
                env.insert(op.results[0], Data::F64(*value));
            }
            OpKind::ConstI1 { value } => {
                env.insert(op.results[0], Data::Bit(*value));
            }
            OpKind::Call { callee, adj, pred } => {
                if *adj || pred.is_some() {
                    return Err(format!(
                        "specialized call to @{callee} must be lowered before interpretation"
                    ));
                }
                let target =
                    self.module.func(callee).ok_or_else(|| format!("unknown callee @{callee}"))?;
                let args: Vec<Data> = op
                    .operands
                    .iter()
                    .map(|v| env.get(v).cloned().ok_or_else(|| format!("call reads unbound {v}")))
                    .collect::<Result<_, _>>()?;
                let results = self.call(target, args)?;
                for (r, value) in op.results.iter().zip(results) {
                    env.insert(*r, value);
                }
            }
            OpKind::CallableCreate { symbol } => {
                env.insert(op.results[0], Data::Callable { symbol: symbol.clone(), adj: false });
            }
            OpKind::CallableAdjoint => {
                let Some(Data::Callable { symbol, adj }) = env.get(&op.operands[0]).cloned() else {
                    return Err("callable_adjoint of a non-callable".to_string());
                };
                // Flag-flip, as in the QIR runtime: double adjoint restores
                // the body specialization.
                env.insert(op.results[0], Data::Callable { symbol, adj: !adj });
            }
            OpKind::CallableControl { .. } => {
                // The controlled functable entry needs the predicate basis,
                // which only a generated specialization carries; emitting
                // one requires the compiler (not the interpreter).
                return Err(
                    "callable_control is not interpretable; inline or specialize first".to_string()
                );
            }
            OpKind::CallableInvoke => {
                let Some(Data::Callable { symbol, adj }) = env.get(&op.operands[0]).cloned() else {
                    return Err("callable_invoke of a non-callable".to_string());
                };
                // The adjoint flag selects the `__adj` functable slot, which
                // exists only if specialization generation emitted it.
                let target_name = if adj { format!("{symbol}__adj") } else { symbol.clone() };
                let target = self.module.func(&target_name).ok_or_else(|| {
                    format!("callable_invoke of @{symbol}: no function @{target_name}")
                })?;
                let args: Vec<Data> = op.operands[1..]
                    .iter()
                    .map(|v| env.get(v).cloned().ok_or_else(|| format!("invoke reads unbound {v}")))
                    .collect::<Result<_, _>>()?;
                let results = self.call(target, args)?;
                for (r, value) in op.results.iter().zip(results) {
                    env.insert(*r, value);
                }
            }
            OpKind::ScfIf => {
                let Some(Data::Bit(cond)) = env.get(&op.operands[0]) else {
                    return Err("scf.if condition is not a bit".to_string());
                };
                let region = if *cond { &op.regions[0] } else { &op.regions[1] };
                let block = region.only_block();
                let yielded = self.exec_block(func, &block.ops, env)?;
                for (r, value) in op.results.iter().zip(yielded) {
                    env.insert(*r, value);
                }
            }
            other => {
                return Err(format!("op {} is not interpretable; lower it first", other.mnemonic()))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::{FuncBuilder, FuncType, Type, Visibility};

    /// A private `qubit -> qubit` function applying one gate.
    fn gate_func(name: &str, gate: GateKind) -> Func {
        let mut b = FuncBuilder::new(
            name,
            FuncType::new(vec![Type::Qubit], vec![Type::Qubit], true),
            Visibility::Private,
        );
        let arg = b.args()[0];
        let mut bb = b.block();
        let out = bb.push(OpKind::Gate { gate, num_controls: 0 }, vec![arg], vec![Type::Qubit]);
        bb.push(OpKind::Return, vec![out[0]], vec![]);
        b.finish()
    }

    #[test]
    fn interprets_callables_with_adjoint_dispatch() {
        // inner applies S; its adjoint specialization applies Sdg. The
        // entry creates a callable, adjoints it twice (flag round-trip),
        // adjoints once more, and invokes: H Sdg S H |0> = |0> would need
        // both; here we apply S directly then the adjointed callable, so
        // the net effect on |+> is the identity and H brings it back to
        // |0> deterministically.
        let mut module = Module::new();
        module.add_func(gate_func("inner", GateKind::S));
        module.add_func(gate_func("inner__adj", GateKind::Sdg));

        let mut b = FuncBuilder::new(
            "entry",
            FuncType::new(vec![], vec![Type::I1], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let q = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit])[0];
        let plus = bb.push(
            OpKind::Gate { gate: GateKind::H, num_controls: 0 },
            vec![q],
            vec![Type::Qubit],
        )[0];
        let callable = bb.push(
            OpKind::CallableCreate { symbol: "inner".into() },
            vec![],
            vec![Type::Callable],
        );
        let once = bb.push(OpKind::CallableAdjoint, vec![callable[0]], vec![Type::Callable]);
        let twice = bb.push(OpKind::CallableAdjoint, vec![once[0]], vec![Type::Callable]);
        let thrice = bb.push(OpKind::CallableAdjoint, vec![twice[0]], vec![Type::Callable]);
        // Direct body invocation (S) ...
        let after_s = bb.push(OpKind::CallableInvoke, vec![callable[0], plus], vec![Type::Qubit]);
        // ... then the adjoint (Sdg) via the odd-flagged callable.
        let after_sdg =
            bb.push(OpKind::CallableInvoke, vec![thrice[0], after_s[0]], vec![Type::Qubit]);
        let back = bb.push(
            OpKind::Gate { gate: GateKind::H, num_controls: 0 },
            vec![after_sdg[0]],
            vec![Type::Qubit],
        )[0];
        let m = bb.push(OpKind::Measure, vec![back], vec![Type::Qubit, Type::I1]);
        bb.push(OpKind::Return, vec![m[1]], vec![]);
        module.add_func(b.finish());

        for seed in 0..8 {
            let run = run_dynamic(&module, "entry", &[], seed).unwrap();
            assert_eq!(run.bits, vec![false], "seed {seed}");
        }
    }

    #[test]
    fn missing_adjoint_specialization_is_a_clean_error() {
        let mut module = Module::new();
        module.add_func(gate_func("inner", GateKind::S));
        let mut b = FuncBuilder::new(
            "entry",
            FuncType::new(vec![], vec![Type::I1], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let q = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit])[0];
        let callable = bb.push(
            OpKind::CallableCreate { symbol: "inner".into() },
            vec![],
            vec![Type::Callable],
        );
        let adj = bb.push(OpKind::CallableAdjoint, vec![callable[0]], vec![Type::Callable]);
        let out = bb.push(OpKind::CallableInvoke, vec![adj[0], q], vec![Type::Qubit]);
        let m = bb.push(OpKind::Measure, vec![out[0]], vec![Type::Qubit, Type::I1]);
        bb.push(OpKind::Return, vec![m[1]], vec![]);
        module.add_func(b.finish());
        let err = run_dynamic(&module, "entry", &[], 0).unwrap_err();
        assert!(err.contains("inner__adj"), "{err}");
    }

    #[test]
    fn interprets_bell_pair_with_branching() {
        // measure one half; conditionally X the other so the result is
        // always |1> on the second qubit.
        let mut b = FuncBuilder::new(
            "bell_fix",
            FuncType::new(vec![], vec![Type::I1], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let q0 = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit])[0];
        let q1 = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit])[0];
        let h = bb.push(
            OpKind::Gate { gate: GateKind::H, num_controls: 0 },
            vec![q0],
            vec![Type::Qubit],
        )[0];
        let cx = bb.push(
            OpKind::Gate { gate: GateKind::X, num_controls: 1 },
            vec![h, q1],
            vec![Type::Qubit, Type::Qubit],
        );
        let m = bb.push(OpKind::Measure, vec![cx[0]], vec![Type::Qubit, Type::I1]);
        // if !m: X the partner... (we branch on m: then = no-op, else = X)
        let partner = cx[1];
        let then_block = bb.subblock(vec![], |sb| {
            sb.push(OpKind::Yield, vec![partner], vec![]);
        });
        let else_block = bb.subblock(vec![], |sb| {
            let x = sb.push(
                OpKind::Gate { gate: GateKind::X, num_controls: 0 },
                vec![partner],
                vec![Type::Qubit],
            );
            sb.push(OpKind::Yield, vec![x[0]], vec![]);
        });
        let fixed = bb.push_with_regions(
            OpKind::ScfIf,
            vec![m[1]],
            vec![Type::Qubit],
            vec![
                asdf_ir::block::Region::single(then_block),
                asdf_ir::block::Region::single(else_block),
            ],
        )[0];
        let m2 = bb.push(OpKind::Measure, vec![fixed], vec![Type::Qubit, Type::I1]);
        bb.push_op(asdf_ir::Op::new(OpKind::QFreeZ, vec![m2[0]], vec![]));
        bb.push_op(asdf_ir::Op::new(OpKind::QFree, vec![m[0]], vec![]));
        bb.push(OpKind::Return, vec![m2[1]], vec![]);
        let mut module = Module::new();
        module.add_func(b.finish());

        for seed in 0..20 {
            let run = run_dynamic(&module, "bell_fix", &[], seed).unwrap();
            assert_eq!(run.bits, vec![true], "seed {seed}");
        }
    }
}
