//! Compiler-phase and design-choice ablation benches:
//!
//! - per-pass wall-clock breakdown of the Fig. 2 pipeline, read directly
//!   from the [`asdf_core::PassStatistics`] every compile records — no
//!   re-running of ad-hoc pipeline slices;
//! - end-to-end compile times per benchmark (the pipeline of Fig. 2);
//! - Selinger vs V-chain multi-control decomposition (§6.5's design
//!   choice, visible in Grover's costs);
//! - peephole on/off impact on gate counts and compile time;
//! - inlining on/off (Table 1's configurations) compile time.

use asdf_baselines::Benchmark;
use asdf_bench::qwerty_program;
use asdf_core::{CompileOptions, Compiled, Compiler, PassStatistics};
use asdf_logic::{synth, Permutation};
use asdf_qcircuit::decompose::{decompose, DecomposeStyle};
use asdf_qcircuit::Circuit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::time::Duration;

fn compile_with(benchmark: &Benchmark, options: &CompileOptions) -> Compiled {
    let (src, kernel, captures, dims) = qwerty_program(benchmark);
    let mut options = options.clone();
    options.dims.extend(dims);
    Compiler::compile(&src, kernel, &captures, &options).unwrap()
}

/// Per-pass timing of the full pipeline, from the statistics the compiler
/// already collected during a single run per benchmark.
fn bench_pass_phases(_c: &mut Criterion) {
    println!("\npass-phase breakdown (from PassStatistics, one compile each):");
    // Timing noise matters less than the shape; verification is part of the
    // measured pipeline in the default options, exactly as users run it.
    let mut totals: BTreeMap<String, Duration> = BTreeMap::new();
    for n in [8usize, 16] {
        for (name, benchmark) in Benchmark::paper_suite(n) {
            let compiled = compile_with(&benchmark, &CompileOptions::default());
            println!("\n--- {name} (n = {n}) ---");
            print!("{}", compiled.stats.render_table());
            for stat in compiled.stats.iter() {
                *totals.entry(stat.name.clone()).or_default() += stat.duration;
            }
        }
    }
    println!("\naggregate time per pass across the suite:");
    for (pass, duration) in &totals {
        println!("{pass:<28} {duration:>12.3?}");
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for n in [8usize, 16] {
        for (name, benchmark) in Benchmark::paper_suite(n) {
            group.bench_with_input(BenchmarkId::new(name, n), &benchmark, |b, benchmark| {
                b.iter(|| compile_with(benchmark, &CompileOptions::default()));
            });
        }
    }
    group.finish();
}

fn bench_inlining(c: &mut Criterion) {
    let mut group = c.benchmark_group("inlining");
    group.sample_size(10);
    let benchmark = Benchmark::Bv { secret: (0..16).map(|i| i % 2 == 0).collect() };
    group.bench_function("opt", |b| {
        b.iter(|| compile_with(&benchmark, &CompileOptions::default()));
    });
    group.bench_function("no_opt", |b| {
        b.iter(|| compile_with(&benchmark, &CompileOptions::no_opt()));
    });
    group.finish();
    // The two configurations are just two declarative pipelines; show the
    // inline fixpoint's share of Opt compile time from the statistics.
    let stats: PassStatistics = compile_with(&benchmark, &CompileOptions::default()).stats;
    let fixpoint = stats.duration_of(asdf_core::passes::CANONICALIZE_INLINE);
    println!(
        "inlining: canonicalize-inline fixpoint took {fixpoint:.3?} of {:.3?} total",
        stats.total_duration()
    );
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    group.sample_size(20);
    for k in [8usize, 16, 32] {
        let mut circuit = Circuit::new(k + 1);
        let controls: Vec<usize> = (0..k).collect();
        circuit.gate(asdf_ir::GateKind::X, &controls, &[k]);
        group.bench_with_input(BenchmarkId::new("selinger", k), &circuit, |b, circuit| {
            b.iter(|| decompose(circuit, DecomposeStyle::Selinger));
        });
        group.bench_with_input(BenchmarkId::new("vchain", k), &circuit, |b, circuit| {
            b.iter(|| decompose(circuit, DecomposeStyle::VChain));
        });
    }
    group.finish();
}

fn bench_peephole(c: &mut Criterion) {
    let mut group = c.benchmark_group("peephole");
    group.sample_size(10);
    let benchmark = Benchmark::Grover { n: 8, iterations: 4 };
    group.bench_function("on", |b| {
        b.iter(|| compile_with(&benchmark, &CompileOptions::default()));
    });
    group.bench_function("off", |b| {
        let options = CompileOptions { peephole: false, ..Default::default() };
        b.iter(|| compile_with(&benchmark, &options));
    });
    // Report the gate-count impact and the per-pattern firing counts the
    // peephole pass recorded (stdout, not a timing). One compile per
    // configuration supplies both the circuit and the statistics.
    let on = compile_with(&benchmark, &CompileOptions::default());
    let options = CompileOptions { peephole: false, ..Default::default() };
    let without = compile_with(&benchmark, &options).circuit.unwrap();
    println!(
        "peephole gate counts: on = {}, off = {}",
        on.circuit.as_ref().unwrap().gate_count(),
        without.gate_count()
    );
    for stat in on.stats.iter() {
        if stat.name == asdf_qcircuit::peephole::PEEPHOLE_PASS_NAME {
            println!("peephole pattern firings ({} total):", stat.changes);
            for (pattern, count) in &stat.detail {
                println!("  {pattern:<28} {count}");
            }
        }
    }
    group.finish();
}

fn bench_reversible_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("reversible_synthesis");
    group.sample_size(20);
    for bits in [4usize, 6, 8] {
        let table: Vec<usize> = (0..(1usize << bits)).rev().collect();
        let perm = Permutation::from_table(table).unwrap();
        group.bench_with_input(BenchmarkId::new("bidirectional", bits), &perm, |b, perm| {
            b.iter(|| synth::synthesize(perm));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pass_phases,
    bench_pipeline,
    bench_inlining,
    bench_decompose,
    bench_peephole,
    bench_reversible_synthesis
);
criterion_main!(benches);
