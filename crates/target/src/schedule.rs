//! ASAP scheduling of routed circuits.
//!
//! Once a circuit is expressed in the native gate set on coupled pairs,
//! its execution time on hardware is set by data dependencies: each op
//! starts as soon as every qubit it touches is free. This module computes
//! that as-soon-as-possible schedule, reporting both the unit-latency
//! depth (`layers`, comparable to [`Circuit::depth`]) and a
//! cost-weighted `makespan` using [`GateCosts`].

use crate::gateset::GateCosts;
use asdf_qcircuit::Circuit;

/// The result of ASAP-scheduling a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Finish time of the last op under [`GateCosts`] weighting.
    pub makespan: u64,
    /// Unit-latency depth: the number of dependency layers.
    pub layers: usize,
}

/// Schedules every op of `circuit` as soon as its qubits are available.
pub fn asap(circuit: &Circuit, costs: &GateCosts) -> Schedule {
    let mut busy_until = vec![0u64; circuit.num_qubits];
    let mut layer_of = vec![0usize; circuit.num_qubits];
    let mut makespan = 0u64;
    let mut layers = 0usize;
    for op in &circuit.ops {
        let qubits = op.qubits();
        let start = qubits.iter().map(|&q| busy_until[q]).max().unwrap_or(0);
        let end = start + costs.of(op);
        let layer = qubits.iter().map(|&q| layer_of[q]).max().unwrap_or(0) + 1;
        for &q in &qubits {
            busy_until[q] = end;
            layer_of[q] = layer;
        }
        makespan = makespan.max(end);
        layers = layers.max(layer);
    }
    Schedule { makespan, layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::GateKind;

    #[test]
    fn empty_circuit_schedules_to_zero() {
        let c = Circuit::new(3);
        assert_eq!(asap(&c, &GateCosts::default()), Schedule { makespan: 0, layers: 0 });
    }

    #[test]
    fn disjoint_gates_overlap() {
        let mut c = Circuit::new(4);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::X, &[2], &[3]);
        let s = asap(&c, &GateCosts::default());
        assert_eq!(s.layers, 1);
        assert_eq!(s.makespan, 3, "two parallel CX gates take one CX time");
    }

    #[test]
    fn dependent_ops_serialize_by_cost() {
        let costs = GateCosts::default();
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]); // 1
        c.gate(GateKind::X, &[0], &[1]); // +3
        c.measure(1, 0); // +10
        let s = asap(&c, &costs);
        assert_eq!(s.layers, 3);
        assert_eq!(s.makespan, 14);
    }

    #[test]
    fn layers_match_circuit_depth() {
        let mut c = Circuit::new(4);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::X, &[2], &[3]);
        c.gate(GateKind::X, &[1], &[2]);
        c.gate(GateKind::H, &[], &[0]);
        assert_eq!(asap(&c, &GateCosts::default()).layers, c.depth());
    }
}
