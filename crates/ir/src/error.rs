//! IR-level errors.

use std::error::Error;
use std::fmt;

/// An error raised by IR construction, verification, or transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The verifier found a malformed module; the message names the
    /// function and op.
    Verify(String),
    /// A symbol was referenced but not defined in the module.
    UnknownSymbol(String),
    /// Inlining failed (e.g. recursion bound exceeded).
    Inline(String),
    /// A construct is valid IR but unsupported by a transformation
    /// (e.g. adjointing an op with no adjoint form).
    Unsupported(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Verify(msg) => write!(f, "ir verification failed: {msg}"),
            IrError::UnknownSymbol(name) => write!(f, "unknown symbol @{name}"),
            IrError::Inline(msg) => write!(f, "inlining failed: {msg}"),
            IrError::Unsupported(msg) => write!(f, "unsupported ir construct: {msg}"),
        }
    }
}

impl Error for IrError {}
