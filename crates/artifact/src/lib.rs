//! Versioned binary artifact format for compiled ASDF programs.
//!
//! A compiled Qwerty kernel is more than a circuit: it is an optimized
//! IR module, an optional lowered circuit, routing telemetry, pass
//! statistics, and lint diagnostics, all keyed by a content hash. This
//! crate gives that bundle a stable on-disk form — a self-describing
//! container (magic, format + schema versions, section table, FNV-64
//! integrity checksum) with forward-compatible version detection — so
//! artifacts survive process restarts, cross-process difftest runs can
//! share compile work, and golden content hashes can be checked into the
//! conformance corpus.
//!
//! The three public layers:
//!
//! - [`wire`]: primitive little-endian encoding and the bounds-checked
//!   [`wire::Decoder`], the safety boundary that turns corruption into
//!   structured errors instead of panics.
//! - [`payload`]: canonical encodings for IR modules, circuits, routing
//!   info, pass statistics, and diagnostics.
//! - [`mod@format`]: the container — [`Artifact`] with [`Artifact::encode`],
//!   [`Artifact::decode`], the [`inspect`] header reader, and the
//!   content hash that excludes wall-clock pass timings.
//!
//! Every decode failure is an [`ArtifactError`] carrying the stable
//! `E0106` diagnostic code.
//!
//! ```
//! use asdf_artifact::Artifact;
//! use asdf_ir::{FuncBuilder, FuncType, Module, OpKind, Type, Visibility};
//!
//! let builder = FuncBuilder::new(
//!     "k",
//!     FuncType::new(vec![], vec![Type::BitBundle(1)], false),
//!     Visibility::Public,
//! );
//! let mut module = Module::default();
//! module.add_func(builder.finish());
//! let artifact = Artifact {
//!     entry: "k".into(),
//!     module,
//!     circuit: None,
//!     routing: None,
//!     stats: Default::default(),
//!     lints: vec![],
//!     key: vec![1, 2, 3],
//! };
//! let bytes = artifact.encode();
//! let back = Artifact::decode(&bytes).unwrap();
//! assert_eq!(back.entry, "k");
//! assert_eq!(back.encode(), bytes, "re-serialization is byte-identical");
//! ```

pub mod error;
pub mod format;
pub mod payload;
pub mod wire;

pub use error::{ArtifactError, ARTIFACT_ERROR_CODE};
pub use format::{
    inspect, section_name, Artifact, ArtifactInfo, SectionInfo, FORMAT_VERSION, MAGIC,
    SCHEMA_VERSION, SECTION_CIRCUIT, SECTION_LINTS, SECTION_META, SECTION_MODULE, SECTION_ROUTING,
    SECTION_STATS,
};
pub use wire::{fnv1a, Decoder, Encoder, Fnv};
