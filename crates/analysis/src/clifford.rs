//! Phase/Clifford gate classification.
//!
//! Partitions the gate set into Cliffords, T-like gates (odd multiples of
//! a π/4 phase), and genuine rotations. The split drives the fault-tolerant
//! cost intuition (Cliffords are cheap, T gates dominate, rotations need
//! synthesis) and the pedantic W0004 lint, which flags parameterized
//! rotations whose angle is a π/4 multiple — those are exactly
//! representable with discrete Clifford+T gates.

use asdf_ir::{Func, GateKind, Module, OpKind};
use std::f64::consts::FRAC_PI_4;

/// Fault-tolerant cost class of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateClass {
    /// In the Clifford group (phase angle a multiple of π/2).
    Clifford,
    /// Clifford+T but not Clifford (odd multiple of π/4).
    TLike,
    /// A continuous rotation needing synthesis.
    Rotation,
}

/// Classifies an angle in radians by its relation to π/4.
fn angle_class(theta: f64) -> GateClass {
    let quarters = theta / FRAC_PI_4;
    let nearest = quarters.round();
    if (quarters - nearest).abs() > 1e-9 {
        GateClass::Rotation
    } else if (nearest as i64).rem_euclid(2) == 0 {
        GateClass::Clifford
    } else {
        GateClass::TLike
    }
}

/// Classifies a gate.
///
/// Parameterized gates are classified by angle, so `p(pi)` is recognized
/// as the Clifford Z and `rz(pi/4)` as T-like.
pub fn classify(gate: GateKind) -> GateClass {
    match gate {
        GateKind::X
        | GateKind::Y
        | GateKind::Z
        | GateKind::H
        | GateKind::S
        | GateKind::Sdg
        | GateKind::Sx
        | GateKind::Sxdg
        | GateKind::Swap => GateClass::Clifford,
        GateKind::T | GateKind::Tdg => GateClass::TLike,
        GateKind::P(theta) | GateKind::Rx(theta) | GateKind::Ry(theta) | GateKind::Rz(theta) => {
            angle_class(theta)
        }
    }
}

/// Gate-census of a function or module by cost class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CliffordSummary {
    /// Clifford gate applications.
    pub clifford: usize,
    /// T-like gate applications.
    pub t_like: usize,
    /// Continuous-rotation applications.
    pub rotations: usize,
    /// Gate applications carrying at least one control (controls can push
    /// a Clifford base gate out of the Clifford group).
    pub controlled: usize,
}

impl CliffordSummary {
    /// Total gate applications counted.
    pub fn total(&self) -> usize {
        self.clifford + self.t_like + self.rotations
    }

    /// Whether every counted gate is Clifford and uncontrolled.
    pub fn is_clifford_only(&self) -> bool {
        self.t_like == 0 && self.rotations == 0 && self.controlled == 0
    }

    fn count(&mut self, gate: GateKind, num_controls: usize) {
        match classify(gate) {
            GateClass::Clifford => self.clifford += 1,
            GateClass::TLike => self.t_like += 1,
            GateClass::Rotation => self.rotations += 1,
        }
        if num_controls > 0 {
            self.controlled += 1;
        }
    }
}

/// Summarizes every gate application in `func`, including ops nested in
/// `scf.if` and `lambda` regions.
pub fn summarize_func(func: &Func) -> CliffordSummary {
    let mut summary = CliffordSummary::default();
    for path in func.block_paths() {
        for op in &func.block_at(&path).ops {
            if let OpKind::Gate { gate, num_controls } = &op.kind {
                summary.count(*gate, *num_controls);
            }
        }
    }
    summary
}

/// Summarizes every gate application in `module`.
pub fn summarize_module(module: &Module) -> CliffordSummary {
    let mut summary = CliffordSummary::default();
    for func in module.funcs() {
        let s = summarize_func(func);
        summary.clifford += s.clifford;
        summary.t_like += s.t_like;
        summary.rotations += s.rotations;
        summary.controlled += s.controlled;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn named_gates_classify() {
        assert_eq!(classify(GateKind::H), GateClass::Clifford);
        assert_eq!(classify(GateKind::Sx), GateClass::Clifford);
        assert_eq!(classify(GateKind::T), GateClass::TLike);
        assert_eq!(classify(GateKind::Tdg), GateClass::TLike);
    }

    #[test]
    fn angles_classify_by_pi_over_four() {
        assert_eq!(classify(GateKind::P(PI)), GateClass::Clifford);
        assert_eq!(classify(GateKind::Rz(-FRAC_PI_2)), GateClass::Clifford);
        assert_eq!(classify(GateKind::P(FRAC_PI_4)), GateClass::TLike);
        assert_eq!(classify(GateKind::P(3.0 * FRAC_PI_4)), GateClass::TLike);
        assert_eq!(classify(GateKind::Rz(0.3)), GateClass::Rotation);
    }

    #[test]
    fn summary_counts_nested_gates() {
        use asdf_ir::{FuncBuilder, FuncType, OpKind, Type, Visibility};
        let mut b = FuncBuilder::new(
            "g",
            FuncType::new(vec![Type::Qubit], vec![], false),
            Visibility::Private,
        );
        let arg = b.args()[0];
        let mut bb = b.block();
        let h = bb.push(
            OpKind::Gate { gate: GateKind::H, num_controls: 0 },
            vec![arg],
            vec![Type::Qubit],
        );
        let t = bb.push(
            OpKind::Gate { gate: GateKind::T, num_controls: 0 },
            vec![h[0]],
            vec![Type::Qubit],
        );
        bb.push(OpKind::QFree, vec![t[0]], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let func = b.finish();
        let summary = summarize_func(&func);
        assert_eq!(summary.clifford, 1);
        assert_eq!(summary.t_like, 1);
        assert_eq!(summary.total(), 2);
        assert!(!summary.is_clifford_only());
    }
}
