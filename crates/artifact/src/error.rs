//! Structured decode errors.
//!
//! Every way an artifact can fail to decode — wrong magic, unsupported
//! version, checksum mismatch, truncation, a corrupt tag — maps to a
//! variant of [`ArtifactError`]. Decoding never panics on untrusted
//! bytes; corruption surfaces as a value the caller can match on,
//! render, or turn into a compiler diagnostic (the `E0106` code).

use std::fmt;

/// The stable diagnostic code shared by every artifact decode failure.
pub const ARTIFACT_ERROR_CODE: &str = "E0106";

/// A structured artifact decode (or validation) failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The file does not start with the `ASDFART\0` magic.
    BadMagic,
    /// The container layout version is newer than this build understands.
    UnsupportedFormatVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// The payload encoding version is newer than this build understands.
    UnsupportedSchemaVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// The trailing FNV-64 integrity checksum does not match the bytes.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the preceding bytes.
        computed: u64,
    },
    /// The content hash stored in the metadata section does not match the
    /// hash recomputed from the decoded semantic sections.
    ContentHashMismatch {
        /// Hash stored in the metadata section.
        stored: u64,
        /// Hash recomputed after decoding.
        computed: u64,
    },
    /// The byte stream ended before a declared value was complete.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// Bytes the value needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// An enum discriminant or structural tag had no defined meaning.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// A section required by this schema version is absent.
    MissingSection {
        /// Section name, e.g. `"module"`.
        name: &'static str,
    },
    /// A section-table entry points outside the payload.
    BadSectionBounds {
        /// The section id with out-of-range bounds.
        id: u32,
    },
    /// A diagnostic carried a code this build does not know, so it cannot
    /// be interned back to a `&'static str`.
    UnknownDiagnosticCode(String),
    /// A decoded value violated a structural invariant (e.g. a basis
    /// literal whose vectors disagree on dimension).
    Invalid {
        /// What invariant was violated.
        context: &'static str,
    },
    /// An I/O failure around artifact storage (e.g. the cache directory
    /// cannot be created). Carries the rendered OS error.
    Io(String),
}

impl ArtifactError {
    /// The stable diagnostic code (`E0106`) for this error.
    pub fn code(&self) -> &'static str {
        ARTIFACT_ERROR_CODE
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => {
                write!(f, "not an ASDF artifact (bad magic)")
            }
            ArtifactError::UnsupportedFormatVersion { found, supported } => {
                write!(
                    f,
                    "unsupported artifact format version {found} (this build reads \
                     up to {supported})"
                )
            }
            ArtifactError::UnsupportedSchemaVersion { found, supported } => {
                write!(
                    f,
                    "unsupported artifact schema version {found} (this build reads \
                     up to {supported})"
                )
            }
            ArtifactError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "artifact checksum mismatch (stored {stored:016x}, computed \
                     {computed:016x}): file is corrupt"
                )
            }
            ArtifactError::ContentHashMismatch { stored, computed } => {
                write!(
                    f,
                    "artifact content hash mismatch (stored {stored:016x}, computed \
                     {computed:016x})"
                )
            }
            ArtifactError::Truncated { context, needed, remaining } => {
                write!(
                    f,
                    "artifact truncated while decoding {context} (needed {needed} \
                     bytes, {remaining} left)"
                )
            }
            ArtifactError::BadTag { context, tag } => {
                write!(f, "corrupt artifact: unknown tag {tag} while decoding {context}")
            }
            ArtifactError::BadUtf8 { context } => {
                write!(f, "corrupt artifact: invalid UTF-8 in {context}")
            }
            ArtifactError::MissingSection { name } => {
                write!(f, "corrupt artifact: required section {name:?} is missing")
            }
            ArtifactError::BadSectionBounds { id } => {
                write!(f, "corrupt artifact: section {id} points outside the payload")
            }
            ArtifactError::UnknownDiagnosticCode(code) => {
                write!(f, "artifact carries unknown diagnostic code {code:?}")
            }
            ArtifactError::Invalid { context } => {
                write!(f, "corrupt artifact: invalid {context}")
            }
            ArtifactError::Io(message) => {
                write!(f, "artifact storage i/o error: {message}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}
