//! Regenerates Fig. 12: physical qubits used by each benchmark for each
//! compiler across oracle input sizes (lower is better).
//!
//! Usage: `cargo run --release -p asdf-bench --bin fig12 [-- sizes...]`
//! (default sizes: 16 32 64 128).

use asdf_bench::{figure_points, Which};

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|s| s.parse().ok()).collect();
        if args.is_empty() {
            vec![16, 32, 64, 128]
        } else {
            args
        }
    };
    println!("Fig. 12: physical qubits on a [[338,1,13]] surface code (kiloqubits)");
    let points = figure_points(&sizes);
    let mut csv = String::from("benchmark,n,compiler,physical_qubits\n");
    for benchmark in ["bv", "grover", "simon", "period"] {
        println!("\n(% {benchmark})");
        print!("{:>10}", "n");
        for which in Which::ALL {
            print!("{:>18}", which.name());
        }
        println!();
        for &n in &sizes {
            print!("{n:>10}");
            for which in Which::ALL {
                let p = points
                    .iter()
                    .find(|p| p.benchmark == benchmark && p.n == n && p.which == which)
                    .expect("grid point");
                print!("{:>18.1}", p.estimate.physical_qubits as f64 / 1000.0);
                csv.push_str(&format!(
                    "{benchmark},{n},{},{}\n",
                    p.which.name(),
                    p.estimate.physical_qubits
                ));
            }
            println!();
        }
    }
    let _ = std::fs::create_dir_all("data");
    let _ = std::fs::write("data/fig12_physical_qubits.csv", csv);
    println!("\nwrote data/fig12_physical_qubits.csv");
}
