//! Offline shim for a scoped thread pool.
//!
//! The build environment has no network access to a crate registry, so this
//! in-tree crate provides the small parallel-execution surface the
//! simulator's kernels need: a [`ThreadPool`] with a fixed worker count and
//! borrow-friendly data-parallel loops built on [`std::thread::scope`].
//! Unlike the registry `threadpool` crate (whose jobs must be `'static`),
//! scoped spawning lets kernels parallelize over borrowed amplitude
//! buffers with no `Arc`/channel plumbing — and no external dependencies.
//!
//! Threads are spawned per call and joined before the call returns; there
//! is no persistent worker state, so a pool is cheap to construct and the
//! zero-worker/one-worker cases degrade to plain serial loops (important
//! for the simulator, whose inputs are usually far too small to amortize a
//! thread spawn).
//!
//! Work is split into **contiguous, balanced** per-worker ranges: worker
//! `w` of `n` receives items `[w*total/n, (w+1)*total/n)`, so per-worker
//! item counts differ by at most one and each worker touches one
//! cache-friendly contiguous span. (An earlier version dealt chunks
//! round-robin, which both interleaved each worker's memory accesses and —
//! when the chunk count was not a multiple of the worker count — left the
//! trailing workers idle while the leading ones drained a whole extra
//! round.)

use std::num::NonZeroUsize;
use std::ops::Range;

/// A fixed-width scoped thread pool.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    workers: usize,
}

/// The contiguous even split of `0..total` into at most `parts` ranges:
/// range `p` is `[p*total/parts, (p+1)*total/parts)`, so lengths differ by
/// at most one and concatenating the ranges yields `0..total` exactly.
fn even_ranges(total: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    let parts = parts.clamp(1, total.max(1));
    (0..parts).map(move |p| (p * total / parts)..((p + 1) * total / parts))
}

impl ThreadPool {
    /// A pool running `workers` tasks concurrently (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ThreadPool { workers: workers.max(1) }
    }

    /// A pool sized to the machine's available parallelism (1 if unknown).
    pub fn with_available_parallelism() -> Self {
        ThreadPool::new(std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits `data` into disjoint chunks of at most `chunk_len` elements
    /// and runs `f(chunk_index, chunk)` over all of them. Each worker
    /// receives one contiguous, evenly sized run of chunks (per-worker
    /// chunk counts differ by at most one). Runs serially when the pool
    /// has one worker or there is only one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let num_chunks = data.len().div_ceil(chunk_len);
        if self.workers == 1 || num_chunks <= 1 {
            for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(index, chunk);
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut rest = data;
            for range in even_ranges(num_chunks, self.workers) {
                // `range` is in chunk units; slice off this worker's
                // contiguous span of whole chunks (the last span may end in
                // a short tail chunk).
                let span_len = (range.len() * chunk_len).min(rest.len());
                let (span, tail) = rest.split_at_mut(span_len);
                rest = tail;
                let f = &f;
                scope.spawn(move || {
                    for (offset, chunk) in span.chunks_mut(chunk_len).enumerate() {
                        f(range.start + offset, chunk);
                    }
                });
            }
        });
    }

    /// Splits the index range `0..total` into at most `workers` contiguous,
    /// evenly sized subranges and runs `f` on each concurrently. The
    /// split depends only on `total` and the worker count — never on
    /// scheduling — so callers that combine per-range results in range
    /// order get bit-identical outcomes run to run.
    ///
    /// Runs serially (one call with `0..total`) when the pool has one
    /// worker or `total <= 1`.
    pub fn for_each_range<F>(&self, total: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if total == 0 {
            return;
        }
        if self.workers == 1 || total == 1 {
            f(0..total);
            return;
        }
        std::thread::scope(|scope| {
            for range in even_ranges(total, self.workers) {
                if range.is_empty() {
                    continue;
                }
                let f = &f;
                scope.spawn(move || f(range));
            }
        });
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn covers_every_chunk_exactly_once() {
        for workers in [1, 2, 3, 8] {
            let pool = ThreadPool::new(workers);
            let mut data = vec![0u32; 103];
            let calls = AtomicUsize::new(0);
            pool.for_each_chunk(&mut data, 10, |index, chunk| {
                calls.fetch_add(1, Ordering::SeqCst);
                for x in chunk.iter_mut() {
                    *x += 1 + index as u32;
                }
            });
            assert_eq!(calls.load(Ordering::SeqCst), 11, "workers={workers}");
            for (i, x) in data.iter().enumerate() {
                assert_eq!(*x, 1 + (i / 10) as u32, "workers={workers} element {i}");
            }
        }
    }

    /// The scheduling fix: chunks are dealt as contiguous even spans, so
    /// per-worker chunk counts differ by at most one even when the chunk
    /// count is not a multiple of the worker count (round-robin dealing
    /// used to give the leading workers a whole extra round).
    #[test]
    fn chunk_assignment_is_balanced_and_contiguous() {
        for (items, chunk_len, workers) in
            [(103, 10, 4), (170, 10, 4), (90, 10, 8), (64, 1, 3), (1000, 7, 6)]
        {
            let pool = ThreadPool::new(workers);
            let mut data = vec![0u8; items];
            let seen: Mutex<HashMap<ThreadId, Vec<usize>>> = Mutex::new(HashMap::new());
            pool.for_each_chunk(&mut data, chunk_len, |index, _| {
                seen.lock().unwrap().entry(std::thread::current().id()).or_default().push(index);
            });
            let by_worker = seen.into_inner().unwrap();
            let num_chunks = items.div_ceil(chunk_len);
            let counts: Vec<usize> = by_worker.values().map(Vec::len).collect();
            assert_eq!(counts.iter().sum::<usize>(), num_chunks);
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "unbalanced split {counts:?} for {items} items / {chunk_len} chunk / {workers} workers"
            );
            for indices in by_worker.values() {
                let mut sorted = indices.clone();
                sorted.sort_unstable();
                assert_eq!(&sorted, indices, "chunks visited in order");
                assert!(
                    sorted.windows(2).all(|w| w[1] == w[0] + 1),
                    "worker's chunks must be contiguous: {sorted:?}"
                );
            }
        }
    }

    #[test]
    fn for_each_range_partitions_exactly() {
        for (total, workers) in [(0usize, 4), (1, 4), (5, 8), (103, 4), (64, 64), (17, 3)] {
            let pool = ThreadPool::new(workers);
            let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_range(total, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "total={total} workers={workers}"
            );
        }
    }

    #[test]
    fn for_each_range_spans_are_balanced() {
        let pool = ThreadPool::new(4);
        let lens: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        pool.for_each_range(103, |range| lens.lock().unwrap().push(range.len()));
        let lens = lens.into_inner().unwrap();
        assert_eq!(lens.len(), 4);
        assert_eq!(lens.iter().sum::<usize>(), 103);
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1, "{lens:?}");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).workers(), 1);
        assert!(ThreadPool::default().workers() >= 1);
    }

    #[test]
    fn empty_data_is_a_no_op() {
        let pool = ThreadPool::new(4);
        let mut data: Vec<u8> = Vec::new();
        pool.for_each_chunk(&mut data, 16, |_, _| panic!("no chunks expected"));
        pool.for_each_range(0, |_| panic!("no ranges expected"));
    }
}
