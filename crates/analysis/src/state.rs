//! Ancilla-hygiene state analysis.
//!
//! Tracks each qubit's computational-basis state through the circuit as an
//! abstract value: provably |0⟩, provably |1⟩, or unknown (any
//! superposition or unresolved merge). The W0003 lint uses it to flag
//! |0⟩-asserted releases (`qcirc.qfreez`, `qwerty.qbdiscardz`) whose
//! operand is *provably* |1⟩ — the one case the analysis can prove wrong.
//! Because the abstraction only ever reports definite states, a correct
//! program (whose asserted wires really are |0⟩) can never be flagged.

use crate::framework::{Analysis, Direction, Fact, FactMap};
use asdf_basis::{Eigenstate, PrimitiveBasis};
use asdf_ir::{Func, GateKind, Op, OpKind};

/// Abstract computational-basis state of a single qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QState {
    /// Provably |0⟩.
    Zero,
    /// Provably |1⟩ (up to global phase).
    One,
    /// Superposition, entangled, or merged from disagreeing branches.
    Unknown,
}

impl QState {
    fn join(self, other: QState) -> QState {
        if self == other {
            self
        } else {
            QState::Unknown
        }
    }

    /// The state after applying `gate` (no controls, single target).
    fn after(self, gate: GateKind) -> QState {
        match gate {
            // Bit flips (Y differs from X only by phase).
            GateKind::X | GateKind::Y => match self {
                QState::Zero => QState::One,
                QState::One => QState::Zero,
                QState::Unknown => QState::Unknown,
            },
            // Diagonal gates preserve computational-basis states.
            GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::P(_)
            | GateKind::Rz(_) => self,
            // Basis-mixing gates leave the computational basis.
            GateKind::H
            | GateKind::Sx
            | GateKind::Sxdg
            | GateKind::Rx(_)
            | GateKind::Ry(_)
            | GateKind::Swap => QState::Unknown,
        }
    }
}

/// Per-value state fact: one [`QState`] per qubit the value carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateFact {
    /// No information (classical values stay here).
    Bottom,
    /// One abstract state per qubit, in order.
    Qubits(Vec<QState>),
}

impl StateFact {
    fn states(&self, count: usize) -> Vec<QState> {
        match self {
            StateFact::Qubits(q) if q.len() == count => q.clone(),
            _ => vec![QState::Unknown; count],
        }
    }
}

impl Fact for StateFact {
    fn bottom() -> Self {
        StateFact::Bottom
    }

    fn join(&mut self, other: &Self) -> bool {
        match (&mut *self, other) {
            (_, StateFact::Bottom) => false,
            (StateFact::Bottom, _) => {
                *self = other.clone();
                true
            }
            (StateFact::Qubits(a), StateFact::Qubits(b)) => {
                if a.len() != b.len() {
                    let widened = vec![QState::Unknown; a.len().max(b.len())];
                    let changed = *a != widened;
                    *a = widened;
                    return changed;
                }
                let mut changed = false;
                for (x, &y) in a.iter_mut().zip(b) {
                    let joined = x.join(y);
                    changed |= joined != *x;
                    *x = joined;
                }
                changed
            }
        }
    }
}

/// Forward abstract interpretation of computational-basis qubit states.
#[derive(Debug, Default)]
pub struct StateAnalysis;

impl Analysis for StateAnalysis {
    type Fact = StateFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    // Function arguments carry caller state: unknown.
    fn arg_fact(&mut self, func: &Func, arg: asdf_ir::Value) -> StateFact {
        let count = func.value_type(arg).qubit_count();
        if count == 0 {
            StateFact::Bottom
        } else {
            StateFact::Qubits(vec![QState::Unknown; count])
        }
    }

    fn transfer(&mut self, func: &Func, op: &Op, facts: &mut FactMap<StateFact>) {
        match &op.kind {
            OpKind::QAlloc => facts.set(op.results[0], StateFact::Qubits(vec![QState::Zero])),
            OpKind::QbPrep { prim, eigenstate, dim } => {
                // In the std basis the PLUS eigenstate is |0⟩ and MINUS is
                // |1⟩; every other primitive basis prepares a superposition.
                let state = match (prim, eigenstate) {
                    (PrimitiveBasis::Std, Eigenstate::Plus) => QState::Zero,
                    (PrimitiveBasis::Std, Eigenstate::Minus) => QState::One,
                    _ => QState::Unknown,
                };
                facts.set(op.results[0], StateFact::Qubits(vec![state; *dim]));
            }
            OpKind::QbPack | OpKind::ArrPack => {
                let mut states = Vec::new();
                for &v in &op.operands {
                    states.extend(facts.get(v).states(func.value_type(v).qubit_count()));
                }
                facts.set(op.results[0], StateFact::Qubits(states));
            }
            OpKind::QbUnpack | OpKind::ArrUnpack => {
                let operand = op.operands[0];
                let states = facts.get(operand).states(func.value_type(operand).qubit_count());
                let mut offset = 0usize;
                for &r in &op.results {
                    let count = func.value_type(r).qubit_count();
                    let slice = states[offset..(offset + count).min(states.len())].to_vec();
                    offset += count;
                    facts.set(r, StateFact::Qubits(slice));
                }
            }
            OpKind::Gate { gate, num_controls } => {
                let mut states: Vec<QState> =
                    op.operands.iter().map(|&v| facts.get(v).states(1)[0]).collect();
                let (controls, targets) = states.split_at_mut(*num_controls);
                // A definite-|0⟩ control forces the identity; all-|1⟩
                // controls fire the gate; otherwise the targets may or may
                // not be transformed. Controls themselves are diagonal
                // wires: a definite computational state passes through.
                if controls.contains(&QState::Zero) {
                    // Targets unchanged.
                } else if controls.iter().all(|&c| c == QState::One) {
                    if *gate == GateKind::Swap {
                        targets.swap(0, 1);
                    } else {
                        for t in targets.iter_mut() {
                            *t = t.after(*gate);
                        }
                    }
                } else {
                    for t in targets.iter_mut() {
                        *t = QState::Unknown;
                    }
                }
                for (&r, &s) in op.results.iter().zip(states.iter()) {
                    facts.set(r, StateFact::Qubits(vec![s]));
                }
            }
            // Measuring a definite computational state preserves it.
            OpKind::Measure => {
                let state = facts.get(op.operands[0]).states(1);
                facts.set(op.results[0], StateFact::Qubits(state));
            }
            OpKind::ScfIf | OpKind::Yield | OpKind::Return => {}
            // Translations, calls, and anything else produce unknown state.
            _ => {
                for &r in &op.results {
                    let count = func.value_type(r).qubit_count();
                    if count > 0 {
                        facts.set(r, StateFact::Qubits(vec![QState::Unknown; count]));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::analyze;
    use asdf_ir::{FuncBuilder, FuncType, Type, Visibility};

    fn circuit_fn(name: &str) -> FuncBuilder {
        FuncBuilder::new(name, FuncType::new(vec![], vec![], false), Visibility::Private)
    }

    #[test]
    fn x_flips_a_fresh_ancilla() {
        let mut b = circuit_fn("flip");
        let mut bb = b.block();
        let a = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let x = bb.push(
            OpKind::Gate { gate: GateKind::X, num_controls: 0 },
            vec![a[0]],
            vec![Type::Qubit],
        );
        let x2 = bb.push(
            OpKind::Gate { gate: GateKind::X, num_controls: 0 },
            vec![x[0]],
            vec![Type::Qubit],
        );
        bb.push(OpKind::QFreeZ, vec![x2[0]], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let func = b.finish();
        let facts = analyze(&func, &mut StateAnalysis);
        assert_eq!(*facts.get(a[0]), StateFact::Qubits(vec![QState::Zero]));
        assert_eq!(*facts.get(x[0]), StateFact::Qubits(vec![QState::One]));
        assert_eq!(*facts.get(x2[0]), StateFact::Qubits(vec![QState::Zero]));
    }

    #[test]
    fn zero_control_blocks_the_gate() {
        let mut b = circuit_fn("cx");
        let mut bb = b.block();
        let c = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let t = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        // CX with a |0⟩ control: the target stays |0⟩.
        let g = bb.push(
            OpKind::Gate { gate: GateKind::X, num_controls: 1 },
            vec![c[0], t[0]],
            vec![Type::Qubit, Type::Qubit],
        );
        bb.push(OpKind::QFreeZ, vec![g[0]], vec![]);
        bb.push(OpKind::QFreeZ, vec![g[1]], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let func = b.finish();
        let facts = analyze(&func, &mut StateAnalysis);
        assert_eq!(*facts.get(g[0]), StateFact::Qubits(vec![QState::Zero]), "control");
        assert_eq!(*facts.get(g[1]), StateFact::Qubits(vec![QState::Zero]), "blocked target");
    }

    #[test]
    fn hadamard_loses_the_state() {
        let mut b = circuit_fn("h");
        let mut bb = b.block();
        let a = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let h = bb.push(
            OpKind::Gate { gate: GateKind::H, num_controls: 0 },
            vec![a[0]],
            vec![Type::Qubit],
        );
        bb.push(OpKind::QFree, vec![h[0]], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let func = b.finish();
        let facts = analyze(&func, &mut StateAnalysis);
        assert_eq!(*facts.get(h[0]), StateFact::Qubits(vec![QState::Unknown]));
    }
}
