//! Cache-correctness tests for the session API: identical requests share
//! one artifact; changing *any* key component (source, kernel, captures,
//! dims, options) misses; the LRU bound holds.

use asdf_ast::CaptureValue;
use asdf_core::{CompileOptions, CompileRequest, Session};
use std::sync::Arc;

const BV_SRC: &str = r"
    classical f[N](secret: bit[N], x: bit[N]) -> bit {
        (secret & x).xor_reduce()
    }
    qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
        'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
    }
    qpu other[N](f: cfunc[N, 1]) -> bit[N] {
        'p'[N] | f.sign | std[N].measure
    }
";

fn bv_request(secret: &str) -> CompileRequest {
    CompileRequest::kernel("kernel").with_capture(CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(secret)],
    })
}

#[test]
fn same_request_twice_returns_the_identical_artifact() {
    let session = Session::new(BV_SRC).unwrap();
    let first = session.compile(&bv_request("101")).unwrap();
    let second = session.compile(&bv_request("101")).unwrap();
    assert!(Arc::ptr_eq(&first, &second), "cache hit must share the allocation");
    let stats = session.cache_stats();
    assert_eq!((stats.artifact_misses, stats.artifact_hits), (1, 1));
    assert_eq!((stats.frontend_misses, stats.frontend_hits), (1, 0));
    assert!(stats.artifact_saved > std::time::Duration::ZERO, "hits record time saved");
}

#[test]
fn every_key_component_participates_in_addressing() {
    let session = Session::new(BV_SRC).unwrap();
    let base = session.compile(&bv_request("101")).unwrap();

    // Different kernel: miss.
    let other = session
        .compile(&bv_request("101").clone())
        .and(session.compile(&CompileRequest::kernel("other").with_capture(CaptureValue::CFunc {
            name: "f".into(),
            captures: vec![CaptureValue::bits_from_str("101")],
        })))
        .unwrap();
    assert!(!Arc::ptr_eq(&base, &other));

    // Different captures: miss (and a genuinely different circuit).
    let flipped = session.compile(&bv_request("011")).unwrap();
    assert!(!Arc::ptr_eq(&base, &flipped));
    assert_ne!(base.circuit, flipped.circuit, "different secrets compile differently");

    // Different options: miss.
    let no_opt =
        session.compile(&bv_request("101").with_options(CompileOptions::no_opt())).unwrap();
    assert!(!Arc::ptr_eq(&base, &no_opt));

    // Same logical request again: still a hit after all the misses.
    let again = session.compile(&bv_request("101")).unwrap();
    assert!(Arc::ptr_eq(&base, &again));
}

#[test]
fn explicit_dims_are_part_of_the_key() {
    let src = r"
        classical balanced[N](x: bit[N]) -> bit { x.xor_reduce() }
        qpu dj[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";
    let session = Session::new(src).unwrap();
    let request = CompileRequest::kernel("dj")
        .with_capture(CaptureValue::CFunc { name: "balanced".into(), captures: vec![] });
    let n3 = session.compile(&request.clone().with_dim("N", 3)).unwrap();
    let n5 = session.compile(&request.clone().with_dim("N", 5)).unwrap();
    assert!(!Arc::ptr_eq(&n3, &n5));
    // The oracle synthesis may add ancillas, so compare relatively: the
    // N=5 instance is strictly wider and measures five bits.
    let (q3, q5) = (n3.circuit.as_ref().unwrap(), n5.circuit.as_ref().unwrap());
    assert!(q3.num_qubits >= 3 && q5.num_qubits >= 5 && q5.num_qubits > q3.num_qubits);
    assert_eq!(q3.num_bits(), 3);
    assert_eq!(q5.num_bits(), 5);
    // Binding the dim through options instead of the request addresses the
    // same content.
    let via_options = session
        .compile(&request.clone().with_options(CompileOptions::default().with_dim("N", 3)))
        .unwrap();
    assert!(Arc::ptr_eq(&n3, &via_options), "equal effective dims hit the same entry");
}

#[test]
fn different_sessions_have_different_source_hashes() {
    let a = Session::new("qpu k() -> bit[1] { '0' | std.measure }").unwrap();
    let b = Session::new("qpu k() -> bit[1] { '1' | std.measure }").unwrap();
    assert_ne!(a.source_hash(), b.source_hash(), "cache keys are content-addressed");
    let ca = a.compile(&CompileRequest::kernel("k")).unwrap();
    let cb = b.compile(&CompileRequest::kernel("k")).unwrap();
    assert_ne!(ca.circuit, cb.circuit);
}

#[test]
fn lru_eviction_bounds_memory() {
    // Capacity 2 artifacts; 8 distinct requests.
    let session = Session::with_capacity(BV_SRC, 2, 2).unwrap();
    for width in 1..=8u32 {
        let secret: String = "1".repeat(width as usize);
        session.compile(&bv_request(&secret)).unwrap();
    }
    let (frontend_len, artifact_len) = session.cache_len();
    assert!(frontend_len <= 2, "frontend cache bounded, got {frontend_len}");
    assert!(artifact_len <= 2, "artifact cache bounded, got {artifact_len}");
    let stats = session.cache_stats();
    assert_eq!(stats.artifact_misses, 8);
    assert!(stats.evictions >= 12, "both caches evicted, got {}", stats.evictions);

    // Most-recent entries survive; the oldest was evicted and recompiles.
    let recent = session.compile(&bv_request("11111111")).unwrap();
    assert_eq!(session.cache_stats().artifact_hits, 1);
    drop(recent);
    session.compile(&bv_request("1")).unwrap();
    assert_eq!(session.cache_stats().artifact_hits, 1, "evicted entry misses again");
}

#[test]
fn sessions_are_shareable_across_threads() {
    let session = Arc::new(Session::new(BV_SRC).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || session.compile(&bv_request("1101")).unwrap())
        })
        .collect();
    let artifacts: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for pair in artifacts.windows(2) {
        assert_eq!(pair[0].circuit, pair[1].circuit);
    }
    // Every thread is accounted for, but a concurrent identical request
    // may land as a hit, the one miss that does the work, or a coalesced
    // wait on that in-flight work — depending on timing.
    let stats = session.cache_stats();
    assert_eq!(stats.artifact_hits + stats.artifact_misses + stats.artifact_coalesced, 4);
    assert!(stats.artifact_misses >= 1);
}

#[test]
fn wrapper_and_session_agree() {
    use asdf_core::Compiler;
    let secret = "1011";
    let captures = vec![CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(secret)],
    }];
    let one_shot =
        Compiler::compile(BV_SRC, "kernel", &captures, &CompileOptions::default()).unwrap();
    let session = Session::new(BV_SRC).unwrap();
    let via_session = session.compile(&bv_request(secret)).unwrap();
    assert_eq!(one_shot.circuit, via_session.circuit);
    assert_eq!(one_shot.entry, via_session.entry);
}

#[test]
fn render_error_includes_code_and_position() {
    let src = "qpu k(q: qubit) -> qubit {\n    q + q\n}";
    let session = Session::new(src).unwrap();
    let err = session.compile(&CompileRequest::kernel("k")).unwrap_err();
    let rendered = session.render_error(&err);
    assert!(rendered.contains("error[E0004]"), "{rendered}");
    assert!(rendered.contains("line 2"), "{rendered}");
    assert!(rendered.contains("q + q"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}

#[test]
fn emission_is_reachable_only_through_backends() {
    let session = Session::new(BV_SRC).unwrap();
    assert_eq!(session.backend_names(), ["qasm", "qir-base", "qir-unrestricted", "sim"]);
    let artifact = session.compile(&bv_request("110")).unwrap();
    for backend in session.backend_names() {
        let text = session.emit(&artifact, backend).unwrap();
        assert!(!text.is_empty(), "{backend} emitted nothing");
    }
    let err = session.emit(&artifact, "no-such-target").unwrap_err();
    assert!(err.to_string().contains("unknown backend"), "{err}");
}

#[test]
fn backends_are_fixed_before_sharing() {
    // Backend registration happens on the builder, *before* the session
    // can be shared — there is no `&mut self` registration on Session, so
    // an `Arc<Session>` can never race a registry mutation.
    struct Upper;
    impl asdf_codegen::Backend for Upper {
        fn name(&self) -> &'static str {
            "upper"
        }
        fn description(&self) -> &'static str {
            "uppercased QASM (test backend)"
        }
        fn emit(
            &self,
            input: &asdf_codegen::EmitInput<'_>,
        ) -> Result<String, asdf_codegen::BackendError> {
            asdf_codegen::BackendRegistry::with_codegen_backends()
                .emit("qasm", input)
                .map(|text| text.to_uppercase())
        }
    }
    let session = Session::builder(BV_SRC).backend(Box::new(Upper)).build().unwrap();
    assert_eq!(session.backend_names(), ["qasm", "qir-base", "qir-unrestricted", "sim", "upper"]);
    let session = Arc::new(session);
    let artifact = session.compile(&bv_request("101")).unwrap();
    let emitted = session.emit(&artifact, "upper").unwrap();
    assert!(emitted.contains("OPENQASM"), "{emitted}");
}

#[test]
fn single_shard_restores_exact_global_lru_order() {
    // shards(1) is the deterministic configuration: one global LRU whose
    // eviction order is exact (the sharded default approximates it
    // per-shard).
    let session = Session::builder(BV_SRC)
        .frontend_capacity(2)
        .artifact_capacity(2)
        .shards(1)
        .build()
        .unwrap();
    for width in 1..=4u32 {
        session.compile(&bv_request(&"1".repeat(width as usize))).unwrap();
    }
    // "111" and "1111" are the two freshest; "1" was evicted first.
    session.compile(&bv_request("1111")).unwrap();
    assert_eq!(session.cache_stats().artifact_hits, 1);
    session.compile(&bv_request("1")).unwrap();
    assert_eq!(session.cache_stats().artifact_hits, 1, "oldest entry was evicted");
}

#[test]
fn programmatic_asts_render_without_a_misleading_label() {
    // Type errors raised on ASTs with placeholder spans (difftest builds
    // them programmatically) must not point a caret at line 1 column 1.
    use asdf_ast::expand::instantiate;
    use asdf_ast::typecheck::typecheck_kernel;
    let src = "qpu k(q: qubit) -> qubit[2] {\n    q + q\n}";
    let program = asdf_ast::parse::parse_program(src).unwrap();
    let instance = instantiate(&program, "k", &[], &std::collections::HashMap::new()).unwrap();
    // Strip spans the way a programmatic builder would: re-render and
    // reparse keeps structure, but here we simply check the parsed path
    // has a span while a rebuilt expression does not.
    let err = typecheck_kernel(&program, "k", &instance).unwrap_err();
    assert!(err.span().is_some(), "parsed ASTs carry spans");
    let rebuilt: asdf_ast::ast::Expr = asdf_ast::ast::ExprKind::Var("nope".into()).into();
    assert!(rebuilt.span.is_empty());
    let unspanned = asdf_ast::FrontendError::type_err("synthetic").with_span(rebuilt.span);
    assert!(unspanned.span().is_none(), "empty spans are not attached");
    assert!(unspanned.to_diagnostic().labels.is_empty());
}
