//! Equivalence oracles: extracting comparable semantics from a compiled
//! configuration and deciding whether two configurations agree.
//!
//! Three extraction paths, chosen by what the configuration produced:
//!
//! - **static circuit, measurement-free** — unitary columns over the
//!   logical interface (all `2^width` basis inputs for `qubit`-argument
//!   kernels, the single |0...0> column for literal-prep kernels), with
//!   ancillas required back in |0> ([`asdf_sim::StateVector::marginal_on`]);
//! - **static circuit, measuring** — the *exact* outcome distribution when
//!   every measurement is terminal ([`asdf_sim::measurement_distribution`]),
//!   falling back to seeded sampling otherwise;
//! - **no static circuit** (the No-Opt pipelines keep callables) — the
//!   dynamic interpreter executes the module per basis input (or per shot
//!   for measuring programs), and the same marginal/distribution extraction
//!   applies.
//!
//! Comparison is pairwise: unitary columns up to one shared global phase
//! ([`asdf_sim::columns_equivalent`]), distributions by total-variation
//! distance within the sum of the two sides' statistical slack.

use crate::gen::{GenCase, InputMode};
use asdf_core::Compiled;
use asdf_qcircuit::{Circuit, CircuitOp};
use asdf_sim::{
    batched_program_columns_threads, columns_equivalent, measurement_distribution_threads,
    run_dynamic, sample_per_shot, ArgValue, KernelProgram, StateVector,
};
use asdf_target::RoutingInfo;
use std::collections::BTreeMap;

/// Oracle tunables.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// Shots for the sampling fallback on non-terminal measuring circuits.
    pub shots: usize,
    /// Dynamic-interpreter runs per measuring case without a circuit.
    pub dyn_shots: usize,
    /// Amplitude tolerance for unitary/column comparison.
    pub eps: f64,
    /// Hard cap on qubits for column extraction (exponential).
    pub max_unitary_qubits: usize,
    /// Simulator worker threads per extraction: `0` lets the simulator
    /// size its pool from the state size; [`crate::Harness::with_jobs`]
    /// pins this to 1 when the compile pool is already parallel, so the
    /// two levels never oversubscribe. Verdicts are identical either way
    /// (the kernels are bit-identical across worker counts).
    pub sim_threads: usize,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            shots: 4096,
            dyn_shots: 512,
            eps: 1e-7,
            max_unitary_qubits: 12,
            sim_threads: 0,
        }
    }
}

/// What one configuration's compilation *means*, in comparable form.
#[derive(Debug, Clone)]
pub enum Semantics {
    /// Output states indexed by basis input (measurement-free).
    Columns(Vec<StateVector>),
    /// Outcome distribution over measured bit strings, plus the
    /// statistical slack a comparison must grant this side.
    Distribution {
        /// Sorted `(bits, probability)` entries.
        dist: Vec<(String, f64)>,
        /// Total-variation slack (0 for exact distributions).
        slack: f64,
    },
    /// A definite contract violation (e.g. an ancilla left entangled or
    /// away from |0>): always a mismatch.
    Broken(String),
    /// Semantics not extractable for this configuration (e.g. callable
    /// forms the interpreter cannot run): comparisons are skipped.
    Unavailable(String),
}

/// The verdict of comparing two configurations on one case.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparison {
    /// Semantics agree within tolerance.
    Agree,
    /// Semantics differ: the compiler miscompiled at least one of the two.
    Disagree(String),
    /// At least one side was unavailable.
    Skipped,
}

/// Extracts comparable semantics from `compiled` for `case`.
pub fn extract(case: &GenCase, compiled: &Compiled, opts: &OracleOptions, seed: u64) -> Semantics {
    let routing = compiled.routing.as_ref();
    match (&compiled.circuit, case.measure.is_some()) {
        (Some(circuit), false) => columns_from_circuit(case, circuit, routing, opts),
        (Some(circuit), true) => dist_from_circuit(case, circuit, routing, opts, seed),
        (None, false) => columns_from_dynamic(case, compiled, opts, seed),
        (None, true) => dist_from_dynamic(case, compiled, opts, seed),
    }
}

/// Compares two extracted semantics.
pub fn compare(a: &Semantics, b: &Semantics, eps: f64) -> Comparison {
    match (a, b) {
        (Semantics::Unavailable(_), _) | (_, Semantics::Unavailable(_)) => Comparison::Skipped,
        (Semantics::Broken(reason), _) | (_, Semantics::Broken(reason)) => {
            Comparison::Disagree(reason.clone())
        }
        (Semantics::Columns(ca), Semantics::Columns(cb)) => {
            if ca.len() != cb.len() {
                Comparison::Disagree(format!("column count mismatch: {} vs {}", ca.len(), cb.len()))
            } else if columns_equivalent(ca, cb, eps) {
                Comparison::Agree
            } else {
                Comparison::Disagree(
                    "unitary mismatch (columns differ beyond a shared global phase)".to_string(),
                )
            }
        }
        (
            Semantics::Distribution { dist: da, slack: sa },
            Semantics::Distribution { dist: db, slack: sb },
        ) => {
            let tv = total_variation(da, db);
            let allowed = sa + sb + 1e-6;
            if tv <= allowed {
                Comparison::Agree
            } else {
                Comparison::Disagree(format!(
                    "distribution mismatch: total variation {tv:.4} exceeds allowance {allowed:.4}"
                ))
            }
        }
        _ => Comparison::Disagree("semantics kind mismatch between configurations".to_string()),
    }
}

/// Total-variation distance between two normalized distributions.
pub fn total_variation(a: &[(String, f64)], b: &[(String, f64)]) -> f64 {
    let mut keys: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for (k, p) in a {
        keys.entry(k).or_insert((0.0, 0.0)).0 += p;
    }
    for (k, p) in b {
        keys.entry(k).or_insert((0.0, 0.0)).1 += p;
    }
    keys.values().map(|(p, q)| (p - q).abs()).sum::<f64>() / 2.0
}

/// The basis inputs to sweep for a case: every assignment of the argument
/// register, or the single implicit |0...0> start for literal preps (the
/// compiler only guarantees behavior from freshly allocated qubits, so
/// feeding other states into prep-mode circuits would be unsound).
fn input_indices(case: &GenCase) -> Vec<usize> {
    match &case.input {
        InputMode::Arg(_) => (0..1usize << case.width).collect(),
        InputMode::Prep(_) => vec![0],
    }
}

/// The physical wires holding the kernel interface of a routed circuit.
/// `None` when the layouts do not cover the interface — a contract
/// violation the caller reports as [`Semantics::Broken`].
fn routed_interface(routing: &RoutingInfo, width: usize, num_qubits: usize) -> Option<()> {
    let covered = routing.initial_layout.len() >= width
        && routing.final_layout.len() >= width
        && routing.initial_layout[..width].iter().all(|&p| p < num_qubits)
        && routing.final_layout[..width].iter().all(|&p| p < num_qubits);
    covered.then_some(())
}

/// The basis-state index that places bit `q` of `index` (logical qubit
/// `q`, big-endian over `width`) on physical wire `layout[q]` of an
/// `num_qubits`-wide register.
fn permute_input(index: usize, width: usize, layout: &[usize], num_qubits: usize) -> usize {
    (0..width)
        .filter(|&q| index & (1 << (width - 1 - q)) != 0)
        .fold(0usize, |acc, q| acc | (1 << (num_qubits - 1 - layout[q])))
}

fn columns_from_circuit(
    case: &GenCase,
    circuit: &Circuit,
    routing: Option<&RoutingInfo>,
    opts: &OracleOptions,
) -> Semantics {
    if circuit.num_qubits > opts.max_unitary_qubits {
        return Semantics::Unavailable(format!(
            "{} qubits exceeds the {}-qubit unitary cap",
            circuit.num_qubits, opts.max_unitary_qubits
        ));
    }
    if circuit.num_qubits < case.width {
        return Semantics::Broken(format!(
            "circuit has {} qubits but the kernel interface needs {}",
            circuit.num_qubits, case.width
        ));
    }
    if !circuit.ops.iter().all(|op| matches!(op, CircuitOp::Gate { .. })) {
        return Semantics::Broken(
            "measurement-free program compiled to a circuit with measure/reset ops".to_string(),
        );
    }
    // A routed configuration holds logical qubit `q` on physical wire
    // `initial_layout[q]` at input and `final_layout[q]` at output (SWAPs
    // move it); the oracle prepares and extracts through those layouts so
    // routed and unrouted configurations compare on the *logical*
    // interface.
    if let Some(r) = routing {
        if routed_interface(r, case.width, circuit.num_qubits).is_none() {
            return Semantics::Broken(format!(
                "routing layouts do not cover the {}-qubit kernel interface",
                case.width
            ));
        }
    }
    let shift = circuit.num_qubits - case.width;
    let data: Vec<usize> = match routing {
        Some(r) => r.final_layout[..case.width].to_vec(),
        None => (0..case.width).collect(),
    };
    let indices = input_indices(case);
    // One batched pass over every basis input instead of a per-column
    // re-simulation: the sweep's hottest loop.
    let inputs: Vec<usize> = indices
        .iter()
        .map(|&index| match routing {
            Some(r) => permute_input(index, case.width, &r.initial_layout, circuit.num_qubits),
            None => index << shift,
        })
        .collect();
    let program = KernelProgram::compile(circuit);
    let full_columns = batched_program_columns_threads(&program, &inputs, opts.sim_threads);
    let mut columns = Vec::with_capacity(full_columns.len());
    for (index, state) in indices.iter().zip(&full_columns) {
        match state.marginal_on(&data, 1e-9) {
            Some(column) => columns.push(column),
            None => {
                return Semantics::Broken(format!(
                    "ancillas not returned to |0> on basis input {index}"
                ))
            }
        }
    }
    Semantics::Columns(columns)
}

fn dist_from_circuit(
    case: &GenCase,
    circuit: &Circuit,
    routing: Option<&RoutingInfo>,
    opts: &OracleOptions,
    seed: u64,
) -> Semantics {
    // Argument-mode cases run on the case's recorded basis input,
    // materialized as leading X gates — placed on the initial-layout wires
    // for routed configurations. Measurements need no output translation:
    // the router remaps measured wires but keeps classical bit indices.
    let run = match &case.input {
        InputMode::Arg(bits) => {
            if bits.len() > circuit.num_qubits {
                return Semantics::Broken(format!(
                    "circuit has {} qubits but the kernel interface needs {}",
                    circuit.num_qubits,
                    bits.len()
                ));
            }
            match routing {
                Some(r) => {
                    if routed_interface(r, bits.len(), circuit.num_qubits).is_none() {
                        return Semantics::Broken(format!(
                            "routing layouts do not cover the {}-qubit kernel interface",
                            bits.len()
                        ));
                    }
                    let mut placed = vec![false; circuit.num_qubits];
                    for (q, &bit) in bits.iter().enumerate() {
                        placed[r.initial_layout[q]] = bit;
                    }
                    circuit.with_basis_input(&placed)
                }
                None => circuit.with_basis_input(bits),
            }
        }
        InputMode::Prep(_) => circuit.clone(),
    };
    if let Some(dist) = measurement_distribution_threads(&run, opts.sim_threads) {
        return Semantics::Distribution { dist, slack: 0.0 };
    }
    // Mid-circuit measurement: empirical sampling with statistical slack
    // scaled by the support actually observed, as in `dist_from_dynamic`.
    let counts = sample_per_shot(&run, opts.shots, seed);
    let support = counts.len().max(2);
    Semantics::Distribution {
        dist: normalize_counts(counts.into_iter().collect(), opts.shots),
        slack: tv_slack(opts.shots, support),
    }
}

fn dynamic_args(case: &GenCase, index: usize) -> Vec<ArgValue> {
    match &case.input {
        InputMode::Prep(_) => Vec::new(),
        InputMode::Arg(_) => {
            let bits: Vec<bool> =
                (0..case.width).map(|pos| index >> (case.width - 1 - pos) & 1 == 1).collect();
            vec![ArgValue::QubitsBasis(bits)]
        }
    }
}

fn columns_from_dynamic(
    case: &GenCase,
    compiled: &Compiled,
    opts: &OracleOptions,
    seed: u64,
) -> Semantics {
    // The sweep runs 2^width interpretations over width-plus-ancilla state
    // vectors: the same exponential guard as the circuit path applies.
    if case.width > opts.max_unitary_qubits {
        return Semantics::Unavailable(format!(
            "{} interface qubits exceeds the {}-qubit unitary cap",
            case.width, opts.max_unitary_qubits
        ));
    }
    let mut columns = Vec::new();
    for index in input_indices(case) {
        let run = match run_dynamic(
            &compiled.module,
            &compiled.entry,
            &dynamic_args(case, index),
            seed,
        ) {
            Ok(run) => run,
            Err(e) => return Semantics::Unavailable(format!("dynamic interpretation: {e}")),
        };
        if !run.bits.is_empty() {
            return Semantics::Broken(
                "measurement-free program returned classical bits".to_string(),
            );
        }
        if run.returned_qubits.len() != case.width {
            return Semantics::Broken(format!(
                "returned {} qubits, interface needs {}",
                run.returned_qubits.len(),
                case.width
            ));
        }
        match run.state.marginal_on(&run.returned_qubits, 1e-9) {
            Some(column) => columns.push(column),
            None => {
                return Semantics::Broken(format!(
                    "ancillas not returned to |0> on basis input {index} (dynamic run)"
                ))
            }
        }
    }
    Semantics::Columns(columns)
}

fn dist_from_dynamic(
    case: &GenCase,
    compiled: &Compiled,
    opts: &OracleOptions,
    seed: u64,
) -> Semantics {
    // One recorded basis input for argument-mode cases; the joint outcome
    // distribution is estimated over `dyn_shots` seeded runs.
    let args = match &case.input {
        InputMode::Prep(_) => Vec::new(),
        InputMode::Arg(bits) => vec![ArgValue::QubitsBasis(bits.clone())],
    };
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for shot in 0..opts.dyn_shots {
        let shot_seed = seed ^ (shot as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let run = match run_dynamic(&compiled.module, &compiled.entry, &args, shot_seed) {
            Ok(run) => run,
            Err(e) => return Semantics::Unavailable(format!("dynamic interpretation: {e}")),
        };
        let bits: String = run.bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        *counts.entry(bits).or_default() += 1;
    }
    let support = counts.len().max(2);
    Semantics::Distribution {
        dist: normalize_counts(counts.into_iter().collect(), opts.dyn_shots),
        slack: tv_slack(opts.dyn_shots, support),
    }
}

fn normalize_counts(counts: Vec<(String, usize)>, shots: usize) -> Vec<(String, f64)> {
    let mut dist: Vec<(String, f64)> =
        counts.into_iter().map(|(k, c)| (k, c as f64 / shots as f64)).collect();
    dist.sort_by(|a, b| a.0.cmp(&b.0));
    dist
}

/// A deterministic total-variation allowance for an empirical distribution
/// of `shots` draws over roughly `support` outcomes. Generous enough that
/// correct compilations never trip it at the sweep's default sizes, tight
/// enough that a flipped bit or a wrong branch weight is far outside it.
fn tv_slack(shots: usize, support: usize) -> f64 {
    (support as f64 / shots as f64).sqrt().min(0.45)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_variation_basics() {
        let a = vec![("00".to_string(), 0.5), ("11".to_string(), 0.5)];
        let b = vec![("00".to_string(), 0.5), ("11".to_string(), 0.5)];
        assert!(total_variation(&a, &b) < 1e-12);
        let c = vec![("01".to_string(), 1.0)];
        assert!((total_variation(&a, &c) - 1.0).abs() < 1e-12);
        let d = vec![("00".to_string(), 0.6), ("11".to_string(), 0.4)];
        assert!((total_variation(&a, &d) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn broken_always_disagrees_and_unavailable_skips() {
        let broken = Semantics::Broken("dirty ancilla".to_string());
        let cols = Semantics::Columns(vec![StateVector::zero(1)]);
        assert!(matches!(compare(&broken, &cols, 1e-9), Comparison::Disagree(_)));
        let unavailable = Semantics::Unavailable("n/a".to_string());
        assert_eq!(compare(&unavailable, &cols, 1e-9), Comparison::Skipped);
        // Unavailable wins over Broken: we cannot attribute a mismatch.
        assert_eq!(compare(&unavailable, &broken, 1e-9), Comparison::Skipped);
    }
}
