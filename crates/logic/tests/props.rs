//! Property-based tests: synthesis realizes arbitrary permutations, and
//! both embeddings agree with direct network evaluation.

use asdf_logic::synth::{synthesize_with, Direction};
use asdf_logic::{embed, EmbedStyle, Permutation, Signal, Xag};
use proptest::prelude::*;

fn arb_permutation(bits: usize) -> impl Strategy<Value = Permutation> {
    Just((0..(1usize << bits)).collect::<Vec<_>>())
        .prop_shuffle()
        .prop_map(|table| Permutation::from_table(table).expect("shuffle is a bijection"))
}

/// A recipe for a random XAG: a list of binary ops over the accumulated
/// signal pool.
#[derive(Debug, Clone)]
enum OpRecipe {
    And(usize, usize, bool, bool),
    Xor(usize, usize, bool, bool),
}

fn arb_xag(inputs: usize, max_ops: usize) -> impl Strategy<Value = Xag> {
    let op = prop_oneof![
        (0usize..64, 0usize..64, any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ia, ib)| OpRecipe::And(a, b, ia, ib)),
        (0usize..64, 0usize..64, any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ia, ib)| OpRecipe::Xor(a, b, ia, ib)),
    ];
    (proptest::collection::vec(op, 1..=max_ops), proptest::collection::vec(0usize..64, 1..=3))
        .prop_map(move |(ops, out_picks)| {
            let mut g = Xag::new(inputs);
            let mut pool: Vec<Signal> = (0..inputs).map(|i| g.input(i)).collect();
            for op in ops {
                let next = match op {
                    OpRecipe::And(a, b, ia, ib) => {
                        let sa = pool[a % pool.len()];
                        let sb = pool[b % pool.len()];
                        let sa = if ia { sa.not() } else { sa };
                        let sb = if ib { sb.not() } else { sb };
                        g.and2(sa, sb)
                    }
                    OpRecipe::Xor(a, b, ia, ib) => {
                        let sa = pool[a % pool.len()];
                        let sb = pool[b % pool.len()];
                        let sa = if ia { sa.not() } else { sa };
                        let sb = if ib { sb.not() } else { sb };
                        g.xor2(sa, sb)
                    }
                };
                pool.push(next);
            }
            let outputs = out_picks.into_iter().map(|k| pool[k % pool.len()]).collect();
            g.set_outputs(outputs);
            g
        })
}

proptest! {
    /// Both synthesis directions realize random 3-bit permutations.
    #[test]
    fn synthesis_realizes_permutation_3(perm in arb_permutation(3)) {
        for direction in [Direction::Unidirectional, Direction::Bidirectional] {
            let circuit = synthesize_with(&perm, direction);
            prop_assert_eq!(&circuit.to_permutation(), &perm);
        }
    }

    /// And 4-bit permutations.
    #[test]
    fn synthesis_realizes_permutation_4(perm in arb_permutation(4)) {
        let circuit = synthesize_with(&perm, Direction::Bidirectional);
        prop_assert_eq!(&circuit.to_permutation(), &perm);
    }

    /// Synthesized circuits invert cleanly: running the reversed cascade
    /// undoes the permutation (all gates are self-inverse).
    #[test]
    fn reversed_cascade_inverts(perm in arb_permutation(3)) {
        let circuit = synthesize_with(&perm, Direction::Bidirectional);
        let mut reversed = asdf_logic::RevCircuit::new(circuit.lines);
        for g in circuit.gates.iter().rev() {
            reversed.push(g.clone());
        }
        let composed = reversed.to_permutation().compose(&circuit.to_permutation());
        prop_assert!(composed.is_identity());
    }

    /// Both embedding styles compute the network function, accumulate into
    /// y, preserve inputs, and restore ancillas — on random networks and
    /// all inputs.
    #[test]
    fn embeddings_match_eval(xag in arb_xag(4, 12), y_seed in any::<u8>()) {
        for style in [EmbedStyle::InPlaceXor, EmbedStyle::AncillaPerNode] {
            let emb = embed::embed_xor(&xag, style).unwrap();
            let n = xag.num_inputs();
            for x in 0..(1usize << n) {
                let bits: Vec<bool> = (0..n).map(|i| (x >> (n - 1 - i)) & 1 == 1).collect();
                let expected = xag.eval(&bits);
                // Random initial y to exercise the XOR-accumulation contract.
                let mut state = vec![false; emb.circuit.lines];
                for (line, &v) in emb.input_lines.iter().zip(&bits) {
                    state[*line] = v;
                }
                for (k, &line) in emb.output_lines.iter().enumerate() {
                    state[line] = (y_seed >> (k % 8)) & 1 == 1;
                }
                let before: Vec<bool> = emb.output_lines.iter().map(|&l| state[l]).collect();
                let out = emb.circuit.run(&state);
                for (k, &line) in emb.output_lines.iter().enumerate() {
                    prop_assert_eq!(out[line], before[k] ^ expected[k]);
                }
                for (&line, &v) in emb.input_lines.iter().zip(&bits) {
                    prop_assert_eq!(out[line], v);
                }
                for &line in &emb.ancilla_lines {
                    prop_assert!(!out[line]);
                }
            }
        }
    }

    /// The tweedledum-style embedding uses no more ancillas than the
    /// Quipper-style one whenever no scratch demotion was needed, i.e. when
    /// its ancilla count equals the live-AND count (the §8.3 cost
    /// relationship; scratch demotions are a rare conflict fallback).
    #[test]
    fn in_place_never_more_ancillas(xag in arb_xag(4, 12)) {
        let a = embed::embed_xor(&xag, EmbedStyle::InPlaceXor).unwrap();
        let b = embed::embed_xor(&xag, EmbedStyle::AncillaPerNode).unwrap();
        prop_assume!(a.ancilla_lines.len() == xag.live_and_nodes().len());
        prop_assert!(a.ancilla_lines.len() <= b.ancilla_lines.len());
    }
}
