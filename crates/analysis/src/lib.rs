//! Lattice-based dataflow analyses and lints over Qwerty/QCircuit IR.
//!
//! ASDF's IR is dataflow-first: qubits thread through ops as SSA values
//! and control flow is structured (`scf.if` regions), so dataflow analysis
//! needs no CFG solver — a program-order walk that descends into regions
//! and joins branch facts at each merge reaches a fixpoint in a couple of
//! passes. This crate packages that engine and the analyses built on it:
//!
//! - [`framework`]: the [`Fact`] join-semilattice trait, forward/backward
//!   [`Analysis`] transfer functions, dense [`FactMap`] storage, and the
//!   region-descending fixpoint driver [`analyze`];
//! - [`index`]: the §5.3 qubit-index analysis (which physical qubit each
//!   SSA value carries), used by predication to undo renaming permutations;
//! - [`measure`]: forward measurement discipline (is a wire provably
//!   post-measurement?);
//! - [`liveness`]: backward wire liveness (is a wire's state ever
//!   observed downstream?);
//! - [`state`]: forward abstract interpretation of computational-basis
//!   states for ancilla hygiene (provably |0⟩ / |1⟩ / unknown);
//! - [`clifford`]: Clifford / T-like / rotation gate classification and
//!   census;
//! - [`commute`]: commutation and cancellation facts between wire-adjacent
//!   gates;
//! - [`lint`]: the `asdf-lint` driver, turning definite analysis facts
//!   into `W0xxx`-coded [`asdf_ast::diag::Diagnostic`]s with source-span
//!   carets and `func:block:op` locations.
//!
//! The lints are sound by construction: they fire only on facts an
//! analysis proves definitely (never on "maybe" merges), so correct
//! programs — including every program in the differential-testing sweep —
//! produce zero warnings.

pub mod clifford;
pub mod commute;
pub mod framework;
pub mod index;
pub mod lint;
pub mod liveness;
pub mod measure;
pub mod state;

pub use clifford::{classify, summarize_func, summarize_module, CliffordSummary, GateClass};
pub use commute::{commutation, is_cancelling_pair, shared_wires, Commutation};
pub use framework::{analyze, Analysis, Direction, Fact, FactMap};
pub use index::{renaming_permutation, IndexFact, QubitIndexAnalysis};
pub use lint::{lint_func, lint_module, LintInfo, LintOptions, LINTS};
pub use liveness::{Liveness, LivenessAnalysis};
pub use measure::{MeasFact, MeasureAnalysis};
pub use state::{QState, StateAnalysis, StateFact};
