//! Primitive bases and eigenstates (§2.1–2.2 of the paper).

use std::fmt;

/// One of the four primitive bases every Qwerty basis is grounded in.
///
/// `Std` is the Z eigenbasis `|0>/|1>`, `Pm` the X eigenbasis `|+>/|->`,
/// `Ij` the Y eigenbasis `|i>/|j>`, and `Fourier` the N-qubit Fourier basis.
/// `Fourier` is *inseparable*: an N-qubit Fourier basis cannot be written as
/// a tensor product of smaller Fourier bases (though its *span* factors,
/// Lemma B.1), which matters during standardization (Algorithm E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimitiveBasis {
    /// The Z eigenbasis, `|0>` / `|1>`.
    Std,
    /// The X eigenbasis, `|+>` / `|->` (written `p` / `m` in literals).
    Pm,
    /// The Y eigenbasis, `|i>` / `|j>`.
    Ij,
    /// The N-qubit Fourier basis (§5.1 of Nielsen & Chuang).
    Fourier,
}

impl PrimitiveBasis {
    /// Whether an N-dimensional instance is a tensor product of N
    /// one-dimensional instances. True for all primitive bases but `Fourier`.
    pub fn is_separable(self) -> bool {
        !matches!(self, PrimitiveBasis::Fourier)
    }

    /// The characters used for this basis's plus/minus eigenstates in qubit
    /// literals (`None` for `Fourier`, which has no literal syntax).
    pub fn chars(self) -> Option<(char, char)> {
        match self {
            PrimitiveBasis::Std => Some(('0', '1')),
            PrimitiveBasis::Pm => Some(('p', 'm')),
            PrimitiveBasis::Ij => Some(('i', 'j')),
            PrimitiveBasis::Fourier => None,
        }
    }

    /// Maps a qubit-literal character (`0`, `1`, `p`, `m`, `i`, `j`) to its
    /// primitive basis and eigenstate.
    pub fn from_char(c: char) -> Option<(PrimitiveBasis, Eigenstate)> {
        Some(match c {
            '0' => (PrimitiveBasis::Std, Eigenstate::Plus),
            '1' => (PrimitiveBasis::Std, Eigenstate::Minus),
            'p' => (PrimitiveBasis::Pm, Eigenstate::Plus),
            'm' => (PrimitiveBasis::Pm, Eigenstate::Minus),
            'i' => (PrimitiveBasis::Ij, Eigenstate::Plus),
            'j' => (PrimitiveBasis::Ij, Eigenstate::Minus),
            _ => return None,
        })
    }

    /// The Qwerty keyword naming this built-in basis.
    pub fn keyword(self) -> &'static str {
        match self {
            PrimitiveBasis::Std => "std",
            PrimitiveBasis::Pm => "pm",
            PrimitiveBasis::Ij => "ij",
            PrimitiveBasis::Fourier => "fourier",
        }
    }
}

impl fmt::Display for PrimitiveBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Whether a basis-vector position is the plus (+1) or minus (−1) eigenstate
/// of the corresponding Pauli (§2.1).
///
/// The *eigenbit* of a position is set iff the position is the minus
/// eigenstate, so `Eigenstate::Minus` corresponds to eigenbit 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Eigenstate {
    /// Plus eigenstate: `|0>`, `|+>`, or `|i>`; eigenbit 0.
    Plus,
    /// Minus eigenstate: `|1>`, `|->`, or `|j>`; eigenbit 1.
    Minus,
}

impl Eigenstate {
    /// The eigenbit for this eigenstate (`Minus` ↦ `true`).
    pub fn eigenbit(self) -> bool {
        matches!(self, Eigenstate::Minus)
    }

    /// Inverse of [`Eigenstate::eigenbit`].
    pub fn from_eigenbit(bit: bool) -> Self {
        if bit {
            Eigenstate::Minus
        } else {
            Eigenstate::Plus
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_round_trip() {
        for c in ['0', '1', 'p', 'm', 'i', 'j'] {
            let (prim, eig) = PrimitiveBasis::from_char(c).unwrap();
            let (plus, minus) = prim.chars().unwrap();
            let back = if eig.eigenbit() { minus } else { plus };
            assert_eq!(back, c);
        }
    }

    #[test]
    fn fourier_has_no_chars() {
        assert!(PrimitiveBasis::Fourier.chars().is_none());
        assert!(!PrimitiveBasis::Fourier.is_separable());
        assert!(PrimitiveBasis::Std.is_separable());
    }

    #[test]
    fn unknown_char_rejected() {
        assert!(PrimitiveBasis::from_char('q').is_none());
        assert!(PrimitiveBasis::from_char('2').is_none());
    }

    #[test]
    fn eigenbit_round_trip() {
        assert_eq!(Eigenstate::from_eigenbit(true), Eigenstate::Minus);
        assert_eq!(Eigenstate::from_eigenbit(false), Eigenstate::Plus);
        assert!(Eigenstate::Minus.eigenbit());
        assert!(!Eigenstate::Plus.eigenbit());
    }
}
