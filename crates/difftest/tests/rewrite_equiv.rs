//! Worklist-vs-rescan driver equivalence on difftest-generated modules.
//!
//! The worklist [`GreedyRewriteDriver`] requeues only the def-use
//! neighborhood of each firing; the retained [`RescanDriver`] restarts the
//! scan from op 0 after every firing. Both run the *same* peephole
//! patterns, so on every generated program they must reach the same normal
//! form with the same per-pattern firing counts (the pop order differs,
//! but the pattern set is confluent) — and the result must still verify.

use asdf_core::{CompileOptions, CompileRequest, Session};
use asdf_difftest::{gen_case, GenOptions};
use asdf_ir::rewrite::{GreedyRewriteDriver, RescanDriver};
use asdf_ir::Module;
use asdf_qcircuit::peephole::peephole_patterns;
use proptest::prelude::*;
use std::collections::HashMap;

/// Compiles a generated case up to (but not including) the peephole pass:
/// `opt+nopeep+whole` leaves the fully inlined QCircuit-dialect module
/// with every gate-level rewrite opportunity still present.
fn pre_peephole_module(sweep_seed: u64, index: usize) -> Option<Module> {
    let case = gen_case(sweep_seed, index, &GenOptions::default());
    let rendered = case.render();
    let session = Session::new(&rendered.source).ok()?;
    let options = CompileOptions {
        inline: true,
        peephole: false,
        decompose: None,
        ..CompileOptions::default()
    };
    let mut request = CompileRequest::kernel(&rendered.kernel).with_captures(&rendered.captures);
    for (name, value) in &rendered.dims {
        request = request.with_dim(name, *value);
    }
    let compiled = session.compile(&request.with_options(options)).ok()?;
    Some(compiled.module.clone())
}

fn normalize_counts(fired: &HashMap<&'static str, usize>) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> =
        fired.iter().map(|(name, count)| (name.to_string(), *count)).collect();
    counts.sort();
    counts
}

fn check_equivalence(module: Module) {
    let mut worklist_module = module.clone();
    let mut rescan_module = module;

    let mut worklist = GreedyRewriteDriver::from_patterns(peephole_patterns());
    let mut rescan = RescanDriver::from_patterns(peephole_patterns());
    let worklist_fires = worklist.run(&mut worklist_module);
    let rescan_fires = rescan.run(&mut rescan_module);

    asdf_ir::verify::verify_module(&worklist_module).expect("worklist result verifies");
    asdf_ir::verify::verify_module(&rescan_module).expect("rescan result verifies");
    assert_eq!(
        worklist_module.to_string(),
        rescan_module.to_string(),
        "drivers reached different normal forms"
    );
    assert_eq!(worklist_fires, rescan_fires, "total firings differ");
    assert_eq!(
        normalize_counts(&worklist.stats.fired),
        normalize_counts(&rescan.stats.fired),
        "per-pattern firing counts differ"
    );
}

proptest! {
    /// Random difftest programs: both drivers agree on the normal form and
    /// the per-pattern firing counts.
    #[test]
    fn drivers_agree_on_generated_modules(sweep_seed in 0u64..1u64 << 32, index in 0usize..8) {
        if let Some(module) = pre_peephole_module(sweep_seed, index) {
            check_equivalence(module);
        }
    }
}

/// A deterministic belt-and-braces sweep on top of the random one, so a
/// fixed population of generated programs is always covered.
#[test]
fn drivers_agree_on_a_fixed_population() {
    let mut checked = 0usize;
    for index in 0..40 {
        if let Some(module) = pre_peephole_module(0xD21F7, index) {
            check_equivalence(module);
            checked += 1;
        }
    }
    assert!(checked >= 30, "only {checked} of 40 generated cases compiled");
}
