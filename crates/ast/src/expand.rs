//! Dimension-variable inference and kernel instantiation (§4, "AST
//! expansion").
//!
//! "A Qwerty compiler should infer dimension variables based on the types
//! of captures when possible — for example, Asdf infers N from the length
//! of the captured secret bitstring" (Fig. 1). [`instantiate`] performs
//! that inference, unifying declared parameter types against the shapes of
//! the supplied captures, optionally seeded with explicit bindings.

use crate::ast::{Program, TypeExpr};
use crate::dims::DimExpr;
use crate::error::FrontendError;
use std::collections::HashMap;

/// A value captured by a kernel at instantiation time, mirroring the
/// arguments of the paper's `@qpu[N](f)` / `@classical[N](secret_str)`
/// decorators.
#[derive(Debug, Clone, PartialEq)]
pub enum CaptureValue {
    /// A constant bit string (captures a `bit[N]` parameter).
    Bits(Vec<bool>),
    /// An instantiated classical function (captures a `cfunc[N, M]`
    /// parameter). Nested captures must be `Bits`.
    CFunc {
        /// The `classical` item's name.
        name: String,
        /// Captures for its leading parameters.
        captures: Vec<CaptureValue>,
    },
}

impl CaptureValue {
    /// Convenience: a bit string from `'0'`/`'1'` characters.
    ///
    /// # Panics
    ///
    /// Panics on other characters.
    pub fn bits_from_str(s: &str) -> CaptureValue {
        CaptureValue::Bits(
            s.chars()
                .map(|c| match c {
                    '0' => false,
                    '1' => true,
                    other => panic!("invalid bit character {other:?}"),
                })
                .collect(),
        )
    }
}

/// A fully resolved instantiation of a kernel: dimension bindings plus the
/// classical-function instances bound to its capture parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelInstance {
    /// Kernel dimension-variable bindings.
    pub dims: HashMap<String, i64>,
    /// One entry per kernel parameter: `Some` for `cfunc` captures.
    pub classical_instances: Vec<Option<ClassicalInstance>>,
}

/// A resolved `classical` function instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassicalInstance {
    /// The `classical` item's name.
    pub func: String,
    /// Its local dimension bindings.
    pub dims: HashMap<String, i64>,
    /// Bit values for its leading (capture) parameters.
    pub capture_bits: Vec<Vec<bool>>,
}

/// Infers dimension variables and resolves captures for `kernel`.
///
/// `captures` bind to the kernel's leading parameters in order; remaining
/// parameters must be runtime `qubit` registers. `explicit` seeds bindings
/// for dimensions that cannot be inferred (the programmer "explicitly
/// providing them", §4).
///
/// # Errors
///
/// Returns [`FrontendError`] when the kernel is unknown, captures mismatch
/// parameter shapes, or a dimension cannot be determined.
pub fn instantiate(
    program: &Program,
    kernel: &str,
    captures: &[CaptureValue],
    explicit: &HashMap<String, i64>,
) -> Result<KernelInstance, FrontendError> {
    let func = program
        .qpu(kernel)
        .ok_or_else(|| FrontendError::unbound(format!("qpu kernel {kernel}")))?;
    if captures.len() > func.params.len() {
        return Err(FrontendError::type_err(format!(
            "kernel {kernel} takes {} parameters but {} captures were supplied",
            func.params.len(),
            captures.len()
        )));
    }

    let mut dims = explicit.clone();
    let mut classical_instances: Vec<Option<ClassicalInstance>> = vec![None; func.params.len()];

    // Inference is order-independent: a capture that cannot be resolved yet
    // (e.g. a capture-less `cfunc[N, 1]` whose `N` is pinned by a *later*
    // capture's bit width) is deferred and retried once more bindings have
    // landed, until a full round makes no progress.
    let mut pending: Vec<usize> = (0..captures.len()).collect();
    while !pending.is_empty() {
        let round_size = pending.len();
        let mut deferred: Vec<usize> = Vec::new();
        let mut last_error: Option<FrontendError> = None;
        for index in pending {
            let (param, capture) = (&func.params[index], &captures[index]);
            match (&param.ty, capture) {
                // Dimension errors in either arm may resolve after other
                // captures bind more variables (e.g. `bit[2*N]` before the
                // capture that pins N); anything else is final.
                (TypeExpr::Bit(d), CaptureValue::Bits(bits)) => {
                    match unify(d, bits.len() as i64, &mut dims) {
                        Ok(()) => {}
                        Err(e @ FrontendError::Dimension { .. }) => {
                            last_error = Some(e);
                            deferred.push(index);
                        }
                        Err(e) => return Err(e),
                    }
                }
                (TypeExpr::CFunc(d_in, d_out), CaptureValue::CFunc { name, captures }) => {
                    match instantiate_classical(program, name, captures, d_in, d_out, &mut dims) {
                        Ok(instance) => classical_instances[index] = Some(instance),
                        Err(e @ FrontendError::Dimension { .. }) => {
                            last_error = Some(e);
                            deferred.push(index);
                        }
                        Err(e) => return Err(e),
                    }
                }
                (ty, capture) => {
                    return Err(FrontendError::type_err(format!(
                        "capture {capture:?} does not fit parameter {}: {ty:?}",
                        param.name
                    )));
                }
            }
        }
        if deferred.len() == round_size {
            return Err(last_error.expect("deferred entries always record an error"));
        }
        pending = deferred;
    }

    // Every declared dimension variable must now be bound.
    for var in &func.dim_vars {
        if !dims.contains_key(var) {
            return Err(FrontendError::dim_err(format!(
                "dimension variable {var} of kernel {kernel} could not be inferred; \
                 pass it explicitly"
            )));
        }
    }
    Ok(KernelInstance { dims, classical_instances })
}

/// Resolves a `classical` capture: infers the callee's local dimensions
/// from its own captures (or backward from the kernel-side `cfunc[N, M]`
/// type), and unifies the resulting signature with the kernel-side type.
fn instantiate_classical(
    program: &Program,
    name: &str,
    captures: &[CaptureValue],
    d_in: &DimExpr,
    d_out: &DimExpr,
    kernel_dims: &mut HashMap<String, i64>,
) -> Result<ClassicalInstance, FrontendError> {
    let func = program
        .classical(name)
        .ok_or_else(|| FrontendError::unbound(format!("classical function {name}")))?;
    if captures.len() >= func.params.len() && !func.params.is_empty() {
        return Err(FrontendError::type_err(format!(
            "classical function {name} needs at least one non-capture input"
        )));
    }

    let mut local: HashMap<String, i64> = HashMap::new();
    let mut capture_bits = Vec::new();
    for (param, capture) in func.params.iter().zip(captures) {
        let CaptureValue::Bits(bits) = capture else {
            return Err(FrontendError::type_err(format!(
                "classical function {name} can only capture bit strings"
            )));
        };
        let TypeExpr::Bit(d) = &param.ty else {
            return Err(FrontendError::type_err(format!(
                "classical parameter {} must have a bit type to capture bits",
                param.name
            )));
        };
        unify(d, bits.len() as i64, &mut local)?;
        capture_bits.push(bits.clone());
    }

    // Width of the non-capture inputs as a symbolic sum.
    let input_dims: Vec<&DimExpr> = func.params[captures.len()..]
        .iter()
        .map(|p| match &p.ty {
            TypeExpr::Bit(d) => Ok(d),
            other => Err(FrontendError::type_err(format!(
                "classical parameters must be bits, found {other:?}"
            ))),
        })
        .collect::<Result<_, _>>()?;
    let ret_dim = match &func.ret {
        TypeExpr::Bit(d) => d,
        other => {
            return Err(FrontendError::type_err(format!(
                "classical functions return bits, found {other:?}"
            )))
        }
    };

    // Forward direction: local dims known -> bind kernel-side N, M.
    let forward_in: Option<i64> =
        input_dims.iter().map(|d| d.eval(&local).ok()).sum::<Option<i64>>();
    match forward_in {
        Some(total) => unify(d_in, total, kernel_dims)?,
        None => {
            // Backward: kernel-side width known -> solve a single local var.
            let total = d_in.eval(kernel_dims)?;
            solve_sum(&input_dims, total, &mut local)?;
        }
    }
    match ret_dim.eval(&local) {
        Ok(out) => unify(d_out, out, kernel_dims)?,
        Err(_) => {
            let out = d_out.eval(kernel_dims)?;
            unify(ret_dim, out, &mut local)?;
        }
    }

    // All of the callee's dimension variables must now be bound.
    for var in &func.dim_vars {
        if !local.contains_key(var) {
            return Err(FrontendError::dim_err(format!(
                "dimension variable {var} of classical function {name} could not be inferred"
            )));
        }
    }
    Ok(ClassicalInstance { func: name.to_string(), dims: local, capture_bits })
}

/// Unifies a dimension expression against a concrete value: binds a bare
/// variable, or checks an already-evaluable expression.
fn unify(
    d: &DimExpr,
    value: i64,
    bindings: &mut HashMap<String, i64>,
) -> Result<(), FrontendError> {
    match d {
        DimExpr::Var(name) => match bindings.get(name) {
            Some(&bound) if bound != value => Err(FrontendError::dim_err(format!(
                "dimension variable {name} bound to both {bound} and {value}"
            ))),
            Some(_) => Ok(()),
            None => {
                bindings.insert(name.clone(), value);
                Ok(())
            }
        },
        other => {
            let got = other.eval(bindings)?;
            if got == value {
                Ok(())
            } else {
                Err(FrontendError::dim_err(format!(
                    "dimension {other} = {got} does not match required {value}"
                )))
            }
        }
    }
}

/// Solves `sum(dims) = total` when at most one addend is an unbound bare
/// variable (possibly repeated).
fn solve_sum(
    dims: &[&DimExpr],
    total: i64,
    bindings: &mut HashMap<String, i64>,
) -> Result<(), FrontendError> {
    let mut known = 0i64;
    let mut unknown: Option<(&str, i64)> = None;
    for d in dims {
        match d.eval(bindings) {
            Ok(v) => known += v,
            Err(_) => match d {
                DimExpr::Var(name) => match &mut unknown {
                    Some((existing, count)) if *existing == name.as_str() => *count += 1,
                    Some(_) => {
                        return Err(FrontendError::dim_err(
                            "cannot infer multiple distinct dimension variables from one width"
                                .to_string(),
                        ))
                    }
                    None => unknown = Some((name.as_str(), 1)),
                },
                other => {
                    return Err(FrontendError::dim_err(format!(
                        "cannot solve for composite dimension {other}"
                    )))
                }
            },
        }
    }
    match unknown {
        None => {
            if known == total {
                Ok(())
            } else {
                Err(FrontendError::dim_err(format!(
                    "parameter widths sum to {known}, expected {total}"
                )))
            }
        }
        Some((name, count)) => {
            let remaining = total - known;
            if remaining % count != 0 || remaining < 0 {
                return Err(FrontendError::dim_err(format!(
                    "cannot split width {remaining} across {count} occurrences of {name}"
                )));
            }
            bindings.insert(name.to_string(), remaining / count);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const FIG1: &str = r"
        classical f[N](secret: bit[N], x: bit[N]) -> bit {
            (secret & x).xor_reduce()
        }
        qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";

    #[test]
    fn infers_n_from_captured_secret() {
        let program = parse_program(FIG1).unwrap();
        let captures = vec![CaptureValue::CFunc {
            name: "f".into(),
            captures: vec![CaptureValue::bits_from_str("1010")],
        }];
        let inst = instantiate(&program, "kernel", &captures, &HashMap::new()).unwrap();
        assert_eq!(inst.dims["N"], 4);
        let classical = inst.classical_instances[0].as_ref().unwrap();
        assert_eq!(classical.dims["N"], 4);
        assert_eq!(classical.capture_bits[0], vec![true, false, true, false]);
    }

    #[test]
    fn inference_is_order_independent_across_captures() {
        // The capture-less `g` cannot resolve its own `N`; the *later*
        // captured `f` pins the kernel's N, after which g's backward
        // inference succeeds on the retry round.
        let src = r"
            classical g[N](x: bit[N]) -> bit { x.xor_reduce() }
            classical f[N](secret: bit[N], x: bit[N]) -> bit {
                (secret & x).xor_reduce()
            }
            qpu kernel[N](g: cfunc[N, 1], f: cfunc[N, 1]) -> bit[N] {
                'p'[N] | g.sign | f.sign | pm[N] >> std[N] | std[N].measure
            }
        ";
        let program = parse_program(src).unwrap();
        let captures = vec![
            CaptureValue::CFunc { name: "g".into(), captures: vec![] },
            CaptureValue::CFunc {
                name: "f".into(),
                captures: vec![CaptureValue::bits_from_str("110")],
            },
        ];
        let inst = instantiate(&program, "kernel", &captures, &HashMap::new()).unwrap();
        assert_eq!(inst.dims["N"], 3);
        assert_eq!(inst.classical_instances[0].as_ref().unwrap().dims["N"], 3);
        // Still an error when nothing pins the dimension at all.
        let unpinned = vec![CaptureValue::CFunc { name: "g".into(), captures: vec![] }];
        assert!(instantiate(&program, "kernel", &unpinned, &HashMap::new()).is_err());
    }

    #[test]
    fn composite_bit_capture_defers_until_a_later_capture_pins_the_var() {
        // `pair: bit[2*N]` cannot unify before N is known; the later
        // captured `f` pins N = 3, after which 2*N = 6 checks out.
        let src = r"
            classical f[N](secret: bit[N], x: bit[N]) -> bit {
                (secret & x).xor_reduce()
            }
            qpu kernel[N](pair: bit[2*N], f: cfunc[N, 1]) -> bit[N] {
                'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
            }
        ";
        let program = parse_program(src).unwrap();
        let captures = vec![
            CaptureValue::bits_from_str("101010"),
            CaptureValue::CFunc {
                name: "f".into(),
                captures: vec![CaptureValue::bits_from_str("110")],
            },
        ];
        let inst = instantiate(&program, "kernel", &captures, &HashMap::new()).unwrap();
        assert_eq!(inst.dims["N"], 3);
        // A width that contradicts the pinned N is still rejected.
        let bad = vec![
            CaptureValue::bits_from_str("10101"),
            CaptureValue::CFunc {
                name: "f".into(),
                captures: vec![CaptureValue::bits_from_str("110")],
            },
        ];
        assert!(instantiate(&program, "kernel", &bad, &HashMap::new()).is_err());
    }

    #[test]
    fn backward_inference_from_explicit_kernel_dims() {
        let src = r"
            classical balanced[N](x: bit[N]) -> bit { x.xor_reduce() }
            qpu dj[N](f: cfunc[N, 1]) -> bit[N] {
                'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
            }
        ";
        let program = parse_program(src).unwrap();
        let captures = vec![CaptureValue::CFunc { name: "balanced".into(), captures: vec![] }];
        let explicit: HashMap<String, i64> = [("N".to_string(), 8)].into();
        let inst = instantiate(&program, "dj", &captures, &explicit).unwrap();
        let classical = inst.classical_instances[0].as_ref().unwrap();
        assert_eq!(classical.dims["N"], 8, "callee N solved from kernel N");
    }

    #[test]
    fn missing_dimension_reported() {
        let program = parse_program(FIG1).unwrap();
        let err = instantiate(&program, "kernel", &[], &HashMap::new()).unwrap_err();
        assert!(matches!(err, FrontendError::Dimension { .. }), "{err}");
    }

    #[test]
    fn conflicting_bindings_rejected() {
        let src = r"
            classical f[N](a: bit[N], x: bit[N]) -> bit { x.xor_reduce() }
            qpu k[N](a: bit[N], f: cfunc[N, 1]) -> bit[N] {
                'p'[N] | f.sign | std[N].measure
            }
        ";
        let program = parse_program(src).unwrap();
        let captures = vec![
            CaptureValue::bits_from_str("111"),
            CaptureValue::CFunc {
                name: "f".into(),
                captures: vec![CaptureValue::bits_from_str("11111")],
            },
        ];
        let err = instantiate(&program, "k", &captures, &HashMap::new()).unwrap_err();
        assert!(matches!(err, FrontendError::Dimension { .. }), "{err}");
    }
}
