//! Lint gate over the five `examples/` programs: all of them are correct,
//! so every one must compile clean under the asdf-lint analyses — any
//! warning here is a lint false positive (or a genuinely broken example)
//! and fails CI.

use qwerty_asdf::ast::expand::CaptureValue;
use qwerty_asdf::core::{CompileOptions, CompileRequest, Session};

fn cfunc_capture(name: &str, bits: Option<&str>) -> Vec<CaptureValue> {
    vec![CaptureValue::CFunc {
        name: name.into(),
        captures: bits.map(CaptureValue::bits_from_str).into_iter().collect(),
    }]
}

/// Compiles `kernel` with lints on and asserts zero warnings, rendering
/// any that fire so the failure names the lint and carets the source.
fn assert_lints_clean(
    label: &str,
    source: &str,
    kernel: &str,
    captures: &[CaptureValue],
    options: &CompileOptions,
) {
    let session = Session::new(source).unwrap();
    let request = CompileRequest::kernel(kernel)
        .with_captures(captures)
        .with_options(options.clone().with_lints(true));
    let compiled = session.compile(&request).unwrap();
    assert!(
        compiled.lints.is_empty(),
        "{label} tripped {} lint(s):\n{}",
        compiled.lints.len(),
        session.render_lints(&compiled).join("\n")
    );
}

#[test]
fn lint_quickstart_bv() {
    let source = r"
        classical f[N](secret: bit[N], x: bit[N]) -> bit {
            (secret & x).xor_reduce()
        }

        qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";
    assert_lints_clean(
        "quickstart",
        source,
        "kernel",
        &cfunc_capture("f", Some("1101")),
        &CompileOptions::default(),
    );
}

#[test]
fn lint_grover() {
    let source = r"
        classical oracle[N](x: bit[N]) -> bit { x.and_reduce() }

        qpu grover[N, I](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | (f.sign | {'p'[N]} >> {-'p'[N]}) ** I | std[N].measure
        }
    ";
    let options = CompileOptions::default().with_dim("N", 3).with_dim("I", 1);
    assert_lints_clean("grover", source, "grover", &cfunc_capture("oracle", None), &options);
}

#[test]
fn lint_simon() {
    let source = r"
        classical f[N](s: bit[N], x: bit[N]) -> bit[N] {
            x ^ (x[0].repeat(N) & s)
        }

        qpu simon[N](f: cfunc[N, N]) -> bit[2*N] {
            'p'[N] + '0'[N] | f.xor | (pm[N] >> std[N]) + id[N] | std[2*N].measure
        }
    ";
    assert_lints_clean(
        "simon",
        source,
        "simon",
        &cfunc_capture("f", Some("1100")),
        &CompileOptions::default(),
    );
}

#[test]
fn lint_period_finding() {
    let source = r"
        classical f[N](mask: bit[N], x: bit[N]) -> bit[N] { x & mask }

        qpu period[N](f: cfunc[N, N]) -> bit[2*N] {
            'p'[N] + '0'[N] | f.xor | fourier[N].measure + std[N].measure
        }
    ";
    assert_lints_clean(
        "period_finding",
        source,
        "period",
        &cfunc_capture("f", Some("001")),
        &CompileOptions::default(),
    );
}

#[test]
fn lint_teleport() {
    // Control flow survives to the QCircuit dialect here, so this also
    // exercises the analyses' scf.if region handling end to end.
    let source = r"
        qpu teleport(secret: qubit) -> qubit {
            let alice, bob = 'p0' | '1' & std.flip;
            let m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure;
            bob | (pm.flip if m_pm else id) | (std.flip if m_std else id)
        }
    ";
    assert_lints_clean("teleport", source, "teleport", &[], &CompileOptions::default());
}
