//! The canonicalization driver: applies rewrite patterns to a fixpoint,
//! then sweeps classically-dead ops.
//!
//! MLIR's canonicalizer "simplifies IR to better enable optimizations (e.g.,
//! through constant folding and dead code elimination)" (§3); ASDF
//! additionally registers the Qwerty-specific patterns of §5.4 (implemented
//! in `asdf-core`). This driver is dialect-agnostic: patterns are trait
//! objects consulted for every op in every block.

use crate::block::BlockPath;
use crate::func::Func;
use crate::module::Module;
use crate::types::FuncType;
use std::collections::HashMap;

/// A read-only snapshot of module-level symbols, available to patterns
/// while a function is mutably borrowed.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    sigs: HashMap<String, FuncType>,
}

impl SymbolTable {
    /// Builds the snapshot from a module.
    pub fn from_module(module: &Module) -> Self {
        SymbolTable {
            sigs: module.funcs().iter().map(|f| (f.name.clone(), f.ty.clone())).collect(),
        }
    }

    /// Looks up a symbol's signature.
    pub fn signature(&self, name: &str) -> Option<&FuncType> {
        self.sigs.get(name)
    }
}

/// A DAG-to-DAG rewrite applied during canonicalization.
pub trait RewritePattern {
    /// A stable name for debugging and statistics.
    fn name(&self) -> &'static str;

    /// Attempts to rewrite the op at `block[op_idx]`; returns whether the IR
    /// changed. After any change the driver rescans the function, so
    /// patterns may freely splice ops and invalidate indices beyond
    /// `op_idx`.
    fn match_and_rewrite(
        &self,
        func: &mut Func,
        path: &BlockPath,
        op_idx: usize,
        symbols: &SymbolTable,
    ) -> bool;
}

/// Applies patterns to every op of every function until nothing changes,
/// interleaved with classical dead-code elimination (like MLIR's
/// canonicalizer).
#[derive(Default)]
pub struct Canonicalizer {
    patterns: Vec<Box<dyn RewritePattern>>,
    /// Fired-pattern counts from the last run, by pattern name.
    pub stats: HashMap<&'static str, usize>,
}

impl Canonicalizer {
    /// An empty canonicalizer (only DCE).
    pub fn new() -> Self {
        Canonicalizer::default()
    }

    /// Registers a pattern.
    pub fn add_pattern(&mut self, pattern: Box<dyn RewritePattern>) -> &mut Self {
        self.patterns.push(pattern);
        self
    }

    /// Runs to a fixpoint; returns the total number of pattern firings.
    ///
    /// # Panics
    ///
    /// Panics if a pattern keeps reporting changes beyond a large iteration
    /// bound, which indicates a non-terminating rewrite pair.
    pub fn run(&mut self, module: &mut Module) -> usize {
        self.stats.clear();
        let mut total = 0usize;
        for round in 0.. {
            assert!(round < 10_000, "canonicalization did not reach a fixpoint");
            let symbols = SymbolTable::from_module(module);
            let mut changed = false;
            for name in module.func_names() {
                let func = module.func_mut(&name).expect("name snapshot is stable");
                while self.rewrite_once(func, &symbols) {
                    changed = true;
                    total += 1;
                }
                if dce_func(func) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        total
    }

    /// Scans the function and fires at most one pattern.
    fn rewrite_once(&mut self, func: &mut Func, symbols: &SymbolTable) -> bool {
        for path in func.block_paths() {
            let len = func.block_at(&path).ops.len();
            for op_idx in 0..len {
                for pattern in &self.patterns {
                    if pattern.match_and_rewrite(func, &path, op_idx, symbols) {
                        *self.stats.entry(pattern.name()).or_default() += 1;
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Removes pure classical ops whose results are all unused, iterating until
/// stable. Quantum (linear) ops are never removed: an unused linear result
/// is a verifier error, not dead code.
pub fn dce_func(func: &mut Func) -> bool {
    let mut changed_any = false;
    loop {
        // Count uses of every value across the whole function.
        let mut use_counts = vec![0usize; func.num_values()];
        count_uses(&func.body, &mut use_counts);

        // Remove from at most one block per round: deleting ops shifts op
        // indices, which invalidates the paths of nested blocks.
        let mut removed = false;
        for path in func.block_paths() {
            let block = func.block_at(&path);
            let dead: Vec<usize> = block
                .ops
                .iter()
                .enumerate()
                .filter(|(_, op)| {
                    op.kind.is_pure_classical()
                        && !op.results.is_empty()
                        && op.results.iter().all(|r| use_counts[r.index()] == 0)
                })
                .map(|(i, _)| i)
                .collect();
            if !dead.is_empty() {
                let block = func.block_at_mut(&path);
                for &i in dead.iter().rev() {
                    block.ops.remove(i);
                }
                removed = true;
                break;
            }
        }
        if !removed {
            return changed_any;
        }
        changed_any = true;
    }
}

fn count_uses(block: &crate::block::Block, counts: &mut [usize]) {
    for op in &block.ops {
        for v in &op.operands {
            counts[v.index()] += 1;
        }
        for region in &op.regions {
            for nested in &region.blocks {
                count_uses(nested, counts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncBuilder, Visibility};
    use crate::op::{Op, OpKind};
    use crate::types::Type;

    /// A toy pattern: folds `fadd(const a, const b)` into a constant.
    struct FoldFAdd;

    impl RewritePattern for FoldFAdd {
        fn name(&self) -> &'static str {
            "fold-fadd"
        }

        fn match_and_rewrite(
            &self,
            func: &mut Func,
            path: &BlockPath,
            op_idx: usize,
            _symbols: &SymbolTable,
        ) -> bool {
            let block = func.block_at(&path.clone());
            let op = &block.ops[op_idx];
            if !matches!(op.kind, OpKind::FAdd) {
                return false;
            }
            let find_const = |v: crate::value::Value| -> Option<f64> {
                block.ops.iter().find_map(|o| match o.kind {
                    OpKind::ConstF64 { value } if o.results.contains(&v) => Some(value),
                    _ => None,
                })
            };
            let (Some(a), Some(b)) = (find_const(op.operands[0]), find_const(op.operands[1]))
            else {
                return false;
            };
            let result = op.results[0];
            let block = func.block_at_mut(path);
            block.ops[op_idx] = Op::new(OpKind::ConstF64 { value: a + b }, vec![], vec![result]);
            true
        }
    }

    #[test]
    fn canonicalizer_folds_and_dces() {
        let mut b = FuncBuilder::new(
            "f",
            FuncType::new(vec![], vec![Type::F64], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let a = bb.push(OpKind::ConstF64 { value: 1.5 }, vec![], vec![Type::F64]);
        let c = bb.push(OpKind::ConstF64 { value: 2.5 }, vec![], vec![Type::F64]);
        let sum = bb.push(OpKind::FAdd, vec![a[0], c[0]], vec![Type::F64]);
        bb.push(OpKind::Return, vec![sum[0]], vec![]);
        let mut module = Module::new();
        module.add_func(b.finish());

        let mut canon = Canonicalizer::new();
        canon.add_pattern(Box::new(FoldFAdd));
        let fired = canon.run(&mut module);
        assert_eq!(fired, 1);

        let func = module.func("f").unwrap();
        // After folding + DCE only the folded constant and return remain.
        assert_eq!(func.body.ops.len(), 2);
        assert!(
            matches!(func.body.ops[0].kind, OpKind::ConstF64 { value } if (value - 4.0).abs() < 1e-12)
        );
        crate::verify::verify_module(&module).unwrap();
    }

    #[test]
    fn dce_keeps_used_and_quantum_ops() {
        let mut b = FuncBuilder::new(
            "g",
            FuncType::new(vec![], vec![Type::Qubit], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let _unused = bb.push(OpKind::ConstF64 { value: 0.0 }, vec![], vec![Type::F64]);
        let q = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        bb.push(OpKind::Return, vec![q[0]], vec![]);
        let mut func = b.finish();
        assert!(dce_func(&mut func));
        assert_eq!(func.body.ops.len(), 2, "qalloc and return survive");
    }
}
