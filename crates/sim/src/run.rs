//! Circuit execution: single shots, sampling, and unitary extraction.
//!
//! Execution compiles circuits to fused, stride-based [`KernelProgram`]s
//! (see [`crate::kernel`]); unitary extraction applies the program to all
//! basis columns at once (see [`crate::batch`]) instead of re-simulating
//! per column.

use crate::batch::batched_columns;
use crate::kernel::{apply_op_pooled, KernelOp, KernelProgram};
use crate::state::StateVector;
use asdf_qcircuit::{Circuit, CircuitOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use threadpool::ThreadPool;

/// Amplitude count at or above which an auto-threaded (`threads == 0`)
/// single-state run spreads gate kernels across all cores; below it the
/// per-gate work cannot amortize a thread spawn.
pub const PARALLEL_STATE_MIN: usize = 1 << 16;

/// The worker pool for a single-state run: `threads == 0` picks the
/// machine's parallelism for states of at least [`PARALLEL_STATE_MIN`]
/// amplitudes (and one worker below), any other value is exact.
pub(crate) fn pool_for_state(threads: usize, num_amps: usize) -> ThreadPool {
    match threads {
        0 if num_amps >= PARALLEL_STATE_MIN => ThreadPool::with_available_parallelism(),
        0 => ThreadPool::new(1),
        t => ThreadPool::new(t),
    }
}

/// The outcome of one shot.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Classical bits, indexed by measurement destination.
    pub bits: Vec<bool>,
    /// The post-circuit state.
    pub state: StateVector,
}

impl RunResult {
    /// The measured bits as a `'0'`/`'1'` string.
    pub fn bit_string(&self) -> String {
        self.bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
    }
}

/// Executes circuits with seeded randomness for reproducible tests.
#[derive(Debug)]
pub struct Simulator {
    rng: StdRng,
    threads: usize,
}

impl Simulator {
    /// A simulator with a fixed seed and automatic threading (gate kernels
    /// parallelize once the state reaches [`PARALLEL_STATE_MIN`]
    /// amplitudes).
    pub fn new(seed: u64) -> Self {
        Simulator::with_threads(seed, 0)
    }

    /// A simulator with an explicit worker count: `0` = automatic
    /// (size-gated), `n >= 1` = exactly `n` workers regardless of state
    /// size. Results are bit-identical for every setting — the pair
    /// partition and the fixed-shape probability sums do not depend on the
    /// worker count.
    pub fn with_threads(seed: u64, threads: usize) -> Self {
        Simulator { rng: StdRng::seed_from_u64(seed), threads }
    }

    /// Runs one shot of the circuit from |0...0>.
    pub fn run(&mut self, circuit: &Circuit) -> RunResult {
        self.run_program(&KernelProgram::compile(circuit))
    }

    /// Runs one shot starting from a caller-prepared state (for kernels
    /// with qubit arguments, e.g. teleportation).
    ///
    /// # Panics
    ///
    /// Panics if the state size does not match the circuit.
    pub fn run_from(&mut self, circuit: &Circuit, state: StateVector) -> RunResult {
        self.run_program_from(&KernelProgram::compile(circuit), state)
    }

    /// Runs one shot of a precompiled program from |0...0>. Compiling once
    /// and running many shots amortizes the gate-fusion prepass.
    pub fn run_program(&mut self, program: &KernelProgram) -> RunResult {
        self.run_program_from(program, StateVector::zero(program.num_qubits()))
    }

    /// Runs one shot of a precompiled program from a caller-prepared state.
    ///
    /// # Panics
    ///
    /// Panics if the state size does not match the program.
    pub fn run_program_from(
        &mut self,
        program: &KernelProgram,
        mut state: StateVector,
    ) -> RunResult {
        assert_eq!(state.num_qubits(), program.num_qubits(), "state size mismatch");
        let pool = pool_for_state(self.threads, state.amplitudes().len());
        let mut bits = vec![false; program.num_bits()];
        for op in program.ops() {
            match op {
                KernelOp::Unitary { .. } | KernelOp::Unitary4 { .. } | KernelOp::Swap { .. } => {
                    apply_op_pooled(state.amps_mut(), op, &pool);
                }
                KernelOp::Measure { qubit, bit } => {
                    let p1 = state.prob_one_pooled(*qubit, &pool);
                    let outcome = self.rng.gen_bool(p1.clamp(0.0, 1.0));
                    state.collapse_pooled(*qubit, outcome, &pool);
                    bits[*bit] = outcome;
                }
                KernelOp::Reset { qubit } => {
                    let p1 = state.prob_one_pooled(*qubit, &pool);
                    if p1 > 1e-12 {
                        let outcome = self.rng.gen_bool(p1.clamp(0.0, 1.0));
                        state.collapse_pooled(*qubit, outcome, &pool);
                        if outcome {
                            state.apply(asdf_ir::GateKind::X, &[], &[*qubit]);
                        }
                    }
                }
            }
        }
        RunResult { bits, state }
    }
}

/// Runs `shots` shots and histograms the measured bit strings.
///
/// When every measurement is *terminal* (no reset ops, and no measured
/// qubit is touched again afterwards — the deferred-measurement condition),
/// the circuit is simulated **once** and all shots are drawn from the exact
/// final distribution; otherwise each shot re-runs the full state-vector
/// simulation ([`sample_per_shot`]). Both paths are deterministic per seed
/// and draw from the same distribution, but their shot-by-shot streams
/// differ.
pub fn sample(circuit: &Circuit, shots: usize, seed: u64) -> HashMap<String, usize> {
    match measurement_distribution(circuit) {
        Some(dist) => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts: HashMap<String, usize> = HashMap::new();
            let total: f64 = dist.iter().map(|(_, p)| p).sum();
            for _ in 0..shots {
                let mut r = rng.gen_f64() * total;
                let mut chosen = &dist[dist.len() - 1].0;
                for (bits, p) in &dist {
                    if r < *p {
                        chosen = bits;
                        break;
                    }
                    r -= p;
                }
                *counts.entry(chosen.clone()).or_default() += 1;
            }
            counts
        }
        None => sample_per_shot(circuit, shots, seed),
    }
}

/// The original sampling loop: one full simulation per shot. Required for
/// circuits with mid-circuit measurement or reset, where later evolution
/// branches on earlier outcomes; kept public so tests can cross-check the
/// single-simulation fast path against it.
pub fn sample_per_shot(circuit: &Circuit, shots: usize, seed: u64) -> HashMap<String, usize> {
    let program = KernelProgram::compile(circuit);
    let mut sim = Simulator::new(seed);
    let mut counts: HashMap<String, usize> = HashMap::new();
    for _ in 0..shots {
        let result = sim.run_program(&program);
        *counts.entry(result.bit_string()).or_default() += 1;
    }
    counts
}

/// The exact joint distribution of the measured bit string, computed from
/// one simulation — available iff every measurement is terminal: the
/// circuit has no reset ops, no qubit is measured twice or into two bits,
/// and no op touches a qubit after it has been measured. Entries are
/// sorted by bit string (deterministic order) and sum to 1.
///
/// Returns `None` when the terminal-measurement condition fails (the
/// distribution then depends on per-shot branching) — callers fall back to
/// [`sample_per_shot`].
pub fn measurement_distribution(circuit: &Circuit) -> Option<Vec<(String, f64)>> {
    measurement_distribution_threads(circuit, 0)
}

/// [`measurement_distribution`] with an explicit worker count for the
/// gate kernels (`0` = automatic, size-gated). The distribution is
/// bit-identical for every setting.
pub fn measurement_distribution_threads(
    circuit: &Circuit,
    threads: usize,
) -> Option<Vec<(String, f64)>> {
    let mut measured: Vec<(usize, usize)> = Vec::new(); // (qubit, bit)
    let mut bit_used = vec![false; circuit.num_bits()];
    for op in &circuit.ops {
        match op {
            CircuitOp::Reset { .. } => return None,
            CircuitOp::Measure { qubit, bit } => {
                if measured.iter().any(|&(q, _)| q == *qubit) || bit_used[*bit] {
                    return None;
                }
                bit_used[*bit] = true;
                measured.push((*qubit, *bit));
            }
            CircuitOp::Gate { .. } => {
                if op.qubits().iter().any(|q| measured.iter().any(|&(m, _)| m == *q)) {
                    return None;
                }
            }
        }
    }

    let mut state = StateVector::zero(circuit.num_qubits);
    // The terminal-measurement analysis above established that skipping the
    // measure ops cannot change any amplitude a measurement reads.
    let pool = pool_for_state(threads, state.amplitudes().len());
    KernelProgram::compile(circuit).apply_gates_pooled(&mut state, &pool);
    let num_bits = circuit.num_bits();
    let n = circuit.num_qubits;
    let mut dist: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for (index, amp) in state.amplitudes().iter().enumerate() {
        let p = amp.norm_sqr();
        if p == 0.0 {
            continue;
        }
        let mut bits = vec![false; num_bits];
        for &(q, b) in &measured {
            bits[b] = index & (1usize << (n - 1 - q)) != 0;
        }
        let key: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        *dist.entry(key).or_default() += p;
    }
    Some(dist.into_iter().collect())
}

/// The full unitary of a measurement-free circuit, as columns indexed by
/// input basis state. Exponential; for verification of small circuits.
///
/// # Panics
///
/// Panics if the circuit measures or resets, or has more than 12 qubits.
pub fn unitary_of(circuit: &Circuit) -> Vec<StateVector> {
    assert!(circuit.num_qubits <= 12, "unitary extraction is exponential");
    assert!(
        circuit.ops.iter().all(|op| matches!(op, CircuitOp::Gate { .. })),
        "unitary extraction requires a measurement-free circuit"
    );
    let inputs: Vec<usize> = (0..(1usize << circuit.num_qubits)).collect();
    batched_columns(circuit, &inputs)
}

/// Whether two measurement-free circuits implement the same unitary up to
/// a single global phase.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, eps: f64) -> bool {
    if a.num_qubits != b.num_qubits {
        return false;
    }
    let ua = unitary_of(a);
    let ub = unitary_of(b);
    columns_equivalent(&ua, &ub, eps)
}

/// Whether two circuits agree (up to one shared global phase) on every
/// input whose qubits at and beyond `data_qubits` are |0> — the contract
/// for ancilla-using decompositions, which are only defined on the
/// zero-ancilla subspace (the ancillas must also return to |0>).
pub fn circuits_equivalent_on_zero_ancillas(
    a: &Circuit,
    b: &Circuit,
    data_qubits: usize,
    eps: f64,
) -> bool {
    if a.num_qubits != b.num_qubits || data_qubits > a.num_qubits {
        return false;
    }
    let shift = a.num_qubits - data_qubits;
    let inputs: Vec<usize> = (0..(1usize << data_qubits)).map(|i| i << shift).collect();
    let ua = batched_columns(a, &inputs);
    let ub = batched_columns(b, &inputs);
    columns_equivalent(&ua, &ub, eps)
}

/// Whether a routed circuit implements the same map as its unrouted
/// counterpart, given where routing placed each logical qubit.
///
/// Routing moves logical qubits across physical wires: logical qubit `q`
/// enters the routed circuit on wire `input_map[q]` and exits on wire
/// `output_map[q]` (a router's `initial_layout` / `final_layout`). The
/// check enumerates every basis input over the first `data_qubits`
/// logical qubits (all other qubits start in |0> on both sides), runs
/// both measurement-free circuits, extracts the marginal on the data
/// qubits — the logical side at wires `0..data_qubits`, the routed side
/// at `output_map[..data_qubits]` — and demands the columns agree up to
/// one shared global phase. The marginal extraction simultaneously
/// enforces ancilla discipline: every non-data wire (logical ancillas
/// and spare physical wires alike) must be back at |0>, or no marginal
/// exists and the check fails.
pub fn circuits_equivalent_up_to_output_permutation(
    logical: &Circuit,
    routed: &Circuit,
    input_map: &[usize],
    output_map: &[usize],
    data_qubits: usize,
    eps: f64,
) -> bool {
    if data_qubits > logical.num_qubits
        || input_map.len() < data_qubits
        || output_map.len() < data_qubits
        || input_map[..data_qubits].iter().any(|&p| p >= routed.num_qubits)
    {
        return false;
    }
    let shift = logical.num_qubits - data_qubits;
    let logical_inputs: Vec<usize> = (0..(1usize << data_qubits)).map(|i| i << shift).collect();
    let routed_inputs: Vec<usize> = (0..(1usize << data_qubits))
        .map(|i| {
            (0..data_qubits)
                .filter(|&q| i & (1usize << (data_qubits - 1 - q)) != 0)
                .fold(0usize, |acc, q| acc | (1usize << (routed.num_qubits - 1 - input_map[q])))
        })
        .collect();
    let data: Vec<usize> = (0..data_qubits).collect();
    let logical_cols: Option<Vec<StateVector>> = batched_columns(logical, &logical_inputs)
        .into_iter()
        .map(|s| s.marginal_on(&data, eps))
        .collect();
    let routed_cols: Option<Vec<StateVector>> = batched_columns(routed, &routed_inputs)
        .into_iter()
        .map(|s| s.marginal_on(&output_map[..data_qubits], eps))
        .collect();
    match (logical_cols, routed_cols) {
        (Some(la), Some(ra)) => columns_equivalent(&la, &ra, eps),
        _ => false,
    }
}

/// Whether two column sets (unitaries as lists of output states, indexed
/// by input basis state) agree up to one *shared* global phase. This is
/// the underlying oracle of [`circuits_equivalent`] and
/// [`circuits_equivalent_on_zero_ancillas`], exposed so differential
/// harnesses can compare columns extracted by other means (e.g. dynamic
/// interpretation of a module that never becomes a static circuit).
pub fn columns_equivalent(ua: &[StateVector], ub: &[StateVector], eps: f64) -> bool {
    if ua.len() != ub.len() || ua.iter().zip(ub).any(|(a, b)| a.num_qubits() != b.num_qubits()) {
        return false;
    }
    columns_match(ua, ub, eps)
}

fn columns_match(ua: &[StateVector], ub: &[StateVector], eps: f64) -> bool {
    // Find the shared phase from the first column with weight, then demand
    // exact correspondence under that single phase.
    let mut phase: Option<crate::Complex> = None;
    for (ca, cb) in ua.iter().zip(ub) {
        for (x, y) in ca.amplitudes().iter().zip(cb.amplitudes()) {
            if x.abs() > eps || y.abs() > eps {
                match phase {
                    None => {
                        if x.abs() < eps || y.abs() < eps {
                            return false;
                        }
                        let ratio = *x * y.conj();
                        phase = Some(crate::Complex::from_angle(ratio.im.atan2(ratio.re)));
                    }
                    Some(p) => {
                        if !x.approx_eq(p * *y, eps) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::GateKind;
    // (circuits_equivalent_on_zero_ancillas is the decomposition contract)
    use asdf_qcircuit::decompose::{decompose, DecomposeStyle};

    #[test]
    fn deterministic_circuit_measures_deterministically() {
        let mut c = Circuit::new(2);
        c.gate(GateKind::X, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        c.measure(0, 0);
        c.measure(1, 1);
        let counts = sample(&c, 50, 7);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts["11"], 50);
    }

    #[test]
    fn bell_sampling_is_correlated() {
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        c.measure(0, 0);
        c.measure(1, 1);
        let counts = sample(&c, 400, 13);
        assert!(counts.keys().all(|k| k == "00" || k == "11"));
        assert!(counts["00"] > 100 && counts["11"] > 100);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut c = Circuit::new(1);
        c.gate(GateKind::H, &[], &[0]);
        c.reset(0);
        c.measure(0, 0);
        let counts = sample(&c, 64, 5);
        assert_eq!(counts["0"], 64);
    }

    /// The decomposition correctness gate: every multi-control lowering is
    /// exactly unitary-equivalent to the native multi-controlled gate.
    #[test]
    fn decompositions_are_exact() {
        for style in [DecomposeStyle::Selinger, DecomposeStyle::VChain] {
            for k in 2..=4 {
                let mut native = Circuit::new(k + 1);
                let controls: Vec<usize> = (0..k).collect();
                native.gate(GateKind::X, &controls, &[k]);
                let lowered = decompose(&native, style);
                // Pad the native circuit with the ancillas the lowering
                // introduced (identity on them); equivalence is required on
                // the zero-ancilla subspace.
                let mut padded = Circuit::new(lowered.num_qubits);
                padded.gate(GateKind::X, &controls, &[k]);
                assert!(
                    circuits_equivalent_on_zero_ancillas(&padded, &lowered, k + 1, 1e-9),
                    "mcx k={k} style={style:?}"
                );
            }
        }
    }

    #[test]
    fn controlled_unitaries_are_exact() {
        let cases: Vec<(GateKind, usize)> = vec![
            (GateKind::H, 1),
            (GateKind::H, 2),
            (GateKind::S, 2),
            (GateKind::P(0.77), 2),
            (GateKind::Z, 3),
            (GateKind::Y, 1),
            (GateKind::Sx, 1),
            (GateKind::Ry(0.3), 1),
            (GateKind::Rx(1.1), 2),
        ];
        for (gate, k) in cases {
            let mut native = Circuit::new(k + 1);
            let controls: Vec<usize> = (0..k).collect();
            native.gate(gate, &controls, &[k]);
            let lowered = decompose(&native, DecomposeStyle::Selinger);
            let mut padded = Circuit::new(lowered.num_qubits);
            padded.gate(gate, &controls, &[k]);
            assert!(
                circuits_equivalent_on_zero_ancillas(&padded, &lowered, k + 1, 1e-9),
                "controlled {gate} with {k} controls"
            );
        }
    }

    #[test]
    fn fast_and_per_shot_sampling_agree_on_fixed_seed_distribution() {
        // Bell pair: all measurements terminal, so `sample` takes the
        // single-simulation fast path. Cross-check its distribution against
        // the per-shot path on the same seed.
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        c.measure(0, 0);
        c.measure(1, 1);
        let shots = 4000usize;
        let fast = sample(&c, shots, 99);
        let slow = sample_per_shot(&c, shots, 99);
        let keys: std::collections::BTreeSet<&String> = fast.keys().chain(slow.keys()).collect();
        let tv: f64 = keys
            .iter()
            .map(|k| {
                let a = *fast.get(*k).unwrap_or(&0) as f64 / shots as f64;
                let b = *slow.get(*k).unwrap_or(&0) as f64 / shots as f64;
                (a - b).abs()
            })
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.05, "fast vs per-shot TV distance {tv}");
        // And both agree with the exact distribution.
        let dist = measurement_distribution(&c).expect("terminal measurements");
        assert_eq!(dist.len(), 2);
        for (bits, p) in dist {
            assert!((p - 0.5).abs() < 1e-12, "{bits}: {p}");
        }
    }

    #[test]
    fn mid_circuit_measurement_disables_the_fast_path() {
        // A gate touching a measured qubit afterwards: the joint
        // distribution can no longer be read off one final state.
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[], &[0]);
        c.measure(0, 0);
        c.gate(GateKind::X, &[0], &[1]); // classically-correlated CX after measurement
        c.measure(1, 1);
        assert!(measurement_distribution(&c).is_none());
        // Reset also forces the per-shot path.
        let mut r = Circuit::new(1);
        r.gate(GateKind::H, &[], &[0]);
        r.reset(0);
        r.measure(0, 0);
        assert!(measurement_distribution(&r).is_none());
        // `sample` still works through the fallback and keeps the
        // measurement correlation: both bits always agree.
        let counts = sample(&c, 300, 17);
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
    }

    #[test]
    fn equivalence_accepts_global_phase_only_difference() {
        // ZXZX = -I: a pure global phase on the identity.
        let a = Circuit::new(1);
        let mut b = Circuit::new(1);
        for gate in [GateKind::Z, GateKind::X, GateKind::Z, GateKind::X] {
            b.gate(gate, &[], &[0]);
        }
        assert!(circuits_equivalent(&a, &b, 1e-9));
    }

    #[test]
    fn equivalence_rejects_qubit_count_mismatch() {
        let a = Circuit::new(1);
        let b = Circuit::new(2);
        assert!(!circuits_equivalent(&a, &b, 1e-9));
        assert!(!circuits_equivalent_on_zero_ancillas(&a, &b, 1, 1e-9));
    }

    #[test]
    fn equivalence_rejects_a_wrong_circuit() {
        // A relative (not global) phase difference: S vs Sdg.
        let mut a = Circuit::new(1);
        a.gate(GateKind::S, &[], &[0]);
        let mut b = Circuit::new(1);
        b.gate(GateKind::Sdg, &[], &[0]);
        assert!(!circuits_equivalent(&a, &b, 1e-9));
        // And a plainly different unitary.
        let mut h = Circuit::new(1);
        h.gate(GateKind::H, &[], &[0]);
        assert!(!circuits_equivalent(&a, &h, 1e-9));
    }

    #[test]
    fn zero_ancilla_equivalence_rejects_dirty_ancilla() {
        // Both act as the identity on the data qubit, but one leaves the
        // ancilla flipped to |1>: the decomposition contract is violated.
        let clean = Circuit::new(2);
        let mut dirty = Circuit::new(2);
        dirty.gate(GateKind::X, &[], &[1]);
        assert!(!circuits_equivalent_on_zero_ancillas(&clean, &dirty, 1, 1e-9));
        // Returned-to-zero ancilla is fine.
        let mut roundtrip = Circuit::new(2);
        roundtrip.gate(GateKind::X, &[], &[1]);
        roundtrip.gate(GateKind::X, &[], &[1]);
        assert!(circuits_equivalent_on_zero_ancillas(&clean, &roundtrip, 1, 1e-9));
    }

    /// SWAP(a, b) as three CX, the form routers emit.
    fn emit_swap(c: &mut Circuit, a: usize, b: usize) {
        c.gate(GateKind::X, &[a], &[b]);
        c.gate(GateKind::X, &[b], &[a]);
        c.gate(GateKind::X, &[a], &[b]);
    }

    #[test]
    fn permutation_oracle_accepts_hand_routed_bell() {
        // Logical Bell pair; the "routed" version swaps the wires at the
        // end, so logical qubit 1 exits on wire 0 and vice versa.
        let mut bell = Circuit::new(2);
        bell.gate(GateKind::H, &[], &[0]);
        bell.gate(GateKind::X, &[0], &[1]);
        let mut routed = bell.clone();
        emit_swap(&mut routed, 0, 1);
        assert!(circuits_equivalent_up_to_output_permutation(
            &bell,
            &routed,
            &[0, 1],
            &[1, 0],
            2,
            1e-9
        ));
        // Claiming the identity output permutation must fail: H and CX
        // ended up on the wrong wires.
        assert!(!circuits_equivalent_up_to_output_permutation(
            &bell,
            &routed,
            &[0, 1],
            &[0, 1],
            2,
            1e-9
        ));
    }

    #[test]
    fn permutation_oracle_accepts_hand_routed_ghz() {
        // GHZ on linear-3: CX(0,2) is not coupled, so the router brings
        // logical 2 next to logical 0 by swapping wires 1 and 2 first.
        let mut ghz = Circuit::new(3);
        ghz.gate(GateKind::H, &[], &[0]);
        ghz.gate(GateKind::X, &[0], &[1]);
        ghz.gate(GateKind::X, &[0], &[2]);
        let mut routed = Circuit::new(3);
        routed.gate(GateKind::H, &[], &[0]);
        routed.gate(GateKind::X, &[0], &[1]);
        emit_swap(&mut routed, 1, 2); // logical 1 -> wire 2, logical 2 -> wire 1
        routed.gate(GateKind::X, &[0], &[1]);
        assert!(circuits_equivalent_up_to_output_permutation(
            &ghz,
            &routed,
            &[0, 1, 2],
            &[0, 2, 1],
            3,
            1e-9
        ));
        // A wrong permutation is rejected...
        assert!(!circuits_equivalent_up_to_output_permutation(
            &ghz,
            &routed,
            &[0, 1, 2],
            &[2, 0, 1],
            3,
            1e-9
        ));
        // ...and so is a genuinely wrong circuit under the right one.
        let mut wrong = routed.clone();
        wrong.gate(GateKind::Z, &[], &[0]);
        assert!(!circuits_equivalent_up_to_output_permutation(
            &ghz,
            &wrong,
            &[0, 1, 2],
            &[0, 2, 1],
            3,
            1e-9
        ));
    }

    #[test]
    fn permutation_oracle_enforces_ancilla_discipline() {
        // The routed side has a spare wire; leaving it dirty must fail
        // even though the data wires match.
        let mut logical = Circuit::new(1);
        logical.gate(GateKind::H, &[], &[0]);
        let mut clean = Circuit::new(2);
        clean.gate(GateKind::H, &[], &[0]);
        assert!(circuits_equivalent_up_to_output_permutation(
            &logical,
            &clean,
            &[0],
            &[0],
            1,
            1e-9
        ));
        let mut dirty = Circuit::new(2);
        dirty.gate(GateKind::H, &[], &[0]);
        dirty.gate(GateKind::X, &[], &[1]);
        assert!(!circuits_equivalent_up_to_output_permutation(
            &logical,
            &dirty,
            &[0],
            &[0],
            1,
            1e-9
        ));
    }

    #[test]
    fn permutation_oracle_handles_permuted_inputs() {
        // Routed side receives logical qubit 0 on wire 1 and vice versa;
        // the circuit itself is CX with control on wire 1.
        let mut logical = Circuit::new(2);
        logical.gate(GateKind::X, &[0], &[1]);
        let mut routed = Circuit::new(2);
        routed.gate(GateKind::X, &[1], &[0]);
        assert!(circuits_equivalent_up_to_output_permutation(
            &logical,
            &routed,
            &[1, 0],
            &[1, 0],
            2,
            1e-9
        ));
        assert!(!circuits_equivalent_up_to_output_permutation(
            &logical,
            &routed,
            &[0, 1],
            &[0, 1],
            2,
            1e-9
        ));
    }

    #[test]
    fn controlled_swap_is_exact() {
        let mut native = Circuit::new(3);
        native.gate(GateKind::Swap, &[0], &[1, 2]);
        let lowered = decompose(&native, DecomposeStyle::Selinger);
        let mut padded = Circuit::new(lowered.num_qubits);
        padded.gate(GateKind::Swap, &[0], &[1, 2]);
        assert!(circuits_equivalent_on_zero_ancillas(&padded, &lowered, 3, 1e-9));
    }
}
