//! Output generation (§7): OpenQASM 3 and QIR.
//!
//! - [`qasm`]: OpenQASM 3 text from the straight-line [`Circuit`] form
//!   (after reg2mem), ready for tools in the IBM ecosystem.
//! - [`qir`]: QIR — LLVM IR text — from the QCircuit-dialect module. Two
//!   profiles, as in the paper: the *Base Profile* (a straight-line gate
//!   sequence with `inttoptr` qubit indices, no dynamic allocation) and the
//!   *Unrestricted Profile* (dynamic qubit allocation, callables via
//!   `__quantum__rt__callable_*` intrinsics, structured control flow
//!   lowered to branches). Table 1 counts `callable_create` /
//!   `callable_invoke` occurrences in the emitted text, which
//!   [`qir::count_callable_intrinsics`] reproduces.
//!
//! [`Circuit`]: asdf_qcircuit::Circuit

pub mod qasm;
pub mod qir;

pub use qasm::circuit_to_qasm;
pub use qir::{count_callable_intrinsics, module_to_qir_base, module_to_qir_unrestricted};
