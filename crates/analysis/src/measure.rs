//! Measurement-discipline analysis.
//!
//! Tracks, forward, whether a qubit wire has already passed through a
//! `qcirc.measure`: applying another gate to the post-measurement qubit is
//! almost always a bug (the classical outcome has already been extracted,
//! so the gate cannot influence it). The W0001 lint flags gates whose
//! operand is *provably* post-measurement; merged maybe-measured wires are
//! left alone so the lint cannot produce false positives.

use crate::framework::{Analysis, Direction, Fact, FactMap};
use asdf_ir::{Func, Op, OpKind};

/// Measurement status of a qubit wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasFact {
    /// No information (classical values stay here).
    Bottom,
    /// The wire has not been measured on any path.
    Live,
    /// The wire is the post-measurement qubit of a `qcirc.measure` on
    /// every path.
    Measured,
    /// Measured on some paths but not others.
    MaybeMeasured,
}

impl Fact for MeasFact {
    fn bottom() -> Self {
        MeasFact::Bottom
    }

    fn join(&mut self, other: &Self) -> bool {
        let joined = match (*self, *other) {
            (a, MeasFact::Bottom) => a,
            (MeasFact::Bottom, b) => b,
            (a, b) if a == b => a,
            _ => MeasFact::MaybeMeasured,
        };
        let changed = joined != *self;
        *self = joined;
        changed
    }
}

/// Forward measurement-discipline analysis over QCircuit-level wires.
#[derive(Debug, Default)]
pub struct MeasureAnalysis;

impl Analysis for MeasureAnalysis {
    type Fact = MeasFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn arg_fact(&mut self, func: &Func, arg: asdf_ir::Value) -> MeasFact {
        if func.value_type(arg).is_linear() {
            MeasFact::Live
        } else {
            MeasFact::Bottom
        }
    }

    fn transfer(&mut self, func: &Func, op: &Op, facts: &mut FactMap<MeasFact>) {
        match &op.kind {
            // The post-measurement qubit; the i1 outcome stays at bottom.
            OpKind::Measure => facts.set(op.results[0], MeasFact::Measured),
            // Structural moves preserve measured-ness.
            OpKind::QbPack | OpKind::ArrPack => {
                let mut joined = MeasFact::Bottom;
                for &v in &op.operands {
                    let _ = joined.join(facts.get(v));
                }
                facts.set(op.results[0], joined);
            }
            OpKind::QbUnpack | OpKind::ArrUnpack => {
                let fact = *facts.get(op.operands[0]);
                for &r in &op.results {
                    if func.value_type(r).is_linear() {
                        facts.set(r, fact);
                    }
                }
            }
            // scf.if merges are handled by the engine; the op itself
            // produces nothing.
            OpKind::ScfIf | OpKind::Yield | OpKind::Return => {}
            // Every other producer of qubit wires (allocation, preparation,
            // gates, translations, calls) yields a live quantum state.
            _ => {
                for &r in &op.results {
                    if func.value_type(r).is_linear() {
                        facts.set(r, MeasFact::Live);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::analyze;
    use asdf_ir::{FuncBuilder, FuncType, GateKind, Type, Visibility};

    #[test]
    fn measure_marks_the_post_measurement_wire() {
        let mut b = FuncBuilder::new(
            "m",
            FuncType::new(vec![Type::Qubit], vec![Type::I1], false),
            Visibility::Private,
        );
        let arg = b.args()[0];
        let mut bb = b.block();
        let m = bb.push(OpKind::Measure, vec![arg], vec![Type::Qubit, Type::I1]);
        let g = bb.push(
            OpKind::Gate { gate: GateKind::X, num_controls: 0 },
            vec![m[0]],
            vec![Type::Qubit],
        );
        bb.push(OpKind::QFree, vec![g[0]], vec![]);
        bb.push(OpKind::Return, vec![m[1]], vec![]);
        let func = b.finish();
        let facts = analyze(&func, &mut MeasureAnalysis);
        assert_eq!(*facts.get(arg), MeasFact::Live);
        assert_eq!(*facts.get(m[0]), MeasFact::Measured);
        // After the gate the wire carries quantum state again.
        assert_eq!(*facts.get(g[0]), MeasFact::Live);
    }
}
