//! A small forward dataflow framework for single-block functions.
//!
//! ASDF "runs an intraprocedural dataflow analysis that maps each MLIR
//! value of type qubit or qbundle to a list of qubit indices" when
//! predicating blocks (§5.3). Blocks here are SSA and straight-line, so one
//! forward pass in op order reaches the fixpoint; the framework exists to
//! keep analyses declarative (facts per value, one transfer function per
//! op), in the spirit of MLIR's dataflow tutorial the paper cites.

use crate::block::Block;
use crate::func::Func;
use crate::op::Op;
use crate::value::Value;
use std::collections::HashMap;

/// A forward, per-value analysis over one block.
pub trait ForwardAnalysis {
    /// The lattice fact attached to each value.
    type Fact: Clone;

    /// The fact for a block argument.
    fn arg_fact(&mut self, func: &Func, arg: Value) -> Self::Fact;

    /// Given the facts of an op's operands, produce facts for its results.
    /// `None` entries mean the operand had no fact (e.g. classical values in
    /// a qubit-index analysis).
    fn transfer(
        &mut self,
        func: &Func,
        op: &Op,
        operand_facts: &[Option<&Self::Fact>],
    ) -> Vec<Option<Self::Fact>>;
}

/// Runs `analysis` over `block` (front to back) and returns the fact map.
pub fn analyze_block<A: ForwardAnalysis>(
    func: &Func,
    block: &Block,
    analysis: &mut A,
) -> HashMap<Value, A::Fact> {
    let mut facts: HashMap<Value, A::Fact> = HashMap::new();
    for &arg in &block.args {
        let fact = analysis.arg_fact(func, arg);
        facts.insert(arg, fact);
    }
    for op in &block.ops {
        let operand_facts: Vec<Option<&A::Fact>> =
            op.operands.iter().map(|v| facts.get(v)).collect();
        let result_facts = analysis.transfer(func, op, &operand_facts);
        debug_assert_eq!(result_facts.len(), op.results.len(), "transfer arity");
        for (value, fact) in op.results.iter().zip(result_facts) {
            if let Some(fact) = fact {
                facts.insert(*value, fact);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncBuilder, Visibility};
    use crate::op::OpKind;
    use crate::types::{FuncType, Type};

    /// A toy analysis: tracks which block argument each qubit value came
    /// from, following gate ops positionally.
    struct Provenance;

    impl ForwardAnalysis for Provenance {
        type Fact = usize;

        fn arg_fact(&mut self, func: &Func, arg: Value) -> usize {
            let _ = func;
            arg.index()
        }

        fn transfer(
            &mut self,
            _func: &Func,
            op: &Op,
            operand_facts: &[Option<&usize>],
        ) -> Vec<Option<usize>> {
            match op.kind {
                OpKind::Gate { .. } => operand_facts.iter().map(|f| f.copied()).collect(),
                _ => vec![None; op.results.len()],
            }
        }
    }

    #[test]
    fn facts_flow_through_gates() {
        let mut b = FuncBuilder::new(
            "f",
            FuncType::new(vec![Type::Qubit, Type::Qubit], vec![Type::Qubit, Type::Qubit], true),
            Visibility::Public,
        );
        let (a0, a1) = (b.args()[0], b.args()[1]);
        let mut bb = b.block();
        let out = bb.push(
            OpKind::Gate { gate: crate::gate::GateKind::X, num_controls: 1 },
            vec![a0, a1],
            vec![Type::Qubit, Type::Qubit],
        );
        bb.push(OpKind::Return, vec![out[0], out[1]], vec![]);
        let func = b.finish();

        let facts = analyze_block(&func, &func.body, &mut Provenance);
        assert_eq!(facts[&out[0]], a0.index());
        assert_eq!(facts[&out[1]], a1.index());
    }
}
