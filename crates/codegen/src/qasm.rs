//! OpenQASM 3 emission (§7).
//!
//! "From QCircuit IR, Asdf can produce OpenQASM 3 using a process akin to
//! reg2mem in QSSA, in which SSA values are converted to quantum register
//! accesses." The register conversion lives in `asdf-qcircuit::reg2mem`;
//! this module renders the resulting [`Circuit`].

use asdf_ir::GateKind;
use asdf_qcircuit::{Circuit, CircuitOp};
use std::fmt::Write as _;

/// Renders a circuit as an OpenQASM 3 program.
pub fn circuit_to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 3.0;\n");
    out.push_str("include \"stdgates.inc\";\n\n");
    let _ = writeln!(out, "qubit[{}] q;", circuit.num_qubits.max(1));
    let bits = circuit.num_bits();
    if bits > 0 {
        let _ = writeln!(out, "bit[{bits}] c;");
    }
    out.push('\n');
    for op in &circuit.ops {
        match op {
            CircuitOp::Gate { gate, controls, targets } => {
                emit_gate(&mut out, *gate, controls, targets);
            }
            CircuitOp::Measure { qubit, bit } => {
                let _ = writeln!(out, "c[{bit}] = measure q[{qubit}];");
            }
            CircuitOp::Reset { qubit } => {
                let _ = writeln!(out, "reset q[{qubit}];");
            }
        }
    }
    out
}

fn emit_gate(out: &mut String, gate: GateKind, controls: &[usize], targets: &[usize]) {
    let name = base_name(gate);
    let params = gate.param().map(|theta| format!("({theta:.12})")).unwrap_or_default();
    // Prefer stdgates names for common controlled forms.
    let (prefix, name) = match (gate, controls.len()) {
        (_, 0) => (String::new(), name.to_string()),
        (GateKind::X, 1) => (String::new(), "cx".to_string()),
        (GateKind::X, 2) => (String::new(), "ccx".to_string()),
        (GateKind::Z, 1) => (String::new(), "cz".to_string()),
        (GateKind::Y, 1) => (String::new(), "cy".to_string()),
        (GateKind::H, 1) => (String::new(), "ch".to_string()),
        (GateKind::P(_), 1) => (String::new(), "cp".to_string()),
        (GateKind::Swap, 1) => (String::new(), "cswap".to_string()),
        (_, n) => (format!("ctrl({n}) @ "), name.to_string()),
    };
    let qubits: Vec<String> =
        controls.iter().chain(targets.iter()).map(|q| format!("q[{q}]")).collect();
    let _ = writeln!(out, "{prefix}{name}{params} {};", qubits.join(", "));
}

fn base_name(gate: GateKind) -> &'static str {
    match gate {
        GateKind::P(_) => "p",
        GateKind::Sxdg => "sxdg",
        other => other.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_named_gates() {
        let mut c = Circuit::new(3);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::X, &[0], &[1]);
        c.gate(GateKind::X, &[0, 1], &[2]);
        c.gate(GateKind::P(0.5), &[0], &[1]);
        c.measure(2, 0);
        c.reset(1);
        let qasm = circuit_to_qasm(&c);
        assert!(qasm.starts_with("OPENQASM 3.0;"));
        assert!(qasm.contains("qubit[3] q;"));
        assert!(qasm.contains("bit[1] c;"));
        assert!(qasm.contains("h q[0];"));
        assert!(qasm.contains("cx q[0], q[1];"));
        assert!(qasm.contains("ccx q[0], q[1], q[2];"));
        assert!(qasm.contains("cp(0.5"));
        assert!(qasm.contains("c[0] = measure q[2];"));
        assert!(qasm.contains("reset q[1];"));
    }

    #[test]
    fn multi_control_uses_ctrl_modifier() {
        let mut c = Circuit::new(4);
        c.gate(GateKind::Z, &[0, 1, 2], &[3]);
        let qasm = circuit_to_qasm(&c);
        assert!(qasm.contains("ctrl(3) @ z q[0], q[1], q[2], q[3];"));
    }

    #[test]
    fn compiled_bv_renders() {
        let src = r"
            classical f[N](secret: bit[N], x: bit[N]) -> bit {
                (secret & x).xor_reduce()
            }
            qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
                'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
            }
        ";
        let captures = vec![asdf_ast::expand::CaptureValue::CFunc {
            name: "f".into(),
            captures: vec![asdf_ast::expand::CaptureValue::bits_from_str("101")],
        }];
        let compiled = asdf_core::Compiler::compile(
            src,
            "kernel",
            &captures,
            &asdf_core::CompileOptions::default(),
        )
        .unwrap();
        let qasm = circuit_to_qasm(&compiled.circuit.unwrap());
        assert!(qasm.contains("measure"));
        assert!(qasm.contains("h q["));
    }
}
