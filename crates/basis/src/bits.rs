//! Eigenbit strings.

use std::fmt;

/// The *eigenbits* of a basis vector (§2.2): one bit per qubit position, set
/// iff the position is a minus eigenstate.
///
/// Ordering is lexicographic (bit 0 first), which is the order basis-literal
/// normalization sorts vectors into before span checking (§4.1).
///
/// # Example
///
/// ```
/// use asdf_basis::BitString;
///
/// let bits: BitString = "101".parse()?;
/// assert_eq!(bits.len(), 3);
/// assert!(bits.bit(0) && !bits.bit(1) && bits.bit(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// Creates an all-zero bit string of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitString { bits: vec![false; len] }
    }

    /// Creates an all-one bit string of length `len`.
    pub fn ones(len: usize) -> Self {
        BitString { bits: vec![true; len] }
    }

    /// Creates a bit string from the low `len` bits of `value`, most
    /// significant bit first (so `from_value(0b10, 2)` is `"10"`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    pub fn from_value(value: u128, len: usize) -> Self {
        assert!(len <= 128, "BitString::from_value supports at most 128 bits");
        let bits = (0..len).map(|i| (value >> (len - 1 - i)) & 1 == 1).collect();
        BitString { bits }
    }

    /// Creates a bit string from an iterator of bits, first bit first.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitString { bits: iter.into_iter().collect() }
    }

    /// The number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the string has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at position `i` (position 0 is leftmost).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }

    /// Iterates over bits, leftmost first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// The bits as a slice.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Splits into the first `n` bits and the remaining bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_at(&self, n: usize) -> (BitString, BitString) {
        let (pre, suf) = self.bits.split_at(n);
        (BitString { bits: pre.to_vec() }, BitString { bits: suf.to_vec() })
    }

    /// Concatenates two bit strings.
    pub fn concat(&self, other: &BitString) -> BitString {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&other.bits);
        BitString { bits }
    }

    /// Interprets the bits as a big-endian integer (leftmost bit most
    /// significant).
    ///
    /// # Panics
    ///
    /// Panics if `self.len() > 128`.
    pub fn value(&self) -> u128 {
        assert!(self.len() <= 128, "BitString::value supports at most 128 bits");
        self.bits.iter().fold(0u128, |acc, &b| (acc << 1) | u128::from(b))
    }

    /// The number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Bitwise XOR of two equal-length strings.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &BitString) -> BitString {
        assert_eq!(self.len(), other.len(), "xor requires equal lengths");
        BitString { bits: self.bits.iter().zip(&other.bits).map(|(a, b)| a ^ b).collect() }
    }
}

impl std::str::FromStr for BitString {
    type Err = crate::BasisError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                _ => Err(crate::BasisError::parse(format!(
                    "invalid bit character {c:?} in bit string"
                ))),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(|bits| BitString { bits })
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitString::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_value_is_big_endian() {
        let b = BitString::from_value(0b101, 3);
        assert_eq!(b.to_string(), "101");
        assert_eq!(b.value(), 0b101);
    }

    #[test]
    fn lexicographic_order() {
        let a: BitString = "010".parse().unwrap();
        let b: BitString = "100".parse().unwrap();
        assert!(a < b);
        let short: BitString = "10".parse().unwrap();
        assert!(short < b, "prefix sorts before longer string");
    }

    #[test]
    fn split_and_concat_round_trip() {
        let b: BitString = "110100".parse().unwrap();
        let (pre, suf) = b.split_at(2);
        assert_eq!(pre.to_string(), "11");
        assert_eq!(suf.to_string(), "0100");
        assert_eq!(pre.concat(&suf), b);
    }

    #[test]
    fn xor_and_counts() {
        let a: BitString = "1100".parse().unwrap();
        let b: BitString = "1010".parse().unwrap();
        assert_eq!(a.xor(&b).to_string(), "0110");
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!("10x".parse::<BitString>().is_err());
    }

    #[test]
    fn value_round_trip_128() {
        let v = u128::MAX - 12345;
        let b = BitString::from_value(v, 128);
        assert_eq!(b.value(), v);
    }
}
