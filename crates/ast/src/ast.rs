//! The untyped Qwerty AST, as produced by the parser.
//!
//! This corresponds to the "typed Qwerty AST" *shape* of the paper before
//! expansion: dimensions are still symbolic expressions and types are
//! syntactic. `expand` resolves dimensions, and `typecheck` produces the
//! typed AST in [`crate::tast`].

use crate::diag::Span;
use crate::dims::{AngleExpr, DimExpr};
use asdf_basis::{Eigenstate, PrimitiveBasis};

/// A whole source file: a list of `qpu` and `classical` items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Finds a `qpu` item by name.
    pub fn qpu(&self, name: &str) -> Option<&QpuFunc> {
        self.items.iter().find_map(|item| match item {
            Item::Qpu(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Finds a `classical` item by name.
    pub fn classical(&self, name: &str) -> Option<&ClassicalFunc> {
        self.items.iter().find_map(|item| match item {
            Item::Classical(f) if f.name == name => Some(f),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A `qpu` kernel (the paper's `@qpu` function).
    Qpu(QpuFunc),
    /// A `classical` function (the paper's `@classical` function).
    Classical(ClassicalFunc),
}

/// A syntactic type annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `qubit[N]` (or `qubit`, meaning `qubit[1]`).
    Qubit(DimExpr),
    /// `bit[N]` (or `bit`).
    Bit(DimExpr),
    /// `cfunc[N, M]`: a classical function from `bit[N]` to `bit[M]`.
    CFunc(DimExpr, DimExpr),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
}

/// A `qpu` kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct QpuFunc {
    /// Kernel name.
    pub name: String,
    /// Dimension variables (`kernel[N, M]`).
    pub dim_vars: Vec<String>,
    /// Parameters. Parameters of `cfunc`/`bit` type are *captures* bound at
    /// instantiation; `qubit` parameters are runtime arguments.
    pub params: Vec<Param>,
    /// Declared result type.
    pub ret: TypeExpr,
    /// Body: `let` bindings followed by a final expression.
    pub body: Vec<Stmt>,
}

/// A `classical` function.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassicalFunc {
    /// Function name.
    pub name: String,
    /// Dimension variables.
    pub dim_vars: Vec<String>,
    /// Parameters; leading parameters may be captures bound at
    /// instantiation (like `secret_str` in Fig. 1).
    pub params: Vec<Param>,
    /// Declared result type (must be a `bit[...]`).
    pub ret: TypeExpr,
    /// The body expression.
    pub body: CExpr,
}

/// A statement in a `qpu` body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let a, b = expr;` — destructures measurement results or qubit
    /// tuples positionally by declared widths.
    Let {
        /// Bound names, in order.
        names: Vec<String>,
        /// Right-hand side.
        value: Expr,
    },
    /// The final expression of the body (the kernel result).
    Expr(Expr),
}

/// One position of a qubit literal: a primitive basis and an eigenstate.
pub type QubitChar = (PrimitiveBasis, Eigenstate);

/// A basis-literal vector as written: characters, a negation flag, and an
/// optional angle.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSyntax {
    /// The character sequence (e.g. `10` or `pm`).
    pub chars: Vec<QubitChar>,
    /// Tensor power applied to the characters (`'p'[N]`).
    pub power: Option<DimExpr>,
    /// Leading `-`.
    pub negated: bool,
    /// Trailing `@theta` (degrees).
    pub phase: Option<AngleExpr>,
}

/// A `qpu` expression: a kind plus the source span it was parsed from.
///
/// Consumers that build ASTs programmatically (tests, the difftest
/// generator) construct kinds and convert with `From`, leaving the span
/// unknown: `let e: Expr = ExprKind::Var("f".into()).into();`
#[derive(Debug, Clone)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
    /// Source range this expression was parsed from (empty when the AST
    /// was built programmatically).
    pub span: Span,
}

/// Structural equality: spans are locations, not meaning, so two
/// expressions compare equal whenever their kinds do (round-tripping
/// through [`crate::pretty`] preserves equality even though offsets
/// move).
impl PartialEq for Expr {
    fn eq(&self, other: &Expr) -> bool {
        self.kind == other.kind
    }
}

impl Expr {
    /// An expression with a known source span.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

impl From<ExprKind> for Expr {
    fn from(kind: ExprKind) -> Expr {
        Expr { kind, span: Span::default() }
    }
}

/// A `qpu` expression kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A qubit literal used as state preparation, e.g. `'p0'` (possibly
    /// mixed-basis per position).
    QLit {
        /// Characters of the literal.
        chars: Vec<QubitChar>,
        /// Leading `-` or `@theta` (a global phase on the prepared state,
        /// dropped with a warning during lowering).
        phase: Option<AngleExpr>,
    },
    /// A basis literal `{v1, v2, ...}`.
    BasisLit(Vec<VectorSyntax>),
    /// A built-in basis, e.g. `pm[4]` or `fourier[N]`.
    BuiltinBasis(PrimitiveBasis, DimExpr),
    /// A variable reference (parameter, `let` binding, or another kernel).
    Var(String),
    /// `value | func` — application.
    Pipe(Box<Expr>, Box<Expr>),
    /// `a + b` — tensor product.
    Tensor(Box<Expr>, Box<Expr>),
    /// `e[N]` — tensor power.
    Pow(Box<Expr>, DimExpr),
    /// `f ** N` — N-fold composition (stands in for the Python loop
    /// unrolling the paper's expansion performs).
    Repeat(Box<Expr>, DimExpr),
    /// `b1 >> b2` — basis translation.
    Translation(Box<Expr>, Box<Expr>),
    /// `~f` — adjoint.
    Adjoint(Box<Expr>),
    /// `b & f` — predication.
    Pred(Box<Expr>, Box<Expr>),
    /// `b.measure`.
    Measure(Box<Expr>),
    /// `b.flip` — sugar for `b >>` the reversed two-vector literal.
    Flip(Box<Expr>),
    /// `f.sign` — the phase oracle form of a classical function.
    Sign(Box<Expr>),
    /// `f.xor` — the Bennett (XOR) embedding of a classical function.
    Xor(Box<Expr>),
    /// `id[N]` — the identity function on N qubits.
    Id(DimExpr),
    /// `b.discard` — discards qubits (measurement-free reset).
    Discard(Box<Expr>),
    /// `t if c else e` — classical conditional selecting between function
    /// values (Fig. C13).
    Cond {
        /// Value when true.
        then_expr: Box<Expr>,
        /// An `i1`-producing expression (a measured bit).
        cond: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
}

/// A `classical` expression over bit vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A parameter reference.
    Var(String),
    /// Bitwise AND.
    And(Box<CExpr>, Box<CExpr>),
    /// Bitwise OR.
    Or(Box<CExpr>, Box<CExpr>),
    /// Bitwise XOR.
    Xor(Box<CExpr>, Box<CExpr>),
    /// Bitwise NOT.
    Not(Box<CExpr>),
    /// `x[i]` — a single bit.
    Index(Box<CExpr>, DimExpr),
    /// `x.repeat(N)` — broadcast a 1-bit value to N bits.
    Repeat(Box<CExpr>, DimExpr),
    /// `x.xor_reduce()` — parity of all bits.
    XorReduce(Box<CExpr>),
    /// `x.and_reduce()` — conjunction of all bits.
    AndReduce(Box<CExpr>),
}
