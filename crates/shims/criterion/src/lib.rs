//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! in-tree crate implements the subset of the criterion API the workspace's
//! benches use — [`Criterion`], [`BenchmarkId`], benchmark groups, `iter`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros — as a plain
//! wall-clock harness. It reports median per-iteration time to stdout. It
//! does not do criterion's statistical analysis; it exists so `cargo bench`
//! builds and runs offline with unmodified bench sources.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark unless overridden by
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLES: usize = 10;

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), samples: DEFAULT_SAMPLES }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), DEFAULT_SAMPLES, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.samples, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.samples, |b| f(b));
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

/// Passed to the closure under measurement; call [`Bencher::iter`] with the
/// routine to time.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup to populate caches / allocators.
        black_box(routine());
        for _ in 0..self.per_sample {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), per_sample: samples };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let best = bencher.samples[0];
    println!("{label:<50} median {median:>12.3?}   best {best:>12.3?}");
}

/// An identity function that defeats constant folding, re-exported with
/// criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given bench groups, mirroring criterion's
/// macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
