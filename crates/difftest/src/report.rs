//! Self-contained reproducers for differential findings.

use crate::gen::GenCase;
use asdf_ast::expand::CaptureValue;
use std::fmt;

/// One differential finding, with everything needed to reproduce it:
/// source, captures, dimension bindings, the disagreeing configuration
/// pair, the sweep seed, and (when shrinking ran) the minimized program.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Case number within the sweep.
    pub case_index: usize,
    /// The derived per-case seed.
    pub seed: u64,
    /// First configuration of the disagreeing pair.
    pub config_a: String,
    /// Second configuration of the disagreeing pair.
    pub config_b: String,
    /// The oracle's description of the disagreement.
    pub reason: String,
    /// The original program source.
    pub source: String,
    /// Rendered capture description.
    pub captures: String,
    /// Explicit dimension bindings, if any.
    pub dims: String,
    /// Stage count of the original case.
    pub original_stages: usize,
    /// The minimized program source, when the shrinker reduced the case.
    pub shrunk_source: Option<String>,
    /// Stage count after shrinking.
    pub shrunk_stages: usize,
    /// The fuel-bisection verdict (`--fuel-bisect`): which pattern firing
    /// first introduces the divergence.
    pub bisect: Option<String>,
}

impl Mismatch {
    /// Builds a report from the failing case and optional minimization.
    pub fn new(
        case: &GenCase,
        config_a: String,
        config_b: String,
        reason: String,
        shrunk: Option<GenCase>,
        bisect: Option<String>,
    ) -> Self {
        let rendered = case.render();
        Mismatch {
            bisect,
            case_index: case.index,
            seed: case.seed,
            config_a,
            config_b,
            reason,
            source: rendered.source,
            captures: describe_captures(&rendered.captures),
            dims: rendered
                .dims
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(", "),
            original_stages: case.stages.len(),
            shrunk_stages: shrunk.as_ref().map(|c| c.stages.len()).unwrap_or(case.stages.len()),
            shrunk_source: shrunk.map(|c| c.render().source),
        }
    }
}

fn describe_captures(captures: &[CaptureValue]) -> String {
    captures
        .iter()
        .map(|c| match c {
            CaptureValue::Bits(bits) => {
                bits.iter().map(|&b| if b { '1' } else { '0' }).collect::<String>()
            }
            CaptureValue::CFunc { name, captures } => {
                format!("{name}({})", describe_captures(captures))
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== DIFFERENTIAL MISMATCH (case {}, seed {:#x}) ===",
            self.case_index, self.seed
        )?;
        writeln!(f, "configs : {} vs {}", self.config_a, self.config_b)?;
        writeln!(f, "reason  : {}", self.reason)?;
        if let Some(bisect) = &self.bisect {
            writeln!(f, "bisect  : {bisect}")?;
        }
        if !self.captures.is_empty() {
            writeln!(f, "captures: {}", self.captures)?;
        }
        if !self.dims.is_empty() {
            writeln!(f, "dims    : {}", self.dims)?;
        }
        writeln!(f, "--- program ({} stages) ---", self.original_stages)?;
        write!(f, "{}", self.source)?;
        if let Some(shrunk) = &self.shrunk_source {
            writeln!(f, "--- minimized reproducer ({} stages) ---", self.shrunk_stages)?;
            write!(f, "{shrunk}")?;
        }
        Ok(())
    }
}
