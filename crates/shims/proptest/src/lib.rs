//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! in-tree crate implements the subset of the proptest API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_shuffle` / `boxed`, [`Just`], ranges and tuples
//! as strategies, [`collection::vec`], [`sample::select`] /
//! [`sample::subsequence`], [`option::of`], `any::<T>()`, and the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*!` / [`prop_assume!`]
//! macros.
//!
//! Semantics: each `#[test]` runs [`ProptestConfig::cases`] random cases
//! seeded deterministically from the test's module path and name, so
//! failures reproduce run-to-run. There is **no shrinking** — a failing
//! case panics with the generated values' `Debug` output via the standard
//! assert messages.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic RNG driving case generation.

    /// SplitMix64, seeded from a test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator whose stream is a pure function of `name`.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test path keeps distinct tests decorrelated.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty range");
            ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A fair coin flip.
        pub fn flip(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }

        /// In-place Fisher–Yates shuffle.
        pub fn shuffle<T>(&mut self, xs: &mut [T]) {
            for i in (1..xs.len()).rev() {
                xs.swap(i, self.below(i + 1));
            }
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration (the shim honors only `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (proptest's core abstraction, minus value
/// trees and shrinking).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the result.
    fn prop_flat_map<S2, F>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        strategy::FlatMap { inner: self, f }
    }

    /// Randomly permutes generated collections.
    fn prop_shuffle(self) -> strategy::Shuffle<Self>
    where
        Self: Sized,
        Self::Value: strategy::Shufflable,
    {
        strategy::Shuffle { inner: self }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn strategy::DynStrategy<T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Object-safe generation, used by [`super::BoxedStrategy`].
    pub trait DynStrategy<T> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Collections that [`Strategy::prop_shuffle`] can permute.
    pub trait Shufflable {
        /// Permutes the collection in place.
        fn shuffle_in_place(&mut self, rng: &mut TestRng);
    }

    impl<T> Shufflable for Vec<T> {
        fn shuffle_in_place(&mut self, rng: &mut TestRng) {
            rng.shuffle(self);
        }
    }

    /// See [`Strategy::prop_shuffle`].
    #[derive(Debug, Clone)]
    pub struct Shuffle<S> {
        pub(crate) inner: S,
    }

    impl<S> Strategy for Shuffle<S>
    where
        S: Strategy,
        S::Value: Shufflable,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut v = self.inner.generate(rng);
            v.shuffle_in_place(rng);
            v
        }
    }

    /// A uniform choice between type-erased alternatives; built by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<super::BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `arms` must be non-empty.
        pub fn new(arms: Vec<super::BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as usize + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.flip()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        pub(crate) fn pick(self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max - self.min + 1)
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling from explicit collections.
pub mod sample {
    use super::collection::SizeRange;
    use super::{Strategy, TestRng};

    /// A uniform element of `options`.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty vec");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// An order-preserving random subsequence of `values`, with length
    /// drawn from `size`.
    pub fn subsequence<T: Clone + 'static>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence { values, size: size.into() }
    }

    /// See [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let len = self.size.pick(rng).min(self.values.len());
            let mut indices: Vec<usize> = (0..self.values.len()).collect();
            rng.shuffle(&mut indices);
            let mut chosen: Vec<usize> = indices.into_iter().take(len).collect();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.flip() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// A uniform choice among the given strategies (all producing the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `ProptestConfig::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _ in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
