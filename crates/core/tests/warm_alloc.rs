//! The warm hit path allocates nothing: a counting global allocator
//! wraps the system allocator, and a window of repeat `Session::compile`
//! calls must perform zero heap allocations — the request is hashed and
//! matched against stored keys in place (no owned key, no encoded
//! capture string, no sorted-dims vector).

use asdf_ast::CaptureValue;
use asdf_core::{CompileRequest, Session};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts allocations made on this thread while the window is open.
struct CountingAllocator;

// SAFETY: defers to the system allocator; the bookkeeping uses only
// const-initialized thread-locals, which never allocate on access.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn count() {
    // try_with: TLS may already be torn down during thread exit.
    let _ = COUNTING.try_with(|counting| {
        if counting.get() {
            let _ = ALLOCATIONS.try_with(|allocations| allocations.set(allocations.get() + 1));
        }
    });
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled and returns how many heap
/// allocations it performed on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCATIONS.with(|a| a.get())
}

const BV_SRC: &str = r"
    classical f[N](secret: bit[N], x: bit[N]) -> bit {
        (secret & x).xor_reduce()
    }
    qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
        'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
    }
";

#[test]
fn warm_artifact_hits_do_not_allocate() {
    let session = Session::new(BV_SRC).expect("parses");
    let request = CompileRequest::kernel("kernel").with_capture(CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str("110101")],
    });
    // Cold compile, then one warm-up hit (first-use lazy init anywhere in
    // the path happens here, outside the counted window).
    let cold = session.compile(&request).expect("compiles");
    let warm = session.compile(&request).expect("hits");
    assert!(std::sync::Arc::ptr_eq(&cold, &warm));
    drop((cold, warm));

    let allocations = allocations_in(|| {
        for _ in 0..100 {
            let artifact = session.compile(&request).expect("warm hit");
            drop(artifact);
        }
    });
    assert_eq!(allocations, 0, "100 warm hits must not touch the heap");
}

#[test]
fn warm_hits_with_explicit_dims_do_not_allocate() {
    // Dimension bindings exercise the sorted-dims comparison, which must
    // also run in place.
    let src = r"
        classical balanced[N](x: bit[N]) -> bit { x.xor_reduce() }
        qpu dj[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";
    let session = Session::new(src).expect("parses");
    let request = CompileRequest::kernel("dj")
        .with_capture(CaptureValue::CFunc { name: "balanced".into(), captures: vec![] })
        .with_dim("N", 4);
    session.compile(&request).expect("compiles");
    session.compile(&request).expect("hits");

    let allocations = allocations_in(|| {
        for _ in 0..50 {
            let artifact = session.compile(&request).expect("warm hit");
            drop(artifact);
        }
    });
    assert_eq!(allocations, 0, "warm hits with dims must not touch the heap");
}
