//! Multi-worker stress bench for the concurrent session core: N workers
//! hammer **one shared [`Session`]** with a mixed hot/cold request
//! stream and we measure end-to-end request throughput, p50/p99
//! latency, and the 1→8 worker scaling ratio.
//!
//! Every worker replays the same schedule (a ~90% hot mix over eight
//! keys plus a unique cold key every tenth request), so the concurrency
//! win comes from the server-core machinery this bench guards: warm
//! requests are lock-narrow sharded-cache hits, and simultaneous cold
//! requests for one key *coalesce* onto a single pipeline run instead
//! of duplicating it. The bench asserts that identity — pipeline runs
//! (artifact misses) must equal unique keys, never requests — and, in
//! full mode, that 8-worker throughput is at least 4x 1-worker
//! throughput.
//!
//! Each full run appends a trajectory point to `BENCH_compile.json` at
//! the repo root. `--smoke` (or env `COMPILE_STRESS_SMOKE=1`) shrinks
//! the workload and skips the scaling assertion for CI.

use asdf_ast::CaptureValue;
use asdf_core::{CompileRequest, Session};
use criterion::black_box;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const BV_SRC: &str = r"
    classical f[N](secret: bit[N], x: bit[N]) -> bit {
        (secret & x).xor_reduce()
    }
    qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
        'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
    }
";

fn bv_request(secret: &str) -> CompileRequest {
    CompileRequest::kernel("kernel").with_capture(CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(secret)],
    })
}

/// The request stream every worker replays: eight hot keys cycled
/// round-robin, with every tenth slot replaced by a unique cold key.
fn build_schedule(len: usize) -> (Vec<CompileRequest>, usize) {
    let mut schedule = Vec::with_capacity(len);
    let mut unique = std::collections::HashSet::new();
    for i in 0..len {
        let secret = if i % 10 == 9 {
            // Unique 10-bit cold key.
            format!("{:b}", 0b10_0000_0000 | i)
        } else {
            // One of eight hot 5-bit keys.
            format!("{:b}", 0b1_0000 | (i % 8))
        };
        unique.insert(secret.clone());
        schedule.push(bv_request(&secret));
    }
    (schedule, unique.len())
}

struct TrialResult {
    wall: Duration,
    latencies: Vec<Duration>,
    requests: u64,
    pipeline_runs: u64,
    coalesced: u64,
    hits: u64,
}

/// One trial: `workers` threads replay `schedule` against a fresh
/// shared session, barrier-released together.
fn run_trial(workers: usize, schedule: &[CompileRequest], unique_keys: usize) -> TrialResult {
    // Capacities far above the key count: no evictions, so the
    // pipeline-runs == unique-keys identity is exact.
    let session = Arc::new(
        Session::builder(BV_SRC)
            .frontend_capacity(4096)
            .artifact_capacity(4096)
            .build()
            .expect("parses"),
    );
    let barrier = Arc::new(Barrier::new(workers + 1));
    let started;
    let mut latencies: Vec<Duration>;
    {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let session = Arc::clone(&session);
                let barrier = Arc::clone(&barrier);
                let schedule = schedule.to_vec();
                std::thread::spawn(move || {
                    let mut latencies = Vec::with_capacity(schedule.len());
                    barrier.wait();
                    for request in &schedule {
                        let start = Instant::now();
                        black_box(session.compile(request).expect("compiles"));
                        latencies.push(start.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        barrier.wait();
        started = Instant::now();
        latencies = handles.into_iter().flat_map(|h| h.join().expect("worker finished")).collect();
    }
    let wall = started.elapsed();

    let stats = session.cache_stats();
    let requests = (workers * schedule.len()) as u64;
    assert_eq!(
        stats.artifact_misses, unique_keys as u64,
        "coalescing invariant: pipeline runs must equal unique cold keys, not requests \
         ({workers} workers, {stats:?})"
    );
    assert_eq!(
        stats.artifact_hits + stats.artifact_coalesced + stats.artifact_misses,
        requests,
        "every request is a hit, a coalesced wait, or the one miss per key"
    );
    latencies.sort_unstable();
    TrialResult {
        wall,
        latencies,
        requests,
        pipeline_runs: stats.artifact_misses,
        coalesced: stats.artifact_coalesced,
        hits: stats.artifact_hits,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index]
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn append_trajectory_point(point: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_compile.json");
    let rewritten = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) => {
                    let body = body.trim_end();
                    if body.ends_with('[') {
                        format!("{body}\n  {point}\n]\n")
                    } else {
                        format!("{body},\n  {point}\n]\n")
                    }
                }
                None => format!("[\n  {point}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {point}\n]\n"),
    };
    match std::fs::write(&path, rewritten) {
        Ok(()) => println!("trajectory point appended to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("COMPILE_STRESS_SMOKE").is_ok_and(|v| v == "1");
    let (len, trials) = if smoke { (60, 2) } else { (240, 5) };
    let (schedule, unique_keys) = build_schedule(len);
    println!(
        "compile_stress: {len} requests/worker, {unique_keys} unique keys, one shared session{}",
        if smoke { " (smoke)" } else { "" }
    );

    let worker_counts = [1usize, 2, 4, 8];
    let mut throughput = Vec::new();
    let mut final_trial: Option<TrialResult> = None;
    for &workers in &worker_counts {
        // Keep the median-throughput trial (thread spawn noise dominates
        // the tails on small workloads).
        let mut results: Vec<TrialResult> =
            (0..trials).map(|_| run_trial(workers, &schedule, unique_keys)).collect();
        results.sort_by_key(|r| r.wall);
        let median = results.remove(results.len() / 2);
        let reqs_per_s = median.requests as f64 / median.wall.as_secs_f64();
        println!(
            "{workers} worker(s): {:>9.0} req/s  wall {:>9.3?}  p50 {:>9.3?}  p99 {:>9.3?}  \
             [{} runs, {} hits, {} coalesced]",
            reqs_per_s,
            median.wall,
            percentile(&median.latencies, 0.50),
            percentile(&median.latencies, 0.99),
            median.pipeline_runs,
            median.hits,
            median.coalesced,
        );
        throughput.push(reqs_per_s);
        if workers == *worker_counts.last().unwrap() {
            final_trial = Some(median);
        }
    }

    let scaling = throughput[throughput.len() - 1] / throughput[0];
    let peak = final_trial.expect("the 8-worker trial ran");
    println!(
        "scaling 1 -> {} workers: {scaling:.2}x  (pipeline ran {}x for {} requests; \
         coalescing and caching absorbed the rest)",
        worker_counts.last().unwrap(),
        peak.pipeline_runs,
        peak.requests,
    );
    if !smoke {
        assert!(
            scaling >= 4.0,
            "acceptance: 8-worker throughput must be >= 4x 1-worker, got {scaling:.2}x"
        );
    }

    let point = format!(
        "{{\"bench\": \"compile_stress\", \"mode\": \"{}\", \"program\": \"bv\", \
         \"requests_per_worker\": {len}, \"unique_keys\": {unique_keys}, \
         \"throughput_1\": {:.0}, \"throughput_2\": {:.0}, \"throughput_4\": {:.0}, \
         \"throughput_8\": {:.0}, \"scaling_1_to_8\": {:.2}, \
         \"p50_us_8\": {:.3}, \"p99_us_8\": {:.1}, \
         \"pipeline_runs_8\": {}, \"coalesced_8\": {}, \"requests_8\": {}}}",
        if smoke { "smoke" } else { "full" },
        throughput[0],
        throughput[1],
        throughput[2],
        throughput[3],
        scaling,
        us(percentile(&peak.latencies, 0.50)),
        us(percentile(&peak.latencies, 0.99)),
        peak.pipeline_runs,
        peak.coalesced,
        peak.requests,
    );
    append_trajectory_point(&point);
}
