//! The native gate set and per-gate costs of a hardware target.
//!
//! Every built-in target speaks the common superconducting-style set:
//! arbitrary single-qubit gates plus CX between coupled physical qubits.
//! [`NativeGateSet::admits`] is the membership test the router's output
//! must satisfy and [`Target::validate`](crate::Target::validate) enforces.

use asdf_ir::GateKind;
use asdf_qcircuit::CircuitOp;

/// The gates a target executes directly: any uncontrolled single-qubit
/// gate, and CX (singly-controlled X). Connectivity is *not* checked
/// here — that is the coupling graph's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NativeGateSet;

impl NativeGateSet {
    /// Whether `op` is native, ignoring connectivity. Measurements and
    /// resets are always admitted.
    pub fn admits(&self, op: &CircuitOp) -> bool {
        match op {
            CircuitOp::Gate { gate, controls, targets } => match (gate, controls.len()) {
                (GateKind::Swap, _) => false,
                (_, 0) => targets.len() == 1,
                (GateKind::X, 1) => true,
                _ => false,
            },
            CircuitOp::Measure { .. } | CircuitOp::Reset { .. } => true,
        }
    }

    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> &'static str {
        "{any 1q gate, CX on coupled pairs}"
    }
}

/// Execution cost of each native operation class, in abstract time units.
/// The ASAP scheduler weighs ops by these to compute a makespan alongside
/// the unit-latency depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateCosts {
    /// Any uncontrolled single-qubit gate.
    pub one_qubit: u64,
    /// CX between coupled qubits.
    pub two_qubit: u64,
    /// Standard-basis measurement.
    pub measure: u64,
    /// Reset to |0>.
    pub reset: u64,
}

impl Default for GateCosts {
    /// Rough superconducting-hardware ratios: 2q gates ~3x slower than 1q,
    /// readout an order of magnitude slower still.
    fn default() -> Self {
        GateCosts { one_qubit: 1, two_qubit: 3, measure: 10, reset: 10 }
    }
}

impl GateCosts {
    /// Cost of one op.
    pub fn of(&self, op: &CircuitOp) -> u64 {
        match op {
            CircuitOp::Gate { controls, .. } => {
                if controls.is_empty() {
                    self.one_qubit
                } else {
                    self.two_qubit
                }
            }
            CircuitOp::Measure { .. } => self.measure,
            CircuitOp::Reset { .. } => self.reset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(gate: GateKind, controls: &[usize], targets: &[usize]) -> CircuitOp {
        CircuitOp::Gate { gate, controls: controls.to_vec(), targets: targets.to_vec() }
    }

    #[test]
    fn native_set_is_one_qubit_plus_cx() {
        let set = NativeGateSet;
        assert!(set.admits(&gate(GateKind::H, &[], &[0])));
        assert!(set.admits(&gate(GateKind::P(0.3), &[], &[2])));
        assert!(set.admits(&gate(GateKind::X, &[0], &[1])), "CX is native");
        assert!(!set.admits(&gate(GateKind::Z, &[0], &[1])), "CZ is not");
        assert!(!set.admits(&gate(GateKind::Swap, &[], &[0, 1])), "SWAP is not");
        assert!(!set.admits(&gate(GateKind::X, &[0, 1], &[2])), "Toffoli is not");
        assert!(set.admits(&CircuitOp::Measure { qubit: 0, bit: 0 }));
        assert!(set.admits(&CircuitOp::Reset { qubit: 0 }));
    }

    #[test]
    fn costs_classify_ops() {
        let costs = GateCosts::default();
        assert_eq!(costs.of(&gate(GateKind::H, &[], &[0])), costs.one_qubit);
        assert_eq!(costs.of(&gate(GateKind::X, &[0], &[1])), costs.two_qubit);
        assert_eq!(costs.of(&CircuitOp::Measure { qubit: 0, bit: 0 }), costs.measure);
        assert_eq!(costs.of(&CircuitOp::Reset { qubit: 0 }), costs.reset);
    }
}
