//! Quantum basis representation and span-equivalence checking for the Qwerty
//! language, reproducing §2.2, §4.1, and Appendix B of the ASDF paper
//! (Adams et al., CGO 2025).
//!
//! Every basis in Qwerty is grounded in four primitive bases ([`PrimitiveBasis`]):
//! `std` (the Z eigenbasis), `pm` (the X eigenbasis), `ij` (the Y eigenbasis),
//! and `fourier[N]` (the N-qubit Fourier basis). A [`Basis`] is a *canon form*:
//! a tensor-product sequence of [`BasisElem`]s, each either a built-in basis
//! (`pm[4]`) or a [`BasisLiteral`] (`{'110', '101'}`).
//!
//! The crate's centerpiece is [`span::check_span_equiv`], the polynomial-time
//! span-equivalence checker (Algorithm B1) built on basis *factoring*
//! (Algorithms B2–B4), which avoids the naive exponential expansion of
//! tensor-product bases.
//!
//! # Example
//!
//! ```
//! use asdf_basis::{Basis, span};
//!
//! // {'0','1'}[64] and {'1','0'}[64] both represent 2^64 vectors, yet span
//! // equivalence is decided in polynomial time.
//! let lhs: Basis = "{'0','1'}[64]".parse()?;
//! let rhs: Basis = "{'1','0'}[64]".parse()?;
//! span::check_span_equiv(&lhs, &rhs)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod basis;
pub mod bits;
pub mod error;
pub mod literal;
pub mod parse;
pub mod prim;
pub mod span;
pub mod vector;

pub use basis::{Basis, BasisElem};
pub use bits::BitString;
pub use error::BasisError;
pub use literal::BasisLiteral;
pub use prim::{Eigenstate, PrimitiveBasis};
pub use vector::{BasisVector, Phase};
