//! Compiler-phase and design-choice ablation benches:
//!
//! - end-to-end compile times per benchmark (the pipeline of Fig. 2);
//! - Selinger vs V-chain multi-control decomposition (§6.5's design
//!   choice, visible in Grover's costs);
//! - peephole on/off impact on gate counts and compile time;
//! - inlining on/off (Table 1's configurations) compile time.

use asdf_baselines::Benchmark;
use asdf_bench::{asdf_circuit, qwerty_program};
use asdf_core::{CompileOptions, Compiler};
use asdf_logic::{synth, Permutation};
use asdf_qcircuit::decompose::{decompose, DecomposeStyle};
use asdf_qcircuit::Circuit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn compile_with(benchmark: &Benchmark, options: &CompileOptions) {
    let (src, kernel, captures, dims) = qwerty_program(benchmark);
    let mut options = options.clone();
    options.dims.extend(dims);
    Compiler::compile(&src, kernel, &captures, &options).unwrap();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for n in [8usize, 16] {
        for (name, benchmark) in Benchmark::paper_suite(n) {
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &benchmark,
                |b, benchmark| {
                    b.iter(|| compile_with(benchmark, &CompileOptions::default()));
                },
            );
        }
    }
    group.finish();
}

fn bench_inlining(c: &mut Criterion) {
    let mut group = c.benchmark_group("inlining");
    group.sample_size(10);
    let benchmark = Benchmark::Bv { secret: (0..16).map(|i| i % 2 == 0).collect() };
    group.bench_function("opt", |b| {
        b.iter(|| compile_with(&benchmark, &CompileOptions::default()));
    });
    group.bench_function("no_opt", |b| {
        b.iter(|| compile_with(&benchmark, &CompileOptions::no_opt()));
    });
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    group.sample_size(20);
    for k in [8usize, 16, 32] {
        let mut circuit = Circuit::new(k + 1);
        let controls: Vec<usize> = (0..k).collect();
        circuit.gate(asdf_ir::GateKind::X, &controls, &[k]);
        group.bench_with_input(BenchmarkId::new("selinger", k), &circuit, |b, circuit| {
            b.iter(|| decompose(circuit, DecomposeStyle::Selinger));
        });
        group.bench_with_input(BenchmarkId::new("vchain", k), &circuit, |b, circuit| {
            b.iter(|| decompose(circuit, DecomposeStyle::VChain));
        });
    }
    group.finish();
}

fn bench_peephole(c: &mut Criterion) {
    let mut group = c.benchmark_group("peephole");
    group.sample_size(10);
    let benchmark = Benchmark::Grover { n: 8, iterations: 4 };
    group.bench_function("on", |b| {
        b.iter(|| compile_with(&benchmark, &CompileOptions::default()));
    });
    group.bench_function("off", |b| {
        let mut options = CompileOptions::default();
        options.peephole = false;
        b.iter(|| compile_with(&benchmark, &options));
    });
    // Report the gate-count impact once (stdout, not a timing).
    let with = asdf_circuit(&benchmark);
    let (src, kernel, captures, dims) = qwerty_program(&benchmark);
    let mut options = CompileOptions::default();
    options.peephole = false;
    options.dims = dims;
    let without = Compiler::compile(&src, kernel, &captures, &options)
        .unwrap()
        .circuit
        .unwrap();
    println!(
        "peephole gate counts: on = {}, off = {}",
        with.gate_count(),
        without.gate_count()
    );
    group.finish();
}

fn bench_reversible_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("reversible_synthesis");
    group.sample_size(20);
    for bits in [4usize, 6, 8] {
        let table: Vec<usize> = (0..(1usize << bits)).rev().collect();
        let perm = Permutation::from_table(table).unwrap();
        group.bench_with_input(BenchmarkId::new("bidirectional", bits), &perm, |b, perm| {
            b.iter(|| synth::synthesize(perm));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_inlining,
    bench_decompose,
    bench_peephole,
    bench_reversible_synthesis
);
criterion_main!(benches);
