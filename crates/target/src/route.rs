//! Basis translation and SWAP-insertion routing.
//!
//! Routing happens in two stages. First the circuit is *translated* into
//! the native set — `asdf_qcircuit::decompose` (Selinger style) lowers
//! multi-controlled gates to {1q, CX, CZ, SWAP}, and a local pass here
//! finishes the job (CZ becomes H·CX·H, SWAP becomes three CX). Then the
//! router walks the native circuit keeping a logical→physical map: 1q
//! gates, measurements, and resets are emitted wherever their logical
//! qubit currently lives, and each CX whose endpoints are not coupled
//! triggers greedy SWAP insertion — always a swap that strictly shrinks
//! the endpoints' distance (guaranteeing termination on a connected
//! graph), tie-broken by a geometrically decayed lookahead score over the
//! next few pending two-qubit gates, in the style of SABRE/quilc.

use crate::gateset::{GateCosts, NativeGateSet};
use crate::layout::initial_layout;
use crate::schedule::asap;
use crate::topology::CouplingGraph;
use asdf_ir::GateKind;
use asdf_qcircuit::decompose::decompose;
use asdf_qcircuit::{Circuit, CircuitOp, DecomposeStyle};

/// How many pending two-qubit gates the SWAP heuristic looks ahead over.
const LOOKAHEAD: usize = 5;
/// Per-step geometric decay of lookahead weight.
const DECAY: f64 = 0.5;

/// Where logical qubits live before and after routing, plus cost metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingInfo {
    /// The target this was routed for.
    pub target: String,
    /// `initial_layout[logical] = physical` wire holding that qubit at
    /// circuit start (covers translation ancillas too).
    pub initial_layout: Vec<usize>,
    /// `final_layout[logical] = physical` wire holding it at circuit end.
    pub final_layout: Vec<usize>,
    /// SWAPs inserted (each costs three CX).
    pub swap_count: usize,
    /// Depth of the translated, still all-to-all circuit.
    pub unrouted_depth: usize,
    /// Depth after routing.
    pub routed_depth: usize,
    /// Two-qubit gates before routing.
    pub unrouted_two_qubit_gates: usize,
    /// Two-qubit gates after routing.
    pub routed_two_qubit_gates: usize,
    /// Cost-weighted ASAP makespan of the routed circuit.
    pub routed_makespan: u64,
}

/// A routed circuit and the bookkeeping that makes it checkable.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed {
    /// The circuit, on `target.num_qubits()` wires, using only native
    /// gates on coupled pairs.
    pub circuit: Circuit,
    /// Layouts and cost metrics.
    pub info: RoutingInfo,
}

/// Lowers `circuit` into the native set: 1q gates plus CX, all-to-all.
/// May append ancilla wires (multi-controlled gates decompose through
/// compute/uncompute chains).
pub fn translate_to_native(circuit: &Circuit) -> Circuit {
    let lowered = decompose(circuit, DecomposeStyle::Selinger);
    let mut out = Circuit::new(lowered.num_qubits);
    for op in &lowered.ops {
        match op {
            CircuitOp::Gate { gate: GateKind::Z, controls, targets } if controls.len() == 1 => {
                // CZ = H_t · CX · H_t.
                out.gate(GateKind::H, &[], &[targets[0]]);
                out.gate(GateKind::X, &[controls[0]], &[targets[0]]);
                out.gate(GateKind::H, &[], &[targets[0]]);
            }
            CircuitOp::Gate { gate: GateKind::Swap, controls, targets } if controls.is_empty() => {
                emit_swap(&mut out, targets[0], targets[1]);
            }
            CircuitOp::Gate { gate, controls, targets } => out.gate(*gate, controls, targets),
            CircuitOp::Measure { qubit, bit } => out.measure(*qubit, *bit),
            CircuitOp::Reset { qubit } => out.reset(*qubit),
        }
    }
    out
}

/// SWAP(a, b) as three CX.
fn emit_swap(out: &mut Circuit, a: usize, b: usize) {
    out.gate(GateKind::X, &[a], &[b]);
    out.gate(GateKind::X, &[b], &[a]);
    out.gate(GateKind::X, &[a], &[b]);
}

/// Routes an already-native `circuit` onto `graph`.
///
/// # Panics
///
/// Panics if the circuit is wider than the graph or contains non-native
/// ops — [`Target::route`](crate::Target::route) establishes both.
pub(crate) fn run(
    circuit: &Circuit,
    graph: &CouplingGraph,
    target_name: &str,
    costs: &GateCosts,
) -> Routed {
    let gates = NativeGateSet;
    debug_assert!(circuit.ops.iter().all(|op| gates.admits(op)), "router input must be native");
    let n_logical = circuit.num_qubits;
    let n_physical = graph.num_qubits();
    assert!(n_logical <= n_physical, "circuit wider than target");

    let mut l2p = initial_layout(circuit, graph);
    let initial_layout_snapshot = l2p.clone();

    // Pending two-qubit gates, as logical pairs, for the lookahead score.
    let pending: Vec<(usize, (usize, usize))> = circuit
        .ops
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match op {
            CircuitOp::Gate { controls, targets, .. } if !controls.is_empty() => {
                Some((i, (controls[0], targets[0])))
            }
            _ => None,
        })
        .collect();
    let mut pending_cursor = 0usize;

    let mut out = Circuit::new(n_physical);
    let mut swap_count = 0usize;

    for (i, op) in circuit.ops.iter().enumerate() {
        while pending_cursor < pending.len() && pending[pending_cursor].0 < i {
            pending_cursor += 1;
        }
        match op {
            CircuitOp::Gate { gate, controls, targets } if controls.is_empty() => {
                out.gate(*gate, &[], &[l2p[targets[0]]]);
            }
            CircuitOp::Gate { controls, targets, .. } => {
                let (c, t) = (controls[0], targets[0]);
                while graph.distance(l2p[c], l2p[t]) > 1 {
                    let (a, b) = best_swap(graph, &l2p, (c, t), &pending[pending_cursor..]);
                    emit_swap(&mut out, a, b);
                    swap_count += 1;
                    apply_swap(&mut l2p, a, b);
                }
                out.gate(GateKind::X, &[l2p[c]], &[l2p[t]]);
            }
            CircuitOp::Measure { qubit, bit } => out.measure(l2p[*qubit], *bit),
            CircuitOp::Reset { qubit } => out.reset(l2p[*qubit]),
        }
    }

    let info = RoutingInfo {
        target: target_name.to_string(),
        initial_layout: initial_layout_snapshot,
        final_layout: l2p,
        swap_count,
        unrouted_depth: circuit.depth(),
        routed_depth: out.depth(),
        unrouted_two_qubit_gates: circuit.two_qubit_gate_count(),
        routed_two_qubit_gates: out.two_qubit_gate_count(),
        routed_makespan: asap(&out, costs).makespan,
    };
    Routed { circuit: out, info }
}

/// Updates the logical→physical map after swapping physical wires `a`,`b`.
fn apply_swap(l2p: &mut [usize], a: usize, b: usize) {
    for p in l2p.iter_mut() {
        if *p == a {
            *p = b;
        } else if *p == b {
            *p = a;
        }
    }
}

/// Picks the physical swap to insert for the blocked pair `(c, t)`.
///
/// Candidates are swaps of either endpoint's wire with a neighbor that
/// *strictly decrease* the endpoints' distance — at least one always
/// exists along a shortest path, so routing terminates. Ties are broken
/// by the decayed lookahead score over `pending` two-qubit gates, then by
/// wire index for determinism.
fn best_swap(
    graph: &CouplingGraph,
    l2p: &[usize],
    (c, t): (usize, usize),
    pending: &[(usize, (usize, usize))],
) -> (usize, usize) {
    let (pc, pt) = (l2p[c], l2p[t]);
    let current = graph.distance(pc, pt);
    let mut best: Option<((usize, usize), f64)> = None;
    for &endpoint in &[pc, pt] {
        let other = if endpoint == pc { pt } else { pc };
        for &nb in graph.neighbors(endpoint) {
            if graph.distance(nb, other) >= current {
                continue;
            }
            let (a, b) = (endpoint.min(nb), endpoint.max(nb));
            let score = lookahead_score(graph, l2p, (a, b), pending);
            let better = match best {
                None => true,
                Some(((ba, bb), bs)) => {
                    score < bs - 1e-12 || ((score - bs).abs() <= 1e-12 && (a, b) < (ba, bb))
                }
            };
            if better {
                best = Some(((a, b), score));
            }
        }
    }
    best.expect("connected graph guarantees a distance-decreasing swap").0
}

/// Sum of decayed post-swap distances for upcoming two-qubit gates; lower
/// is better.
fn lookahead_score(
    graph: &CouplingGraph,
    l2p: &[usize],
    (a, b): (usize, usize),
    pending: &[(usize, (usize, usize))],
) -> f64 {
    let place = |q: usize| {
        let p = l2p[q];
        if p == a {
            b
        } else if p == b {
            a
        } else {
            p
        }
    };
    pending
        .iter()
        .take(LOOKAHEAD)
        .enumerate()
        .map(|(k, &(_, (x, y)))| DECAY.powi(k as i32) * graph.distance(place(x), place(y)) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateset::GateCosts;

    fn cx(c: &mut Circuit, a: usize, b: usize) {
        c.gate(GateKind::X, &[a], &[b]);
    }

    #[test]
    fn translation_leaves_only_native_gates() {
        let mut c = Circuit::new(4);
        c.gate(GateKind::H, &[], &[0]);
        c.gate(GateKind::Z, &[0], &[1]);
        c.gate(GateKind::Swap, &[], &[1, 2]);
        c.gate(GateKind::X, &[0, 1], &[3]); // Toffoli
        let native = translate_to_native(&c);
        let gates = NativeGateSet;
        assert!(native.ops.iter().all(|op| gates.admits(op)), "{native}");
    }

    #[test]
    fn coupled_circuit_routes_without_swaps() {
        let mut c = Circuit::new(3);
        c.gate(GateKind::H, &[], &[0]);
        cx(&mut c, 0, 1);
        cx(&mut c, 1, 2);
        let g = CouplingGraph::linear(3);
        let routed = run(&c, &g, "linear-3", &GateCosts::default());
        assert_eq!(routed.info.swap_count, 0);
        assert_eq!(routed.info.routed_two_qubit_gates, 2);
    }

    #[test]
    fn distant_pair_inserts_swaps_and_tracks_layout() {
        // Heavy 0-1 and 2-3 interactions pin the layout into two coupled
        // pairs; the stray 0-3 CX then has to route across.
        let mut c = Circuit::new(4);
        cx(&mut c, 0, 3);
        cx(&mut c, 0, 1);
        cx(&mut c, 0, 1);
        cx(&mut c, 2, 3);
        cx(&mut c, 2, 3);
        let g = CouplingGraph::linear(4);
        let routed = run(&c, &g, "linear-4", &GateCosts::default());
        // Whatever the layout chose, the result must only use coupled CX.
        for op in &routed.circuit.ops {
            if let CircuitOp::Gate { controls, targets, .. } = op {
                if !controls.is_empty() {
                    assert!(g.coupled(controls[0], targets[0]), "uncoupled CX in {op:?}");
                }
            }
        }
        // Layout vectors are consistent injections.
        let mut seen = routed.info.final_layout.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn swap_updates_mapping() {
        let mut l2p = vec![0, 1, 2];
        apply_swap(&mut l2p, 1, 2);
        assert_eq!(l2p, vec![0, 2, 1]);
        apply_swap(&mut l2p, 0, 3); // 3 unoccupied: only 0 moves
        assert_eq!(l2p, vec![3, 2, 1]);
    }

    #[test]
    fn measurements_follow_their_qubit() {
        // CX(0,2) on linear-3 forces movement; the measurement of logical
        // 2 must land on whatever physical wire holds it afterwards.
        let mut c = Circuit::new(3);
        cx(&mut c, 0, 2);
        c.measure(2, 0);
        let g = CouplingGraph::linear(3);
        let routed = run(&c, &g, "linear-3", &GateCosts::default());
        let measured = routed
            .circuit
            .ops
            .iter()
            .find_map(|op| match op {
                CircuitOp::Measure { qubit, bit } => Some((*qubit, *bit)),
                _ => None,
            })
            .expect("measurement survives routing");
        assert_eq!(measured, (routed.info.final_layout[2], 0));
    }

    #[test]
    fn metrics_report_depth_and_makespan() {
        let mut c = Circuit::new(4);
        cx(&mut c, 0, 1);
        cx(&mut c, 1, 2);
        cx(&mut c, 2, 3);
        let routed = run(&c, &CouplingGraph::linear(4), "linear-4", &GateCosts::default());
        assert_eq!(routed.info.unrouted_depth, 3);
        assert!(routed.info.routed_depth >= routed.info.unrouted_depth - 1);
        assert!(routed.info.routed_makespan >= 9, "three serial CX at cost 3 each");
    }
}
