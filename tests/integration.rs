//! Cross-crate integration tests exercising the facade: source → compiler
//! → codegen → simulation → estimation, plus the paper's worked examples.

use qwerty_asdf::ast::expand::CaptureValue;
use qwerty_asdf::baselines::{build_circuit, optimize, BaselineStyle, Benchmark};
use qwerty_asdf::codegen::count_callable_intrinsics;
use qwerty_asdf::core::{CompileOptions, CompileRequest, Compiler, Session};
use qwerty_asdf::ir::GateKind;
use qwerty_asdf::resource::{estimate, SurfaceCodeParams};
use qwerty_asdf::sim::{run_dynamic, sample, ArgValue, Complex};

const BV_SRC: &str = r"
    classical f[N](secret: bit[N], x: bit[N]) -> bit {
        (secret & x).xor_reduce()
    }
    qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
        'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
    }
";

fn bv_captures(secret: &str) -> Vec<CaptureValue> {
    vec![CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(secret)],
    }]
}

#[test]
fn fig1_program_full_pipeline() {
    let session = Session::new(BV_SRC).unwrap();
    let request = CompileRequest::kernel("kernel").with_captures(&bv_captures("10110"));
    let compiled = session.compile(&request).unwrap();
    let circuit = compiled.circuit.clone().expect("inlines");

    // OpenQASM 3 output through the backend registry.
    let qasm = session.emit(&compiled, "qasm").unwrap();
    assert!(qasm.contains("OPENQASM 3.0"));
    assert!(qasm.matches("measure").count() >= 5);

    // Base-profile QIR.
    let qir = session.emit(&compiled, "qir-base").unwrap();
    assert!(qir.contains("base_profile"));
    assert_eq!(count_callable_intrinsics(&qir), (0, 0));

    // The sim backend agrees with direct sampling: the secret is the only
    // outcome (ancilla resets force the seeded-sampling path, so the text
    // is counts, not probabilities — still deterministic).
    let sim_text = session.emit(&compiled, "sim").unwrap();
    let outcomes: Vec<&str> = sim_text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(outcomes, ["10110 4096"], "{sim_text}");
    let counts = sample(&circuit, 20, 3);
    assert_eq!(counts["10110"], 20);

    // Resource estimation produces sane magnitudes.
    let est = estimate(&circuit, &SurfaceCodeParams::default());
    assert!(est.physical_qubits > 1000);
    assert!(est.runtime_us > 0.0);

    // The pipeline recorded per-pass statistics for the whole declared
    // pass sequence (names in order, nonzero work overall).
    assert!(!compiled.stats.is_empty(), "pass statistics must be collected");
    let ran: Vec<String> = compiled.stats.iter().map(|p| p.name.clone()).collect();
    assert_eq!(ran, CompileOptions::default().pipeline().pass_names());
    assert!(
        compiled.stats.iter().map(|p| p.changes).sum::<usize>() > 0,
        "the BV pipeline does real work"
    );
}

#[test]
fn teleportation_through_dynamic_interpreter() {
    // Fig. C13 (with the mathematically consistent correction pairing for
    // this bit ordering).
    let source = r"
        qpu teleport(secret: qubit) -> qubit {
            let alice, bob = 'p0' | '1' & std.flip;
            let m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure;
            bob | (pm.flip if m_pm else id) | (std.flip if m_std else id)
        }
    ";
    let compiled = Compiler::compile(source, "teleport", &[], &CompileOptions::default()).unwrap();
    assert!(compiled.circuit.is_none(), "conditionals prevent a static circuit");

    let theta: f64 = 0.7;
    let a0 = Complex::new(theta.cos(), 0.0);
    let a1 = Complex::new(theta.sin(), 0.0);
    for seed in 0..24 {
        let run =
            run_dynamic(&compiled.module, "teleport", &[ArgValue::Qubit(a0, a1)], seed).unwrap();
        let out = run.returned_qubits[0];
        let mut state = run.state;
        state.apply(GateKind::Ry(-2.0 * theta), &[], &[out]);
        assert!(state.prob_one(out) < 1e-9, "seed {seed}");
    }
}

#[test]
fn asdf_and_baselines_agree_on_bv_outcome() {
    // All four compilers implement the same algorithm: every one recovers
    // the same secret.
    let secret = "110100";
    let compiled =
        Compiler::compile(BV_SRC, "kernel", &bv_captures(secret), &CompileOptions::default())
            .unwrap();
    let asdf = compiled.circuit.unwrap();
    let counts = sample(&asdf, 8, 9);
    assert!(counts.contains_key(secret));

    let bench = Benchmark::Bv { secret: secret.chars().map(|c| c == '1').collect() };
    for style in [BaselineStyle::Qiskit, BaselineStyle::QSharp, BaselineStyle::Quipper] {
        let circuit = optimize(&build_circuit(&bench, style));
        let counts = sample(&circuit, 8, 9);
        assert!(counts.contains_key(secret), "style {style:?}");
    }
}

#[test]
fn no_opt_qir_matches_table1_contract() {
    let session = Session::new(BV_SRC).unwrap();
    let request = CompileRequest::kernel("kernel")
        .with_captures(&bv_captures("1010"))
        .with_options(CompileOptions::no_opt());
    let compiled = session.compile(&request).unwrap();
    let qir = session.emit(&compiled, "qir-unrestricted").unwrap();
    let (creates, invokes) = count_callable_intrinsics(&qir);
    // The paper's BV row for Asdf (No Opt) is 3 / 3.
    assert_eq!((creates, invokes), (3, 3));
}

#[test]
fn session_shares_frontend_across_the_options_matrix() {
    // The difftest scenario: one source, every configuration. The first
    // request does the frontend work; the rest reuse it.
    let session = Session::new(BV_SRC).unwrap();
    let base = CompileRequest::kernel("kernel").with_captures(&bv_captures("1011"));
    let matrix = CompileOptions::matrix();
    let configs = matrix.len() as u64;
    for (_, options) in matrix {
        session.compile(&base.clone().with_options(options)).unwrap();
    }
    let stats = session.cache_stats();
    assert_eq!(stats.frontend_misses, 1);
    assert_eq!(stats.frontend_hits, configs - 1);
    assert_eq!(stats.artifact_misses, configs, "every configuration is a distinct artifact");
    assert_eq!(stats.artifact_hits, 0);
}

#[test]
fn adjoint_and_predication_compose() {
    // ~({'11'} & (std >> pm)) round-trips through AST canonicalization,
    // predication, adjoint generation, inlining, and synthesis.
    let source = r"
        qpu k(qs: qubit[3]) -> bit[3] {
            qs | {'11'} & (std >> pm) | ~({'11'} & (std >> pm)) | std[3].measure
        }
    ";
    let compiled = Compiler::compile(source, "k", &[], &CompileOptions::default()).unwrap();
    let circuit = compiled.circuit.unwrap();
    // Identity circuit: measuring |000> stays |000>.
    let counts = sample(&circuit, 16, 5);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("000"));
}

#[test]
fn fig3_translation_compiles_and_is_unitary() {
    // The Fig. 3 worked example as a runnable translation.
    let source = r"
        qpu k(qs: qubit[6]) -> bit[6] {
            qs | {'p'} + fourier[3] + {'1'@45} + pm >> {-'p'} + std[2] + ij + {-'11','10'}
               | ~({'p'} + fourier[3] + {'1'@45} + pm >> {-'p'} + std[2] + ij + {-'11','10'})
               | std[6].measure
        }
    ";
    let compiled = Compiler::compile(source, "k", &[], &CompileOptions::default()).unwrap();
    let circuit = compiled.circuit.unwrap();
    // Translation then its adjoint is the identity on |000000>.
    let counts = sample(&circuit, 8, 11);
    assert!(counts.contains_key("000000"), "{counts:?}");
}

#[test]
fn grover_baseline_shape_holds_end_to_end() {
    let bench = Benchmark::Grover { n: 6, iterations: 4 };
    let params = SurfaceCodeParams::default();
    let t = |style| estimate(&optimize(&build_circuit(&bench, style)), &params).t_states;
    assert!(t(BaselineStyle::QSharp) < t(BaselineStyle::Qiskit));
    assert!(t(BaselineStyle::QSharp) < t(BaselineStyle::Quipper));
}

#[test]
fn deutsch_jozsa_constant_vs_balanced() {
    // A constant oracle: f(x) = x0 AND NOT x0 = 0 is rejected by the type
    // checker? No — it folds to constant false, which .sign handles as a
    // global no-op; DJ should then measure all-zeros.
    let src = r"
        classical constant[N](x: bit[N]) -> bit { (x ^ x).xor_reduce() }
        qpu dj[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";
    let captures = vec![CaptureValue::CFunc { name: "constant".into(), captures: vec![] }];
    let compiled =
        Compiler::compile(src, "dj", &captures, &CompileOptions::default().with_dim("N", 4))
            .unwrap();
    let counts = sample(&compiled.circuit.unwrap(), 16, 2);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("0000"), "constant oracle yields all zeros");
}

#[test]
fn ghz_via_predicated_flips() {
    let source = r"
        qpu ghz() -> bit[3] {
            'p' + '00' | ('1' & std.flip) + id | id + ('1' & std.flip) | std[3].measure
        }
    ";
    let compiled = Compiler::compile(source, "ghz", &[], &CompileOptions::default()).unwrap();
    let counts = sample(&compiled.circuit.unwrap(), 400, 21);
    assert!(counts.keys().all(|k| k == "000" || k == "111"), "{counts:?}");
    assert!(counts["000"] > 120 && counts["111"] > 120);
}

#[test]
fn fig_e14_inseparable_fourier_roundtrip() {
    // std + fourier[3] >> fourier[3] + std (Fig. E14): the inseparable
    // Fourier elements force conditional IQFT/QFT with padding; applying
    // the translation then its adjoint is the identity.
    let source = r"
        qpu k(qs: qubit[4]) -> bit[4] {
            qs | std + fourier[3] >> fourier[3] + std
               | ~(std + fourier[3] >> fourier[3] + std)
               | std[4].measure
        }
    ";
    let compiled = Compiler::compile(source, "k", &[], &CompileOptions::default()).unwrap();
    let circuit = compiled.circuit.unwrap();
    let counts = sample(&circuit, 8, 17);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("0000"), "{counts:?}");
}

#[test]
fn fourier_translation_acts_as_qft() {
    // std[2] >> fourier[2] maps |k> to the k-th Fourier vector; measuring
    // in fourier must then read back k deterministically.
    let source = r"
        qpu k() -> bit[2] {
            '10' | std[2] >> fourier[2] | fourier[2].measure
        }
    ";
    let compiled = Compiler::compile(source, "k", &[], &CompileOptions::default()).unwrap();
    let counts = sample(&compiled.circuit.unwrap(), 16, 19);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("10"), "{counts:?}");
}

#[test]
fn qasm_output_is_stable_for_bell_pair() {
    let source = r"
        qpu bell() -> bit[2] {
            'p' + '0' | ('1' & std.flip) | std[2].measure
        }
    ";
    let session = Session::new(source).unwrap();
    let compiled = session.compile(&CompileRequest::kernel("bell")).unwrap();
    let qasm = session.emit(&compiled, "qasm").unwrap();
    // Golden structure: one H, one CX, two measurements.
    assert_eq!(qasm.matches("h q[").count(), 1, "{qasm}");
    assert_eq!(qasm.matches("cx q[").count(), 1, "{qasm}");
    assert_eq!(qasm.matches("measure").count(), 2, "{qasm}");
}

#[test]
fn kernel_composition_via_reference() {
    // A kernel referencing another kernel as a function value exercises
    // func_const + cross-function inlining.
    let source = r"
        qpu flip_all(qs: qubit[2]) -> qubit[2] {
            qs | std[2] >> {'11','10','01','00'}
        }
        qpu main() -> bit[2] {
            '00' | flip_all | std[2].measure
        }
    ";
    let compiled = Compiler::compile(source, "main", &[], &CompileOptions::default()).unwrap();
    let counts = sample(&compiled.circuit.unwrap(), 8, 23);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("11"), "{counts:?}");
}

#[test]
fn vector_phase_interference_is_observable() {
    // {'0'} >> {'0'@180} flips the relative phase of |0>; sandwiched in
    // H gates this turns |0> into |1> (a Z between Hadamards).
    let source = r"
        qpu k() -> bit[1] {
            '0' | std >> pm | {'0'} >> {-'0'} | pm >> std | std.measure
        }
    ";
    let compiled = Compiler::compile(source, "k", &[], &CompileOptions::default()).unwrap();
    let counts = sample(&compiled.circuit.unwrap(), 16, 29);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("1"), "{counts:?}");
}

#[test]
fn ij_basis_roundtrip() {
    let source = r"
        qpu k(q: qubit) -> bit[1] {
            q | std >> ij | ij >> std | std.measure
        }
    ";
    let compiled = Compiler::compile(source, "k", &[], &CompileOptions::default()).unwrap();
    let circuit = compiled.circuit.unwrap();
    let with_prep = circuit.with_basis_input(&[true]);
    let counts = sample(&with_prep, 16, 31);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("1"), "{counts:?}");
}
