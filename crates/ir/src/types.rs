//! IR types across all registered dialects (§5 "Qwerty IR Types",
//! §6 "QCircuit IR Types", plus the MLIR built-ins the paper uses).

use std::fmt;

/// The signature of a function value or symbol.
///
/// Qwerty function types may be *reversible* (`T1 -rev-> T2`, §2.2), which
/// the type checker uses to restrict what reversible functions may call and
/// the compiler uses to decide which functions can be adjointed or
/// predicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncType {
    /// Parameter types.
    pub inputs: Vec<Type>,
    /// Result types.
    pub results: Vec<Type>,
    /// Whether the function is reversible (`rev`).
    pub reversible: bool,
}

impl FuncType {
    /// A new (ir)reversible function type.
    pub fn new(inputs: Vec<Type>, results: Vec<Type>, reversible: bool) -> Self {
        FuncType { inputs, results, reversible }
    }

    /// The canonical reversible `qbundle[n] -rev-> qbundle[n]` signature that
    /// adjointing and predication operate on (§2.2).
    pub fn rev_qbundle(n: usize) -> Self {
        FuncType::new(vec![Type::QBundle(n)], vec![Type::QBundle(n)], true)
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, t) in self.inputs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")?;
        f.write_str(if self.reversible { " -rev-> (" } else { " -> (" })?;
        for (i, t) in self.results.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// A type in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Qwerty dialect: a tuple of N qubits, `qbundle[N]`.
    QBundle(usize),
    /// Qwerty dialect: a tuple of N classical bits, `bitbundle[N]`.
    BitBundle(usize),
    /// A function value type (Qwerty dialect).
    Func(Box<FuncType>),
    /// QCircuit dialect: a single qubit (`%Qubit*` in QIR).
    Qubit,
    /// QCircuit dialect: `array<T>[N]` (`%Array*` in QIR).
    Array(Box<Type>, usize),
    /// QCircuit dialect: a callable value (`%Callable*` in QIR).
    Callable,
    /// MLIR built-in `f64` (phase angles).
    F64,
    /// MLIR built-in `i1` (measurement results, conditions).
    I1,
}

impl Type {
    /// A function type value.
    pub fn func(ty: FuncType) -> Self {
        Type::Func(Box::new(ty))
    }

    /// Whether values of this type are *linear*: they must be used exactly
    /// once. Qwerty's linear qubit typing (§4) is enforced at the IR level
    /// by the verifier for these types. `qbundle[0]` is the unit value
    /// produced by `discard` and is freely droppable.
    pub fn is_linear(&self) -> bool {
        match self {
            Type::QBundle(n) => *n > 0,
            Type::Qubit => true,
            Type::Array(elem, n) => *n > 0 && elem.is_linear(),
            _ => false,
        }
    }

    /// The number of qubits a value of this type carries (0 for classical
    /// types).
    pub fn qubit_count(&self) -> usize {
        match self {
            Type::QBundle(n) => *n,
            Type::Qubit => 1,
            Type::Array(elem, n) => elem.qubit_count() * n,
            _ => 0,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::QBundle(n) => write!(f, "qbundle[{n}]"),
            Type::BitBundle(n) => write!(f, "bitbundle[{n}]"),
            Type::Func(ty) => write!(f, "{ty}"),
            Type::Qubit => f.write_str("qubit"),
            Type::Array(t, n) => write!(f, "array<{t}>[{n}]"),
            Type::Callable => f.write_str("callable"),
            Type::F64 => f.write_str("f64"),
            Type::I1 => f.write_str("i1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearity() {
        assert!(Type::QBundle(3).is_linear());
        assert!(Type::Qubit.is_linear());
        assert!(Type::Array(Box::new(Type::Qubit), 2).is_linear());
        assert!(!Type::BitBundle(3).is_linear());
        assert!(!Type::F64.is_linear());
        assert!(!Type::func(FuncType::rev_qbundle(1)).is_linear());
    }

    #[test]
    fn qubit_counts() {
        assert_eq!(Type::QBundle(4).qubit_count(), 4);
        assert_eq!(Type::Array(Box::new(Type::Qubit), 3).qubit_count(), 3);
        assert_eq!(Type::I1.qubit_count(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Type::QBundle(2).to_string(), "qbundle[2]");
        let ty = FuncType::rev_qbundle(2);
        assert_eq!(ty.to_string(), "(qbundle[2]) -rev-> (qbundle[2])");
    }
}
