//! Equivalence properties for the SIMD/multithreaded kernel paths.
//!
//! The vectorized slice kernels, the scalar reference loops, and every
//! thread count are required to produce **exactly equal** amplitudes (not
//! merely close): the per-element IEEE expressions are identical on every
//! path and pairs partition disjointly across workers, so there is nothing
//! to round differently. These suites pin that contract on random
//! circuits, alongside the fusion prepass (approximate, since fusion
//! reassociates matrix products) and the 2^26 allocation cap.

use asdf_ir::GateKind;
use asdf_qcircuit::Circuit;
use asdf_sim::{
    checked_amplitude_count, measurement_distribution_threads, KernelProgram, Simulator,
    StateVector, MAX_QUBITS,
};
use proptest::prelude::*;
use threadpool::ThreadPool;

/// One random gate: a kind index, an angle, and a shuffled wire list whose
/// head supplies the (distinct) targets and controls.
#[derive(Debug, Clone)]
struct GateRecipe {
    kind: usize,
    theta: f64,
    wires: Vec<usize>,
    num_controls: usize,
}

fn arb_gates(num_qubits: usize, max_gates: usize) -> impl Strategy<Value = Vec<GateRecipe>> {
    let one = (
        0usize..12,
        0.0..std::f64::consts::TAU,
        Just((0..num_qubits).collect::<Vec<usize>>()).prop_shuffle(),
        0usize..3,
    )
        .prop_map(|(kind, theta, wires, num_controls)| GateRecipe {
            kind,
            theta,
            wires,
            num_controls,
        });
    proptest::collection::vec(one, 1..=max_gates)
}

fn circuit_from(num_qubits: usize, recipes: &[GateRecipe]) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    for recipe in recipes {
        let gate = match recipe.kind {
            0 => GateKind::X,
            1 => GateKind::Y,
            2 => GateKind::Z,
            3 => GateKind::H,
            4 => GateKind::S,
            5 => GateKind::Sdg,
            6 => GateKind::T,
            7 => GateKind::Sx,
            8 => GateKind::P(recipe.theta),
            9 => GateKind::Ry(recipe.theta),
            10 => GateKind::Rz(recipe.theta),
            _ => GateKind::Swap,
        };
        let mut wires = recipe.wires.clone();
        wires.retain(|&w| w < num_qubits);
        if wires.len() < gate.num_targets() {
            continue;
        }
        let targets: Vec<usize> = wires[..gate.num_targets()].to_vec();
        let spare = wires.len() - targets.len();
        let controls: Vec<usize> =
            wires[targets.len()..targets.len() + recipe.num_controls.min(spare)].to_vec();
        circuit.gate(gate, &controls, &targets);
    }
    circuit
}

/// Bitwise amplitude equality — the contract for SIMD-vs-scalar and
/// across thread counts (`PartialEq` on `f64`, so ±0.0 compare equal).
fn assert_states_exact(a: &StateVector, b: &StateVector, what: &str) {
    for (k, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert!(x == y, "{what}: amplitude {k} differs: {x} vs {y}");
    }
}

fn assert_states_close(a: &StateVector, b: &StateVector, eps: f64) {
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        assert!(x.approx_eq(*y, eps), "{x} vs {y}");
    }
}

proptest! {
    /// The SIMD slice kernels produce the exact same bits as the scalar
    /// reference loops on random unfused circuits up to 12 qubits.
    #[test]
    fn simd_apply_equals_scalar_apply_exactly(
        num_qubits in 1usize..=12,
        recipes in arb_gates(12, 30),
    ) {
        let circuit = circuit_from(num_qubits, &recipes);
        let program = KernelProgram::compile_unfused(&circuit);
        let mut simd = StateVector::zero(num_qubits);
        program.apply_gates(&mut simd);
        let mut scalar = StateVector::zero(num_qubits);
        program.apply_gates_scalar(&mut scalar);
        assert_states_exact(&simd, &scalar, "simd vs scalar");
    }

    /// The fused program (4x4 quads and all) is also bit-identical between
    /// its pooled and scalar applications.
    #[test]
    fn fused_simd_apply_equals_fused_scalar_apply_exactly(
        num_qubits in 2usize..=10,
        recipes in arb_gates(10, 30),
    ) {
        let circuit = circuit_from(num_qubits, &recipes);
        let program = KernelProgram::compile(&circuit);
        let mut simd = StateVector::zero(num_qubits);
        program.apply_gates(&mut simd);
        let mut scalar = StateVector::zero(num_qubits);
        program.apply_gates_scalar(&mut scalar);
        assert_states_exact(&simd, &scalar, "fused simd vs fused scalar");
    }

    /// Splitting the pair enumeration across 2/4/8 workers changes nothing:
    /// every worker count reproduces the single-thread bits exactly.
    #[test]
    fn threaded_apply_equals_single_thread_exactly(
        num_qubits in 1usize..=12,
        recipes in arb_gates(12, 20),
    ) {
        let circuit = circuit_from(num_qubits, &recipes);
        let program = KernelProgram::compile(&circuit);
        let mut one = StateVector::zero(num_qubits);
        program.apply_gates_pooled(&mut one, &ThreadPool::new(1));
        for workers in [2usize, 4, 8] {
            let mut many = StateVector::zero(num_qubits);
            program.apply_gates_pooled(&mut many, &ThreadPool::new(workers));
            assert_states_exact(&one, &many, &format!("1 vs {workers} workers"));
        }
    }

    /// The fusion prepass preserves semantics up to rounding in the folded
    /// matrix products.
    #[test]
    fn fused_matches_unfused_approximately(recipes in arb_gates(8, 40)) {
        let circuit = circuit_from(8, &recipes);
        let mut fused = StateVector::zero(8);
        KernelProgram::compile(&circuit).apply_state(&mut fused);
        let mut unfused = StateVector::zero(8);
        KernelProgram::compile_unfused(&circuit).apply_state(&mut unfused);
        assert_states_close(&fused, &unfused, 1e-9);
    }

    /// Seeded runs with measurements are deterministic across thread
    /// counts: probability sums are bit-identical for every worker count,
    /// so every RNG draw sees the same threshold and every collapse takes
    /// the same branch.
    #[test]
    fn seeded_measuring_runs_are_thread_count_invariant(
        recipes in arb_gates(8, 15),
        seed in any::<u64>(),
    ) {
        let mut circuit = circuit_from(8, &recipes);
        for q in 0..8 {
            circuit.measure(q, q);
        }
        let reference = Simulator::with_threads(seed, 1).run(&circuit);
        for threads in [2usize, 4, 8] {
            let run = Simulator::with_threads(seed, threads).run(&circuit);
            prop_assert_eq!(&reference.bits, &run.bits, "threads={}", threads);
            assert_states_exact(&reference.state, &run.state, "post-measurement state");
        }
        // And the exact distribution extraction agrees across counts.
        let d1 = measurement_distribution_threads(&circuit, 1);
        let d4 = measurement_distribution_threads(&circuit, 4);
        prop_assert_eq!(d1, d4);
    }
}

#[test]
fn amplitude_cap_is_enforced_before_allocating() {
    assert_eq!(checked_amplitude_count(MAX_QUBITS), 1usize << MAX_QUBITS);
    assert!(std::panic::catch_unwind(|| checked_amplitude_count(MAX_QUBITS + 1)).is_err());
    assert!(std::panic::catch_unwind(|| StateVector::zero(MAX_QUBITS + 1)).is_err());
    // The batched extractor checks the compiled program's width before
    // touching its structure-of-arrays planes.
    let program = KernelProgram::compile(&Circuit::new(MAX_QUBITS + 1));
    assert!(std::panic::catch_unwind(|| asdf_sim::batched_program_columns(&program, &[0])).is_err());
}

#[test]
fn appending_a_qubit_respects_the_cap() {
    let small = StateVector::zero(2).with_appended_zero_qubit();
    assert_eq!(small.num_qubits(), 3);
    assert!((small.probability(0) - 1.0).abs() < 1e-12);
}
