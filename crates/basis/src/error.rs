//! Error types for basis validation and span checking.

use std::error::Error;
use std::fmt;

/// An error produced while validating, parsing, factoring, or span-checking
/// bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BasisError {
    /// Basis syntax could not be parsed.
    Parse(String),
    /// A basis literal violated a well-formedness condition from §2.2
    /// (duplicate eigenbits, mismatched vector dimensions, or mixed
    /// primitive bases).
    MalformedLiteral(String),
    /// The two sides of a basis translation have different total dimension.
    DimensionMismatch {
        /// Total dimension of the left-hand basis.
        left: usize,
        /// Total dimension of the right-hand basis.
        right: usize,
    },
    /// Span equivalence could not be proved: the offending basis-element
    /// pair is reported in the message (Algorithm B1 failure).
    SpanMismatch(String),
    /// A factoring operation (Algorithms B2–B4) was impossible.
    CannotFactor(String),
    /// An operation required materializing exponentially many basis vectors
    /// beyond the supported limit.
    TooLarge(String),
}

impl BasisError {
    pub(crate) fn parse(msg: impl Into<String>) -> Self {
        BasisError::Parse(msg.into())
    }

    pub(crate) fn malformed(msg: impl Into<String>) -> Self {
        BasisError::MalformedLiteral(msg.into())
    }
}

impl fmt::Display for BasisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasisError::Parse(msg) => write!(f, "basis parse error: {msg}"),
            BasisError::MalformedLiteral(msg) => write!(f, "malformed basis literal: {msg}"),
            BasisError::DimensionMismatch { left, right } => write!(
                f,
                "basis dimension mismatch: left spans {left} qubit(s) but right spans {right}"
            ),
            BasisError::SpanMismatch(msg) => write!(f, "bases do not span the same space: {msg}"),
            BasisError::CannotFactor(msg) => write!(f, "cannot factor basis element: {msg}"),
            BasisError::TooLarge(msg) => write!(f, "basis too large to materialize: {msg}"),
        }
    }
}

impl Error for BasisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = BasisError::DimensionMismatch { left: 3, right: 2 };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('2'));
        assert!(msg.starts_with(char::is_lowercase));
    }
}
