//! The persistent on-disk artifact cache layered under the in-memory
//! sharded LRU.
//!
//! Each entry is one file named by the 64-bit artifact hash
//! (`<hash:016x>.asdfart`), holding an [`asdf_artifact`] container whose
//! metadata section stores the *full* canonical cache-key bytes — a disk
//! hit verifies the key byte-for-byte, so a 64-bit filename collision
//! degrades to a miss, never to a wrong artifact.
//!
//! Discipline:
//!
//! - **Atomic writes**: entries are written to a process-unique `.tmp`
//!   file and renamed into place, so a crashed or concurrent writer can
//!   never leave a torn entry under the final name.
//! - **Corruption quarantine**: an entry that fails to decode is renamed
//!   to `<name>.quarantined` (preserving the evidence for `artifact
//!   inspect`) and reported as a miss; it will be rebuilt and rewritten.
//! - **Graceful degradation**: I/O errors never fail a compile — the
//!   disk layer silently reports a miss and the pipeline runs.
//! - **Bounded size**: after each write, if the entry count exceeds the
//!   capacity the oldest entries (by modification time) are evicted.

use asdf_artifact::{Artifact, ArtifactError};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// File extension for live cache entries.
pub const ENTRY_EXTENSION: &str = "asdfart";
/// Suffix appended to entries that failed to decode.
pub const QUARANTINE_SUFFIX: &str = "quarantined";
/// Default bound on live entries in one cache directory.
pub const DEFAULT_DISK_CAPACITY: usize = 1024;

/// The outcome of a disk probe.
pub enum DiskLookup {
    /// The entry decoded and its stored key matched byte-for-byte.
    Hit(Box<Artifact>),
    /// No entry, an unreadable entry, or a key mismatch (hash collision).
    Miss,
    /// The entry existed but was corrupt; it has been quarantined.
    Quarantined(ArtifactError),
}

/// A persistent artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    capacity: usize,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir, capacity: capacity.max(1) })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live-entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.{ENTRY_EXTENSION}"))
    }

    /// Probes the cache for `hash`, verifying the canonical `key` bytes
    /// stored in the entry. Never fails a compile: every I/O problem is
    /// a [`DiskLookup::Miss`].
    pub fn load(&self, hash: u64, key: &[u8]) -> DiskLookup {
        let path = self.entry_path(hash);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => return DiskLookup::Miss,
        };
        match Artifact::decode(&bytes) {
            Ok(artifact) if artifact.key == key => DiskLookup::Hit(Box::new(artifact)),
            // A different key under the same 64-bit hash: a collision,
            // not corruption. Keep the entry; report a miss.
            Ok(_) => DiskLookup::Miss,
            Err(error) => {
                self.quarantine(&path);
                DiskLookup::Quarantined(error)
            }
        }
    }

    /// Moves a corrupt entry aside so the slot can be rebuilt while the
    /// evidence stays inspectable.
    fn quarantine(&self, path: &Path) {
        let mut quarantined = path.as_os_str().to_os_string();
        quarantined.push(".");
        quarantined.push(QUARANTINE_SUFFIX);
        let _ = fs::rename(path, PathBuf::from(quarantined));
    }

    /// Writes `artifact` under `hash` with write-then-rename atomicity,
    /// then enforces the capacity bound. Returns the number of entries
    /// evicted, or `None` when the write failed (the compile proceeds;
    /// the entry is simply not persisted).
    pub fn store(&self, hash: u64, artifact: &Artifact) -> Option<u64> {
        let bytes = artifact.encode();
        let final_path = self.entry_path(hash);
        let tmp_path = self.dir.join(format!("{hash:016x}.tmp.{}", std::process::id()));
        let written =
            fs::write(&tmp_path, &bytes).and_then(|()| fs::rename(&tmp_path, &final_path));
        if written.is_err() {
            let _ = fs::remove_file(&tmp_path);
            return None;
        }
        Some(self.evict_over_capacity())
    }

    /// Paths of the live entries, oldest first.
    fn live_entries(&self) -> Vec<(PathBuf, SystemTime)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut live = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXTENSION) {
                continue;
            }
            let modified =
                entry.metadata().and_then(|m| m.modified()).unwrap_or(SystemTime::UNIX_EPOCH);
            live.push((path, modified));
        }
        live.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        live
    }

    fn evict_over_capacity(&self) -> u64 {
        let live = self.live_entries();
        if live.len() <= self.capacity {
            return 0;
        }
        let mut evicted = 0;
        for (path, _) in &live[..live.len() - self.capacity] {
            if fs::remove_file(path).is_ok() {
                evicted += 1;
            }
        }
        evicted
    }

    /// Live entry count and total size in bytes of every file in the
    /// cache directory (entries, quarantined files, stray temp files) —
    /// the `stats` op reports both.
    pub fn usage(&self) -> (u64, u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        let mut count = 0;
        let mut bytes = 0;
        for entry in entries.flatten() {
            let Ok(metadata) = entry.metadata() else { continue };
            if !metadata.is_file() {
                continue;
            }
            bytes += metadata.len();
            if entry.path().extension().and_then(|e| e.to_str()) == Some(ENTRY_EXTENSION) {
                count += 1;
            }
        }
        (count, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::Module;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asdf-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn toy_artifact(key: Vec<u8>) -> Artifact {
        Artifact {
            entry: "k".into(),
            module: Module::default(),
            circuit: None,
            routing: None,
            stats: Default::default(),
            lints: vec![],
            key,
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = DiskCache::open(scratch_dir("roundtrip"), 8).unwrap();
        let artifact = toy_artifact(vec![1, 2, 3]);
        assert_eq!(cache.store(42, &artifact), Some(0));
        match cache.load(42, &[1, 2, 3]) {
            DiskLookup::Hit(back) => assert_eq!(back.entry, "k"),
            _ => panic!("expected a hit"),
        }
        // Same hash, different key: collision-safe miss.
        assert!(matches!(cache.load(42, &[9, 9]), DiskLookup::Miss));
        // Unknown hash: plain miss.
        assert!(matches!(cache.load(7, &[1, 2, 3]), DiskLookup::Miss));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_quarantined() {
        let cache = DiskCache::open(scratch_dir("quarantine"), 8).unwrap();
        let artifact = toy_artifact(vec![7]);
        cache.store(5, &artifact).unwrap();
        // Flip a byte in the stored entry.
        let path = cache.entry_path(5);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        match cache.load(5, &[7]) {
            DiskLookup::Quarantined(err) => assert_eq!(err.code(), "E0106"),
            _ => panic!("expected quarantine"),
        }
        assert!(!path.exists(), "corrupt entry must be moved aside");
        let quarantined: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.path().to_string_lossy().ends_with(QUARANTINE_SUFFIX))
            .collect();
        assert_eq!(quarantined.len(), 1);
        // The slot reads as a miss now and can be rebuilt.
        assert!(matches!(cache.load(5, &[7]), DiskLookup::Miss));
        cache.store(5, &artifact).unwrap();
        assert!(matches!(cache.load(5, &[7]), DiskLookup::Hit(_)));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let cache = DiskCache::open(scratch_dir("evict"), 2).unwrap();
        let artifact = toy_artifact(vec![]);
        let mut evicted_total = 0;
        for hash in 0..4u64 {
            evicted_total += cache.store(hash, &artifact).unwrap();
        }
        assert_eq!(evicted_total, 2);
        let (count, bytes) = cache.usage();
        assert_eq!(count, 2);
        assert!(bytes > 0);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
