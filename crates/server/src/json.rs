//! A minimal JSON value model, parser, and writer.
//!
//! The build environment has no crate registry, so the wire format is
//! implemented in-tree: exactly the subset of JSON the compile-server
//! protocol needs (RFC 8259 syntax, objects kept in insertion order,
//! numbers as `f64` with lossless integer round-tripping up to 2^53).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered so responses render deterministically.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An integer number (exact for |n| ≤ 2^53).
    pub fn int(n: i64) -> Value {
        Value::Number(n as f64)
    }

    /// A string value.
    pub fn str(s: &str) -> Value {
        Value::String(s.to_string())
    }

    /// Looks up `key` in an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an integer, if this is a number with no fractional
    /// part in the exactly-representable range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing input at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the byte sequence is valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of `\uXXXX` (the leading `\u` already consumed up
    /// to the `u`), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, String> {
        self.pos += 1; // the 'u'
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| "bad surrogate pair".to_string());
                }
            }
            return Err("unpaired surrogate".to_string());
        }
        char::from_u32(high).ok_or_else(|| "bad \\u escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_variant() {
        let text = r#"{"op":"compile","n":3,"neg":-1.5,"ok":true,"none":null,"xs":[1,"two",[]],"nested":{"a":""}}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.to_string(), text);
        assert_eq!(value.get("op").and_then(Value::as_str), Some("compile"));
        assert_eq!(value.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(value.get("neg"), Some(&Value::Number(-1.5)));
        assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(value.get("none"), Some(&Value::Null));
        assert_eq!(value.get("xs").and_then(Value::as_array).map(<[Value]>::len), Some(3));
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::String("line\nquote\"back\\slash\ttab\u{1}é💡".to_string());
        let written = original.to_string();
        assert_eq!(parse(&written).unwrap(), original);
        // Escaped input parses to the unescaped payload.
        let parsed = parse(r#""aA\né💡""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aA\né💡"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "\"unterminated", "{\"a\":}", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn integers_render_without_a_decimal_point() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::Number(0.5).to_string(), "0.5");
        assert_eq!(parse("9007199254740992").unwrap().as_i64(), Some(9007199254740992));
    }

    #[test]
    fn whitespace_is_insignificant() {
        let value = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(value.to_string(), r#"{"a":[1,2],"b":null}"#);
    }
}
