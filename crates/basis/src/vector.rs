//! Basis vectors and vector phases.

use crate::{BitString, PrimitiveBasis};
use std::fmt;

/// A complex unit scalar phase factor attached to a basis vector
/// (written `bv@theta` or `-bv` in Qwerty, §2.2).
///
/// Basis *structure* algorithms (normalization, factoring, span checking)
/// only care whether a phase is present; circuit synthesis needs its value.
/// A phase is either a compile-time constant angle or a reference to a
/// classical SSA operand of the IR op carrying the basis (the paper's
/// `phases(...)` operand list, Fig. 4), resolved during lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// A constant angle in radians (after AST-level float constant folding,
    /// §4.2, all phases written by programs become constants).
    Const(f64),
    /// The `k`-th floating-point operand of the op carrying this basis.
    Operand(u32),
}

impl Phase {
    /// The phase π, i.e. the `-bv` shorthand.
    pub const PI: Phase = Phase::Const(std::f64::consts::PI);

    /// Returns the constant angle, if this phase is a constant.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            Phase::Const(theta) => Some(*theta),
            Phase::Operand(_) => None,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Const(theta) => write!(f, "@{:.6}", theta),
            Phase::Operand(k) => write!(f, "@%{}", k),
        }
    }
}

/// A basis vector inside a basis literal: a sequence of eigenstates of one
/// primitive basis, plus an optional phase.
///
/// The vector's *eigenbits* have one bit per position, set iff that position
/// is a minus eigenstate (§2.2). The vector `'10'` has eigenbits `10`; the
/// vector `'pm'` has eigenbits `01`.
///
/// The primitive basis lives on the enclosing [`BasisLiteral`], since a
/// well-typed literal requires all positions of all vectors to share one
/// primitive basis.
///
/// [`BasisLiteral`]: crate::BasisLiteral
#[derive(Debug, Clone, PartialEq)]
pub struct BasisVector {
    /// Eigenbits of the vector, leftmost qubit first.
    pub eigenbits: BitString,
    /// Optional phase factor.
    pub phase: Option<Phase>,
}

impl BasisVector {
    /// A phase-free vector with the given eigenbits.
    pub fn new(eigenbits: BitString) -> Self {
        BasisVector { eigenbits, phase: None }
    }

    /// A vector with an attached phase.
    pub fn with_phase(eigenbits: BitString, phase: Phase) -> Self {
        BasisVector { eigenbits, phase: Some(phase) }
    }

    /// The number of qubits this vector spans.
    pub fn dim(&self) -> usize {
        self.eigenbits.len()
    }

    /// This vector with any phase removed (used by normalization, §4.1).
    pub fn without_phase(&self) -> BasisVector {
        BasisVector::new(self.eigenbits.clone())
    }

    /// Renders the vector with the eigenstate characters of `prim`.
    ///
    /// # Panics
    ///
    /// Panics if `prim` is [`PrimitiveBasis::Fourier`], which has no literal
    /// character syntax.
    pub fn display_in(&self, prim: PrimitiveBasis) -> String {
        let (plus, minus) = prim.chars().expect("fourier basis vectors have no literal syntax");
        let mut s = String::with_capacity(self.dim() + 4);
        s.push('\'');
        for bit in self.eigenbits.iter() {
            s.push(if bit { minus } else { plus });
        }
        s.push('\'');
        if let Some(phase) = &self.phase {
            s.push_str(&phase.to_string());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_primitive_chars() {
        let v = BasisVector::new("01".parse().unwrap());
        assert_eq!(v.display_in(PrimitiveBasis::Std), "'01'");
        assert_eq!(v.display_in(PrimitiveBasis::Pm), "'pm'");
        assert_eq!(v.display_in(PrimitiveBasis::Ij), "'ij'");
    }

    #[test]
    fn phase_stripping() {
        let v = BasisVector::with_phase("1".parse().unwrap(), Phase::PI);
        assert!(v.phase.is_some());
        assert!(v.without_phase().phase.is_none());
        assert_eq!(v.without_phase().eigenbits, v.eigenbits);
    }

    #[test]
    fn const_phase_accessor() {
        assert_eq!(Phase::Const(1.5).as_const(), Some(1.5));
        assert_eq!(Phase::Operand(3).as_const(), None);
    }
}
