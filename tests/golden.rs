//! Golden snapshot tests: the OpenQASM 3 and QIR text emitted for the five
//! `examples/` programs is checked in under `tests/golden/`, so codegen
//! churn shows up as a reviewed diff instead of a silent change.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden
//! ```

use qwerty_asdf::ast::expand::CaptureValue;
use qwerty_asdf::core::{CompileOptions, CompileRequest, Session};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `content` against the checked-in snapshot (or rewrites it when
/// `GOLDEN_REGEN` is set).
fn check_golden(name: &str, content: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, content).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden file {}; run GOLDEN_REGEN=1 cargo test --test golden", name)
    });
    if expected != content {
        let mut diff = String::new();
        for (line, (want, got)) in expected.lines().zip(content.lines()).enumerate() {
            if want != got {
                let _ = writeln!(diff, "line {}:\n  expected: {want}\n  actual  : {got}", line + 1);
                break;
            }
        }
        if expected.lines().count() != content.lines().count() {
            let _ = writeln!(
                diff,
                "line counts differ: expected {}, actual {}",
                expected.lines().count(),
                content.lines().count()
            );
        }
        panic!(
            "golden mismatch for {name} — codegen output changed.\n{diff}\
             If intentional, regenerate with GOLDEN_REGEN=1 cargo test --test golden"
        );
    }
}

fn cfunc_capture(name: &str, bits: Option<&str>) -> Vec<CaptureValue> {
    vec![CaptureValue::CFunc {
        name: name.into(),
        captures: bits.map(CaptureValue::bits_from_str).into_iter().collect(),
    }]
}

/// Compiles a kernel through a [`Session`] and snapshots its QASM and
/// base-profile QIR via the backend registry.
fn snapshot_circuit_program(
    label: &str,
    source: &str,
    kernel: &str,
    captures: &[CaptureValue],
    options: &CompileOptions,
) {
    let session = Session::new(source).unwrap();
    let request =
        CompileRequest::kernel(kernel).with_captures(captures).with_options(options.clone());
    let compiled = session.compile(&request).unwrap();
    assert!(compiled.circuit.is_some(), "{label} must inline");
    check_golden(&format!("{label}.qasm"), &session.emit(&compiled, "qasm").unwrap());
    check_golden(&format!("{label}.base.ll"), &session.emit(&compiled, "qir-base").unwrap());
}

#[test]
fn golden_quickstart_bv() {
    // examples/quickstart.rs with secret 1101.
    let source = r"
        classical f[N](secret: bit[N], x: bit[N]) -> bit {
            (secret & x).xor_reduce()
        }

        qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";
    snapshot_circuit_program(
        "quickstart",
        source,
        "kernel",
        &cfunc_capture("f", Some("1101")),
        &CompileOptions::default(),
    );
}

#[test]
fn golden_grover() {
    // examples/grover.rs at n = 3, one iteration.
    let source = r"
        classical oracle[N](x: bit[N]) -> bit { x.and_reduce() }

        qpu grover[N, I](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | (f.sign | {'p'[N]} >> {-'p'[N]}) ** I | std[N].measure
        }
    ";
    let options = CompileOptions::default().with_dim("N", 3).with_dim("I", 1);
    snapshot_circuit_program("grover", source, "grover", &cfunc_capture("oracle", None), &options);
}

#[test]
fn golden_simon() {
    // examples/simon.rs with secret 1100.
    let source = r"
        classical f[N](s: bit[N], x: bit[N]) -> bit[N] {
            x ^ (x[0].repeat(N) & s)
        }

        qpu simon[N](f: cfunc[N, N]) -> bit[2*N] {
            'p'[N] + '0'[N] | f.xor | (pm[N] >> std[N]) + id[N] | std[2*N].measure
        }
    ";
    snapshot_circuit_program(
        "simon",
        source,
        "simon",
        &cfunc_capture("f", Some("1100")),
        &CompileOptions::default(),
    );
}

#[test]
fn golden_period_finding() {
    // examples/period_finding.rs at n = 3, one kept low bit (mask 001).
    let source = r"
        classical f[N](mask: bit[N], x: bit[N]) -> bit[N] { x & mask }

        qpu period[N](f: cfunc[N, N]) -> bit[2*N] {
            'p'[N] + '0'[N] | f.xor | fourier[N].measure + std[N].measure
        }
    ";
    snapshot_circuit_program(
        "period_finding",
        source,
        "period",
        &cfunc_capture("f", Some("001")),
        &CompileOptions::default(),
    );
}

#[test]
fn golden_teleport() {
    // examples/teleport.rs: measurement-dependent corrections prevent a
    // static circuit, so the snapshot is the unrestricted-profile QIR.
    let source = r"
        qpu teleport(secret: qubit) -> qubit {
            let alice, bob = 'p0' | '1' & std.flip;
            let m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure;
            bob | (pm.flip if m_pm else id) | (std.flip if m_std else id)
        }
    ";
    let session = Session::new(source).unwrap();
    let compiled = session.compile(&CompileRequest::kernel("teleport")).unwrap();
    assert!(compiled.circuit.is_none(), "teleport must not inline to a static circuit");
    check_golden("teleport.ll", &session.emit(&compiled, "qir-unrestricted").unwrap());
}

#[test]
fn golden_diagnostic_type_error() {
    // A type error deep in a multi-line program must render with its
    // error code, line:column, and a caret-labeled source snippet.
    let source = "\
qpu kernel(q: qubit[2]) -> bit[2] {
    let bits = q | std[2].measure;
    bits | std[2].measure
}
";
    let session = Session::new(source).unwrap();
    let err = session.compile(&CompileRequest::kernel("kernel")).unwrap_err();
    let rendered = session.render_error(&err);
    assert!(rendered.contains("error[E0004]"), "{rendered}");
    assert!(rendered.contains("line 3"), "{rendered}");
    check_golden("diagnostic_type_error.txt", &rendered);
}
