//! The ASDF compiler core: the paper's primary contribution.
//!
//! This crate contains every Qwerty-specific compilation phase between the
//! typed AST and QCircuit-dialect IR:
//!
//! - [`lower`]: typed AST → Qwerty IR (§5.1), producing the pipeline of
//!   lambdas and `call_indirect`s the paper describes;
//! - [`classical`]: `@classical` function synthesis via logic networks and
//!   Bennett embeddings, including the `.sign` phase-oracle form (§6.4);
//! - [`canon`]: the §5.4 canonicalization patterns — lambda lifting,
//!   `call_indirect(func_const)` → `call`, folding `func_adj`/`func_pred`
//!   chains into call attributes, and the Appendix C `scf.if` pushdown;
//! - [`adjoint`]: taking the adjoint of basic blocks (§5.2) with
//!   stationary-op handling (Fig. 4);
//! - [`predicate`]: predicating basic blocks (§5.3), including the
//!   qubit-index dataflow analysis and swap-unswap cleanup (Fig. 5);
//! - [`special`]: function specialization analysis and generation (§6.2,
//!   Algorithm D5);
//! - [`synth`]: basis translation circuit synthesis (§6.3): Algorithm E6
//!   standardization, Algorithm E7 alignment, vector phases (Fig. 8), and
//!   transformation-based permutation synthesis (Fig. 9);
//! - [`convert`]: Qwerty IR → QCircuit IR dialect conversion (§6.1),
//!   emitting QIR-callable ops when inlining is disabled;
//! - [`passes`]: the above transformations wrapped as named
//!   [`asdf_ir::pass::Pass`]es;
//! - [`compiler`]: the end-to-end driver (Fig. 2), expressed as a
//!   declarative, instrumented pass pipeline.

pub mod adjoint;
pub mod canon;
pub mod classical;
pub mod compiler;
pub mod convert;
pub mod diskcache;
pub mod error;
pub(crate) mod gates;
pub mod lower;
pub mod passes;
pub mod predicate;
pub mod session;
pub mod special;
pub mod synth;

pub use asdf_ir::pass::{PassStat, PassStatistics};
pub use asdf_qcircuit::decompose::DecomposeStyle;
pub use compiler::{CompileOptions, Compiled, Compiler};
pub use diskcache::{DiskCache, DiskLookup};
pub use error::CoreError;
pub use session::{compiled_to_artifact, CacheStats, CompileRequest, Session, SessionBuilder};
