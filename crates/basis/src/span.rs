//! Span-equivalence checking for basis translations (§4.1 and Appendix B).
//!
//! A basis translation `b_in >> b_out` type checks only when
//! `span(b_in) = span(b_out)`. Even simple bases may be exponentially large
//! (`{'0','1'}[64]` has 2^64 vectors), so [`check_span_equiv`] works by
//! *factoring* (Algorithms B2–B4) rather than expansion, running in
//! `O(k^2 log k)` where `k` is the number of AST nodes in the translation
//! (Theorem B.6). [`check_span_equiv_naive`] is the exponential baseline the
//! paper contrasts with, kept for the complexity ablation benchmark.

use crate::{Basis, BasisElem, BasisError, BitString};
use std::collections::VecDeque;

/// Algorithm B1: proves `span(b_in) = span(b_out)` or reports why not.
///
/// Both bases are normalized first (phases removed, vectors sorted). Two
/// deques of basis elements are consumed front-to-back; at each step the
/// heads must be identical, both fully spanning, or factorable (Algorithm
/// B2) so the comparison can continue on the remainder.
///
/// # Errors
///
/// - [`BasisError::DimensionMismatch`] if the total dimensions differ
///   (which also covers a deque emptying early, line 18).
/// - [`BasisError::SpanMismatch`] if a pair of heads is neither identical
///   nor both fully spanning (line 10).
/// - [`BasisError::CannotFactor`] if factoring fails (line 15).
///
/// # Example
///
/// ```
/// use asdf_basis::{Basis, span::check_span_equiv};
///
/// let lhs: Basis = "{'p'} + fourier[3] + {'1'@45} + pm".parse()?;
/// let rhs: Basis = "{-'p'} + std[2] + ij + {-'11','10'}".parse()?;
/// check_span_equiv(&lhs, &rhs)?; // the worked example of Fig. 3
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_span_equiv(b_in: &Basis, b_out: &Basis) -> Result<(), BasisError> {
    if b_in.dim() != b_out.dim() {
        return Err(BasisError::DimensionMismatch { left: b_in.dim(), right: b_out.dim() });
    }
    // Lines 1-2: normalize every element of both sides.
    let mut ldeque: VecDeque<BasisElem> =
        b_in.elements().iter().map(BasisElem::normalized).collect();
    let mut rdeque: VecDeque<BasisElem> =
        b_out.elements().iter().map(BasisElem::normalized).collect();

    // Line 3: loop while both deques are nonempty.
    while let (Some(l), Some(r)) = (ldeque.pop_front(), rdeque.pop_front()) {
        if l.dim() == r.dim() {
            // Line 7: identical, or both fully span.
            if l.identical(&r) || (l.fully_spans() && r.fully_spans()) {
                continue;
            }
            return Err(BasisError::SpanMismatch(format!(
                "elements {l} and {r} are neither identical nor both fully spanning"
            )));
        }
        // Lines 12-13: factor the smaller element out of the larger.
        let (big, small, bigdeque) =
            if l.dim() > r.dim() { (l, r, &mut ldeque) } else { (r, l, &mut rdeque) };
        factor_element(big, &small, bigdeque)?;
    }

    // Lines 18-19: leftover elements mean a dimension mismatch. The upfront
    // dimension check makes this unreachable, but keep the guard to mirror
    // the published algorithm.
    if !ldeque.is_empty() || !rdeque.is_empty() {
        return Err(BasisError::DimensionMismatch { left: b_in.dim(), right: b_out.dim() });
    }
    Ok(())
}

/// Algorithm B2: factors `small` out of `big`, pushing the remainder to the
/// front of `big`'s deque.
///
/// Case analysis:
/// 1. both fully span → remainder is `prim(big)[delta]` (Lemmas B.1/B.2);
/// 2. `small` fully spans, `big` is a literal → Algorithm B3;
/// 3. both are literals → Algorithm B4;
/// 4. anything else → failure.
fn factor_element(
    big: BasisElem,
    small: &BasisElem,
    bigdeque: &mut VecDeque<BasisElem>,
) -> Result<(), BasisError> {
    let delta = big.dim() - small.dim();
    debug_assert!(delta > 0);

    if big.fully_spans() && small.fully_spans() {
        // Lines 1-5 of Algorithm B2. For fourier this relies on Lemma B.1
        // (the *span* factors even though the basis is inseparable).
        bigdeque.push_front(BasisElem::built_in(big.prim(), delta));
        return Ok(());
    }
    match (&big, small) {
        (BasisElem::Literal(big_lit), small_elem) if small_elem.fully_spans() => {
            // Lines 6-9: Algorithm B3.
            let remainder = big_lit.factor_fully_spanning(small_elem.dim())?;
            bigdeque.push_front(BasisElem::Literal(remainder));
            Ok(())
        }
        (BasisElem::Literal(big_lit), BasisElem::Literal(small_lit)) => {
            // Lines 10-13: Algorithm B4.
            let remainder = big_lit.factor_literal(small_lit)?;
            bigdeque.push_front(BasisElem::Literal(remainder));
            Ok(())
        }
        _ => Err(BasisError::CannotFactor(format!("cannot factor {small} from {big}"))),
    }
}

/// The naive exponential span check the paper's introduction warns against:
/// expand each side into its full set of basis vectors (products of lists of
/// vectors) and compare the sets.
///
/// Restricted to `std`-only bases, where two sets of computational basis
/// vectors span the same subspace iff the sets are equal. Kept as the
/// baseline for the `span_checking` ablation benchmark; do not use in the
/// compiler.
///
/// # Errors
///
/// Returns [`BasisError::TooLarge`] above 2^20 vectors and
/// [`BasisError::MalformedLiteral`] for non-`std` elements.
pub fn check_span_equiv_naive(b_in: &Basis, b_out: &Basis) -> Result<(), BasisError> {
    if b_in.dim() != b_out.dim() {
        return Err(BasisError::DimensionMismatch { left: b_in.dim(), right: b_out.dim() });
    }
    let mut lhs = expand_std(b_in)?;
    let mut rhs = expand_std(b_out)?;
    lhs.sort();
    rhs.sort();
    if lhs == rhs {
        Ok(())
    } else {
        Err(BasisError::SpanMismatch("expanded vector sets differ".to_string()))
    }
}

fn expand_std(basis: &Basis) -> Result<Vec<BitString>, BasisError> {
    const LIMIT: usize = 1 << 20;
    let mut acc: Vec<BitString> = vec![BitString::zeros(0)];
    for elem in basis.elements() {
        let vectors: Vec<BitString> = match elem {
            BasisElem::BuiltIn { prim: crate::PrimitiveBasis::Std, dim } => {
                if *dim > 20 {
                    return Err(BasisError::TooLarge(format!("std[{dim}]")));
                }
                (0..(1u128 << dim)).map(|v| BitString::from_value(v, *dim)).collect()
            }
            BasisElem::Literal(lit) if lit.prim() == crate::PrimitiveBasis::Std => {
                lit.vectors().iter().map(|v| v.eigenbits.clone()).collect()
            }
            other => {
                return Err(BasisError::malformed(format!(
                    "naive span check supports std-only bases, found {other}"
                )))
            }
        };
        if acc.len().saturating_mul(vectors.len()) > LIMIT {
            return Err(BasisError::TooLarge(format!("naive expansion exceeds {LIMIT} vectors")));
        }
        acc = acc.iter().flat_map(|pre| vectors.iter().map(move |v| pre.concat(v))).collect();
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(s: &str) -> Basis {
        s.parse().unwrap()
    }

    #[test]
    fn fig3_example() {
        // The worked example of Fig. 3.
        let lhs = basis("{'p'} + fourier[3] + {'1'@45} + pm");
        let rhs = basis("{-'p'} + std[2] + ij + {-'11','10'}");
        check_span_equiv(&lhs, &rhs).unwrap();
    }

    #[test]
    fn sixty_four_qubit_flip_is_fast() {
        // {'0','1'}[64] >> {'1','0'}[64]: 2^64 vectors, checked in poly time.
        let lhs = basis("{'0','1'}[64]");
        let rhs = basis("{'1','0'}[64]");
        check_span_equiv(&lhs, &rhs).unwrap();
    }

    #[test]
    fn swap_example() {
        let lhs = basis("{'01','10'}");
        let rhs = basis("{'10','01'}");
        check_span_equiv(&lhs, &rhs).unwrap();
    }

    #[test]
    fn builtin_vs_literal_spans() {
        check_span_equiv(&basis("std[2]"), &basis("{'00','01','10','11'}")).unwrap();
        check_span_equiv(&basis("std[2]"), &basis("pm[2]")).unwrap();
        check_span_equiv(&basis("fourier[2]"), &basis("std + ij")).unwrap();
    }

    #[test]
    fn proper_subspace_mismatch() {
        assert!(check_span_equiv(&basis("{'0'}"), &basis("{'1'}")).is_err());
        // Same span on one qubit, but differing literals must be identical.
        check_span_equiv(&basis("{'1'}"), &basis("{'1'}")).unwrap();
        // A subspace literal never matches a fully-spanning basis.
        assert!(check_span_equiv(&basis("std"), &basis("{'1'}")).is_err());
    }

    #[test]
    fn different_prims_same_subspace_shape_mismatch() {
        // span({'p'}) != span({'0'}) even though both are one-dimensional.
        assert!(check_span_equiv(&basis("{'p'}"), &basis("{'0'}")).is_err());
    }

    #[test]
    fn dimension_mismatch() {
        let err = check_span_equiv(&basis("std[2]"), &basis("std[3]")).unwrap_err();
        assert!(matches!(err, BasisError::DimensionMismatch { left: 2, right: 3 }));
    }

    #[test]
    fn factoring_across_misaligned_elements() {
        // {'1'} + std vs {'10','11'}: requires Algorithm B4.
        check_span_equiv(&basis("{'1'} + std"), &basis("{'10','11'}")).unwrap();
        // {'01','10'} + {'0','1'} vs the merged four-vector literal (Fig. 9).
        check_span_equiv(&basis("{'01','10'} + {'0','1'}"), &basis("{'010','011','100','101'}"))
            .unwrap();
    }

    #[test]
    fn fourier_span_factors() {
        // Lemma B.1: span(fourier[3]) = span(fourier[1]) (x) span(fourier[2]).
        check_span_equiv(&basis("fourier[3]"), &basis("fourier + fourier[2]")).unwrap();
        check_span_equiv(&basis("std + fourier[3]"), &basis("fourier[3] + std")).unwrap();
    }

    #[test]
    fn entangled_literal_does_not_factor() {
        // {'00','11'} spans a 2D subspace that is not a tensor product.
        assert!(check_span_equiv(&basis("{'00','11'}"), &basis("{'0'} + {'0','1'}")).is_err());
        // But it equals itself even with reordered vectors and phases.
        check_span_equiv(&basis("{'00','11'}"), &basis("{-'11','00'}")).unwrap();
    }

    #[test]
    fn phases_do_not_affect_span() {
        check_span_equiv(&basis("{'p'[3]}"), &basis("{-'p'[3]}")).unwrap();
        check_span_equiv(&basis("{'1'@45}"), &basis("{'1'}")).unwrap();
    }

    #[test]
    fn naive_agrees_with_fast_on_std() {
        let cases = [
            ("{'0','1'}[4]", "{'1','0'}[4]", true),
            ("{'01','10'}", "{'10','01'}", true),
            ("{'1'} + std", "{'10','11'}", true),
            ("{'00','11'}", "{'0'} + {'0','1'}", false),
            ("std[3]", "{'0','1'}[3]", true),
        ];
        for (l, r, expect) in cases {
            let lb = basis(l);
            let rb = basis(r);
            assert_eq!(check_span_equiv(&lb, &rb).is_ok(), expect, "fast: {l} vs {r}");
            assert_eq!(check_span_equiv_naive(&lb, &rb).is_ok(), expect, "naive: {l} vs {r}");
        }
    }

    #[test]
    fn grover_diffuser_basis_checks() {
        // {'p'[N]} >> {-'p'[N]} for a large N: single-vector literals with a
        // phase difference span the same line.
        check_span_equiv(&basis("{'p'[64]}"), &basis("{-'p'[64]}")).unwrap();
    }

    #[test]
    fn period_finding_shape() {
        check_span_equiv(&basis("fourier[8]"), &basis("std[8]")).unwrap();
        check_span_equiv(&basis("pm[8]"), &basis("std[8]")).unwrap();
    }
}
