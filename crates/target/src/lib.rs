//! The hardware-target backend layer: compiling all-to-all circuits onto
//! devices with restricted qubit connectivity.
//!
//! The ASDF pipeline (§6–§7) stops at all-to-all OpenQASM/QIR; real
//! backends — the first-class compilation problem of quilc and OpenQL —
//! accept only two-qubit gates between *coupled* physical qubits,
//! expressed in a native gate set. This crate closes that gap:
//!
//! - [`CouplingGraph`] ([`topology`]) — which physical qubit pairs support
//!   a native two-qubit gate, with precomputed all-pairs shortest paths;
//! - [`Target`] ([`target`]) — a named device description (`linear-N`,
//!   `ring-N`, `grid-RxC`, or an explicit `edges:0-1,1-2,…` list) with a
//!   [`NativeGateSet`] and per-gate costs;
//! - [`layout`] — interaction-graph-driven initial placement (trivial
//!   identity layout as the fallback);
//! - [`route`] — basis translation into the native set (reusing the
//!   `asdf_qcircuit::decompose` machinery) followed by greedy
//!   distance-decreasing SWAP insertion with a lookahead window over
//!   pending two-qubit gates;
//! - [`schedule`] — an ASAP scheduler computing routed depth and a
//!   cost-weighted makespan.
//!
//! The entry point is [`Target::route`]:
//!
//! ```
//! use asdf_ir::GateKind;
//! use asdf_qcircuit::Circuit;
//! use asdf_target::Target;
//!
//! // A triangle of interactions cannot embed in a path: some CX must
//! // route through a SWAP no matter how the qubits are placed.
//! let mut triangle = Circuit::new(3);
//! triangle.gate(GateKind::H, &[], &[0]);
//! triangle.gate(GateKind::X, &[0], &[1]);
//! triangle.gate(GateKind::X, &[1], &[2]);
//! triangle.gate(GateKind::X, &[0], &[2]);
//! let target = Target::parse("linear-3")?;
//! let routed = target.route(&triangle)?;
//! target.validate(&routed.circuit)?; // only native gates on coupled pairs
//! assert!(routed.info.swap_count >= 1);
//! # Ok::<(), asdf_target::TargetError>(())
//! ```
//!
//! Routing may leave logical qubits on *permuted* physical wires; the
//! [`RoutingInfo`] layouts say where each logical qubit starts
//! (`initial_layout`) and ends (`final_layout`), which is exactly what the
//! permutation-aware equivalence oracle in `asdf-sim` consumes.

pub mod gateset;
pub mod layout;
pub mod route;
pub mod schedule;
pub mod target;
pub mod topology;

pub use gateset::{GateCosts, NativeGateSet};
pub use route::{Routed, RoutingInfo};
pub use schedule::{asap, Schedule};
pub use target::{edit_distance, Target, TargetError, BUILTIN_TARGETS, CAPACITY_MARKER};
pub use topology::CouplingGraph;

/// Whether a rendered compile error is a target *capacity* failure (the
/// circuit needs more qubits than the device has) rather than a
/// miscompilation. Differential harnesses use this to skip routed
/// configurations on oversized cases instead of reporting a divergence.
pub fn is_capacity_error(message: &str) -> bool {
    message.contains(CAPACITY_MARKER)
}
