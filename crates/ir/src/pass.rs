//! The pass manager: declarative, instrumented pipelines over [`Module`]s.
//!
//! MLIR structures its compilers as pipelines of passes over a module; the
//! published ASDF declares its Fig. 2 pipeline the same way. This module
//! rebuilds that infrastructure for the reproduction:
//!
//! - [`Pass`]: a named module transformation reporting how much IR it
//!   changed ([`PassOutcome`]);
//! - [`PassManager`]: runs a declared pipeline in order, recording per-pass
//!   wall-clock timing and change counts into [`PassStatistics`], with an
//!   optional verify-after-each-pass mode (replacing hand-placed
//!   `verify_module` calls between phases);
//! - [`Fixpoint`]: a pass combinator that repeats a sub-pipeline until a
//!   full round reports no changes (the canonicalize+inline loop of §5.4);
//! - [`CanonicalizePass`]: adapts a [`GreedyRewriteDriver`] (and its
//!   per-pattern firing statistics) to the [`Pass`] interface, holding its
//!   [`SymbolTable`] across runs so repeated rounds reconcile it
//!   incrementally instead of rebuilding it;
//! - [`VerifyPass`] and [`pass_fn`]: small building blocks for explicit
//!   verification points and closure-backed passes.

use crate::module::Module;
use crate::rewrite::{GreedyRewriteDriver, SymbolTable};
use crate::verify::verify_module;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// A failure inside a pass (or in post-pass verification), tagged with the
/// pass's name so pipeline errors always say *where* compilation died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the pass that failed.
    pub pass: String,
    /// Human-readable failure description.
    pub message: String,
}

impl PassError {
    /// Builds an error attributed to `pass`.
    pub fn new(pass: impl Into<String>, message: impl fmt::Display) -> Self {
        PassError { pass: pass.into(), message: message.to_string() }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass '{}' failed: {}", self.pass, self.message)
    }
}

impl Error for PassError {}

/// What a pass did to the module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassOutcome {
    /// Number of IR changes: rewrite-pattern firings, calls inlined,
    /// lambdas lifted, functions converted … zero means the pass was a
    /// no-op on this module.
    pub changes: usize,
    /// Optional finer-grained counters (e.g. per-rewrite-pattern firings),
    /// in deterministic order.
    pub detail: Vec<(String, usize)>,
}

impl PassOutcome {
    /// An outcome reporting no changes.
    pub fn unchanged() -> Self {
        PassOutcome::default()
    }

    /// An outcome reporting `changes` changes.
    pub fn changed(changes: usize) -> Self {
        PassOutcome { changes, detail: Vec::new() }
    }

    /// Attaches fine-grained counters.
    #[must_use]
    pub fn with_detail(mut self, detail: Vec<(String, usize)>) -> Self {
        self.detail = detail;
        self
    }
}

/// The result of running one pass.
pub type PassResult = Result<PassOutcome, PassError>;

/// A named transformation of a [`Module`].
pub trait Pass {
    /// A stable, human-readable pass name (used in statistics and errors).
    fn name(&self) -> &str;

    /// Transforms the module, reporting how much changed.
    ///
    /// # Errors
    ///
    /// Returns [`PassError`] when the transformation fails; the module may
    /// be left partially transformed (the driver aborts the pipeline).
    fn run(&mut self, module: &mut Module) -> PassResult;
}

/// Timing and change statistics for one executed pass.
#[derive(Debug, Clone)]
pub struct PassStat {
    /// The pass's name.
    pub name: String,
    /// Wall-clock time spent inside the pass (excluding any
    /// verify-after-pass overhead).
    pub duration: Duration,
    /// Total IR changes the pass reported.
    pub changes: usize,
    /// Fine-grained counters forwarded from [`PassOutcome::detail`].
    pub detail: Vec<(String, usize)>,
}

/// Statistics for a whole pipeline run, in execution order.
#[derive(Debug, Clone, Default)]
pub struct PassStatistics {
    /// Per-pass records, in the order the passes ran.
    pub passes: Vec<PassStat>,
}

impl PassStatistics {
    /// No statistics yet.
    pub fn new() -> Self {
        PassStatistics::default()
    }

    /// Number of executed passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no passes ran.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Iterates over per-pass records in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &PassStat> {
        self.passes.iter()
    }

    /// Total wall-clock time across all passes.
    pub fn total_duration(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }

    /// Total time spent in passes with the given name (a pass may run more
    /// than once in a pipeline).
    pub fn duration_of(&self, name: &str) -> Duration {
        self.passes.iter().filter(|p| p.name == name).map(|p| p.duration).sum()
    }

    /// Total changes reported by passes with the given name.
    pub fn changes_of(&self, name: &str) -> usize {
        self.passes.iter().filter(|p| p.name == name).map(|p| p.changes).sum()
    }

    /// Folds another run's records into this one, summing duration,
    /// changes, and detail counters by pass name (order of first
    /// appearance). Used by sweep harnesses (the differential tester, the
    /// benches) to aggregate statistics across many compilations under the
    /// same pipeline.
    pub fn merge(&mut self, other: &PassStatistics) {
        for stat in &other.passes {
            match self.passes.iter_mut().find(|p| p.name == stat.name) {
                Some(existing) => {
                    existing.duration += stat.duration;
                    existing.changes += stat.changes;
                    for (key, count) in &stat.detail {
                        match existing.detail.iter_mut().find(|(k, _)| k == key) {
                            Some((_, total)) => *total += count,
                            None => existing.detail.push((key.clone(), *count)),
                        }
                    }
                }
                None => self.passes.push(stat.clone()),
            }
        }
    }

    /// Per-pattern rewrite firing counts aggregated across every pass's
    /// detail (entries keyed with [`PATTERN_DETAIL_PREFIX`], prefix
    /// stripped), sorted by name — the per-pattern view sweep summaries
    /// print.
    pub fn pattern_firings(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = Vec::new();
        for stat in &self.passes {
            for (key, count) in &stat.detail {
                let Some(name) = key.strip_prefix(PATTERN_DETAIL_PREFIX) else {
                    continue;
                };
                match out.iter_mut().find(|(n, _)| n == name) {
                    Some((_, existing)) => *existing += count,
                    None => out.push((name.to_string(), *count)),
                }
            }
        }
        out.sort();
        out
    }

    /// Total wall-clock the rewrite engine reported across every pass
    /// (from [`REWRITE_WALL_US_DETAIL_KEY`] detail entries) — survives
    /// [`Fixpoint`] aggregation and [`PassStatistics::merge`].
    pub fn rewrite_wall_clock(&self) -> Duration {
        let micros: usize = self
            .passes
            .iter()
            .flat_map(|p| &p.detail)
            .filter(|(k, _)| k == REWRITE_WALL_US_DETAIL_KEY)
            .map(|(_, us)| *us)
            .sum();
        Duration::from_micros(micros as u64)
    }

    /// A `(name, duration, changes)` table rendered as aligned text, one
    /// row per executed pass — the per-phase breakdown behind the
    /// compiler-phase benches.
    pub fn render_table(&self) -> String {
        let name_width = self
            .passes
            .iter()
            .map(|p| p.name.len())
            .chain(std::iter::once("pass".len()))
            .max()
            .unwrap_or(4);
        let mut out = format!("{:<name_width$}  {:>12}  {:>8}\n", "pass", "time", "changes");
        for stat in &self.passes {
            out.push_str(&format!(
                "{:<name_width$}  {:>12.3?}  {:>8}\n",
                stat.name, stat.duration, stat.changes
            ));
        }
        out.push_str(&format!(
            "{:<name_width$}  {:>12.3?}  {:>8}\n",
            "total",
            self.total_duration(),
            self.passes.iter().map(|p| p.changes).sum::<usize>()
        ));
        out
    }
}

/// Runs a declared pipeline of passes over a module, recording
/// [`PassStatistics`].
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("pipeline", &self.pass_names())
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Enables or disables verifying the module before the pipeline and
    /// after every pass. On failure the error names the offending pass —
    /// this replaces hand-placed `verify_module` calls between phases.
    #[must_use]
    pub fn with_verify_after_each(mut self, on: bool) -> Self {
        self.verify_each = on;
        self
    }

    /// Appends a pass to the pipeline.
    pub fn add_pass(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The declared pipeline, in execution order.
    pub fn pass_names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.name().to_string()).collect()
    }

    /// Runs the pipeline, returning per-pass statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PassError`]; with verify-after-each enabled,
    /// also fails when the input module or any pass's output fails
    /// [`verify_module`], attributing the failure to the offending pass.
    pub fn run(&mut self, module: &mut Module) -> Result<PassStatistics, PassError> {
        let mut stats = PassStatistics::new();
        if self.verify_each {
            verify_module(module).map_err(|e| PassError::new("<input>", e))?;
        }
        for pass in &mut self.passes {
            let start = Instant::now();
            let outcome = pass.run(module)?;
            let duration = start.elapsed();
            stats.passes.push(PassStat {
                name: pass.name().to_string(),
                duration,
                changes: outcome.changes,
                detail: outcome.detail,
            });
            if self.verify_each {
                verify_module(module).map_err(|e| PassError::new(pass.name(), e))?;
            }
        }
        Ok(stats)
    }
}

/// Repeats a sub-pipeline until a full round reports no changes (or the
/// round bound is hit). Reports the summed changes of all rounds, with a
/// per-inner-pass breakdown plus a `rounds` counter in the detail.
pub struct Fixpoint {
    name: String,
    passes: Vec<Box<dyn Pass>>,
    max_rounds: usize,
}

impl Fixpoint {
    /// A fixpoint over `passes` named `name`, bounded at 64 rounds.
    pub fn new(name: impl Into<String>, passes: Vec<Box<dyn Pass>>) -> Self {
        Fixpoint { name: name.into(), passes, max_rounds: 64 }
    }

    /// Overrides the round bound (the fixpoint stops quietly when it is
    /// reached, mirroring the bounded loop it replaces).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds.max(1);
        self
    }
}

impl Pass for Fixpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, module: &mut Module) -> PassResult {
        let mut total = 0usize;
        let mut per_pass: Vec<(String, usize)> =
            self.passes.iter().map(|p| (p.name().to_string(), 0)).collect();
        let mut inner_detail: Vec<(String, usize)> = Vec::new();
        let mut rounds = 0usize;
        for _ in 0..self.max_rounds {
            rounds += 1;
            let mut round_changes = 0usize;
            for (idx, pass) in self.passes.iter_mut().enumerate() {
                let outcome = pass.run(module)?;
                round_changes += outcome.changes;
                per_pass[idx].1 += outcome.changes;
                // Fold inner details (per-pattern firings, DCE counts, …)
                // up through the fixpoint, summing by key.
                for (key, count) in outcome.detail {
                    match inner_detail.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, existing)) => *existing += count,
                        None => inner_detail.push((key, count)),
                    }
                }
            }
            total += round_changes;
            if round_changes == 0 {
                break;
            }
        }
        per_pass.push(("rounds".to_string(), rounds));
        per_pass.extend(inner_detail);
        Ok(PassOutcome::changed(total).with_detail(per_pass))
    }
}

/// Detail-key prefix under which [`CanonicalizePass`] reports per-pattern
/// firing counts (e.g. `pattern:fold-double-adj`), so sweep harnesses can
/// aggregate pattern statistics without knowing pattern names up front.
pub const PATTERN_DETAIL_PREFIX: &str = "pattern:";
/// Detail key for ops removed by the rewrite engine's integrated DCE.
pub const DCE_DETAIL_KEY: &str = "dce-erased";
/// Detail key carrying the rewrite engine's wall-clock in microseconds —
/// recorded in the detail so it survives [`Fixpoint`] aggregation, where
/// per-inner-pass durations are otherwise folded into one [`PassStat`].
pub const REWRITE_WALL_US_DETAIL_KEY: &str = "rewrite-wall-us";

/// Adapts a [`GreedyRewriteDriver`] (worklist pattern engine + integrated
/// DCE) to the [`Pass`] interface, forwarding its per-pattern firing
/// counts (prefixed with [`PATTERN_DETAIL_PREFIX`]), DCE count, and
/// rewrite wall-clock. The pass owns a [`SymbolTable`] that persists
/// across runs and is reconciled incrementally each round instead of
/// being rebuilt from scratch.
pub struct CanonicalizePass {
    name: String,
    driver: GreedyRewriteDriver,
    symbols: SymbolTable,
}

impl CanonicalizePass {
    /// Wraps `driver` under the pass name `name`.
    pub fn new(name: impl Into<String>, driver: GreedyRewriteDriver) -> Self {
        CanonicalizePass { name: name.into(), driver, symbols: SymbolTable::default() }
    }

    /// The wrapped driver (e.g. to inspect [`GreedyRewriteDriver::stats`]).
    pub fn driver(&self) -> &GreedyRewriteDriver {
        &self.driver
    }
}

impl Pass for CanonicalizePass {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, module: &mut Module) -> PassResult {
        let start = Instant::now();
        let fired = self.driver.run_with_symbols(module, &mut self.symbols);
        let elapsed = start.elapsed();
        let mut detail: Vec<(String, usize)> = self
            .driver
            .stats
            .fired
            .iter()
            .map(|(k, v)| (format!("{PATTERN_DETAIL_PREFIX}{k}"), *v))
            .collect();
        detail.sort();
        detail.push((DCE_DETAIL_KEY.to_string(), self.driver.stats.dce_erased));
        detail.push((REWRITE_WALL_US_DETAIL_KEY.to_string(), elapsed.as_micros() as usize));
        Ok(PassOutcome::changed(fired).with_detail(detail))
    }
}

/// An explicit verification point for pipelines that do not verify after
/// every pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyPass;

impl Pass for VerifyPass {
    fn name(&self) -> &str {
        "verify"
    }

    fn run(&mut self, module: &mut Module) -> PassResult {
        verify_module(module).map_err(|e| PassError::new("verify", e))?;
        Ok(PassOutcome::unchanged())
    }
}

/// A pass backed by a closure — the lightest way to lift an existing
/// `fn(&mut Module) -> …` transformation into a pipeline.
pub struct FnPass<F> {
    name: String,
    f: F,
}

/// Builds a [`FnPass`] named `name` around `f`.
pub fn pass_fn<F>(name: impl Into<String>, f: F) -> FnPass<F>
where
    F: FnMut(&mut Module) -> PassResult,
{
    FnPass { name: name.into(), f }
}

impl<F> Pass for FnPass<F>
where
    F: FnMut(&mut Module) -> PassResult,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, module: &mut Module) -> PassResult {
        (self.f)(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncBuilder, Visibility};
    use crate::op::OpKind;
    use crate::types::{FuncType, Type};

    /// A module with one function: `f() -> f64 { return const 1.0 }`.
    fn small_module() -> Module {
        let mut b = FuncBuilder::new(
            "f",
            FuncType::new(vec![], vec![Type::F64], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let c = bb.push(OpKind::ConstF64 { value: 1.0 }, vec![], vec![Type::F64]);
        bb.push(OpKind::Return, vec![c[0]], vec![]);
        let mut module = Module::new();
        module.add_func(b.finish());
        module
    }

    #[test]
    fn runs_passes_in_declared_order_with_change_counts() {
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut pm = PassManager::new();
        for (name, changes) in [("first", 3usize), ("second", 0), ("third", 7)] {
            let order = order.clone();
            pm.add_pass(pass_fn(name, move |_m: &mut Module| {
                order.borrow_mut().push(name);
                Ok(PassOutcome::changed(changes))
            }));
        }
        assert_eq!(pm.pass_names(), ["first", "second", "third"]);

        let mut module = small_module();
        let stats = pm.run(&mut module).unwrap();
        assert_eq!(*order.borrow(), ["first", "second", "third"]);
        let reported: Vec<(String, usize)> =
            stats.iter().map(|p| (p.name.clone(), p.changes)).collect();
        assert_eq!(
            reported,
            [("first".to_string(), 3), ("second".to_string(), 0), ("third".to_string(), 7)]
        );
        assert_eq!(stats.changes_of("third"), 7);
        assert_eq!(stats.len(), 3);
    }

    #[test]
    fn verify_after_each_catches_broken_pass() {
        let mut pm = PassManager::new().with_verify_after_each(true);
        pm.add_pass(pass_fn("benign", |_m: &mut Module| Ok(PassOutcome::unchanged())));
        // Deliberately corrupt the IR: drop the function's terminator.
        pm.add_pass(pass_fn("breaks-ir", |m: &mut Module| {
            let f = m.func_mut("f").expect("present");
            f.body.ops.clear();
            Ok(PassOutcome::changed(1))
        }));
        pm.add_pass(pass_fn("never-reached", |_m: &mut Module| {
            panic!("pipeline must abort before this pass")
        }));

        let mut module = small_module();
        let err = pm.run(&mut module).unwrap_err();
        assert_eq!(err.pass, "breaks-ir");
    }

    #[test]
    fn verify_rejects_invalid_input_module() {
        let mut module = small_module();
        module.func_mut("f").unwrap().body.ops.clear();
        let mut pm = PassManager::new().with_verify_after_each(true);
        pm.add_pass(pass_fn("unreached", |_m: &mut Module| {
            panic!("must not run on invalid input")
        }));
        let err = pm.run(&mut module).unwrap_err();
        assert_eq!(err.pass, "<input>");
    }

    #[test]
    fn without_verify_mode_broken_ir_is_not_checked() {
        let mut pm = PassManager::new();
        pm.add_pass(pass_fn("breaks-ir", |m: &mut Module| {
            m.func_mut("f").expect("present").body.ops.clear();
            Ok(PassOutcome::changed(1))
        }));
        let mut module = small_module();
        assert!(pm.run(&mut module).is_ok());
    }

    #[test]
    fn fixpoint_converges_and_counts_rounds() {
        // A pass that "fires" three times total, then settles.
        let budget = std::rc::Rc::new(std::cell::RefCell::new(3usize));
        let b = budget.clone();
        let inner = pass_fn("decay", move |_m: &mut Module| {
            let mut left = b.borrow_mut();
            if *left > 0 {
                *left -= 1;
                Ok(PassOutcome::changed(1))
            } else {
                Ok(PassOutcome::unchanged())
            }
        });
        let mut fix = Fixpoint::new("decay-loop", vec![Box::new(inner)]);
        let mut module = small_module();
        let outcome = fix.run(&mut module).unwrap();
        assert_eq!(outcome.changes, 3);
        // 3 firing rounds + 1 quiescent round.
        assert!(outcome.detail.contains(&("rounds".to_string(), 4)));
        assert!(outcome.detail.contains(&("decay".to_string(), 3)));
    }

    #[test]
    fn fixpoint_respects_round_bound() {
        let always = pass_fn("always-changes", |_m: &mut Module| Ok(PassOutcome::changed(1)));
        let mut fix = Fixpoint::new("bounded", vec![Box::new(always)]).with_max_rounds(5);
        let mut module = small_module();
        let outcome = fix.run(&mut module).unwrap();
        assert_eq!(outcome.changes, 5, "stops at the bound instead of spinning");
    }

    #[test]
    fn statistics_aggregate_durations_and_render() {
        let mut pm = PassManager::new();
        pm.add_pass(pass_fn("spin", |_m: &mut Module| {
            // Make the duration measurably nonzero.
            let start = Instant::now();
            while start.elapsed() < Duration::from_micros(50) {
                std::hint::black_box(0u8);
            }
            Ok(PassOutcome::changed(2))
        }));
        let mut module = small_module();
        let stats = pm.run(&mut module).unwrap();
        assert!(stats.total_duration() >= Duration::from_micros(50));
        assert_eq!(stats.duration_of("spin"), stats.total_duration());
        let table = stats.render_table();
        assert!(table.contains("spin"), "{table}");
        assert!(table.contains("total"), "{table}");
    }

    #[test]
    fn canonicalize_pass_forwards_pattern_stats() {
        // An empty driver through the adapter: no firings, but the DCE and
        // wall-clock detail entries are still reported.
        let driver = GreedyRewriteDriver::new();
        let mut pass = CanonicalizePass::new("empty-canon", driver);
        let mut module = small_module();
        let outcome = pass.run(&mut module).unwrap();
        assert_eq!(outcome.changes, 0, "no patterns registered");
        assert!(outcome.detail.iter().any(|(k, _)| k == DCE_DETAIL_KEY));
        assert!(outcome.detail.iter().any(|(k, _)| k == REWRITE_WALL_US_DETAIL_KEY));
    }

    #[test]
    fn fixpoint_folds_inner_details_upward() {
        let inner = pass_fn("detailed", {
            let mut left = 2usize;
            move |_m: &mut Module| {
                if left > 0 {
                    left -= 1;
                    Ok(PassOutcome::changed(1)
                        .with_detail(vec![(format!("{PATTERN_DETAIL_PREFIX}toy"), 1)]))
                } else {
                    Ok(PassOutcome::unchanged())
                }
            }
        });
        let mut fix = Fixpoint::new("detail-loop", vec![Box::new(inner)]);
        let mut module = small_module();
        let outcome = fix.run(&mut module).unwrap();
        assert!(
            outcome.detail.contains(&(format!("{PATTERN_DETAIL_PREFIX}toy"), 2)),
            "{:?}",
            outcome.detail
        );
        // And PassStatistics aggregates the prefixed entries.
        let mut stats = PassStatistics::new();
        stats.passes.push(PassStat {
            name: "detail-loop".into(),
            duration: Duration::ZERO,
            changes: outcome.changes,
            detail: outcome.detail,
        });
        assert_eq!(stats.pattern_firings(), vec![("toy".to_string(), 2)]);
    }

    #[test]
    fn verify_pass_flags_invalid_module() {
        let mut module = small_module();
        module.func_mut("f").unwrap().body.ops.clear();
        let err = VerifyPass.run(&mut module).unwrap_err();
        assert_eq!(err.pass, "verify");
    }
}
