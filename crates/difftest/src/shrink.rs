//! Greedy minimization of failing cases.
//!
//! The shrinker edits the structured [`GenCase`] (never the source text):
//! it drops whole pipeline stages, unwraps composite stages, replaces
//! subtrees with `id`, and simplifies the input/measurement — accepting
//! any edit under which the harness still reports a mismatch, until no
//! accepted edit remains or the evaluation budget runs out. The final case
//! renders to the self-contained reproducer in the report.

use crate::gen::{GenCase, InputMode, Stage, StageKind};
use asdf_basis::{Eigenstate, PrimitiveBasis};

/// Minimizes `case` under `fails` (which must be true for `case` itself),
/// evaluating the predicate at most `budget` times.
pub fn minimize(case: &GenCase, fails: impl Fn(&GenCase) -> bool, budget: usize) -> GenCase {
    let mut best = case.clone();
    let mut evals = 0usize;
    let try_candidate = |best: &mut GenCase, candidate: GenCase, evals: &mut usize| -> bool {
        if *evals >= budget {
            return false;
        }
        *evals += 1;
        if fails(&candidate) {
            *best = candidate;
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // 1. Drop whole pipeline stages (keep at least one).
        if best.stages.len() > 1 {
            for i in 0..best.stages.len() {
                let mut candidate = best.clone();
                candidate.stages.remove(i);
                if try_candidate(&mut best, candidate, &mut evals) {
                    improved = true;
                    break;
                }
            }
        }
        if improved {
            continue;
        }

        // 2. Replace each stage with a structurally smaller same-width one.
        'outer: for i in 0..best.stages.len() {
            for replacement in simplifications(&best.stages[i]) {
                let mut candidate = best.clone();
                candidate.stages[i] = replacement;
                if try_candidate(&mut best, candidate, &mut evals) {
                    improved = true;
                    break 'outer;
                }
            }
        }
        if improved {
            continue;
        }

        // 3. Simplify the observation end: drop the measurement, zero the
        // argument bits, flatten the prepared literal.
        if best.measure.is_some() {
            let mut candidate = best.clone();
            candidate.measure = None;
            if try_candidate(&mut best, candidate, &mut evals) {
                continue;
            }
        }
        match &best.input {
            InputMode::Arg(bits) if bits.iter().any(|&b| b) => {
                let mut candidate = best.clone();
                candidate.input = InputMode::Arg(vec![false; best.width]);
                if try_candidate(&mut best, candidate, &mut evals) {
                    continue;
                }
            }
            InputMode::Prep(chars)
                if chars.iter().any(|&c| c != (PrimitiveBasis::Std, Eigenstate::Plus)) =>
            {
                let mut candidate = best.clone();
                candidate.input =
                    InputMode::Prep(vec![(PrimitiveBasis::Std, Eigenstate::Plus); best.width]);
                if try_candidate(&mut best, candidate, &mut evals) {
                    continue;
                }
            }
            _ => {}
        }

        break;
    }
    best
}

/// Same-width candidate replacements for a stage, roughly smallest first.
fn simplifications(stage: &Stage) -> Vec<Stage> {
    let id = Stage { width: stage.width, kind: StageKind::Id };
    let mut out = Vec::new();
    match &stage.kind {
        StageKind::Id => {}
        StageKind::Adjoint(inner) | StageKind::Repeat { inner, .. } => {
            out.push(id);
            out.push((**inner).clone());
        }
        StageKind::Compose(parts) => {
            out.push(id);
            out.extend(parts.iter().cloned());
        }
        StageKind::Tensor(parts) => {
            out.push(id);
            // Replace one chunk with id at a time.
            for i in 0..parts.len() {
                let mut simpler = parts.clone();
                simpler[i] = Stage { width: parts[i].width, kind: StageKind::Id };
                out.push(Stage { width: stage.width, kind: StageKind::Tensor(simpler) });
            }
        }
        StageKind::Pred { pred_width, inner, .. } => {
            out.push(id);
            // Forget the predicate: id on the predicate qubits, tensored
            // with the bare inner function.
            out.push(Stage {
                width: stage.width,
                kind: StageKind::Tensor(vec![
                    Stage { width: *pred_width, kind: StageKind::Id },
                    (**inner).clone(),
                ]),
            });
        }
        StageKind::LiteralTrans { .. }
        | StageKind::BuiltinTrans { .. }
        | StageKind::Flip { .. }
        | StageKind::Sign { .. }
        | StageKind::Xor { .. } => out.push(id),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenOptions};

    #[test]
    fn minimize_reaches_a_fixpoint_under_a_trivial_predicate() {
        // A predicate that accepts everything shrinks to one id stage.
        let case = gen_case(3, 5, &GenOptions::default());
        let minimized = minimize(&case, |_| true, 500);
        assert_eq!(minimized.stages.len(), 1);
        assert!(matches!(minimized.stages[0].kind, StageKind::Id));
        assert!(minimized.measure.is_none());
    }

    #[test]
    fn minimize_respects_the_predicate() {
        // Only cases keeping at least one Sign stage "fail": the shrinker
        // must not remove the last one.
        let opts = GenOptions::default();
        let case = (0..200)
            .map(|i| gen_case(11, i, &opts))
            .find(|c| {
                fn has_sign(s: &Stage) -> bool {
                    match &s.kind {
                        StageKind::Sign { .. } => true,
                        StageKind::Tensor(ps) | StageKind::Compose(ps) => ps.iter().any(has_sign),
                        StageKind::Pred { inner, .. }
                        | StageKind::Adjoint(inner)
                        | StageKind::Repeat { inner, .. } => has_sign(inner),
                        _ => false,
                    }
                }
                c.stages.iter().any(has_sign)
            })
            .expect("some generated case embeds a sign oracle");
        fn has_sign_stage(c: &GenCase) -> bool {
            fn walk(s: &Stage) -> bool {
                match &s.kind {
                    StageKind::Sign { .. } => true,
                    StageKind::Tensor(ps) | StageKind::Compose(ps) => ps.iter().any(walk),
                    StageKind::Pred { inner, .. }
                    | StageKind::Adjoint(inner)
                    | StageKind::Repeat { inner, .. } => walk(inner),
                    _ => false,
                }
            }
            c.stages.iter().any(walk)
        }
        let minimized = minimize(&case, has_sign_stage, 500);
        assert!(has_sign_stage(&minimized));
    }
}
