//! Ablation bench: factoring-based span checking (§4.1, Algorithms B1–B4)
//! against the naive exponential expansion the paper's introduction warns
//! about. The polynomial algorithm handles 64-qubit translations that the
//! naive approach cannot touch.

use asdf_basis::{span, Basis};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bases(k: usize) -> (Basis, Basis) {
    let lhs: Basis = format!("{{'0','1'}}[{k}]").parse().unwrap();
    let rhs: Basis = format!("{{'1','0'}}[{k}]").parse().unwrap();
    (lhs, rhs)
}

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_checking");
    group.sample_size(20);
    for k in [2usize, 4, 8, 16, 64] {
        let (lhs, rhs) = bases(k);
        group.bench_with_input(BenchmarkId::new("factoring", k), &k, |b, _| {
            b.iter(|| span::check_span_equiv(&lhs, &rhs).unwrap());
        });
        // The naive checker is exponential; only feasible for small k.
        if k <= 16 {
            group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
                b.iter(|| span::check_span_equiv_naive(&lhs, &rhs).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let lhs: Basis = "{'p'} + fourier[3] + {'1'@45} + pm".parse().unwrap();
    let rhs: Basis = "{-'p'} + std[2] + ij + {-'11','10'}".parse().unwrap();
    c.bench_function("span_checking/fig3_example", |b| {
        b.iter(|| span::check_span_equiv(&lhs, &rhs).unwrap());
    });
}

criterion_group!(benches, bench_span, bench_fig3);
criterion_main!(benches);
