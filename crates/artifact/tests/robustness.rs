//! Format robustness: round trips, truncation, bit flips, versioning.
//!
//! The decoding contract is that *arbitrary* bytes produce either a
//! valid artifact or a structured [`ArtifactError`] — never a panic.
//! These tests drive that contract over a hand-built artifact that
//! exercises every section and a representative spread of payload
//! encodings (regions, bases, phased literals, routed circuits).

use asdf_artifact::{inspect, Artifact, ArtifactError, FORMAT_VERSION, MAGIC, SCHEMA_VERSION};
use asdf_ast::Diagnostic;
use asdf_basis::{Basis, BasisElem, BasisLiteral, BasisVector, BitString, Phase, PrimitiveBasis};
use asdf_ir::{
    Block, Func, FuncType, GateKind, Module, Op, OpKind, PassStat, PassStatistics, Region, SrcSpan,
    Type, Visibility,
};
use asdf_qcircuit::{Circuit, CircuitOp};
use asdf_target::RoutingInfo;
use std::time::Duration;

/// An artifact touching every section and most payload encodings.
fn sample_artifact() -> Artifact {
    let mut module = Module::default();

    // A function with a basis translation, a phased literal, a call with
    // a predicate, and a nested lambda region.
    let ty = FuncType::new(vec![Type::QBundle(2)], vec![Type::BitBundle(2)], false);
    let mut func = Func::from_parts("main", ty, Visibility::Public, Block::default(), Vec::new());
    let q = func.new_value(Type::QBundle(2));
    let b = func.new_value(Type::BitBundle(2));
    let f = func.new_value(Type::F64);
    let lit = BasisLiteral::new(
        PrimitiveBasis::Pm,
        vec![
            BasisVector::new(BitString::from_bits([false, true])),
            BasisVector::with_phase(
                BitString::from_bits([true, false]),
                Phase::Const(std::f64::consts::FRAC_PI_4),
            ),
        ],
    )
    .expect("well-formed literal");
    let basis =
        Basis::new(vec![BasisElem::built_in(PrimitiveBasis::Std, 1), BasisElem::Literal(lit)]);
    let lambda_body = Block { args: vec![], ops: vec![Op::new(OpKind::Return, vec![], vec![])] };
    func.body = Block {
        args: vec![q],
        ops: vec![
            Op::new(OpKind::ConstF64 { value: 0.25 }, vec![], vec![f]),
            Op::new(
                OpKind::QbTrans {
                    basis_in: Basis::built_in(PrimitiveBasis::Std, 2),
                    basis_out: basis.clone(),
                },
                vec![q],
                vec![q],
            ),
            Op::with_regions(
                OpKind::Lambda { func_ty: FuncType::new(vec![], vec![], true) },
                vec![],
                vec![],
                vec![Region::single(lambda_body)],
            ),
            Op::new(
                OpKind::Call { callee: "helper".into(), adj: true, pred: Some(basis) },
                vec![q],
                vec![q],
            ),
            Op::new(
                OpKind::QbMeas { basis: Basis::built_in(PrimitiveBasis::Std, 2) },
                vec![q],
                vec![b],
            ),
            {
                let mut op = Op::new(OpKind::Return, vec![b], vec![]);
                op.span = SrcSpan { start: 10, end: 20 };
                op
            },
        ],
    };
    module.add_func(func);

    let mut helper = Func::from_parts(
        "helper",
        FuncType::new(vec![Type::QBundle(2)], vec![Type::QBundle(2)], true),
        Visibility::Private,
        Block::default(),
        Vec::new(),
    );
    let hq = helper.new_value(Type::QBundle(2));
    helper.body = Block { args: vec![hq], ops: vec![Op::new(OpKind::Return, vec![hq], vec![])] };
    module.add_func(helper);

    let circuit = Circuit {
        num_qubits: 2,
        ops: vec![
            CircuitOp::Gate { gate: GateKind::H, controls: vec![], targets: vec![0] },
            CircuitOp::Gate { gate: GateKind::X, controls: vec![0], targets: vec![1] },
            CircuitOp::Gate {
                gate: GateKind::Rz(std::f64::consts::FRAC_PI_3),
                controls: vec![],
                targets: vec![1],
            },
            CircuitOp::Measure { qubit: 0, bit: 0 },
            CircuitOp::Reset { qubit: 1 },
        ],
    };
    let routing = RoutingInfo {
        target: "linear-16".into(),
        initial_layout: vec![3, 1],
        final_layout: vec![1, 3],
        swap_count: 2,
        unrouted_depth: 4,
        routed_depth: 6,
        unrouted_two_qubit_gates: 1,
        routed_two_qubit_gates: 7,
        routed_makespan: 420,
    };
    let stats = PassStatistics {
        passes: vec![PassStat {
            name: "inline".into(),
            duration: Duration::from_micros(123),
            changes: 4,
            detail: vec![("calls_inlined".into(), 4)],
        }],
    };
    let lints = vec![Diagnostic::warning("W0002", "dead qubit")
        .with_label(asdf_ast::Span::new(3, 9), "allocated here")
        .with_note("consider discarding explicitly")];

    Artifact {
        entry: "main".into(),
        module,
        circuit: Some(circuit),
        routing: Some(routing),
        stats,
        lints,
        key: vec![0xde, 0xad, 0xbe, 0xef, 0x00, 0x11],
    }
}

fn assert_artifacts_equal(a: &Artifact, b: &Artifact) {
    assert_eq!(a.entry, b.entry);
    assert_eq!(a.module.funcs(), b.module.funcs());
    assert_eq!(a.circuit, b.circuit);
    assert_eq!(a.routing.is_some(), b.routing.is_some());
    if let (Some(x), Some(y)) = (&a.routing, &b.routing) {
        assert_eq!(x.target, y.target);
        assert_eq!(x.initial_layout, y.initial_layout);
        assert_eq!(x.final_layout, y.final_layout);
        assert_eq!(x.swap_count, y.swap_count);
        assert_eq!(x.routed_makespan, y.routed_makespan);
    }
    assert_eq!(a.stats.passes.len(), b.stats.passes.len());
    for (x, y) in a.stats.passes.iter().zip(&b.stats.passes) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.duration, y.duration);
        assert_eq!(x.changes, y.changes);
        assert_eq!(x.detail, y.detail);
    }
    assert_eq!(a.lints, b.lints);
    assert_eq!(a.key, b.key);
}

#[test]
fn round_trip_preserves_everything_and_is_byte_identical() {
    let artifact = sample_artifact();
    let bytes = artifact.encode();
    let decoded = Artifact::decode(&bytes).expect("decode");
    assert_artifacts_equal(&artifact, &decoded);
    assert_eq!(decoded.encode(), bytes, "re-serialization must be byte-identical");
    assert_eq!(decoded.content_hash(), artifact.content_hash());
}

#[test]
fn minimal_artifact_round_trips_without_optional_sections() {
    let artifact = Artifact {
        entry: "k".into(),
        module: Module::default(),
        circuit: None,
        routing: None,
        stats: PassStatistics::new(),
        lints: vec![],
        key: vec![],
    };
    let bytes = artifact.encode();
    let decoded = Artifact::decode(&bytes).expect("decode");
    assert!(decoded.circuit.is_none());
    assert!(decoded.routing.is_none());
    let info = inspect(&bytes).expect("inspect");
    // Circuit and routing sections are omitted entirely, not written empty.
    assert!(info.sections.iter().all(|s| s.name != "circuit" && s.name != "routing"));
}

#[test]
fn inspect_reports_header_facts() {
    let artifact = sample_artifact();
    let bytes = artifact.encode();
    let info = inspect(&bytes).expect("inspect");
    assert_eq!(info.format_version, FORMAT_VERSION);
    assert_eq!(info.schema_version, SCHEMA_VERSION);
    assert_eq!(info.entry, "main");
    assert_eq!(info.total_len, bytes.len());
    assert_eq!(info.content_hash, artifact.content_hash());
    assert_eq!(info.key_len, 6);
    let names: Vec<&str> = info.sections.iter().map(|s| s.name).collect();
    assert_eq!(names, ["meta", "module", "circuit", "routing", "stats", "lints"]);
    assert!(info.sections.iter().all(|s| s.len > 0));
}

#[test]
fn every_truncation_is_a_structured_error() {
    let bytes = sample_artifact().encode();
    for len in 0..bytes.len() {
        match Artifact::decode(&bytes[..len]) {
            Ok(_) => panic!("a strict prefix of {len} bytes must not decode"),
            Err(err) => {
                assert_eq!(err.code(), "E0106");
                let _ = err.to_string();
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_caught() {
    let bytes = sample_artifact().encode();
    // Flip one bit at a sweep of positions covering header, table,
    // payload, and trailer; the checksum (or magic check) must catch all
    // of them, and none may panic.
    for pos in 0..bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            match Artifact::decode(&corrupt) {
                Ok(_) => panic!("bit flip at byte {pos} bit {bit} went undetected"),
                Err(err) => {
                    let _ = err.to_string();
                }
            }
        }
    }
}

#[test]
fn arbitrary_garbage_never_panics() {
    // A deterministic xorshift stream standing in for fuzz input.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [0usize, 1, 7, 8, 16, 24, 64, 257, 4096] {
        let mut garbage = Vec::with_capacity(len);
        while garbage.len() < len {
            garbage.extend_from_slice(&next().to_le_bytes());
        }
        garbage.truncate(len);
        // Also try garbage that starts with valid magic, which reaches
        // deeper into the parser.
        let mut magical = garbage.clone();
        if magical.len() >= MAGIC.len() {
            magical[..MAGIC.len()].copy_from_slice(&MAGIC);
        }
        for bytes in [&garbage, &magical] {
            if let Err(err) = Artifact::decode(bytes) {
                assert_eq!(err.code(), "E0106");
            }
            let _ = inspect(bytes);
        }
    }
}

#[test]
fn future_versions_are_detected_before_payload_parsing() {
    let artifact = sample_artifact();

    // Future format version: patch the header field and re-seal the
    // checksum so version detection (not corruption) is what fires.
    let mut bytes = artifact.encode();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    reseal(&mut bytes);
    assert_eq!(
        Artifact::decode(&bytes).unwrap_err(),
        ArtifactError::UnsupportedFormatVersion {
            found: FORMAT_VERSION + 1,
            supported: FORMAT_VERSION
        }
    );

    // Future schema version, same container layout.
    let mut bytes = artifact.encode();
    bytes[12..16].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
    reseal(&mut bytes);
    assert_eq!(
        Artifact::decode(&bytes).unwrap_err(),
        ArtifactError::UnsupportedSchemaVersion {
            found: SCHEMA_VERSION + 1,
            supported: SCHEMA_VERSION
        }
    );

    // Bad magic wins over everything else.
    let mut bytes = artifact.encode();
    bytes[0] = b'X';
    assert_eq!(Artifact::decode(&bytes).unwrap_err(), ArtifactError::BadMagic);
}

#[test]
fn unknown_sections_are_skipped_for_forward_compat() {
    // Simulate a future writer that appends an extra section: rebuild
    // the container with one more table entry and body, then re-seal.
    let bytes = sample_artifact().encode();
    let body = &bytes[..bytes.len() - 8];
    let count = u32::from_le_bytes(body[16..20].try_into().unwrap()) as usize;
    let table_end = 20 + 12 * count;
    let payload = &body[table_end..];

    let mut rebuilt = Vec::new();
    rebuilt.extend_from_slice(&body[..16]);
    rebuilt.extend_from_slice(&((count + 1) as u32).to_le_bytes());
    rebuilt.extend_from_slice(&body[20..table_end]);
    let extra = b"telemetry-from-the-future";
    rebuilt.extend_from_slice(&999u32.to_le_bytes()); // unknown id
    rebuilt.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rebuilt.extend_from_slice(&(extra.len() as u32).to_le_bytes());
    rebuilt.extend_from_slice(payload);
    rebuilt.extend_from_slice(extra);
    rebuilt.extend_from_slice(&[0; 8]);
    reseal(&mut rebuilt);

    let decoded = Artifact::decode(&rebuilt).expect("unknown sections must be skipped");
    assert_eq!(decoded.entry, "main");
    let info = inspect(&rebuilt).expect("inspect");
    assert!(info.sections.iter().any(|s| s.id == 999 && s.name == "unknown"));
}

/// Recomputes the trailing checksum after deliberate header surgery.
fn reseal(bytes: &mut [u8]) {
    let body_len = bytes.len() - 8;
    let checksum = asdf_artifact::fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
}
