//! A dense state-vector quantum simulator for validating ASDF-compiled
//! circuits.
//!
//! The published evaluation executes generated programs with qir-runner or
//! QIR-EE (§7); this crate is the local-simulation substrate of the
//! reproduction. It executes the straight-line [`Circuit`] form directly:
//! the same circuits that are emitted as OpenQASM 3 / QIR.
//!
//! Conventions: qubit 0 is the *leftmost* qubit of Qwerty literals and the
//! most significant bit of basis-state indices, matching `asdf-basis`
//! eigenbit order.
//!
//! The hot path is kernel-based: circuits are compiled once into fused,
//! mask-resolved [`KernelProgram`]s ([`kernel`]), applied with stride-based
//! pair enumeration instead of a scan-and-branch over all `2^n` amplitudes,
//! and unitary extraction applies the program to every basis column at once
//! ([`batch`]), optionally across a scoped thread pool.
//!
//! [`Circuit`]: asdf_qcircuit::Circuit

pub mod backend;
pub mod batch;
pub mod complex;
pub mod dynamic;
pub mod kernel;
pub mod run;
pub mod simd;
pub mod state;
pub mod trace;

pub use backend::SimBackend;
pub use batch::{batched_columns, batched_program_columns, batched_program_columns_threads};
pub use complex::Complex;
pub use dynamic::{run_dynamic, ArgValue, DynamicRun};
pub use kernel::{KernelOp, KernelProgram};
pub use run::{
    circuits_equivalent, circuits_equivalent_on_zero_ancillas,
    circuits_equivalent_up_to_output_permutation, columns_equivalent, measurement_distribution,
    measurement_distribution_threads, sample, sample_per_shot, unitary_of, RunResult, Simulator,
    PARALLEL_STATE_MIN,
};
pub use state::{checked_amplitude_count, StateVector, MAX_QUBITS};
pub use trace::{record_trace, replay_divergence, state_digest, Divergence, Trace, TraceEvent};
