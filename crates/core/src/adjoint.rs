//! Taking the adjoint of basic blocks (§5.2, Fig. 4).
//!
//! "The Qwerty compiler can traverse the def-use DAG in a basic block
//! backwards from the block terminator, calling buildAdjoint() on each op
//! encountered to rebuild a reversed form top-down. Classical operations
//! ... are *stationary* because they remain in-place even if the rest of
//! the DAG (the quantum portion) is inverted around them."
//!
//! The op interface is behaviour keyed on [`OpKind`] (the statically
//! registered dialect set), not a hardcoded op list: any op whose kind has
//! an adjoint form participates.

use crate::error::CoreError;
use asdf_ir::clone::clone_ops_into;
use asdf_ir::{Func, FuncBuilder, Op, OpKind, Type, Value, Visibility};
use std::collections::HashMap;

/// Builds the adjoint of a single-block reversible function
/// (`qbundle[N] -rev-> qbundle[N]`).
///
/// # Errors
///
/// Returns [`CoreError::Unsupported`] for irreversible ops (measurement,
/// discard) or shapes outside the reversible contract.
pub fn adjoint_func(func: &Func, new_name: &str) -> Result<Func, CoreError> {
    let n = asdf_ir::verify::rev_qbundle_dim(&func.ty).ok_or_else(|| {
        CoreError::Unsupported(format!(
            "@{} is not qbundle[N] -rev-> qbundle[N]; cannot adjoint",
            func.name
        ))
    })?;
    let Some(terminator) = func.body.terminator() else {
        return Err(CoreError::Ir(format!("@{} has no terminator", func.name)));
    };
    if !matches!(terminator.kind, OpKind::Return) {
        return Err(CoreError::Ir(format!("@{} does not end in return", func.name)));
    }

    let builder = FuncBuilder::new(new_name, func.ty.clone(), Visibility::Private);
    let adj_arg = builder.args()[0];
    let mut out = builder.finish();

    // 1. Stationary ops are cloned in original order (Fig. 4's yellow box).
    let mut stat_map: HashMap<Value, Value> = HashMap::new();
    let stationary: Vec<Op> =
        func.body.ops.iter().filter(|op| func.op_is_stationary(op)).cloned().collect();
    let mut new_ops = clone_ops_into(func, &stationary, &mut out, &mut stat_map);

    // 2. Quantum ops are rebuilt in reverse. `adj` maps an original value
    //    to the adjoint-function value carrying the same wire.
    let mut adj: HashMap<Value, Value> = HashMap::new();
    adj.insert(terminator.operands[0], adj_arg);

    for op in func.body.ops.iter().rev() {
        if func.op_is_stationary(op) || op.is_terminator() {
            continue;
        }
        let built = build_adjoint_op(func, op, &mut out, &mut adj, &stat_map)?;
        new_ops.extend(built);
    }

    // 3. The original argument's wire is the adjoint's result.
    let result = *adj.get(&func.body.args[0]).ok_or_else(|| {
        CoreError::Ir(format!("@{}: argument wire not reconstructed during adjoint", func.name))
    })?;
    new_ops.push(Op::new(OpKind::Return, vec![result], vec![]));
    out.body.ops = new_ops;
    debug_assert_eq!(out.ty, asdf_ir::FuncType::rev_qbundle(n));
    Ok(out)
}

/// Builds the adjoint of one non-stationary op: inputs come from the
/// adjoint wires of the original op's results; outputs define the adjoint
/// wires of the original op's operands.
fn build_adjoint_op(
    src: &Func,
    op: &Op,
    out: &mut Func,
    adj: &mut HashMap<Value, Value>,
    stat_map: &HashMap<Value, Value>,
) -> Result<Vec<Op>, CoreError> {
    // Gather adjoint values for every (linear) result.
    let take = |adj: &mut HashMap<Value, Value>, v: Value| -> Result<Value, CoreError> {
        adj.remove(&v).ok_or_else(|| {
            CoreError::Ir(format!("adjoint: result wire {v} of {} unknown", op.kind.mnemonic()))
        })
    };

    match &op.kind {
        OpKind::QbTrans { basis_in, basis_out } => {
            // ~(b1 >> b2) = b2 >> b1; phase operands are stationary values.
            let input = take(adj, op.results[0])?;
            let mut operands = vec![input];
            for phase in &op.operands[1..] {
                operands.push(map_stationary(*phase, stat_map)?);
            }
            let result = out.new_value(src.value_type(op.results[0]).clone());
            adj.insert(op.operands[0], result);
            Ok(vec![Op::new(
                OpKind::QbTrans { basis_in: basis_out.clone(), basis_out: basis_in.clone() },
                operands,
                vec![result],
            )])
        }
        OpKind::QbPack => {
            // Adjoint of pack is unpack.
            let input = take(adj, op.results[0])?;
            let results: Vec<Value> = op
                .operands
                .iter()
                .map(|v| {
                    let fresh = out.new_value(src.value_type(*v).clone());
                    adj.insert(*v, fresh);
                    fresh
                })
                .collect();
            Ok(vec![Op::new(OpKind::QbUnpack, vec![input], results)])
        }
        OpKind::QbUnpack => {
            let inputs: Vec<Value> =
                op.results.iter().map(|r| take(adj, *r)).collect::<Result<_, _>>()?;
            let result = out.new_value(src.value_type(op.operands[0]).clone());
            adj.insert(op.operands[0], result);
            Ok(vec![Op::new(OpKind::QbPack, inputs, vec![result])])
        }
        OpKind::Gate { gate, num_controls } => {
            let inputs: Vec<Value> =
                op.results.iter().map(|r| take(adj, *r)).collect::<Result<_, _>>()?;
            let results: Vec<Value> = op
                .operands
                .iter()
                .map(|v| {
                    let fresh = out.new_value(Type::Qubit);
                    adj.insert(*v, fresh);
                    fresh
                })
                .collect();
            Ok(vec![Op::new(
                OpKind::Gate { gate: gate.adjoint(), num_controls: *num_controls },
                inputs,
                results,
            )])
        }
        OpKind::QAlloc => {
            // Reversed allocation: the wire ends here, assumed |0>.
            let input = take(adj, op.results[0])?;
            Ok(vec![Op::new(OpKind::QFreeZ, vec![input], vec![])])
        }
        OpKind::QFreeZ => {
            // Reversed free-as-zero: allocate a fresh |0>.
            let result = out.new_value(Type::Qubit);
            adj.insert(op.operands[0], result);
            Ok(vec![Op::new(OpKind::QAlloc, vec![], vec![result])])
        }
        OpKind::Call { callee, adj: was_adj, pred } => {
            let input = take(adj, op.results[0])?;
            let result = out.new_value(src.value_type(op.results[0]).clone());
            adj.insert(op.operands[0], result);
            Ok(vec![Op::new(
                OpKind::Call { callee: callee.clone(), adj: !was_adj, pred: pred.clone() },
                vec![input],
                vec![result],
            )])
        }
        OpKind::CallIndirect => {
            // call_indirect %f(%qb) reverses to
            // call_indirect (func_adj %f)(%qb').
            let callee = map_stationary(op.operands[0], stat_map)?;
            let callee_ty = src.value_type(op.operands[0]).clone();
            let adj_callee = out.new_value(callee_ty);
            let input = take(adj, op.results[0])?;
            let result = out.new_value(src.value_type(op.results[0]).clone());
            adj.insert(op.operands[1], result);
            Ok(vec![
                Op::new(OpKind::FuncAdj, vec![callee], vec![adj_callee]),
                Op::new(OpKind::CallIndirect, vec![adj_callee, input], vec![result]),
            ])
        }
        OpKind::QbPrep { .. }
        | OpKind::QbMeas { .. }
        | OpKind::QbDiscard
        | OpKind::QFree
        | OpKind::Measure => Err(CoreError::Unsupported(format!(
            "op {} has no adjoint form (irreversible)",
            op.kind.mnemonic()
        ))),
        other => Err(CoreError::Unsupported(format!("op {} is not adjointable", other.mnemonic()))),
    }
}

fn map_stationary(v: Value, stat_map: &HashMap<Value, Value>) -> Result<Value, CoreError> {
    stat_map.get(&v).copied().ok_or_else(|| {
        CoreError::Ir(format!("adjoint: classical operand {v} is not defined by a stationary op"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::{FuncType, GateKind};

    /// Builds `qbundle[1]` function applying S then T (so the adjoint must
    /// apply Tdg then Sdg).
    fn st_func() -> Func {
        let mut b = FuncBuilder::new("st", FuncType::rev_qbundle(1), Visibility::Private);
        let arg = b.args()[0];
        let mut bb = b.block();
        let q = bb.push(OpKind::QbUnpack, vec![arg], vec![Type::Qubit]);
        let s = bb.push(
            OpKind::Gate { gate: GateKind::S, num_controls: 0 },
            vec![q[0]],
            vec![Type::Qubit],
        );
        let t = bb.push(
            OpKind::Gate { gate: GateKind::T, num_controls: 0 },
            vec![s[0]],
            vec![Type::Qubit],
        );
        let packed = bb.push(OpKind::QbPack, vec![t[0]], vec![Type::QBundle(1)]);
        bb.push(OpKind::Return, vec![packed[0]], vec![]);
        b.finish()
    }

    #[test]
    fn gate_order_reverses_and_adjoints() {
        let func = st_func();
        let adj = adjoint_func(&func, "st_adj").unwrap();
        asdf_ir::verify::verify_func(&adj, None).unwrap();
        let gates: Vec<GateKind> = adj
            .body
            .ops
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Gate { gate, .. } => Some(gate),
                _ => None,
            })
            .collect();
        assert_eq!(gates, vec![GateKind::Tdg, GateKind::Sdg]);
    }

    #[test]
    fn stationary_ops_stay_in_place() {
        // A translation with a computed phase: the arith ops must appear in
        // original (forward) order in the adjoint (Fig. 4).
        let mut b = FuncBuilder::new("ph", FuncType::rev_qbundle(1), Visibility::Private);
        let arg = b.args()[0];
        let mut bb = b.block();
        let pi = bb.push(OpKind::ConstF64 { value: std::f64::consts::PI }, vec![], vec![Type::F64]);
        let two = bb.push(OpKind::ConstF64 { value: 2.0 }, vec![], vec![Type::F64]);
        let half = bb.push(OpKind::FDiv, vec![pi[0], two[0]], vec![Type::F64]);
        let b_in: asdf_basis::Basis = "{'0','1'@90}".parse().unwrap();
        // Rewrite the constant phase as an operand reference.
        let b_in = {
            use asdf_basis::{BasisLiteral, BasisVector, Phase};
            let lit = BasisLiteral::new(
                asdf_basis::PrimitiveBasis::Std,
                vec![
                    BasisVector::new("0".parse().unwrap()),
                    BasisVector::with_phase("1".parse().unwrap(), Phase::Operand(0)),
                ],
            )
            .unwrap();
            let _ = b_in;
            asdf_basis::Basis::literal(lit)
        };
        let b_out: asdf_basis::Basis = "std".parse().unwrap();
        let t = bb.push(
            OpKind::QbTrans { basis_in: b_in.clone(), basis_out: b_out.clone() },
            vec![arg, half[0]],
            vec![Type::QBundle(1)],
        );
        bb.push(OpKind::Return, vec![t[0]], vec![]);
        let func = b.finish();
        asdf_ir::verify::verify_func(&func, None).unwrap();

        let adj = adjoint_func(&func, "ph_adj").unwrap();
        asdf_ir::verify::verify_func(&adj, None).unwrap();
        // Stationary ops first, in forward order.
        assert!(matches!(adj.body.ops[0].kind, OpKind::ConstF64 { .. }));
        assert!(matches!(adj.body.ops[2].kind, OpKind::FDiv));
        // The translation's bases are swapped.
        let trans = adj
            .body
            .ops
            .iter()
            .find_map(|op| match &op.kind {
                OpKind::QbTrans { basis_in, basis_out } => Some((basis_in, basis_out)),
                _ => None,
            })
            .unwrap();
        assert_eq!(trans.0.to_string(), "std");
    }

    #[test]
    fn ancilla_alloc_free_swap() {
        let mut b = FuncBuilder::new("anc", FuncType::rev_qbundle(1), Visibility::Private);
        let arg = b.args()[0];
        let mut bb = b.block();
        let q = bb.push(OpKind::QbUnpack, vec![arg], vec![Type::Qubit]);
        let anc = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let g = bb.push(
            OpKind::Gate { gate: GateKind::X, num_controls: 1 },
            vec![q[0], anc[0]],
            vec![Type::Qubit, Type::Qubit],
        );
        bb.push_op(Op::new(OpKind::QFreeZ, vec![g[1]], vec![]));
        let packed = bb.push(OpKind::QbPack, vec![g[0]], vec![Type::QBundle(1)]);
        bb.push(OpKind::Return, vec![packed[0]], vec![]);
        let func = b.finish();
        asdf_ir::verify::verify_func(&func, None).unwrap();

        let adj = adjoint_func(&func, "anc_adj").unwrap();
        asdf_ir::verify::verify_func(&adj, None).unwrap();
        let kinds: Vec<&'static str> = adj.body.ops.iter().map(|op| op.kind.mnemonic()).collect();
        assert!(kinds.contains(&"qcirc.qalloc"));
        assert!(kinds.contains(&"qcirc.qfreez"));
    }

    #[test]
    fn measurement_is_not_adjointable() {
        let mut b = FuncBuilder::new(
            "m",
            FuncType::new(vec![Type::QBundle(1)], vec![Type::QBundle(1)], true),
            Visibility::Private,
        );
        let arg = b.args()[0];
        let mut bb = b.block();
        let meas = bb.push(
            OpKind::QbMeas {
                basis: asdf_basis::Basis::built_in(asdf_basis::PrimitiveBasis::Std, 1),
            },
            vec![arg],
            vec![Type::BitBundle(1)],
        );
        let _ = meas;
        let fresh = bb.push(
            OpKind::QbPrep {
                prim: asdf_basis::PrimitiveBasis::Std,
                eigenstate: asdf_basis::Eigenstate::Plus,
                dim: 1,
            },
            vec![],
            vec![Type::QBundle(1)],
        );
        bb.push(OpKind::Return, vec![fresh[0]], vec![]);
        let func = b.finish();
        assert!(adjoint_func(&func, "m_adj").is_err());
    }
}
