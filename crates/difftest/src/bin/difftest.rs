//! The `difftest` CLI: seeded differential sweeps over the configuration
//! matrix.
//!
//! ```text
//! cargo run --release -p asdf-difftest --bin difftest -- \
//!     [--seed N] [--cases N] [--max-width W] [--no-shrink] [--lint] [--stats]
//! ```
//!
//! Exit code 0 when every comparable configuration pair agrees on every
//! generated program; 1 when a mismatch was found (reproducers printed);
//! 2 on usage errors.

use asdf_difftest::{GenOptions, Harness, OracleOptions, SweepOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = SweepOptions::default();
    let mut oracle = OracleOptions::default();
    let mut show_stats = false;
    let mut lint = false;
    let mut jobs: Option<usize> = None;
    let mut cache_dir: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--seed" => match take_value(&mut i).and_then(|v| parse_u64(&v)) {
                Some(v) => opts.seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--cases" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => opts.cases = v,
                None => return usage("--cases needs an integer"),
            },
            "--max-width" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => opts.gen = GenOptions { max_width: v, ..opts.gen.clone() },
                None => return usage("--max-width needs an integer"),
            },
            "--shots" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => oracle.shots = v,
                None => return usage("--shots needs an integer"),
            },
            "--dyn-shots" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => oracle.dyn_shots = v,
                None => return usage("--dyn-shots needs an integer"),
            },
            "--jobs" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => jobs = Some(v),
                _ => return usage("--jobs needs an integer >= 1"),
            },
            "--cache-dir" => match take_value(&mut i) {
                Some(dir) => cache_dir = Some(dir),
                None => return usage("--cache-dir needs a directory path"),
            },
            "--no-shrink" => opts.shrink = false,
            "--fuel-bisect" => opts.fuel_bisect = true,
            "--lint" => lint = true,
            "--stats" => show_stats = true,
            "--help" | "-h" => {
                println!(
                    "usage: difftest [--seed N] [--cases N] [--max-width W] \
                     [--shots N] [--dyn-shots N] [--jobs N] [--cache-dir PATH] \
                     [--no-shrink] [--fuel-bisect] [--lint] [--stats]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    println!(
        "difftest: seed {:#x}, {} cases, max width {}, {} configurations",
        opts.seed,
        opts.cases,
        opts.gen.max_width,
        asdf_core::CompileOptions::matrix().len()
    );
    let mut harness = Harness::new(oracle);
    if let Some(jobs) = jobs {
        harness = harness.with_jobs(jobs);
    }
    if lint {
        // Generated programs are correct by construction, so the sweep
        // doubles as a lint soundness check: any warning is a false
        // positive.
        harness = harness.with_lints();
    }
    if let Some(dir) = cache_dir {
        println!("difftest: persisting artifacts under {dir}");
        harness = harness.with_disk_cache(dir);
    }
    let start = std::time::Instant::now();
    let report = harness.run_sweep(&opts);
    let elapsed = start.elapsed();

    println!("\n{}", report.render_table());
    println!(
        "{} cases, {} uniformly rejected, {} pairwise comparisons, {} mismatches",
        report.cases,
        report.rejected,
        report.comparisons,
        report.mismatches.len()
    );
    println!("sweep wall-clock: {elapsed:.3?}");
    if lint {
        println!("lint warnings: {} across the matrix", report.lint_warnings());
    }
    let serial = report.compile_serial_equiv;
    let concurrent = report.compile_elapsed;
    let speedup = if concurrent.as_nanos() > 0 {
        serial.as_secs_f64() / concurrent.as_secs_f64()
    } else {
        1.0
    };
    println!(
        "compile phase ({} jobs): {:.3?} concurrent vs {:.3?} serial-equivalent \
         ({:+.3?} saved, {:.2}x)",
        report.jobs,
        concurrent,
        serial,
        serial.saturating_sub(concurrent),
        speedup,
    );
    let cache = &report.cache;
    println!(
        "session frontend cache: {} hits + {} coalesced of {} ({:.1}%), ~{:.3?} of \
         frontend work avoided (spent {:.3?} on misses)",
        cache.frontend_hits,
        cache.frontend_coalesced,
        cache.frontend_hits + cache.frontend_coalesced + cache.frontend_misses,
        100.0 * cache.frontend_hit_rate(),
        cache.frontend_saved,
        cache.frontend_spent,
    );
    println!(
        "session artifact cache: {} hits + {} coalesced of {}",
        cache.artifact_hits,
        cache.artifact_coalesced,
        cache.artifact_hits + cache.artifact_coalesced + cache.artifact_misses,
    );
    // Routing overhead per hardware-targeted configuration, rendered
    // through the resource estimator's SWAP/depth summary.
    for config in report.configs.iter().filter(|c| c.routing.routed_cases > 0) {
        println!(
            "routing {}: {} routed cases, {}",
            config.name,
            config.routing.routed_cases,
            config.routing.overhead(),
        );
    }
    // Rewrite-engine accounting across the whole matrix: per-pattern
    // firing counts and the total wall-clock spent inside the drivers.
    let mut merged = asdf_ir::pass::PassStatistics::new();
    for config in &report.configs {
        merged.merge(&config.stats);
    }
    let firings = merged.pattern_firings();
    let rewrite_wall = merged.rewrite_wall_clock();
    let total_firings: usize = firings.iter().map(|(_, c)| c).sum();
    println!(
        "rewrite engine: {} pattern firings, {:.3?} total rewrite wall-clock",
        total_firings, rewrite_wall
    );
    for (name, count) in &firings {
        println!("  {name:<32} {count:>8}");
    }
    if show_stats {
        for config in &report.configs {
            println!("\n--- merged pass statistics: {} ---", config.name);
            print!("{}", config.stats.render_table());
        }
    }
    if report.passed() {
        println!("OK: all configurations agree on all generated programs");
        ExitCode::SUCCESS
    } else {
        for mismatch in &report.mismatches {
            println!("\n{mismatch}");
        }
        ExitCode::FAILURE
    }
}

fn parse_u64(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("difftest: {message} (--help for usage)");
    ExitCode::from(2)
}
