//! Routing-vs-unrouted equivalence on difftest-generated circuits.
//!
//! Every generated program that compiles to a measurement-free static
//! circuit of at most 8 qubits is routed onto restricted-connectivity
//! targets and cross-checked against the all-to-all original with the
//! permutation-aware unitary oracle: the routed circuit must use only
//! native gates on coupled pairs ([`asdf_target::Target::validate`]) and
//! implement the same unitary up to the router's reported input/output
//! wire permutations.

use asdf_core::{CompileOptions, CompileRequest, Session};
use asdf_difftest::{gen_case, GenOptions};
use asdf_qcircuit::{Circuit, CircuitOp};
use asdf_sim::circuits_equivalent_up_to_output_permutation;
use asdf_target::Target;
use proptest::prelude::*;

const TARGETS: [&str; 2] = ["linear-8", "grid-2x4"];

/// Compiles a generated case to a static circuit, keeping only the
/// measurement-free ones small enough for unitary cross-checking.
fn generated_circuit(sweep_seed: u64, index: usize) -> Option<Circuit> {
    let case = gen_case(sweep_seed, index, &GenOptions::default());
    if case.measure.is_some() {
        return None;
    }
    let rendered = case.render();
    let session = Session::new(&rendered.source).ok()?;
    let mut request = CompileRequest::kernel(&rendered.kernel).with_captures(&rendered.captures);
    for (name, value) in &rendered.dims {
        request = request.with_dim(name, *value);
    }
    let compiled = session.compile(&request.with_options(CompileOptions::default())).ok()?;
    let circuit = compiled.circuit.clone()?;
    let gates_only = circuit.ops.iter().all(|op| matches!(op, CircuitOp::Gate { .. }));
    (gates_only && circuit.num_qubits <= 8).then_some(circuit)
}

fn check_routes(circuit: &Circuit) {
    for name in TARGETS {
        let target = Target::parse(name).expect("builtin-shaped target parses");
        let routed = target.route(circuit).expect("8-qubit circuit fits an 8-qubit target");
        target
            .validate(&routed.circuit)
            .expect("routed circuit uses only native gates on coupled pairs");
        assert!(
            circuits_equivalent_up_to_output_permutation(
                circuit,
                &routed.circuit,
                &routed.info.initial_layout,
                &routed.info.final_layout,
                circuit.num_qubits,
                1e-9,
            ),
            "routing onto {name} changed the unitary (beyond wire permutation)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random difftest programs: routing preserves semantics up to the
    /// reported wire permutations on every target.
    #[test]
    fn routing_preserves_generated_circuits(sweep_seed in 0u64..1u64 << 32, index in 0usize..8) {
        if let Some(circuit) = generated_circuit(sweep_seed, index) {
            check_routes(&circuit);
        }
    }
}

/// A deterministic population on top of the random one, so a fixed set of
/// generated circuits is always covered.
#[test]
fn routing_preserves_a_fixed_population() {
    let mut checked = 0usize;
    for index in 0..30 {
        if let Some(circuit) = generated_circuit(0x207E7, index) {
            check_routes(&circuit);
            checked += 1;
        }
    }
    assert!(checked >= 10, "only {checked} of 30 generated cases produced routable circuits");
}
