//! End-to-end pipeline tests: Qwerty source → circuit → simulation.
//!
//! These validate the algorithm-level postconditions the paper's
//! benchmarks rely on (§8.1): Bernstein–Vazirani recovers the secret
//! string, Deutsch–Jozsa distinguishes balanced oracles, Grover amplifies
//! the marked item, Simon's samples satisfy y·s = 0, and the synthesized
//! basis translations implement the advertised unitaries.

use asdf_ast::expand::CaptureValue;
use asdf_core::{CompileOptions, Compiled, Compiler};
use asdf_sim::{sample, Simulator};

fn compile(src: &str, kernel: &str, captures: Vec<CaptureValue>) -> Compiled {
    Compiler::compile(src, kernel, &captures, &CompileOptions::default()).unwrap()
}

const BV_SRC: &str = r"
    classical f[N](secret: bit[N], x: bit[N]) -> bit {
        (secret & x).xor_reduce()
    }
    qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
        'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
    }
";

fn bv_captures(secret: &str) -> Vec<CaptureValue> {
    vec![CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(secret)],
    }]
}

#[test]
fn bernstein_vazirani_recovers_secret() {
    for secret in ["1010", "1111", "0001", "110011"] {
        let compiled = compile(BV_SRC, "kernel", bv_captures(secret));
        let circuit = compiled.circuit.expect("BV fully inlines");
        // BV is deterministic: every shot yields the secret.
        let counts = sample(&circuit, 16, 97);
        assert_eq!(counts.len(), 1, "secret {secret}: {counts:?}");
        assert_eq!(counts[secret], 16, "secret {secret}");
    }
}

#[test]
fn bv_inlines_to_zero_callables() {
    let compiled = compile(BV_SRC, "kernel", bv_captures("1010"));
    // Fully inlined: exactly one function, no callable ops (Table 1's
    // Asdf (Opt) row).
    assert_eq!(compiled.module.len(), 1);
    let func = compiled.module.func("kernel").unwrap();
    for op in &func.body.ops {
        assert!(
            !matches!(
                op.kind,
                asdf_ir::OpKind::CallableCreate { .. } | asdf_ir::OpKind::CallableInvoke
            ),
            "unexpected callable op"
        );
    }
}

#[test]
fn deutsch_jozsa_balanced_oracle() {
    let src = r"
        classical balanced[N](x: bit[N]) -> bit { x.xor_reduce() }
        qpu dj[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
        }
    ";
    let captures = vec![CaptureValue::CFunc { name: "balanced".into(), captures: vec![] }];
    let compiled =
        Compiler::compile(src, "dj", &captures, &CompileOptions::default().with_dim("N", 5))
            .unwrap();
    let circuit = compiled.circuit.unwrap();
    // Balanced oracle: the all-zeros outcome has zero probability; the
    // parity oracle in fact always yields all-ones.
    let counts = sample(&circuit, 32, 3);
    assert_eq!(counts.len(), 1);
    assert_eq!(counts["11111"], 32);
}

#[test]
fn grover_amplifies_marked_item() {
    let src = r"
        classical oracle[N](x: bit[N]) -> bit { x.and_reduce() }
        qpu grover[N](f: cfunc[N, 1]) -> bit[N] {
            'p'[N] | (f.sign | {'p'[N]} >> {-'p'[N]}) ** 3 | std[N].measure
        }
    ";
    let captures = vec![CaptureValue::CFunc { name: "oracle".into(), captures: vec![] }];
    let compiled =
        Compiler::compile(src, "grover", &captures, &CompileOptions::default().with_dim("N", 4))
            .unwrap();
    let circuit = compiled.circuit.unwrap();
    // After 3 iterations on 4 qubits, P(|1111>) ~ 0.96.
    let counts = sample(&circuit, 200, 11);
    let hits = counts.get("1111").copied().unwrap_or(0);
    assert!(hits > 150, "Grover peak too weak: {counts:?}");
}

#[test]
fn simon_samples_are_orthogonal_to_secret() {
    let src = r"
        classical f[N](s: bit[N], x: bit[N]) -> bit[N] {
            x ^ (x[0].repeat(N) & s)
        }
        qpu simon[N](f: cfunc[N, N]) -> bit[2*N] {
            'p'[N] + '0'[N] | f.xor | (pm[N] >> std[N]) + id[N] | std[2*N].measure
        }
    ";
    // Secret s = 110 (nonzero, s[0] = 1 so f(x) = f(x XOR s)).
    let secret = [true, true, false];
    let captures = vec![CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str("110")],
    }];
    let compiled = Compiler::compile(src, "simon", &captures, &CompileOptions::default()).unwrap();
    let circuit = compiled.circuit.unwrap();
    let mut sim = Simulator::new(23);
    let mut nontrivial = 0;
    for _ in 0..64 {
        let result = sim.run(&circuit);
        let y = &result.bits[..3];
        let dot = y.iter().zip(&secret).fold(false, |acc, (&a, &b)| acc ^ (a && b));
        assert!(!dot, "Simon sample y={y:?} not orthogonal to s");
        if y.iter().any(|&b| b) {
            nontrivial += 1;
        }
    }
    assert!(nontrivial > 10, "Simon should produce nontrivial equations");
}

#[test]
fn period_finding_qft_runs() {
    // QFT-based period finding with a bitmask oracle (§8.1): the oracle
    // keeps the low bits, giving period 2^(masked bits).
    let src = r"
        classical f[N](mask: bit[N], x: bit[N]) -> bit[N] { x & mask }
        qpu period[N](f: cfunc[N, N]) -> bit[2*N] {
            'p'[N] + '0'[N] | f.xor | fourier[N].measure + std[N].measure
        }
    ";
    // Mask 011 keeps the low two bits, so f(x + 4) = f(x): additive
    // period 4 on a 3-bit register, frequency spacing 8/4 = 2.
    let captures = vec![CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str("011")],
    }];
    let compiled = Compiler::compile(src, "period", &captures, &CompileOptions::default()).unwrap();
    let circuit = compiled.circuit.unwrap();
    let counts = sample(&circuit, 128, 31);
    let mut nonzero = 0usize;
    for (bits, n) in &counts {
        let y = usize::from_str_radix(&bits[..3], 2).unwrap();
        assert_eq!(y % 2, 0, "QFT output {bits} not a multiple of the period frequency");
        if y != 0 {
            nonzero += n;
        }
    }
    assert!(nonzero > 20, "period finding should yield nonzero frequencies: {counts:?}");
}

#[test]
fn swap_translation_is_swap() {
    let src = r"
        qpu swapper(qs: qubit[2]) -> bit[2] {
            qs | {'01','10'} >> {'10','01'} | std[2].measure
        }
    ";
    let compiled = compile(src, "swapper", vec![]);
    let circuit = compiled.circuit.unwrap();
    // Prepare |01>: measurement must read |10>.
    let mut with_prep = asdf_qcircuit::Circuit::new(circuit.num_qubits);
    with_prep.gate(asdf_ir::GateKind::X, &[], &[1]);
    for op in &circuit.ops {
        with_prep.ops.push(op.clone());
    }
    let counts = sample(&with_prep, 8, 5);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("10"), "{counts:?}");
}

#[test]
fn predicated_flip_is_cnot() {
    let src = r"
        qpu cnot(qs: qubit[2]) -> bit[2] {
            qs | '1' & std.flip | std[2].measure
        }
    ";
    let compiled = compile(src, "cnot", vec![]);
    let circuit = compiled.circuit.unwrap();
    // |10> -> |11>, |00> -> |00>.
    let mut flipped = asdf_qcircuit::Circuit::new(circuit.num_qubits);
    flipped.gate(asdf_ir::GateKind::X, &[], &[0]);
    flipped.ops.extend(circuit.ops.iter().cloned());
    let counts = sample(&flipped, 8, 5);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("11"), "{counts:?}");
    let counts = sample(&circuit, 8, 5);
    assert!(counts.contains_key("00"), "{counts:?}");
}

#[test]
fn grover_diffuser_matches_fig8() {
    // {'p'[3]} >> {-'p'[3]} applied to |000> flips nothing observable, but
    // applied to |+++> it gives -|+++>; check via interference: the
    // diffuser conjugated into std space maps |000> to |000> minus
    // amplitude elsewhere. Simplest observable check: diffuser twice is
    // identity.
    let src = r"
        qpu diffuse(qs: qubit[3]) -> bit[3] {
            qs | ({'p'[3]} >> {-'p'[3]}) ** 2 | std[3].measure
        }
    ";
    let compiled = compile(src, "diffuse", vec![]);
    let circuit = compiled.circuit.unwrap();
    let counts = sample(&circuit, 16, 9);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("000"), "diffuser^2 = identity, got {counts:?}");
}

#[test]
fn adjoint_undoes_translation() {
    let src = r"
        qpu roundtrip(q: qubit) -> bit[1] {
            q | std >> pm | ~(std >> pm) | std.measure
        }
    ";
    let compiled = compile(src, "roundtrip", vec![]);
    let circuit = compiled.circuit.unwrap();
    let counts = sample(&circuit, 16, 9);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("0"), "{counts:?}");
}

#[test]
fn no_opt_configuration_emits_callables() {
    let compiled =
        Compiler::compile(BV_SRC, "kernel", &bv_captures("1010"), &CompileOptions::no_opt())
            .unwrap();
    // Without inlining, the functional structure survives as callables
    // (Table 1's Asdf (No Opt) row has nonzero counts).
    let mut creates = 0;
    let mut invokes = 0;
    for func in compiled.module.funcs() {
        for path in func.block_paths() {
            for op in &func.block_at(&path).ops {
                match op.kind {
                    asdf_ir::OpKind::CallableCreate { .. } => creates += 1,
                    asdf_ir::OpKind::CallableInvoke => invokes += 1,
                    _ => {}
                }
            }
        }
    }
    assert!(creates > 0, "no-opt should create callables");
    assert!(invokes > 0, "no-opt should invoke callables");
    assert!(compiled.circuit.is_none(), "no-opt kernels are not straight-line");
}

#[test]
fn fourier_roundtrip_is_identity() {
    let src = r"
        qpu ft(qs: qubit[3]) -> bit[3] {
            qs | std[3] >> fourier[3] | fourier[3] >> std[3] | std[3].measure
        }
    ";
    let compiled = compile(src, "ft", vec![]);
    let circuit = compiled.circuit.unwrap();
    let mut with_prep = asdf_qcircuit::Circuit::new(circuit.num_qubits);
    with_prep.gate(asdf_ir::GateKind::X, &[], &[2]);
    with_prep.ops.extend(circuit.ops.iter().cloned());
    let counts = sample(&with_prep, 16, 2);
    assert_eq!(counts.len(), 1);
    assert!(counts.contains_key("001"), "{counts:?}");
}
