//! QFT-based period finding with a bitmask oracle (§8.1): measuring the
//! `fourier[N]` register yields multiples of the frequency `2^N / r`.
//!
//! ```text
//! cargo run --example period_finding [n] [kept-low-bits]
//! ```

use qwerty_asdf::ast::expand::CaptureValue;
use qwerty_asdf::core::{CompileOptions, Compiler};
use qwerty_asdf::sim::sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let kept: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    assert!(kept < n, "must mask off at least one high bit");

    // Keep the low `kept` bits: f(x + 2^kept) = f(x), so the period is
    // r = 2^kept and measured frequencies are multiples of 2^n / r.
    let mask: String = (0..n).map(|i| if i >= n - kept { '1' } else { '0' }).collect();
    let period = 1usize << kept;
    let freq = (1usize << n) / period;

    let source = r"
        classical f[N](mask: bit[N], x: bit[N]) -> bit[N] { x & mask }

        qpu period[N](f: cfunc[N, N]) -> bit[2*N] {
            'p'[N] + '0'[N] | f.xor | fourier[N].measure + std[N].measure
        }
    ";
    let captures = vec![CaptureValue::CFunc {
        name: "f".into(),
        captures: vec![CaptureValue::bits_from_str(&mask)],
    }];
    let compiled = Compiler::compile(source, "period", &captures, &CompileOptions::default())?;
    let circuit = compiled.circuit.expect("period finding inlines");

    println!("mask = {mask}, true period r = {period}, frequency spacing = {freq}");
    let counts = sample(&circuit, 256, 77);
    let mut freqs: Vec<(usize, usize)> = counts
        .iter()
        .map(|(bits, count)| (usize::from_str_radix(&bits[..n], 2).unwrap(), *count))
        .collect();
    freqs.sort();
    println!("measured QFT-register values (should all be multiples of {freq}):");
    for (y, count) in &freqs {
        println!("  y = {y:>4}: {count} shots");
        assert_eq!(y % freq, 0, "y = {y} is not a multiple of {freq}");
    }
    println!("\nperiod recovered: r = 2^n / gcd spacing = {period}");
    Ok(())
}
