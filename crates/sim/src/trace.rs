//! Deterministic execution traces: record / replay for conformance
//! testing.
//!
//! A [`Trace`] is a step-by-step log of one seeded shot of a circuit,
//! executed by a deliberately simple scalar reference interpreter
//! ([`StateVector::apply_naive`] plus a seeded RNG) — the semantic
//! authority the fused / SIMD / threaded fast paths are validated
//! against. Each step records what happened (gate label, measurement
//! probability and outcome) and a quantized digest of the full state
//! vector, so two traces diverge at the *first* step where two
//! executions disagree, not merely in their final bits.
//!
//! Traces serialize to a line-oriented text form ([`Trace::to_text`] /
//! [`Trace::from_text`]) suitable for goldens under version control, and
//! [`replay_divergence`] re-executes a circuit under a golden trace's
//! seed and reports the first mismatching step — the conformance suite's
//! miscompilation detector.

use crate::state::StateVector;
use asdf_qcircuit::{Circuit, CircuitOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Amplitudes are quantized to this grid (in units of 1) before
/// digesting, so a digest tolerates sub-grid floating-point noise while
/// still pinning the state to ~6 significant decimals.
pub const AMPLITUDE_GRID: f64 = 1e-6;

/// Probabilities are recorded quantized to millionths.
pub const PROB_GRID: f64 = 1e-6;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A quantized FNV-64 digest of a state vector: each amplitude's real
/// and imaginary parts are rounded to the [`AMPLITUDE_GRID`] and hashed
/// in order.
pub fn state_digest(state: &StateVector) -> u64 {
    let mut bytes = Vec::with_capacity(state.amplitudes().len() * 16);
    for amp in state.amplitudes() {
        let re = (amp.re / AMPLITUDE_GRID).round() as i64;
        let im = (amp.im / AMPLITUDE_GRID).round() as i64;
        bytes.extend_from_slice(&re.to_le_bytes());
        bytes.extend_from_slice(&im.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// One recorded execution step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A (possibly controlled) gate was applied.
    Gate {
        /// Rendered gate, e.g. `H c=[] t=[0]`.
        label: String,
        /// Post-step state digest.
        digest: u64,
    },
    /// A qubit was measured.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        bit: usize,
        /// Pre-collapse P(1), quantized to millionths.
        prob_one_micro: u64,
        /// The sampled outcome.
        outcome: bool,
        /// Post-step state digest.
        digest: u64,
    },
    /// A qubit was reset to |0>.
    Reset {
        /// The qubit.
        qubit: usize,
        /// The implicitly measured outcome that was corrected away.
        outcome: bool,
        /// Post-step state digest.
        digest: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Gate { label, digest } => {
                write!(f, "gate {label} digest {digest:016x}")
            }
            TraceEvent::Measure { qubit, bit, prob_one_micro, outcome, digest } => {
                write!(
                    f,
                    "measure q{qubit} -> b{bit} p1 {prob_one_micro} out {} digest {digest:016x}",
                    u8::from(*outcome)
                )
            }
            TraceEvent::Reset { qubit, outcome, digest } => {
                write!(f, "reset q{qubit} out {} digest {digest:016x}", u8::from(*outcome))
            }
        }
    }
}

/// A full deterministic execution trace of one shot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Qubit count of the traced circuit.
    pub num_qubits: usize,
    /// The RNG seed the shot ran under.
    pub seed: u64,
    /// One event per circuit op, in execution order.
    pub events: Vec<TraceEvent>,
    /// Final classical bits.
    pub bits: Vec<bool>,
    /// Digest of the final state.
    pub final_digest: u64,
}

/// The first step where two executions disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based step index (`events.len()` means the divergence is in
    /// the header, the final bits, or the trace length).
    pub step: usize,
    /// What the golden trace recorded.
    pub expected: String,
    /// What the replay produced.
    pub actual: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace divergence at step {}: expected `{}`, got `{}`",
            self.step, self.expected, self.actual
        )
    }
}

fn gate_label(gate: asdf_ir::GateKind, controls: &[usize], targets: &[usize]) -> String {
    format!("{gate} c={controls:?} t={targets:?}")
}

/// Records one seeded shot of `circuit` through the scalar reference
/// interpreter. The RNG stream matches [`crate::Simulator`]'s
/// (`StdRng::seed_from_u64` consumed once per measurement and once per
/// non-trivial reset), so traces and fast-path runs of the same circuit
/// under the same seed measure the same outcomes.
pub fn record_trace(circuit: &Circuit, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = StateVector::zero(circuit.num_qubits);
    let mut bits = vec![false; circuit.num_bits()];
    let mut events = Vec::with_capacity(circuit.ops.len());
    for op in &circuit.ops {
        let event = match op {
            CircuitOp::Gate { gate, controls, targets } => {
                state.apply_naive(*gate, controls, targets);
                TraceEvent::Gate {
                    label: gate_label(*gate, controls, targets),
                    digest: state_digest(&state),
                }
            }
            CircuitOp::Measure { qubit, bit } => {
                let p1 = state.prob_one(*qubit);
                let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
                state.collapse(*qubit, outcome);
                bits[*bit] = outcome;
                TraceEvent::Measure {
                    qubit: *qubit,
                    bit: *bit,
                    prob_one_micro: (p1 / PROB_GRID).round() as u64,
                    outcome,
                    digest: state_digest(&state),
                }
            }
            CircuitOp::Reset { qubit } => {
                let p1 = state.prob_one(*qubit);
                let mut outcome = false;
                if p1 > 1e-12 {
                    outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
                    state.collapse(*qubit, outcome);
                    if outcome {
                        state.apply_naive(asdf_ir::GateKind::X, &[], &[*qubit]);
                    }
                }
                TraceEvent::Reset { qubit: *qubit, outcome, digest: state_digest(&state) }
            }
        };
        events.push(event);
    }
    let final_digest = state_digest(&state);
    Trace { num_qubits: circuit.num_qubits, seed, events, bits, final_digest }
}

/// Re-executes `circuit` under `golden`'s seed and reports the first
/// step where the fresh trace disagrees with the golden one, or `None`
/// when the executions are step-for-step identical.
pub fn replay_divergence(golden: &Trace, circuit: &Circuit) -> Option<Divergence> {
    golden.diff(&record_trace(circuit, golden.seed))
}

impl Trace {
    /// The first divergence between `self` (expected) and `other`
    /// (actual), or `None` when identical.
    pub fn diff(&self, other: &Trace) -> Option<Divergence> {
        if self.num_qubits != other.num_qubits {
            return Some(Divergence {
                step: 0,
                expected: format!("{} qubits", self.num_qubits),
                actual: format!("{} qubits", other.num_qubits),
            });
        }
        for (step, (expected, actual)) in self.events.iter().zip(&other.events).enumerate() {
            if expected != actual {
                return Some(Divergence {
                    step,
                    expected: expected.to_string(),
                    actual: actual.to_string(),
                });
            }
        }
        if self.events.len() != other.events.len() {
            return Some(Divergence {
                step: self.events.len().min(other.events.len()),
                expected: format!("{} steps", self.events.len()),
                actual: format!("{} steps", other.events.len()),
            });
        }
        if self.bits != other.bits {
            return Some(Divergence {
                step: self.events.len(),
                expected: format!("bits {}", bit_string(&self.bits)),
                actual: format!("bits {}", bit_string(&other.bits)),
            });
        }
        if self.final_digest != other.final_digest {
            return Some(Divergence {
                step: self.events.len(),
                expected: format!("final digest {:016x}", self.final_digest),
                actual: format!("final digest {:016x}", other.final_digest),
            });
        }
        None
    }

    /// Serializes the trace to its line-oriented golden text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("trace v1\n");
        out.push_str(&format!("qubits {}\n", self.num_qubits));
        out.push_str(&format!("seed {}\n", self.seed));
        for (step, event) in self.events.iter().enumerate() {
            out.push_str(&format!("step {step} {event}\n"));
        }
        out.push_str(&format!("bits {}\n", bit_string(&self.bits)));
        out.push_str(&format!("final {:016x}\n", self.final_digest));
        out
    }

    /// Parses the [`Trace::to_text`] form.
    ///
    /// # Errors
    ///
    /// Returns a rendered description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines();
        expect_line(&mut lines, "trace v1")?;
        let num_qubits = field(&mut lines, "qubits")?.parse().map_err(bad("qubits"))?;
        let seed = field(&mut lines, "seed")?.parse().map_err(bad("seed"))?;
        let mut events = Vec::new();
        let mut bits = None;
        for line in lines.by_ref() {
            if let Some(rest) = line.strip_prefix("bits ") {
                bits = Some(parse_bits(rest)?);
                break;
            }
            let rest = line
                .strip_prefix("step ")
                .ok_or_else(|| format!("expected `step` or `bits` line, got {line:?}"))?;
            let (_, event) =
                rest.split_once(' ').ok_or_else(|| format!("malformed step line {line:?}"))?;
            events.push(parse_event(event)?);
        }
        let bits = bits.ok_or_else(|| "missing `bits` line".to_string())?;
        let final_line = lines.next().ok_or_else(|| "missing `final` line".to_string())?;
        let final_digest = final_line
            .strip_prefix("final ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("malformed final line {final_line:?}"))?;
        Ok(Trace { num_qubits, seed, events, bits, final_digest })
    }
}

fn bit_string(bits: &[bool]) -> String {
    if bits.is_empty() {
        return "-".to_string();
    }
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn parse_bits(text: &str) -> Result<Vec<bool>, String> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad bit character {other:?}")),
        })
        .collect()
}

fn expect_line<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    expected: &str,
) -> Result<(), String> {
    match lines.next() {
        Some(line) if line == expected => Ok(()),
        Some(line) => Err(format!("expected {expected:?}, got {line:?}")),
        None => Err(format!("expected {expected:?}, got end of input")),
    }
}

fn field<'a>(lines: &mut impl Iterator<Item = &'a str>, name: &str) -> Result<&'a str, String> {
    let line = lines.next().ok_or_else(|| format!("missing `{name}` line"))?;
    line.strip_prefix(name)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| format!("expected `{name}` line, got {line:?}"))
}

fn bad(name: &'static str) -> impl Fn(std::num::ParseIntError) -> String {
    move |e| format!("bad `{name}` value: {e}")
}

fn parse_event(text: &str) -> Result<TraceEvent, String> {
    let (digest_rest, digest) =
        text.rsplit_once(" digest ").ok_or_else(|| format!("event without digest: {text:?}"))?;
    let digest =
        u64::from_str_radix(digest, 16).map_err(|e| format!("bad digest in {text:?}: {e}"))?;
    if let Some(label) = digest_rest.strip_prefix("gate ") {
        return Ok(TraceEvent::Gate { label: label.to_string(), digest });
    }
    if let Some(rest) = digest_rest.strip_prefix("measure q") {
        // `<qubit> -> b<bit> p1 <micro> out <0|1>`
        let parts: Vec<&str> = rest.split(' ').collect();
        let [qubit, "->", bit, "p1", micro, "out", out] = parts.as_slice() else {
            return Err(format!("malformed measure event {text:?}"));
        };
        return Ok(TraceEvent::Measure {
            qubit: qubit.parse().map_err(|e| format!("bad qubit in {text:?}: {e}"))?,
            bit: bit
                .strip_prefix('b')
                .and_then(|b| b.parse().ok())
                .ok_or_else(|| format!("bad bit in {text:?}"))?,
            prob_one_micro: micro.parse().map_err(|e| format!("bad p1 in {text:?}: {e}"))?,
            outcome: parse_outcome(out, text)?,
            digest,
        });
    }
    if let Some(rest) = digest_rest.strip_prefix("reset q") {
        let parts: Vec<&str> = rest.split(' ').collect();
        let [qubit, "out", out] = parts.as_slice() else {
            return Err(format!("malformed reset event {text:?}"));
        };
        return Ok(TraceEvent::Reset {
            qubit: qubit.parse().map_err(|e| format!("bad qubit in {text:?}: {e}"))?,
            outcome: parse_outcome(out, text)?,
            digest,
        });
    }
    Err(format!("unknown event kind: {text:?}"))
}

fn parse_outcome(out: &str, context: &str) -> Result<bool, String> {
    match out {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("bad outcome in {context:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::GateKind;

    fn bell_pair() -> Circuit {
        let mut c = Circuit::new(2);
        c.ops.push(CircuitOp::Gate { gate: GateKind::H, controls: vec![], targets: vec![0] });
        c.ops.push(CircuitOp::Gate { gate: GateKind::X, controls: vec![0], targets: vec![1] });
        c.ops.push(CircuitOp::Measure { qubit: 0, bit: 0 });
        c.ops.push(CircuitOp::Measure { qubit: 1, bit: 1 });
        c
    }

    #[test]
    fn recording_is_deterministic_and_text_round_trips() {
        let circuit = bell_pair();
        let trace = record_trace(&circuit, 42);
        assert_eq!(trace, record_trace(&circuit, 42));
        assert_eq!(trace.events.len(), 4);
        // Bell correlations: both bits agree.
        assert_eq!(trace.bits[0], trace.bits[1]);
        let text = trace.to_text();
        let back = Trace::from_text(&text).expect("parse back");
        assert_eq!(back, trace);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn replay_matches_itself_and_catches_sabotage() {
        let circuit = bell_pair();
        let golden = record_trace(&circuit, 7);
        assert_eq!(replay_divergence(&golden, &circuit), None);

        // Sabotage: a miscompiled H -> Z at step 0 diverges immediately.
        let mut sabotaged = circuit.clone();
        sabotaged.ops[0] =
            CircuitOp::Gate { gate: GateKind::Z, controls: vec![], targets: vec![0] };
        let divergence = replay_divergence(&golden, &sabotaged).expect("must diverge");
        assert_eq!(divergence.step, 0);
        assert!(divergence.expected.contains("gate h"), "{divergence}");

        // Sabotage: a dropped trailing op diverges on length.
        let mut truncated = circuit.clone();
        truncated.ops.pop();
        let divergence = replay_divergence(&golden, &truncated).expect("must diverge");
        assert_eq!(divergence.step, 3);
    }

    #[test]
    fn different_seeds_may_measure_differently_but_both_replay_clean() {
        let circuit = bell_pair();
        for seed in 0..8 {
            let golden = record_trace(&circuit, seed);
            assert_eq!(replay_divergence(&golden, &circuit), None, "seed {seed}");
        }
    }

    #[test]
    fn malformed_trace_text_yields_errors_not_panics() {
        for text in [
            "",
            "trace v2\nqubits 1\nseed 0\nbits -\nfinal 0",
            "trace v1\nqubits x\nseed 0\nbits -\nfinal 0",
            "trace v1\nqubits 1\nseed 0\nstep 0 warp q0 digest 00\nbits -\nfinal 0",
            "trace v1\nqubits 1\nseed 0\nbits 2\nfinal 0",
            "trace v1\nqubits 1\nseed 0\nbits -",
            "trace v1\nqubits 1\nseed 0\nbits -\nfinal zz",
        ] {
            assert!(Trace::from_text(text).is_err(), "{text:?} must not parse");
        }
    }
}
