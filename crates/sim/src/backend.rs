//! The `sim` output backend: simulation results as the emission target.
//!
//! Where `qasm`/`qir-*` emit a program for someone else to run, the `sim`
//! backend runs the compiled circuit on the state-vector simulator and
//! emits the *result* as deterministic text:
//!
//! - a circuit whose measurements are all terminal emits the exact
//!   outcome distribution, one `bits probability` line per outcome;
//! - a measurement-free circuit emits the final state's nonzero
//!   amplitudes from |0...0⟩;
//! - anything else (mid-circuit measurement/reset) falls back to seeded
//!   sampling, so the text is still reproducible.
//!
//! Registering it in the same [`asdf_codegen::BackendRegistry`] as the text backends is
//! what lets `asdf_core::Session::emit(artifact, "sim")` treat "simulate
//! it" as just another target.

use crate::kernel::KernelProgram;
use crate::run::{measurement_distribution_threads, pool_for_state, sample_per_shot};
use crate::state::StateVector;
use asdf_codegen::backend::{Backend, BackendError, EmitInput};
use asdf_qcircuit::CircuitOp;

/// Shots used by the sampling fallback (mid-circuit measurements).
const FALLBACK_SHOTS: usize = 4096;
/// Seed used by the sampling fallback, for reproducible text.
const FALLBACK_SEED: u64 = 0x51D_BACC;

/// The state-vector simulation backend (registry name `sim`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend {
    /// Simulation worker threads: `0` sizes the pool automatically from
    /// the state size (see [`crate::run::PARALLEL_STATE_MIN`]), `n`
    /// forces exactly `n` workers. Results are identical either way.
    threads: usize,
}

impl SimBackend {
    /// A backend pinned to `threads` simulation workers (`0` = automatic).
    pub fn with_threads(threads: usize) -> Self {
        SimBackend { threads }
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn description(&self) -> &'static str {
        "state-vector simulation: exact outcome distribution or final amplitudes"
    }

    fn emit(&self, input: &EmitInput<'_>) -> Result<String, BackendError> {
        let circuit = input
            .circuit
            .ok_or_else(|| BackendError::NeedsCircuit { backend: self.name().to_string() })?;

        let measures = circuit
            .ops
            .iter()
            .any(|op| matches!(op, CircuitOp::Measure { .. } | CircuitOp::Reset { .. }));
        if measures {
            if let Some(dist) = measurement_distribution_threads(circuit, self.threads) {
                let mut out = String::from("# exact measurement distribution\n");
                for (bits, p) in dist {
                    out.push_str(&format!("{bits} {p:.12}\n"));
                }
                return Ok(out);
            }
            // Mid-circuit measurement or reset: per-shot sampling with a
            // fixed seed keeps the emitted text deterministic.
            let counts = sample_per_shot(circuit, FALLBACK_SHOTS, FALLBACK_SEED);
            let mut entries: Vec<(String, usize)> = counts.into_iter().collect();
            entries.sort();
            let mut out =
                format!("# sampled counts ({FALLBACK_SHOTS} shots, seed {FALLBACK_SEED:#x})\n");
            for (bits, count) in entries {
                out.push_str(&format!("{bits} {count}\n"));
            }
            return Ok(out);
        }

        // Measurement-free: the final state from |0...0>.
        let mut state = StateVector::zero(circuit.num_qubits);
        let pool = pool_for_state(self.threads, state.amplitudes().len());
        KernelProgram::compile(circuit).apply_gates_pooled(&mut state, &pool);
        let n = circuit.num_qubits;
        let mut out = String::from("# final state amplitudes from |0...0>\n");
        for (index, amp) in state.amplitudes().iter().enumerate() {
            if amp.norm_sqr() < 1e-18 {
                continue;
            }
            out.push_str(&format!("|{index:0n$b}> {:+.12}{:+.12}i\n", amp.re, amp.im));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_ir::{GateKind, Module};
    use asdf_qcircuit::Circuit;

    fn emit(circuit: &Circuit) -> String {
        let module = Module::new();
        let input = EmitInput { module: &module, entry: "k", circuit: Some(circuit) };
        SimBackend::default().emit(&input).unwrap()
    }

    #[test]
    fn terminal_measurements_emit_exact_distribution() {
        // Bell pair, both qubits measured: 00 and 11 at probability 1/2.
        let mut circuit = Circuit::new(2);
        circuit.gate(GateKind::H, &[], &[0]);
        circuit.gate(GateKind::X, &[0], &[1]);
        circuit.measure(0, 0);
        circuit.measure(1, 1);
        let text = emit(&circuit);
        assert!(text.starts_with("# exact measurement distribution"));
        assert!(text.contains("00 0.5000"));
        assert!(text.contains("11 0.5000"));
        assert!(!text.contains("01 "));
    }

    #[test]
    fn measurement_free_emits_amplitudes() {
        let mut circuit = Circuit::new(1);
        circuit.gate(GateKind::H, &[], &[0]);
        let text = emit(&circuit);
        assert!(text.starts_with("# final state amplitudes"));
        assert!(text.contains("|0> +0.7071"));
        assert!(text.contains("|1> +0.7071"));
    }

    #[test]
    fn missing_circuit_is_a_structured_error() {
        let module = Module::new();
        let input = EmitInput { module: &module, entry: "k", circuit: None };
        let err = SimBackend::default().emit(&input).unwrap_err();
        assert!(matches!(err, BackendError::NeedsCircuit { .. }), "{err}");
    }
}
