//! Compiler-core errors.

use std::error::Error;
use std::fmt;

/// An error raised during lowering, transformation, or synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Frontend failure (parse/typecheck), forwarded.
    Frontend(String),
    /// IR verification or transformation failure, forwarded.
    Ir(String),
    /// Basis synthesis failure (alignment, standardization, permutation).
    Synthesis(String),
    /// A construct valid in the language but outside what this compiler
    /// build supports.
    Unsupported(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Frontend(m) => write!(f, "frontend error: {m}"),
            CoreError::Ir(m) => write!(f, "ir error: {m}"),
            CoreError::Synthesis(m) => write!(f, "synthesis error: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl Error for CoreError {}

impl From<asdf_ir::IrError> for CoreError {
    fn from(e: asdf_ir::IrError) -> Self {
        CoreError::Ir(e.to_string())
    }
}

impl From<asdf_ir::pass::PassError> for CoreError {
    fn from(e: asdf_ir::pass::PassError) -> Self {
        CoreError::Ir(e.to_string())
    }
}

impl From<asdf_ast::FrontendError> for CoreError {
    fn from(e: asdf_ast::FrontendError) -> Self {
        CoreError::Frontend(e.to_string())
    }
}

impl From<asdf_basis::BasisError> for CoreError {
    fn from(e: asdf_basis::BasisError) -> Self {
        CoreError::Synthesis(e.to_string())
    }
}
