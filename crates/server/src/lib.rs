//! The compile-server front door.
//!
//! [`CompileServer`] multiplexes any number of clients onto shared
//! [`Session`]s — one session per distinct source text, each internally
//! concurrent (sharded caches + request coalescing), so identical
//! requests from different connections share one pipeline run. The wire
//! protocol is line-delimited JSON (see [`proto`]), served either over
//! TCP (thread per connection) or stdio; the `compile-server` binary
//! wires up both.
//!
//! ```text
//! → {"op":"compile","source":"qpu k() -> bit[1] { '0' | std.measure }","kernel":"k"}
//! ← {"ok":true,"entry":"k","circuit":{"qubits":1,"bits":1,"ops":2}}
//! ```

pub mod json;
pub mod proto;

use asdf_core::{CacheStats, CoreError, DiskCache, Session};
use json::Value;
use proto::{CompileCall, Request};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default bound on concurrently live sessions (distinct source texts).
pub const DEFAULT_SESSION_CAPACITY: usize = 8;

/// The per-target counter key for untargeted (all-to-all) compiles.
pub const ALL_TO_ALL: &str = "all-to-all";

/// A multi-tenant compile server: a bounded registry of shared sessions
/// keyed by source text, plus the line-protocol dispatcher.
pub struct CompileServer {
    registry: Mutex<Registry>,
    /// Successful compiles per hardware target (ALL_TO_ALL when none),
    /// surviving session eviction — stats report the server's lifetime.
    target_counts: Mutex<BTreeMap<String, u64>>,
    /// The persistent artifact store every session is layered over, when
    /// the server was started with a cache directory.
    disk: Option<DiskCache>,
}

/// LRU over live sessions: the session itself is the unit of eviction
/// (its internal caches are bounded separately).
struct Registry {
    sessions: HashMap<String, (Arc<Session>, u64)>,
    tick: u64,
    capacity: usize,
}

impl Default for CompileServer {
    fn default() -> Self {
        CompileServer::new()
    }
}

impl CompileServer {
    /// A server holding up to [`DEFAULT_SESSION_CAPACITY`] sessions.
    pub fn new() -> CompileServer {
        CompileServer::with_session_capacity(DEFAULT_SESSION_CAPACITY)
    }

    /// A server holding up to `capacity` distinct-source sessions; the
    /// least-recently-used session is dropped beyond that.
    pub fn with_session_capacity(capacity: usize) -> CompileServer {
        CompileServer {
            registry: Mutex::new(Registry {
                sessions: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
            }),
            target_counts: Mutex::new(BTreeMap::new()),
            disk: None,
        }
    }

    /// Layers every session over a persistent artifact cache rooted at
    /// `dir`, so compiled artifacts survive server restarts: a restarted
    /// server pointed at the same directory serves previously compiled
    /// requests from disk without re-running the pipeline.
    ///
    /// # Errors
    ///
    /// Fails (as an artifact-storage [`CoreError`]) when the directory
    /// cannot be created.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Result<CompileServer, CoreError> {
        let dir = dir.into();
        let cache =
            DiskCache::open(&dir, asdf_core::diskcache::DEFAULT_DISK_CAPACITY).map_err(|e| {
                CoreError::Artifact(asdf_artifact::ArtifactError::Io(format!(
                    "cannot open disk cache at {}: {e}",
                    dir.display()
                )))
            })?;
        self.disk = Some(cache);
        Ok(self)
    }

    /// The configured cache directory, if any.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.disk.as_ref().map(DiskCache::dir)
    }

    /// The shared session for `source`, created (and cached) on first use.
    ///
    /// The registry lock covers session construction, so concurrent
    /// first requests for one source build it once; construction is a
    /// parse only (compilation happens lazily per request), so the
    /// critical section stays short.
    pub fn session(&self, source: &str) -> Result<Arc<Session>, CoreError> {
        let mut registry = self.registry.lock().expect("registry lock");
        registry.tick += 1;
        let tick = registry.tick;
        if let Some((session, stamp)) = registry.sessions.get_mut(source) {
            *stamp = tick;
            return Ok(Arc::clone(session));
        }
        let mut builder = Session::builder(source);
        if let Some(disk) = &self.disk {
            builder = builder.disk_cache(disk.dir()).disk_cache_capacity(disk.capacity());
        }
        let session = Arc::new(builder.build()?);
        if registry.sessions.len() >= registry.capacity {
            if let Some(stalest) = registry
                .sessions
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(key, _)| key.clone())
            {
                registry.sessions.remove(&stalest);
            }
        }
        registry.sessions.insert(source.to_string(), (Arc::clone(&session), tick));
        Ok(session)
    }

    /// The number of live sessions.
    pub fn session_count(&self) -> usize {
        self.registry.lock().expect("registry lock").sessions.len()
    }

    /// Cache counters aggregated across every live session.
    pub fn stats(&self) -> (usize, CacheStats) {
        let registry = self.registry.lock().expect("registry lock");
        let mut merged = CacheStats::default();
        for (session, _) in registry.sessions.values() {
            merged.merge(&session.cache_stats());
        }
        (registry.sessions.len(), merged)
    }

    /// Handles one request line and returns one response line (no
    /// trailing newline). Never panics on malformed input: every failure
    /// becomes an `{"ok":false,…}` response.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match proto::parse_request(line) {
            Err(error) => protocol_error(&error),
            Ok(Request::Stats) => self.handle_stats(),
            Ok(Request::Compile(call)) => self.handle_compile(&call),
            Ok(Request::Emit(call, backend)) => self.handle_emit(&call, &backend),
            Ok(Request::Lint(call)) => self.handle_lint(&call),
        };
        response.to_string()
    }

    fn handle_compile(&self, call: &CompileCall) -> Value {
        match self.compile(call) {
            Err(response) => response,
            Ok((_, artifact)) => {
                let circuit = match &artifact.circuit {
                    None => Value::Null,
                    Some(circuit) => Value::Object(vec![
                        ("qubits".into(), Value::int(circuit.num_qubits as i64)),
                        ("bits".into(), Value::int(circuit.num_bits() as i64)),
                        ("ops".into(), Value::int(circuit.ops.len() as i64)),
                    ]),
                };
                let routing = match &artifact.routing {
                    None => Value::Null,
                    Some(info) => Value::Object(vec![
                        ("target".into(), Value::str(&info.target)),
                        ("swaps".into(), Value::int(info.swap_count as i64)),
                        ("unrouted_depth".into(), Value::int(info.unrouted_depth as i64)),
                        ("routed_depth".into(), Value::int(info.routed_depth as i64)),
                    ]),
                };
                Value::Object(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("entry".into(), Value::str(&artifact.entry)),
                    ("circuit".into(), circuit),
                    ("routing".into(), routing),
                ])
            }
        }
    }

    fn handle_emit(&self, call: &CompileCall, backend: &str) -> Value {
        match self.compile(call) {
            Err(response) => response,
            Ok((session, artifact)) => match session.emit(&artifact, backend) {
                Ok(text) => Value::Object(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("backend".into(), Value::str(backend)),
                    ("text".into(), Value::String(text)),
                ]),
                Err(error) => compiler_error(&error),
            },
        }
    }

    fn handle_lint(&self, call: &CompileCall) -> Value {
        match self.compile(call) {
            Err(response) => response,
            Ok((session, artifact)) => {
                let warnings = artifact
                    .lints
                    .iter()
                    .map(|d| {
                        Value::Object(vec![
                            ("code".into(), Value::str(d.code)),
                            ("message".into(), Value::str(&d.message)),
                            ("rendered".into(), Value::String(d.render(session.source()))),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("entry".into(), Value::str(&artifact.entry)),
                    ("warnings".into(), Value::Array(warnings)),
                ])
            }
        }
    }

    fn handle_stats(&self) -> Value {
        let (sessions, stats) = self.stats();
        let targets = self
            .target_counts
            .lock()
            .expect("target counter lock")
            .iter()
            .map(|(name, count)| (name.clone(), Value::int(*count as i64)))
            .collect();
        Value::Object(vec![
            ("ok".into(), Value::Bool(true)),
            ("sessions".into(), Value::int(sessions as i64)),
            ("targets".into(), Value::Object(targets)),
            ("frontend_hits".into(), Value::int(stats.frontend_hits as i64)),
            ("frontend_misses".into(), Value::int(stats.frontend_misses as i64)),
            ("frontend_coalesced".into(), Value::int(stats.frontend_coalesced as i64)),
            ("artifact_hits".into(), Value::int(stats.artifact_hits as i64)),
            ("artifact_misses".into(), Value::int(stats.artifact_misses as i64)),
            ("artifact_coalesced".into(), Value::int(stats.artifact_coalesced as i64)),
            ("evictions".into(), Value::int(stats.evictions as i64)),
            ("disk_hits".into(), Value::int(stats.disk_hits as i64)),
            ("disk_misses".into(), Value::int(stats.disk_misses as i64)),
            ("disk_writes".into(), Value::int(stats.disk_writes as i64)),
            ("disk_quarantined".into(), Value::int(stats.disk_quarantined as i64)),
            ("disk_evictions".into(), Value::int(stats.disk_evictions as i64)),
            (
                "cache_dir".into(),
                match &self.disk {
                    None => Value::Null,
                    Some(disk) => {
                        let (entries, bytes) = disk.usage();
                        Value::Object(vec![
                            ("path".into(), Value::String(disk.dir().display().to_string())),
                            ("entries".into(), Value::int(entries as i64)),
                            ("bytes".into(), Value::int(bytes as i64)),
                        ])
                    }
                },
            ),
        ])
    }

    /// Shared compile path for `compile` and `emit`: resolves the
    /// session, runs the (cached, coalesced) compile, and converts any
    /// failure into its wire form.
    fn compile(
        &self,
        call: &CompileCall,
    ) -> Result<(Arc<Session>, Arc<asdf_core::Compiled>), Value> {
        let session = self.session(&call.source).map_err(|e| compiler_error(&e))?;
        let artifact = session.compile(&call.request).map_err(|e| compiler_error(&e))?;
        let key = call.request.options.target.as_deref().unwrap_or(ALL_TO_ALL);
        *self
            .target_counts
            .lock()
            .expect("target counter lock")
            .entry(key.to_string())
            .or_default() += 1;
        Ok((session, artifact))
    }

    /// Serves line-delimited requests from `input` to `output` until EOF.
    pub fn serve<R: BufRead, W: Write>(&self, input: R, mut output: W) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            output.write_all(self.handle_line(&line).as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
        Ok(())
    }

    /// Accept loop: one thread per connection, all sharing `self` (and
    /// therefore one session registry, one set of caches).
    pub fn serve_listener(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        loop {
            let (stream, _peer) = listener.accept()?;
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let _ = server.serve_connection(stream);
            });
        }
    }

    /// Serves one TCP connection.
    pub fn serve_connection(&self, stream: TcpStream) -> std::io::Result<()> {
        let reader = BufReader::new(stream.try_clone()?);
        self.serve(reader, stream)
    }
}

fn protocol_error(error: &str) -> Value {
    Value::Object(vec![("ok".into(), Value::Bool(false)), ("error".into(), Value::str(error))])
}

fn compiler_error(error: &CoreError) -> Value {
    Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::String(error.to_string())),
        ("code".into(), Value::str(error.code())),
    ])
}
