//! The differential driver: compiles each generated case under the full
//! [`CompileOptions::matrix`] and cross-checks every pair of
//! configurations with the [`crate::oracle`] equivalence oracles.

use crate::gen::{gen_case, GenCase, GenOptions};
use crate::oracle::{compare, extract, Comparison, OracleOptions, Semantics};
use crate::report::Mismatch;
use crate::shrink::minimize;
use asdf_core::{CacheStats, CompileOptions, CompileRequest, Compiled, Session};
use asdf_ir::pass::PassStatistics;
use asdf_qcircuit::Circuit;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use threadpool::ThreadPool;

/// A circuit mutation injected after compilation of one named
/// configuration — the hook tests use to prove the harness *catches*
/// miscompilations (e.g. a peephole rule with a flipped sign).
pub type Sabotage = Box<dyn Fn(&mut Circuit)>;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Sweep seed; every case seed derives from it deterministically.
    pub seed: u64,
    /// Number of generated programs.
    pub cases: usize,
    /// Generator tunables.
    pub gen: GenOptions,
    /// Whether to greedily minimize failing cases.
    pub shrink: bool,
    /// On a mismatch, binary-search `CompileOptions::rewrite_fuel` to name
    /// the first pattern firing that introduces the divergence.
    pub fuel_bisect: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            seed: 0xA5DF,
            cases: 500,
            gen: GenOptions::default(),
            shrink: true,
            fuel_bisect: false,
        }
    }
}

/// Per-configuration sweep accounting.
#[derive(Debug, Clone)]
pub struct ConfigReport {
    /// Configuration name (from [`CompileOptions::matrix`]).
    pub name: String,
    /// Cases that compiled.
    pub compiled: usize,
    /// Cases that failed to compile.
    pub compile_errors: usize,
    /// Cases that produced a static circuit.
    pub circuits: usize,
    /// Pairwise comparisons involving this config that ran.
    pub compared: usize,
    /// Pairwise comparisons involving this config that were skipped.
    pub skipped: usize,
    /// Pipeline statistics merged across every compiled case — the
    /// [`PassStatistics`] plumbing aggregated per configuration.
    pub stats: PassStatistics,
    /// Total lint warnings across every compiled case (0 unless the
    /// harness ran with [`Harness::with_lints`]).
    pub lints: usize,
    /// Routing telemetry summed across every routed compile of this
    /// configuration — all zero for untargeted (all-to-all) configs.
    pub routing: RoutingTotals,
}

/// SWAP and depth totals for one routed configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingTotals {
    /// Compiles that went through the router.
    pub routed_cases: usize,
    /// SWAPs inserted, summed over routed compiles.
    pub swaps: usize,
    /// Pre-routing (all-to-all, native-gate) depth, summed.
    pub unrouted_depth: usize,
    /// Post-routing depth, summed.
    pub routed_depth: usize,
}

impl RoutingTotals {
    fn add(&mut self, info: &asdf_target::RoutingInfo) {
        self.routed_cases += 1;
        self.swaps += info.swap_count;
        self.unrouted_depth += info.unrouted_depth;
        self.routed_depth += info.routed_depth;
    }

    /// The totals as a [`asdf_resource::RouteOverhead`] for reporting.
    pub fn overhead(&self) -> asdf_resource::RouteOverhead {
        asdf_resource::RouteOverhead {
            swap_count: self.swaps,
            unrouted_depth: self.unrouted_depth,
            routed_depth: self.routed_depth,
        }
    }
}

/// The result of a whole sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Cases generated.
    pub cases: usize,
    /// Cases every configuration rejected identically (compiler gaps, not
    /// differential findings).
    pub rejected: usize,
    /// Total pairwise comparisons that ran.
    pub comparisons: usize,
    /// Per-configuration accounting, in matrix order.
    pub configs: Vec<ConfigReport>,
    /// Differential findings, with minimized reproducers when shrinking is
    /// enabled.
    pub mismatches: Vec<Mismatch>,
    /// Session cache counters aggregated over every per-case session: the
    /// frontend is parsed/typechecked/lowered once per case and *reused*
    /// by the other thirteen configurations (as cache hits or coalesced
    /// waits, since the configurations compile concurrently).
    pub cache: CacheStats,
    /// Worker threads the compile phase ran on.
    pub jobs: usize,
    /// Wall-clock of the concurrent 14-config compile phases.
    pub compile_elapsed: Duration,
    /// Sum of every individual configuration's compile time — what the
    /// compile phases would have cost serially.
    pub compile_serial_equiv: Duration,
}

impl SweepReport {
    /// Whether the sweep found no miscompilations.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// The per-configuration summary as an aligned text table.
    pub fn render_table(&self) -> String {
        let width = self.configs.iter().map(|c| c.name.len()).max().unwrap_or(6).max(6);
        let mut out = format!(
            "{:<width$} {:>9} {:>5} {:>6} {:>9} {:>8} {:>6} {:>6}\n",
            "config", "compiled", "err", "circ", "compared", "skipped", "lints", "swaps"
        );
        for c in &self.configs {
            out.push_str(&format!(
                "{:<width$} {:>9} {:>5} {:>6} {:>9} {:>8} {:>6} {:>6}\n",
                c.name,
                c.compiled,
                c.compile_errors,
                c.circuits,
                c.compared,
                c.skipped,
                c.lints,
                c.routing.swaps
            ));
        }
        out
    }

    /// Total lint warnings across every configuration.
    pub fn lint_warnings(&self) -> usize {
        self.configs.iter().map(|c| c.lints).sum()
    }
}

/// Outcome of checking one case.
#[derive(Debug)]
pub enum CaseOutcome {
    /// All comparable configuration pairs agreed.
    Pass,
    /// Every configuration rejected the program with an error (recorded,
    /// but not a differential finding).
    Rejected(String),
    /// Two configurations disagreed (or compile status diverged).
    Mismatch {
        /// First configuration name.
        config_a: String,
        /// Second configuration name.
        config_b: String,
        /// Why they disagree.
        reason: String,
    },
}

/// Per-config accounting entry: compile success, circuit produced, pass
/// stats, lint warning count (always 0 unless the harness lints), and the
/// router's report when the config targets hardware.
pub type ConfigAccounting =
    (bool, bool, Option<PassStatistics>, usize, Option<asdf_target::RoutingInfo>);

/// Per-case, per-config bookkeeping returned alongside the outcome.
#[derive(Debug, Default)]
pub struct CaseAccounting {
    /// One entry per configuration in matrix order.
    pub per_config: Vec<ConfigAccounting>,
    /// Comparisons run / skipped, per config index.
    pub compared: Vec<usize>,
    /// Skipped comparisons per config index.
    pub skipped: Vec<usize>,
    /// The per-case session's cache counters.
    pub cache: CacheStats,
    /// Wall-clock of this case's concurrent compile phase.
    pub compile_elapsed: Duration,
    /// Sum of the individual configuration compile times.
    pub compile_serial_equiv: Duration,
}

/// The differential harness: a configuration matrix plus oracles.
pub struct Harness {
    /// Named configurations under test.
    pub configs: Vec<(String, CompileOptions)>,
    /// Oracle tunables.
    pub oracle: OracleOptions,
    sabotage: Option<(String, Sabotage)>,
    /// The pool that compiles each case's configurations concurrently
    /// through the shared session.
    pool: ThreadPool,
    /// When set, every per-case session is layered over this persistent
    /// artifact cache, so repeated sweeps revive artifacts from disk.
    disk_cache: Option<PathBuf>,
}

impl Harness {
    /// A harness over the full [`CompileOptions::matrix`], compiling each
    /// case's configurations concurrently on up to
    /// `available_parallelism` (capped at the matrix width) workers.
    pub fn new(oracle: OracleOptions) -> Self {
        let configs = CompileOptions::matrix();
        let jobs = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(configs.len());
        let mut harness =
            Harness { configs, oracle, sabotage: None, pool: ThreadPool::new(1), disk_cache: None };
        harness.set_jobs(jobs);
        harness
    }

    /// Layers every per-case session over a persistent artifact cache at
    /// `dir`: a repeated sweep (same seed, same cases) revives its
    /// artifacts from disk instead of re-running the pipeline, and the
    /// oracles then cross-check disk-revived artifacts exactly like
    /// fresh ones.
    #[must_use]
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_cache = Some(dir.into());
        self
    }

    /// Overrides the compile-phase worker count (1 = serial). A parallel
    /// compile pool pins the oracle's simulator pools to one worker each —
    /// case-level parallelism already saturates the machine, and nested
    /// pools would only oversubscribe it. A serial compile phase
    /// (`jobs == 1`) hands the whole machine back to the simulator
    /// (`sim_threads = 0`, size-based auto).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs.max(1));
        self
    }

    fn set_jobs(&mut self, jobs: usize) {
        self.pool = ThreadPool::new(jobs);
        self.oracle.sim_threads = if jobs > 1 { 1 } else { 0 };
    }

    /// The compile-phase worker count.
    pub fn jobs(&self) -> usize {
        self.pool.workers()
    }

    /// Installs a circuit mutation applied after compiling `config` —
    /// an intentionally broken "pass" the harness must catch.
    #[must_use]
    pub fn with_sabotage(mut self, config: &str, f: impl Fn(&mut Circuit) + 'static) -> Self {
        self.sabotage = Some((config.to_string(), Box::new(f)));
        self
    }

    /// Turns on the asdf-lint analyses for every configuration. The sweep
    /// then doubles as a lint soundness harness: generated programs are
    /// correct by construction, so *any* default-severity warning is a
    /// false positive.
    #[must_use]
    pub fn with_lints(mut self) -> Self {
        for (_, options) in &mut self.configs {
            options.lints = true;
        }
        self
    }

    /// Compiles `case` under every configuration and cross-checks all
    /// comparable pairs.
    ///
    /// All configurations run **concurrently through one shared
    /// [`Session`]**: the case is parsed once, the fourteen configuration
    /// compiles are distributed over the harness pool, and the frontend
    /// (instantiate/typecheck/lower) runs exactly once — the other thirteen
    /// configurations either hit the frontend cache or coalesce onto the
    /// in-flight frontend run. The session's counters are merged into the
    /// returned accounting.
    pub fn check_case(&self, case: &GenCase) -> (CaseOutcome, CaseAccounting) {
        let rendered = case.render();
        let mut acct = CaseAccounting {
            per_config: Vec::with_capacity(self.configs.len()),
            compared: vec![0; self.configs.len()],
            skipped: vec![0; self.configs.len()],
            cache: CacheStats::default(),
            compile_elapsed: Duration::ZERO,
            compile_serial_equiv: Duration::ZERO,
        };
        let mut builder = Session::builder(&rendered.source);
        if let Some(dir) = &self.disk_cache {
            builder = builder.disk_cache(dir);
        }
        let session = match builder.build() {
            Ok(session) => session,
            Err(e) => {
                // The generator emits well-formed source; a parse failure is
                // uniform across configurations by construction.
                return (CaseOutcome::Rejected(e.to_string()), acct);
            }
        };
        let base_request =
            CompileRequest::kernel(&rendered.kernel).with_captures(&rendered.captures);

        // The concurrent compile phase: one slot per configuration, each
        // compiled through the shared session. Captures are limited to
        // Sync state (the sabotage hook is applied afterwards, serially).
        #[derive(Default)]
        struct CompileSlot {
            result: Option<Result<Compiled, String>>,
            elapsed: Duration,
        }
        let mut slots: Vec<CompileSlot> =
            (0..self.configs.len()).map(|_| CompileSlot::default()).collect();
        let compile_started = Instant::now();
        {
            let configs = &self.configs;
            let session = &session;
            let base_request = &base_request;
            let dims = &rendered.dims;
            self.pool.for_each_chunk(&mut slots, 1, |index, chunk| {
                let mut options = configs[index].1.clone();
                options.dims.extend(dims.iter().map(|(k, v)| (k.clone(), *v)));
                let request = base_request.clone().with_options(options);
                let started = Instant::now();
                let result =
                    session.compile(&request).map(|arc| (*arc).clone()).map_err(|e| e.to_string());
                chunk[0] = CompileSlot { result: Some(result), elapsed: started.elapsed() };
            });
        }
        acct.compile_elapsed = compile_started.elapsed();
        acct.compile_serial_equiv = slots.iter().map(|s| s.elapsed).sum();

        let mut compiled: Vec<Result<Compiled, String>> =
            slots.into_iter().map(|s| s.result.expect("every config slot filled")).collect();
        if let Some((target, mutate)) = &self.sabotage {
            for ((name, _), result) in self.configs.iter().zip(compiled.iter_mut()) {
                if name == target {
                    if let Ok(c) = result {
                        if let Some(circuit) = &mut c.circuit {
                            mutate(circuit);
                        }
                    }
                }
            }
        }
        for result in &compiled {
            acct.per_config.push((
                result.is_ok(),
                result.as_ref().map(|c| c.circuit.is_some()).unwrap_or(false),
                result.as_ref().ok().map(|c| c.stats.clone()),
                result.as_ref().map(|c| c.lints.len()).unwrap_or(0),
                result.as_ref().ok().and_then(|c| c.routing.clone()),
            ));
        }
        acct.cache = session.cache_stats();

        // A hardware-targeted config legitimately rejects programs wider
        // than its device; that is a capacity skip, not a differential
        // finding. Any other compile failure diverging from a success is.
        let capacity_skip = |index: usize| -> bool {
            matches!(&compiled[index], Err(msg)
                if self.configs[index].1.target.is_some() && asdf_target::is_capacity_error(msg))
        };

        // Compile-status divergence is itself a differential finding; a
        // uniform rejection is a (tracked) generator/compiler gap.
        if compiled.iter().all(|r| r.is_err()) {
            let error = compiled[0].as_ref().unwrap_err().clone();
            return (CaseOutcome::Rejected(error), acct);
        }
        if let Some(bad) = (0..compiled.len()).find(|&i| compiled[i].is_err() && !capacity_skip(i))
        {
            let good = compiled.iter().position(|r| r.is_ok()).expect("some config compiled");
            return (
                CaseOutcome::Mismatch {
                    config_a: self.configs[good].0.clone(),
                    config_b: self.configs[bad].0.clone(),
                    reason: format!(
                        "compile status diverges: {} succeeds but {} fails with: {}",
                        self.configs[good].0,
                        self.configs[bad].0,
                        compiled[bad].as_ref().unwrap_err()
                    ),
                },
                acct,
            );
        }

        let semantics: Vec<Semantics> = compiled
            .iter()
            .map(|r| match r {
                Ok(compiled) => extract(case, compiled, &self.oracle, case.seed),
                // Only capacity skips reach here; their comparisons skip.
                Err(msg) => Semantics::Unavailable(msg.clone()),
            })
            .collect();

        for i in 0..semantics.len() {
            for j in (i + 1)..semantics.len() {
                match compare(&semantics[i], &semantics[j], self.oracle.eps) {
                    Comparison::Agree => {
                        acct.compared[i] += 1;
                        acct.compared[j] += 1;
                    }
                    Comparison::Skipped => {
                        acct.skipped[i] += 1;
                        acct.skipped[j] += 1;
                    }
                    Comparison::Disagree(reason) => {
                        acct.compared[i] += 1;
                        acct.compared[j] += 1;
                        return (
                            CaseOutcome::Mismatch {
                                config_a: self.configs[i].0.clone(),
                                config_b: self.configs[j].0.clone(),
                                reason,
                            },
                            acct,
                        );
                    }
                }
            }
        }
        (CaseOutcome::Pass, acct)
    }

    /// Whether `case` still fails (mismatch or compile divergence) — the
    /// shrinker's predicate.
    pub fn fails(&self, case: &GenCase) -> bool {
        matches!(self.check_case(case).0, CaseOutcome::Mismatch { .. })
    }

    /// Runs a full seeded sweep.
    pub fn run_sweep(&self, opts: &SweepOptions) -> SweepReport {
        let mut configs: Vec<ConfigReport> = self
            .configs
            .iter()
            .map(|(name, _)| ConfigReport {
                name: name.clone(),
                compiled: 0,
                compile_errors: 0,
                circuits: 0,
                compared: 0,
                skipped: 0,
                stats: PassStatistics::new(),
                lints: 0,
                routing: RoutingTotals::default(),
            })
            .collect();
        let mut rejected = 0;
        let mut comparisons = 0;
        let mut mismatches = Vec::new();
        let mut cache = CacheStats::default();
        let mut compile_elapsed = Duration::ZERO;
        let mut compile_serial_equiv = Duration::ZERO;

        for index in 0..opts.cases {
            let case = gen_case(opts.seed, index, &opts.gen);
            let (outcome, acct) = self.check_case(&case);
            for (ci, (ok, circ, stats, lints, routing)) in acct.per_config.iter().enumerate() {
                if *ok {
                    configs[ci].compiled += 1;
                } else {
                    configs[ci].compile_errors += 1;
                }
                if *circ {
                    configs[ci].circuits += 1;
                }
                if let Some(stats) = stats {
                    configs[ci].stats.merge(stats);
                }
                if let Some(info) = routing {
                    configs[ci].routing.add(info);
                }
                configs[ci].lints += lints;
                configs[ci].compared += acct.compared[ci];
                configs[ci].skipped += acct.skipped[ci];
            }
            comparisons += acct.compared.iter().sum::<usize>() / 2;
            cache.merge(&acct.cache);
            compile_elapsed += acct.compile_elapsed;
            compile_serial_equiv += acct.compile_serial_equiv;
            match outcome {
                CaseOutcome::Pass => {}
                CaseOutcome::Rejected(_) => rejected += 1,
                CaseOutcome::Mismatch { config_a, config_b, reason } => {
                    let shrunk = if opts.shrink {
                        let minimized = minimize(&case, |c| self.fails(c), 400);
                        (minimized != case).then_some(minimized)
                    } else {
                        None
                    };
                    // Bisect the minimized case when there is one — fewer
                    // firings means a tighter search and a smaller repro.
                    let bisect = if opts.fuel_bisect {
                        let subject = shrunk.as_ref().unwrap_or(&case);
                        crate::bisect::fuel_bisect(
                            subject,
                            &self.configs,
                            &config_a,
                            &config_b,
                            &self.oracle,
                        )
                        .map(|finding| finding.to_string())
                    } else {
                        None
                    };
                    mismatches
                        .push(Mismatch::new(&case, config_a, config_b, reason, shrunk, bisect));
                }
            }
        }

        SweepReport {
            cases: opts.cases,
            rejected,
            comparisons,
            configs,
            mismatches,
            cache,
            jobs: self.jobs(),
            compile_elapsed,
            compile_serial_equiv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_defaults_to_the_full_matrix() {
        let harness = Harness::new(OracleOptions::default());
        assert_eq!(harness.configs.len(), 14);
        let routed: Vec<&str> = harness
            .configs
            .iter()
            .filter(|(_, o)| o.target.is_some())
            .map(|(name, _)| name.as_str())
            .collect();
        assert_eq!(routed, ["opt+peep+selinger@linear-16", "opt+peep+selinger@grid-4x4"]);
    }
}
