//! Payload encodings for the IR, circuit, routing, statistics, and
//! diagnostic types an artifact carries.
//!
//! Every encoder here writes a canonical byte stream: encoding the same
//! value twice yields identical bytes (maps are traversed in stored
//! order, floats are written as raw bit patterns), which is what makes
//! the content hash and the byte-identical re-serialization guarantee
//! possible. Every decoder is total over arbitrary bytes — corruption
//! becomes an [`ArtifactError`], never a panic.

use crate::error::ArtifactError;
use crate::wire::{Decoder, Encoder};
use asdf_ast::diag::{Diagnostic, Label, Severity, Span};
use asdf_basis::{
    Basis, BasisElem, BasisLiteral, BasisVector, BitString, Eigenstate, Phase, PrimitiveBasis,
};
use asdf_ir::{
    Block, Func, FuncType, GateKind, Module, Op, OpKind, Region, SrcSpan, Type, Value, Visibility,
};
use asdf_qcircuit::{Circuit, CircuitOp};
use asdf_target::RoutingInfo;
use std::time::Duration;

/// Diagnostic codes this build can intern back to `&'static str` when
/// decoding. Diagnostics carry `&'static str` codes in memory, so a
/// decoded code must resolve against this table; an unknown code is a
/// structured [`ArtifactError::UnknownDiagnosticCode`].
pub const KNOWN_DIAGNOSTIC_CODES: &[&str] = &[
    "E0001", "E0002", "E0003", "E0004", "E0005", "E0006", "E0101", "E0102", "E0103", "E0104",
    "E0105", "E0106", "W0001", "W0002", "W0003", "W0004", "W0005",
];

fn intern_code(code: &str) -> Result<&'static str, ArtifactError> {
    KNOWN_DIAGNOSTIC_CODES
        .iter()
        .find(|known| **known == code)
        .copied()
        .ok_or_else(|| ArtifactError::UnknownDiagnosticCode(code.to_string()))
}

// ---------------------------------------------------------------------------
// IR modules
// ---------------------------------------------------------------------------

/// Encodes a whole module (functions in insertion order).
pub fn encode_module(e: &mut Encoder, module: &Module) {
    e.usize(module.len());
    for func in module.funcs() {
        encode_func(e, func);
    }
}

/// Decodes a module.
pub fn decode_module(d: &mut Decoder<'_>) -> Result<Module, ArtifactError> {
    let count = d.count(1, "module functions")?;
    let mut module = Module::default();
    for _ in 0..count {
        module.add_func(decode_func(d)?);
    }
    Ok(module)
}

fn encode_func(e: &mut Encoder, func: &Func) {
    e.str(&func.name);
    encode_func_type(e, &func.ty);
    e.u8(match func.visibility {
        Visibility::Public => 0,
        Visibility::Private => 1,
    });
    encode_block(e, &func.body);
    e.usize(func.value_types().len());
    for ty in func.value_types() {
        encode_type(e, ty);
    }
}

fn decode_func(d: &mut Decoder<'_>) -> Result<Func, ArtifactError> {
    let name = d.str("function name")?;
    let ty = decode_func_type(d)?;
    let visibility = match d.u8("function visibility")? {
        0 => Visibility::Public,
        1 => Visibility::Private,
        tag => {
            return Err(ArtifactError::BadTag {
                context: "function visibility",
                tag: u64::from(tag),
            })
        }
    };
    let body = decode_block(d)?;
    let count = d.count(1, "function value types")?;
    let mut value_types = Vec::with_capacity(count);
    for _ in 0..count {
        value_types.push(decode_type(d)?);
    }
    Ok(Func::from_parts(name, ty, visibility, body, value_types))
}

fn encode_block(e: &mut Encoder, block: &Block) {
    e.usize(block.args.len());
    for arg in &block.args {
        encode_value(e, *arg);
    }
    e.usize(block.ops.len());
    for op in &block.ops {
        encode_op(e, op);
    }
}

fn decode_block(d: &mut Decoder<'_>) -> Result<Block, ArtifactError> {
    let arg_count = d.count(4, "block args")?;
    let mut args = Vec::with_capacity(arg_count);
    for _ in 0..arg_count {
        args.push(decode_value(d)?);
    }
    let op_count = d.count(1, "block ops")?;
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        ops.push(decode_op(d)?);
    }
    Ok(Block { args, ops })
}

fn encode_region(e: &mut Encoder, region: &Region) {
    e.usize(region.blocks.len());
    for block in &region.blocks {
        encode_block(e, block);
    }
}

fn decode_region(d: &mut Decoder<'_>) -> Result<Region, ArtifactError> {
    let count = d.count(1, "region blocks")?;
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        blocks.push(decode_block(d)?);
    }
    Ok(Region { blocks })
}

fn encode_value(e: &mut Encoder, v: Value) {
    e.u32(v.index() as u32);
}

fn decode_value(d: &mut Decoder<'_>) -> Result<Value, ArtifactError> {
    Ok(Value::from_index(d.u32("value index")? as usize))
}

fn encode_op(e: &mut Encoder, op: &Op) {
    encode_op_kind(e, &op.kind);
    e.usize(op.operands.len());
    for v in &op.operands {
        encode_value(e, *v);
    }
    e.usize(op.results.len());
    for v in &op.results {
        encode_value(e, *v);
    }
    e.usize(op.regions.len());
    for region in &op.regions {
        encode_region(e, region);
    }
    e.u32(op.span.start);
    e.u32(op.span.end);
}

fn decode_op(d: &mut Decoder<'_>) -> Result<Op, ArtifactError> {
    let kind = decode_op_kind(d)?;
    let operand_count = d.count(4, "op operands")?;
    let mut operands = Vec::with_capacity(operand_count);
    for _ in 0..operand_count {
        operands.push(decode_value(d)?);
    }
    let result_count = d.count(4, "op results")?;
    let mut results = Vec::with_capacity(result_count);
    for _ in 0..result_count {
        results.push(decode_value(d)?);
    }
    let region_count = d.count(1, "op regions")?;
    let mut regions = Vec::with_capacity(region_count);
    for _ in 0..region_count {
        regions.push(decode_region(d)?);
    }
    let start = d.u32("op span start")?;
    let end = d.u32("op span end")?;
    let mut op = Op::with_regions(kind, operands, results, regions);
    op.span = SrcSpan { start, end };
    Ok(op)
}

fn encode_op_kind(e: &mut Encoder, kind: &OpKind) {
    match kind {
        OpKind::QbPrep { prim, eigenstate, dim } => {
            e.u8(0);
            encode_prim(e, *prim);
            e.u8(u8::from(eigenstate.eigenbit()));
            e.usize(*dim);
        }
        OpKind::QbDiscard => e.u8(1),
        OpKind::QbDiscardZ => e.u8(2),
        OpKind::QbTrans { basis_in, basis_out } => {
            e.u8(3);
            encode_basis(e, basis_in);
            encode_basis(e, basis_out);
        }
        OpKind::QbMeas { basis } => {
            e.u8(4);
            encode_basis(e, basis);
        }
        OpKind::QbPack => e.u8(5),
        OpKind::QbUnpack => e.u8(6),
        OpKind::BitPack => e.u8(7),
        OpKind::BitUnpack => e.u8(8),
        OpKind::FuncConst { symbol } => {
            e.u8(9);
            e.str(symbol);
        }
        OpKind::FuncAdj => e.u8(10),
        OpKind::FuncPred { pred } => {
            e.u8(11);
            encode_basis(e, pred);
        }
        OpKind::Call { callee, adj, pred } => {
            e.u8(12);
            e.str(callee);
            e.bool(*adj);
            match pred {
                None => e.u8(0),
                Some(basis) => {
                    e.u8(1);
                    encode_basis(e, basis);
                }
            }
        }
        OpKind::CallIndirect => e.u8(13),
        OpKind::Lambda { func_ty } => {
            e.u8(14);
            encode_func_type(e, func_ty);
        }
        OpKind::Return => e.u8(15),
        OpKind::ScfIf => e.u8(16),
        OpKind::Yield => e.u8(17),
        OpKind::ConstF64 { value } => {
            e.u8(18);
            e.f64(*value);
        }
        OpKind::ConstI1 { value } => {
            e.u8(19);
            e.bool(*value);
        }
        OpKind::FAdd => e.u8(20),
        OpKind::FSub => e.u8(21),
        OpKind::FMul => e.u8(22),
        OpKind::FDiv => e.u8(23),
        OpKind::FNeg => e.u8(24),
        OpKind::XorI1 => e.u8(25),
        OpKind::AndI1 => e.u8(26),
        OpKind::NotI1 => e.u8(27),
        OpKind::QAlloc => e.u8(28),
        OpKind::QFree => e.u8(29),
        OpKind::QFreeZ => e.u8(30),
        OpKind::Gate { gate, num_controls } => {
            e.u8(31);
            encode_gate(e, gate);
            e.usize(*num_controls);
        }
        OpKind::Measure => e.u8(32),
        OpKind::ArrPack => e.u8(33),
        OpKind::ArrUnpack => e.u8(34),
        OpKind::CallableCreate { symbol } => {
            e.u8(35);
            e.str(symbol);
        }
        OpKind::CallableAdjoint => e.u8(36),
        OpKind::CallableControl { extra } => {
            e.u8(37);
            e.usize(*extra);
        }
        OpKind::CallableInvoke => e.u8(38),
    }
}

fn decode_op_kind(d: &mut Decoder<'_>) -> Result<OpKind, ArtifactError> {
    let tag = d.u8("op kind")?;
    Ok(match tag {
        0 => OpKind::QbPrep {
            prim: decode_prim(d)?,
            eigenstate: Eigenstate::from_eigenbit(d.bool("eigenstate")?),
            dim: d.usize("qbprep dim")?,
        },
        1 => OpKind::QbDiscard,
        2 => OpKind::QbDiscardZ,
        3 => OpKind::QbTrans { basis_in: decode_basis(d)?, basis_out: decode_basis(d)? },
        4 => OpKind::QbMeas { basis: decode_basis(d)? },
        5 => OpKind::QbPack,
        6 => OpKind::QbUnpack,
        7 => OpKind::BitPack,
        8 => OpKind::BitUnpack,
        9 => OpKind::FuncConst { symbol: d.str("func_const symbol")? },
        10 => OpKind::FuncAdj,
        11 => OpKind::FuncPred { pred: decode_basis(d)? },
        12 => {
            let callee = d.str("call callee")?;
            let adj = d.bool("call adj")?;
            let pred = match d.u8("call pred tag")? {
                0 => None,
                1 => Some(decode_basis(d)?),
                tag => {
                    return Err(ArtifactError::BadTag {
                        context: "call pred tag",
                        tag: u64::from(tag),
                    })
                }
            };
            OpKind::Call { callee, adj, pred }
        }
        13 => OpKind::CallIndirect,
        14 => OpKind::Lambda { func_ty: decode_func_type(d)? },
        15 => OpKind::Return,
        16 => OpKind::ScfIf,
        17 => OpKind::Yield,
        18 => OpKind::ConstF64 { value: d.f64("const f64")? },
        19 => OpKind::ConstI1 { value: d.bool("const i1")? },
        20 => OpKind::FAdd,
        21 => OpKind::FSub,
        22 => OpKind::FMul,
        23 => OpKind::FDiv,
        24 => OpKind::FNeg,
        25 => OpKind::XorI1,
        26 => OpKind::AndI1,
        27 => OpKind::NotI1,
        28 => OpKind::QAlloc,
        29 => OpKind::QFree,
        30 => OpKind::QFreeZ,
        31 => OpKind::Gate { gate: decode_gate(d)?, num_controls: d.usize("gate controls")? },
        32 => OpKind::Measure,
        33 => OpKind::ArrPack,
        34 => OpKind::ArrUnpack,
        35 => OpKind::CallableCreate { symbol: d.str("callable symbol")? },
        36 => OpKind::CallableAdjoint,
        37 => OpKind::CallableControl { extra: d.usize("callable extra")? },
        38 => OpKind::CallableInvoke,
        tag => return Err(ArtifactError::BadTag { context: "op kind", tag: u64::from(tag) }),
    })
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

fn encode_type(e: &mut Encoder, ty: &Type) {
    match ty {
        Type::QBundle(n) => {
            e.u8(0);
            e.usize(*n);
        }
        Type::BitBundle(n) => {
            e.u8(1);
            e.usize(*n);
        }
        Type::Func(func_ty) => {
            e.u8(2);
            encode_func_type(e, func_ty);
        }
        Type::Qubit => e.u8(3),
        Type::Array(elem, n) => {
            e.u8(4);
            encode_type(e, elem);
            e.usize(*n);
        }
        Type::Callable => e.u8(5),
        Type::F64 => e.u8(6),
        Type::I1 => e.u8(7),
    }
}

fn decode_type(d: &mut Decoder<'_>) -> Result<Type, ArtifactError> {
    let tag = d.u8("type")?;
    Ok(match tag {
        0 => Type::QBundle(d.usize("qbundle dim")?),
        1 => Type::BitBundle(d.usize("bitbundle dim")?),
        2 => Type::Func(Box::new(decode_func_type(d)?)),
        3 => Type::Qubit,
        4 => {
            let elem = decode_type(d)?;
            let n = d.usize("array len")?;
            Type::Array(Box::new(elem), n)
        }
        5 => Type::Callable,
        6 => Type::F64,
        7 => Type::I1,
        tag => return Err(ArtifactError::BadTag { context: "type", tag: u64::from(tag) }),
    })
}

fn encode_func_type(e: &mut Encoder, ty: &FuncType) {
    e.usize(ty.inputs.len());
    for input in &ty.inputs {
        encode_type(e, input);
    }
    e.usize(ty.results.len());
    for result in &ty.results {
        encode_type(e, result);
    }
    e.bool(ty.reversible);
}

fn decode_func_type(d: &mut Decoder<'_>) -> Result<FuncType, ArtifactError> {
    let input_count = d.count(1, "func type inputs")?;
    let mut inputs = Vec::with_capacity(input_count);
    for _ in 0..input_count {
        inputs.push(decode_type(d)?);
    }
    let result_count = d.count(1, "func type results")?;
    let mut results = Vec::with_capacity(result_count);
    for _ in 0..result_count {
        results.push(decode_type(d)?);
    }
    let reversible = d.bool("func type reversible")?;
    Ok(FuncType { inputs, results, reversible })
}

// ---------------------------------------------------------------------------
// Gates and bases
// ---------------------------------------------------------------------------

fn encode_gate(e: &mut Encoder, gate: &GateKind) {
    match gate {
        GateKind::X => e.u8(0),
        GateKind::Y => e.u8(1),
        GateKind::Z => e.u8(2),
        GateKind::H => e.u8(3),
        GateKind::S => e.u8(4),
        GateKind::Sdg => e.u8(5),
        GateKind::T => e.u8(6),
        GateKind::Tdg => e.u8(7),
        GateKind::Sx => e.u8(8),
        GateKind::Sxdg => e.u8(9),
        GateKind::P(theta) => {
            e.u8(10);
            e.f64(*theta);
        }
        GateKind::Rx(theta) => {
            e.u8(11);
            e.f64(*theta);
        }
        GateKind::Ry(theta) => {
            e.u8(12);
            e.f64(*theta);
        }
        GateKind::Rz(theta) => {
            e.u8(13);
            e.f64(*theta);
        }
        GateKind::Swap => e.u8(14),
    }
}

fn decode_gate(d: &mut Decoder<'_>) -> Result<GateKind, ArtifactError> {
    let tag = d.u8("gate")?;
    Ok(match tag {
        0 => GateKind::X,
        1 => GateKind::Y,
        2 => GateKind::Z,
        3 => GateKind::H,
        4 => GateKind::S,
        5 => GateKind::Sdg,
        6 => GateKind::T,
        7 => GateKind::Tdg,
        8 => GateKind::Sx,
        9 => GateKind::Sxdg,
        10 => GateKind::P(d.f64("gate angle")?),
        11 => GateKind::Rx(d.f64("gate angle")?),
        12 => GateKind::Ry(d.f64("gate angle")?),
        13 => GateKind::Rz(d.f64("gate angle")?),
        14 => GateKind::Swap,
        tag => return Err(ArtifactError::BadTag { context: "gate", tag: u64::from(tag) }),
    })
}

fn encode_prim(e: &mut Encoder, prim: PrimitiveBasis) {
    e.u8(match prim {
        PrimitiveBasis::Std => 0,
        PrimitiveBasis::Pm => 1,
        PrimitiveBasis::Ij => 2,
        PrimitiveBasis::Fourier => 3,
    });
}

fn decode_prim(d: &mut Decoder<'_>) -> Result<PrimitiveBasis, ArtifactError> {
    Ok(match d.u8("primitive basis")? {
        0 => PrimitiveBasis::Std,
        1 => PrimitiveBasis::Pm,
        2 => PrimitiveBasis::Ij,
        3 => PrimitiveBasis::Fourier,
        tag => {
            return Err(ArtifactError::BadTag { context: "primitive basis", tag: u64::from(tag) })
        }
    })
}

fn encode_basis(e: &mut Encoder, basis: &Basis) {
    e.usize(basis.elements().len());
    for elem in basis.elements() {
        match elem {
            BasisElem::BuiltIn { prim, dim } => {
                e.u8(0);
                encode_prim(e, *prim);
                e.usize(*dim);
            }
            BasisElem::Literal(lit) => {
                e.u8(1);
                encode_prim(e, lit.prim());
                e.usize(lit.vectors().len());
                for vector in lit.vectors() {
                    encode_basis_vector(e, vector);
                }
            }
        }
    }
}

fn decode_basis(d: &mut Decoder<'_>) -> Result<Basis, ArtifactError> {
    let count = d.count(1, "basis elements")?;
    let mut elems = Vec::with_capacity(count);
    for _ in 0..count {
        let elem = match d.u8("basis element")? {
            0 => BasisElem::BuiltIn { prim: decode_prim(d)?, dim: d.usize("basis dim")? },
            1 => {
                let prim = decode_prim(d)?;
                let vector_count = d.count(1, "basis literal vectors")?;
                let mut vectors = Vec::with_capacity(vector_count);
                for _ in 0..vector_count {
                    vectors.push(decode_basis_vector(d)?);
                }
                let lit = BasisLiteral::new(prim, vectors)
                    .map_err(|_| ArtifactError::Invalid { context: "basis literal" })?;
                BasisElem::Literal(lit)
            }
            tag => {
                return Err(ArtifactError::BadTag { context: "basis element", tag: u64::from(tag) })
            }
        };
        elems.push(elem);
    }
    Ok(Basis::new(elems))
}

fn encode_basis_vector(e: &mut Encoder, vector: &BasisVector) {
    e.usize(vector.eigenbits.len());
    for bit in vector.eigenbits.iter() {
        e.bool(bit);
    }
    match &vector.phase {
        None => e.u8(0),
        Some(Phase::Const(theta)) => {
            e.u8(1);
            e.f64(*theta);
        }
        Some(Phase::Operand(k)) => {
            e.u8(2);
            e.u32(*k);
        }
    }
}

fn decode_basis_vector(d: &mut Decoder<'_>) -> Result<BasisVector, ArtifactError> {
    let bit_count = d.count(1, "eigenbits")?;
    let mut bits = Vec::with_capacity(bit_count);
    for _ in 0..bit_count {
        bits.push(d.bool("eigenbit")?);
    }
    let eigenbits = BitString::from_bits(bits);
    let phase = match d.u8("phase")? {
        0 => None,
        1 => Some(Phase::Const(d.f64("phase angle")?)),
        2 => Some(Phase::Operand(d.u32("phase operand")?)),
        tag => return Err(ArtifactError::BadTag { context: "phase", tag: u64::from(tag) }),
    };
    Ok(BasisVector { eigenbits, phase })
}

// ---------------------------------------------------------------------------
// Circuits and routing
// ---------------------------------------------------------------------------

/// Encodes a lowered circuit.
pub fn encode_circuit(e: &mut Encoder, circuit: &Circuit) {
    e.usize(circuit.num_qubits);
    e.usize(circuit.ops.len());
    for op in &circuit.ops {
        match op {
            CircuitOp::Gate { gate, controls, targets } => {
                e.u8(0);
                encode_gate(e, gate);
                e.usize(controls.len());
                for c in controls {
                    e.usize(*c);
                }
                e.usize(targets.len());
                for t in targets {
                    e.usize(*t);
                }
            }
            CircuitOp::Measure { qubit, bit } => {
                e.u8(1);
                e.usize(*qubit);
                e.usize(*bit);
            }
            CircuitOp::Reset { qubit } => {
                e.u8(2);
                e.usize(*qubit);
            }
        }
    }
}

/// Decodes a lowered circuit.
pub fn decode_circuit(d: &mut Decoder<'_>) -> Result<Circuit, ArtifactError> {
    let num_qubits = d.usize("circuit qubits")?;
    let op_count = d.count(1, "circuit ops")?;
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        let op = match d.u8("circuit op")? {
            0 => {
                let gate = decode_gate(d)?;
                let control_count = d.count(8, "gate control list")?;
                let mut controls = Vec::with_capacity(control_count);
                for _ in 0..control_count {
                    controls.push(d.usize("gate control")?);
                }
                let target_count = d.count(8, "gate target list")?;
                let mut targets = Vec::with_capacity(target_count);
                for _ in 0..target_count {
                    targets.push(d.usize("gate target")?);
                }
                CircuitOp::Gate { gate, controls, targets }
            }
            1 => CircuitOp::Measure {
                qubit: d.usize("measure qubit")?,
                bit: d.usize("measure bit")?,
            },
            2 => CircuitOp::Reset { qubit: d.usize("reset qubit")? },
            tag => {
                return Err(ArtifactError::BadTag { context: "circuit op", tag: u64::from(tag) })
            }
        };
        ops.push(op);
    }
    Ok(Circuit { num_qubits, ops })
}

/// Encodes routing telemetry.
pub fn encode_routing(e: &mut Encoder, info: &RoutingInfo) {
    e.str(&info.target);
    e.usize(info.initial_layout.len());
    for q in &info.initial_layout {
        e.usize(*q);
    }
    e.usize(info.final_layout.len());
    for q in &info.final_layout {
        e.usize(*q);
    }
    e.usize(info.swap_count);
    e.usize(info.unrouted_depth);
    e.usize(info.routed_depth);
    e.usize(info.unrouted_two_qubit_gates);
    e.usize(info.routed_two_qubit_gates);
    e.u64(info.routed_makespan);
}

/// Decodes routing telemetry.
pub fn decode_routing(d: &mut Decoder<'_>) -> Result<RoutingInfo, ArtifactError> {
    let target = d.str("routing target")?;
    let initial_count = d.count(8, "initial layout")?;
    let mut initial_layout = Vec::with_capacity(initial_count);
    for _ in 0..initial_count {
        initial_layout.push(d.usize("initial layout entry")?);
    }
    let final_count = d.count(8, "final layout")?;
    let mut final_layout = Vec::with_capacity(final_count);
    for _ in 0..final_count {
        final_layout.push(d.usize("final layout entry")?);
    }
    Ok(RoutingInfo {
        target,
        initial_layout,
        final_layout,
        swap_count: d.usize("swap count")?,
        unrouted_depth: d.usize("unrouted depth")?,
        routed_depth: d.usize("routed depth")?,
        unrouted_two_qubit_gates: d.usize("unrouted 2q gates")?,
        routed_two_qubit_gates: d.usize("routed 2q gates")?,
        routed_makespan: d.u64("routed makespan")?,
    })
}

// ---------------------------------------------------------------------------
// Pass statistics and diagnostics
// ---------------------------------------------------------------------------

/// Encodes per-pass timing and change statistics (durations as
/// nanoseconds, saturating at `u64::MAX`).
pub fn encode_stats(e: &mut Encoder, stats: &asdf_ir::PassStatistics) {
    e.usize(stats.passes.len());
    for pass in &stats.passes {
        e.str(&pass.name);
        e.u64(u64::try_from(pass.duration.as_nanos()).unwrap_or(u64::MAX));
        e.usize(pass.changes);
        e.usize(pass.detail.len());
        for (name, count) in &pass.detail {
            e.str(name);
            e.usize(*count);
        }
    }
}

/// Decodes per-pass statistics.
pub fn decode_stats(d: &mut Decoder<'_>) -> Result<asdf_ir::PassStatistics, ArtifactError> {
    let pass_count = d.count(1, "pass stats")?;
    let mut passes = Vec::with_capacity(pass_count);
    for _ in 0..pass_count {
        let name = d.str("pass name")?;
        let duration = Duration::from_nanos(d.u64("pass duration")?);
        let changes = d.usize("pass changes")?;
        let detail_count = d.count(1, "pass detail")?;
        let mut detail = Vec::with_capacity(detail_count);
        for _ in 0..detail_count {
            let key = d.str("detail key")?;
            let count = d.usize("detail count")?;
            detail.push((key, count));
        }
        passes.push(asdf_ir::PassStat { name, duration, changes, detail });
    }
    Ok(asdf_ir::PassStatistics { passes })
}

/// Encodes lint/compile diagnostics.
pub fn encode_lints(e: &mut Encoder, lints: &[Diagnostic]) {
    e.usize(lints.len());
    for diag in lints {
        e.str(diag.code);
        e.u8(match diag.severity {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::Note => 2,
        });
        e.str(&diag.message);
        e.usize(diag.labels.len());
        for label in &diag.labels {
            e.usize(label.span.start);
            e.usize(label.span.end);
            e.str(&label.message);
        }
        e.usize(diag.notes.len());
        for note in &diag.notes {
            e.str(note);
        }
    }
}

/// Decodes diagnostics, interning codes against
/// [`KNOWN_DIAGNOSTIC_CODES`].
pub fn decode_lints(d: &mut Decoder<'_>) -> Result<Vec<Diagnostic>, ArtifactError> {
    let count = d.count(1, "diagnostics")?;
    let mut lints = Vec::with_capacity(count);
    for _ in 0..count {
        let code = intern_code(&d.str("diagnostic code")?)?;
        let severity = match d.u8("diagnostic severity")? {
            0 => Severity::Error,
            1 => Severity::Warning,
            2 => Severity::Note,
            tag => {
                return Err(ArtifactError::BadTag {
                    context: "diagnostic severity",
                    tag: u64::from(tag),
                })
            }
        };
        let message = d.str("diagnostic message")?;
        let label_count = d.count(1, "diagnostic labels")?;
        let mut labels = Vec::with_capacity(label_count);
        for _ in 0..label_count {
            let start = d.usize("label start")?;
            let end = d.usize("label end")?;
            let message = d.str("label message")?;
            labels.push(Label { span: Span { start, end }, message });
        }
        let note_count = d.count(1, "diagnostic notes")?;
        let mut notes = Vec::with_capacity(note_count);
        for _ in 0..note_count {
            notes.push(d.str("diagnostic note")?);
        }
        lints.push(Diagnostic { code, severity, message, labels, notes });
    }
    Ok(lints)
}
