//! Qubit-index tracking (§5.3, Fig. 5).
//!
//! Maps each qubit-carrying SSA value to the physical qubit indices it
//! holds, so the predication transform can recover the permutation a block
//! achieves purely by renaming SSA values (and undo it with swaps outside
//! the predicated subspace). Function arguments and `qalloc` results mint
//! fresh indices; packs concatenate, unpacks distribute, and every other
//! op threads indices through positionally.

use crate::framework::{Analysis, Direction, Fact, FactMap};
use asdf_ir::{Func, Op, OpKind, Value};

/// Which qubit indices a value carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexFact {
    /// No information yet (classical values stay here).
    Bottom,
    /// The value carries exactly these indices, in order.
    Indices(Vec<usize>),
    /// Merge of disagreeing index vectors (e.g. an `scf.if` whose branches
    /// route different qubits to the same result).
    Conflict,
}

impl Fact for IndexFact {
    fn bottom() -> Self {
        IndexFact::Bottom
    }

    fn join(&mut self, other: &Self) -> bool {
        match (&*self, other) {
            (_, IndexFact::Bottom) => false,
            (IndexFact::Bottom, _) => {
                *self = other.clone();
                true
            }
            (a, b) if a == b => false,
            (IndexFact::Conflict, _) => false,
            _ => {
                *self = IndexFact::Conflict;
                true
            }
        }
    }
}

/// The §5.3 qubit-index dataflow analysis.
///
/// Indices are minted deterministically each pass (arguments first, then
/// `qalloc`s in program order), so the fixpoint engine's repeated passes
/// reproduce identical numbering.
#[derive(Debug, Default)]
pub struct QubitIndexAnalysis {
    next: usize,
}

impl QubitIndexAnalysis {
    /// An analysis minting indices from zero.
    pub fn new() -> Self {
        QubitIndexAnalysis::default()
    }

    fn mint(&mut self, count: usize) -> Vec<usize> {
        let fact = (self.next..self.next + count).collect();
        self.next += count;
        fact
    }
}

impl Analysis for QubitIndexAnalysis {
    type Fact = IndexFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn prepare(&mut self, _func: &Func) {
        self.next = 0;
    }

    fn arg_fact(&mut self, func: &Func, arg: Value) -> IndexFact {
        let count = func.value_type(arg).qubit_count();
        if count == 0 {
            return IndexFact::Bottom;
        }
        IndexFact::Indices(self.mint(count))
    }

    fn transfer(&mut self, func: &Func, op: &Op, facts: &mut FactMap<IndexFact>) {
        let mut flat = Vec::new();
        let mut conflict = false;
        for &v in &op.operands {
            match facts.get(v) {
                IndexFact::Bottom => {}
                IndexFact::Indices(ix) => flat.extend(ix.iter().copied()),
                IndexFact::Conflict => conflict = true,
            }
        }
        if conflict {
            for &r in &op.results {
                if func.value_type(r).qubit_count() > 0 {
                    facts.join(r, &IndexFact::Conflict);
                }
            }
            return;
        }
        match &op.kind {
            OpKind::QbPack => facts.set(op.results[0], IndexFact::Indices(flat)),
            OpKind::QbUnpack => {
                // Distribute one index per qubit result.
                for (&r, i) in op.results.iter().zip(flat) {
                    facts.set(r, IndexFact::Indices(vec![i]));
                }
            }
            // Fresh ancillas get fresh indices.
            OpKind::QAlloc => {
                let fact = IndexFact::Indices(self.mint(1));
                facts.set(op.results[0], fact);
            }
            // Everything else threads indices positionally.
            _ => {
                let mut remaining = flat;
                for &r in &op.results {
                    let count = func.value_type(r).qubit_count();
                    if count == 0 {
                        continue;
                    }
                    let taken: Vec<usize> = remaining.drain(..count.min(remaining.len())).collect();
                    facts.set(r, IndexFact::Indices(taken));
                }
            }
        }
    }
}

/// Runs the index analysis and returns the permutation carried by the
/// entry block's returned value: `result[i]` is the original index now at
/// position `i`.
///
/// # Errors
///
/// Returns a message when the function has no terminator, the returned
/// value has no index fact (or a conflicting one), the index count does
/// not match `n`, or an ancilla index escapes into the result.
pub fn renaming_permutation(func: &Func, n: usize) -> Result<Vec<usize>, String> {
    let facts = crate::framework::analyze(func, &mut QubitIndexAnalysis::new());
    let terminator = func.body.terminator().ok_or("missing terminator")?;
    let IndexFact::Indices(out) = facts.get(terminator.operands[0]) else {
        return Err("no index fact for the result".to_string());
    };
    if out.len() != n {
        return Err(format!(
            "index analysis produced {} indices for a {n}-qubit result",
            out.len()
        ));
    }
    // Ancilla indices cannot escape a reversible function.
    if out.iter().any(|&i| i >= n) {
        return Err("ancilla qubit escapes the function result".to_string());
    }
    Ok(out.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::analyze;
    use asdf_ir::{FuncBuilder, FuncType, Type, Visibility};

    #[test]
    fn renaming_swap_is_detected() {
        let mut b = FuncBuilder::new("swapper", FuncType::rev_qbundle(2), Visibility::Private);
        let arg = b.args()[0];
        let mut bb = b.block();
        let qs = bb.push(OpKind::QbUnpack, vec![arg], vec![Type::Qubit, Type::Qubit]);
        let packed = bb.push(OpKind::QbPack, vec![qs[1], qs[0]], vec![Type::QBundle(2)]);
        bb.push(OpKind::Return, vec![packed[0]], vec![]);
        let func = b.finish();
        assert_eq!(renaming_permutation(&func, 2).unwrap(), vec![1, 0]);
    }

    #[test]
    fn qalloc_mints_fresh_and_stable_indices() {
        let mut b = FuncBuilder::new("anc", FuncType::rev_qbundle(1), Visibility::Private);
        let arg = b.args()[0];
        let mut bb = b.block();
        let q = bb.push(OpKind::QbUnpack, vec![arg], vec![Type::Qubit]);
        let a = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        bb.push(OpKind::QFreeZ, vec![a[0]], vec![]);
        let packed = bb.push(OpKind::QbPack, vec![q[0]], vec![Type::QBundle(1)]);
        bb.push(OpKind::Return, vec![packed[0]], vec![]);
        let func = b.finish();
        let facts = analyze(&func, &mut QubitIndexAnalysis::new());
        // The ancilla's index (1) is distinct from the argument's (0), and
        // the fixpoint's repeated passes did not re-mint it.
        assert_eq!(facts.get(a[0]), &IndexFact::Indices(vec![1]));
        assert_eq!(renaming_permutation(&func, 1).unwrap(), vec![0]);
    }

    #[test]
    fn ancilla_escape_is_an_error() {
        let mut b = FuncBuilder::new("esc", FuncType::rev_qbundle(1), Visibility::Private);
        let arg = b.args()[0];
        let mut bb = b.block();
        let q = bb.push(OpKind::QbUnpack, vec![arg], vec![Type::Qubit]);
        let a = bb.push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        bb.push(OpKind::QFreeZ, vec![q[0]], vec![]);
        let packed = bb.push(OpKind::QbPack, vec![a[0]], vec![Type::QBundle(1)]);
        bb.push(OpKind::Return, vec![packed[0]], vec![]);
        let func = b.finish();
        let err = renaming_permutation(&func, 1).unwrap_err();
        assert!(err.contains("ancilla"), "{err}");
    }
}
