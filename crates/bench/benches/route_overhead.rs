//! Routing-overhead bench: the cost of compiling the example programs
//! onto restricted hardware connectivity.
//!
//! Each example is compiled once all-to-all, then routed onto every
//! builtin coupling graph; the report is per `(program, target)`: SWAPs
//! inserted, depth before and after, the depth-overhead ratio, and the
//! median routing wall-clock. Programs that keep callables (teleport) or
//! exceed a target's qubit budget are reported as skipped, not dropped
//! silently.
//!
//! Each run appends a trajectory point to `BENCH_route.json` at the repo
//! root. `--smoke` (or env `ROUTE_OVERHEAD_SMOKE=1`) shrinks the sample
//! count for CI.

use asdf_ast::CaptureValue;
use asdf_core::{CompileOptions, Compiler};
use asdf_qcircuit::Circuit;
use asdf_target::Target;
use criterion::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TARGETS: [&str; 3] = ["linear-16", "ring-8", "grid-4x4"];

/// One `examples/` program: (name, source, kernel, captures, dims).
type Example =
    (&'static str, &'static str, &'static str, Vec<CaptureValue>, Vec<(&'static str, i64)>);

/// The five `examples/` programs.
fn examples() -> Vec<Example> {
    let cfunc = |name: &str, bits: Option<&str>| CaptureValue::CFunc {
        name: name.into(),
        captures: bits.map(CaptureValue::bits_from_str).into_iter().collect(),
    };
    vec![
        (
            "bv",
            r"classical f[N](secret: bit[N], x: bit[N]) -> bit { (secret & x).xor_reduce() }
              qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
                  'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
              }",
            "kernel",
            vec![cfunc("f", Some("1101"))],
            vec![],
        ),
        (
            "grover",
            r"classical oracle[N](x: bit[N]) -> bit { x.and_reduce() }
              qpu grover[N, I](f: cfunc[N, 1]) -> bit[N] {
                  'p'[N] | (f.sign | {'p'[N]} >> {-'p'[N]}) ** I | std[N].measure
              }",
            "grover",
            vec![cfunc("oracle", None)],
            vec![("N", 3), ("I", 1)],
        ),
        (
            "simon",
            r"classical f[N](s: bit[N], x: bit[N]) -> bit[N] { x ^ (x[0].repeat(N) & s) }
              qpu simon[N](f: cfunc[N, N]) -> bit[2*N] {
                  'p'[N] + '0'[N] | f.xor | (pm[N] >> std[N]) + id[N] | std[2*N].measure
              }",
            "simon",
            vec![cfunc("f", Some("110"))],
            vec![],
        ),
        (
            "period_finding",
            r"classical f[N](mask: bit[N], x: bit[N]) -> bit[N] { x & mask }
              qpu period[N](f: cfunc[N, N]) -> bit[2*N] {
                  'p'[N] + '0'[N] | f.xor | fourier[N].measure + std[N].measure
              }",
            "period",
            vec![cfunc("f", Some("0011"))],
            vec![],
        ),
        (
            "teleport",
            r"qpu teleport(secret: qubit) -> qubit {
                  let alice, bob = 'p0' | '1' & std.flip;
                  let m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure;
                  bob | (pm.flip if m_pm else id) | (std.flip if m_std else id)
              }",
            "teleport",
            vec![],
            vec![],
        ),
    ]
}

/// Median wall-clock of `samples` runs (after one warmup).
fn median_time<O>(samples: usize, mut f: impl FnMut() -> O) -> Duration {
    black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn compile_example(
    source: &str,
    kernel: &str,
    captures: &[CaptureValue],
    dims: &[(&str, i64)],
) -> Option<Circuit> {
    let mut options = CompileOptions::default();
    for (name, value) in dims {
        options = options.with_dim(name, *value);
    }
    let compiled = Compiler::compile(source, kernel, captures, &options).expect("example compiles");
    compiled.circuit
}

fn append_trajectory_point(point: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_route.json");
    let rewritten = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) => {
                    let body = body.trim_end();
                    if body.ends_with('[') {
                        format!("{body}\n  {point}\n]\n")
                    } else {
                        format!("{body},\n  {point}\n]\n")
                    }
                }
                None => format!("[\n  {point}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {point}\n]\n"),
    };
    match std::fs::write(&path, rewritten) {
        Ok(()) => println!("trajectory point appended to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("ROUTE_OVERHEAD_SMOKE").is_ok_and(|v| v == "1");
    let samples = if smoke { 5 } else { 30 };
    println!("route_overhead: {samples} samples{}", if smoke { " (smoke)" } else { "" });
    println!(
        "{:<16} {:<10} {:>7} {:>6} {:>13} {:>9} {:>10}",
        "program", "target", "qubits", "swaps", "depth", "overhead", "route_us"
    );

    let mut entries = Vec::new();
    for (name, source, kernel, captures, dims) in examples() {
        let Some(circuit) = compile_example(source, kernel, &captures, &dims) else {
            println!("{name:<16} {:<10} (no static circuit; skipped)", "-");
            continue;
        };
        for target_name in TARGETS {
            let target = Target::parse(target_name).expect("builtin target parses");
            let routed = match target.route(&circuit) {
                Ok(routed) => routed,
                Err(e) if asdf_target::is_capacity_error(&e.to_string()) => {
                    println!(
                        "{name:<16} {target_name:<10} {:>7} (exceeds target capacity; skipped)",
                        circuit.num_qubits
                    );
                    continue;
                }
                Err(e) => panic!("routing {name} onto {target_name} failed: {e}"),
            };
            target.validate(&routed.circuit).expect("routed circuit is native and coupled");
            let overhead = asdf_resource::route_overhead(
                &asdf_target::route::translate_to_native(&circuit),
                &routed.circuit,
                routed.info.swap_count,
            );
            let route_time = median_time(samples, || target.route(&circuit).unwrap());
            let route_us = route_time.as_secs_f64() * 1e6;
            println!(
                "{name:<16} {target_name:<10} {:>7} {:>6} {:>6} -> {:>4} {:>8.2}x {:>10.1}",
                routed.circuit.num_qubits,
                overhead.swap_count,
                overhead.unrouted_depth,
                overhead.routed_depth,
                overhead.depth_overhead(),
                route_us,
            );
            entries.push(format!(
                "{{\"program\": \"{name}\", \"target\": \"{target_name}\", \
                 \"swaps\": {}, \"unrouted_depth\": {}, \"routed_depth\": {}, \
                 \"depth_overhead\": {:.3}, \"route_us\": {:.1}}}",
                overhead.swap_count,
                overhead.unrouted_depth,
                overhead.routed_depth,
                overhead.depth_overhead(),
                route_us,
            ));
        }
    }

    let point = format!(
        "{{\"bench\": \"route_overhead\", \"mode\": \"{}\", \"entries\": [{}]}}",
        if smoke { "smoke" } else { "full" },
        entries.join(", "),
    );
    append_trajectory_point(&point);
}
