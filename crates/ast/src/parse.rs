//! Recursive-descent parser for the Qwerty surface syntax.
//!
//! Precedence in `qpu` bodies, loosest to tightest: `|` (pipe), the
//! conditional `x if c else y`, `>>` (translation), `&` (predication,
//! right-associative), `+` (tensor), `** N` (repetition), unary `~`/`-`,
//! postfix `[N]` and `.method`, atoms. `classical` bodies use Python-like
//! precedence: `|`, `^`, `&`, `~`, postfix.

use crate::ast::*;
use crate::diag::Span;
use crate::dims::{AngleExpr, DimExpr};
use crate::error::FrontendError;
use crate::lex::{lex, Token, TokenKind};
use asdf_basis::PrimitiveBasis;

/// Parses a full program.
///
/// # Errors
///
/// Returns [`FrontendError::Lex`] or [`FrontendError::Parse`] with a byte
/// offset on malformed input.
///
/// # Example
///
/// ```
/// let src = r"
///     qpu kernel[N]() -> bit[N] {
///         'p'[N] | pm[N] >> std[N] | std[N].measure
///     }
/// ";
/// let program = asdf_ast::parse::parse_program(src)?;
/// assert!(program.qpu("kernel").is_some());
/// # Ok::<(), asdf_ast::FrontendError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, FrontendError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0, prev_end: 0 };
    let mut items = Vec::new();
    while !parser.at_eof() {
        items.push(parser.item()?);
    }
    Ok(Program { items })
}

/// Parses a single `qpu` expression (handy in tests).
///
/// # Errors
///
/// Same conditions as [`parse_program`].
pub fn parse_expr(src: &str) -> Result<Expr, FrontendError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0, prev_end: 0 };
    let expr = parser.expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// End offset of the last consumed token (expression spans run from
    /// their first token's start to this).
    prev_end: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].span.start
    }

    fn span_here(&self) -> Span {
        self.tokens[self.pos].span
    }

    /// The span running from `start` to the end of the last consumed
    /// token — the span of an expression whose first token began at
    /// `start`.
    fn span_from(&self, start: usize) -> Span {
        Span::new(start, self.prev_end.max(start))
    }

    /// Wraps a parsed kind with the span that produced it.
    fn spanned(&self, start: usize, kind: ExprKind) -> Expr {
        Expr::new(kind, self.span_from(start))
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        self.prev_end = self.tokens[self.pos].span.end;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, FrontendError> {
        Err(FrontendError::Parse { span: self.span_here(), message: message.into() })
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), FrontendError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected {}, found {}", kind.describe(), self.peek().describe()))
        }
    }

    fn expect_eof(&self) -> Result<(), FrontendError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(FrontendError::Parse {
                span: self.span_here(),
                message: format!("trailing input: {}", self.peek().describe()),
            })
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.error(format!("expected an identifier, found {}", other.describe())),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(name) if name == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn item(&mut self) -> Result<Item, FrontendError> {
        if self.eat_keyword("qpu") {
            self.qpu_func().map(Item::Qpu)
        } else if self.eat_keyword("classical") {
            self.classical_func().map(Item::Classical)
        } else {
            self.error("expected `qpu` or `classical` item")
        }
    }

    fn dim_vars(&mut self) -> Result<Vec<String>, FrontendError> {
        let mut vars = Vec::new();
        if self.eat(&TokenKind::LBracket) {
            loop {
                vars.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        Ok(vars)
    }

    fn params(&mut self) -> Result<Vec<Param>, FrontendError> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let name = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                params.push(Param { name, ty });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(params)
    }

    fn type_expr(&mut self) -> Result<TypeExpr, FrontendError> {
        if self.eat_keyword("qubit") {
            Ok(TypeExpr::Qubit(self.opt_bracket_dim()?))
        } else if self.eat_keyword("bit") {
            Ok(TypeExpr::Bit(self.opt_bracket_dim()?))
        } else if self.eat_keyword("cfunc") {
            self.expect(TokenKind::LBracket)?;
            let n = self.dim_expr()?;
            self.expect(TokenKind::Comma)?;
            let m = self.dim_expr()?;
            self.expect(TokenKind::RBracket)?;
            Ok(TypeExpr::CFunc(n, m))
        } else {
            self.error("expected a type (`qubit`, `bit`, or `cfunc[N, M]`)")
        }
    }

    fn opt_bracket_dim(&mut self) -> Result<DimExpr, FrontendError> {
        if self.eat(&TokenKind::LBracket) {
            let d = self.dim_expr()?;
            self.expect(TokenKind::RBracket)?;
            Ok(d)
        } else {
            Ok(DimExpr::Const(1))
        }
    }

    fn qpu_func(&mut self) -> Result<QpuFunc, FrontendError> {
        let name = self.ident()?;
        let dim_vars = self.dim_vars()?;
        let params = self.params()?;
        self.expect(TokenKind::Arrow)?;
        let ret = self.type_expr()?;
        self.expect(TokenKind::LBrace)?;
        let mut body = Vec::new();
        loop {
            if self.eat_keyword("let") {
                let mut names = vec![self.ident()?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.ident()?);
                }
                self.expect(TokenKind::Eq)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                body.push(Stmt::Let { names, value });
            } else {
                let value = self.expr()?;
                body.push(Stmt::Expr(value));
                break;
            }
        }
        self.expect(TokenKind::RBrace)?;
        Ok(QpuFunc { name, dim_vars, params, ret, body })
    }

    fn classical_func(&mut self) -> Result<ClassicalFunc, FrontendError> {
        let name = self.ident()?;
        let dim_vars = self.dim_vars()?;
        let params = self.params()?;
        self.expect(TokenKind::Arrow)?;
        let ret = self.type_expr()?;
        self.expect(TokenKind::LBrace)?;
        let body = self.cexpr()?;
        self.expect(TokenKind::RBrace)?;
        Ok(ClassicalFunc { name, dim_vars, params, ret, body })
    }

    // ------------------------------------------------------------------
    // qpu expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.pipe()
    }

    fn pipe(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        let mut lhs = self.cond()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.cond()?;
            lhs = self.spanned(start, ExprKind::Pipe(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn cond(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        let then_expr = self.trans()?;
        if self.eat_keyword("if") {
            let cond = self.trans()?;
            if !self.eat_keyword("else") {
                return self.error("conditional requires `else`");
            }
            let else_expr = self.cond()?;
            Ok(self.spanned(
                start,
                ExprKind::Cond {
                    then_expr: Box::new(then_expr),
                    cond: Box::new(cond),
                    else_expr: Box::new(else_expr),
                },
            ))
        } else {
            Ok(then_expr)
        }
    }

    fn trans(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        let lhs = self.pred()?;
        if self.eat(&TokenKind::Shr) {
            let rhs = self.pred()?;
            Ok(self.spanned(start, ExprKind::Translation(Box::new(lhs), Box::new(rhs))))
        } else {
            Ok(lhs)
        }
    }

    fn pred(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        let lhs = self.tensor()?;
        if self.eat(&TokenKind::Amp) {
            let rhs = self.pred()?;
            Ok(self.spanned(start, ExprKind::Pred(Box::new(lhs), Box::new(rhs))))
        } else {
            Ok(lhs)
        }
    }

    fn tensor(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        let mut lhs = self.repeat()?;
        while self.eat(&TokenKind::Plus) {
            let rhs = self.repeat()?;
            lhs = self.spanned(start, ExprKind::Tensor(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn repeat(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        let lhs = self.unary()?;
        if self.eat(&TokenKind::DblStar) {
            let count = self.dim_atom_expr()?;
            Ok(self.spanned(start, ExprKind::Repeat(Box::new(lhs), count)))
        } else {
            Ok(lhs)
        }
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        if self.eat(&TokenKind::Tilde) {
            let inner = self.unary()?;
            Ok(self.spanned(start, ExprKind::Adjoint(Box::new(inner))))
        } else if matches!(self.peek(), TokenKind::Minus)
            && matches!(self.peek2(), TokenKind::QLit(_))
        {
            self.bump();
            let inner = self.postfix()?;
            let span = self.span_from(start);
            match inner.kind {
                ExprKind::QLit { chars, phase } => {
                    let base = phase.unwrap_or(AngleExpr::Degrees(0.0));
                    Ok(Expr::new(
                        ExprKind::QLit {
                            chars,
                            phase: Some(AngleExpr::Add(
                                Box::new(base),
                                Box::new(AngleExpr::Degrees(180.0)),
                            )),
                        },
                        span,
                    ))
                }
                ExprKind::Pow(inner_expr, dim) => match inner_expr.kind {
                    ExprKind::QLit { chars, phase } => {
                        let base = phase.unwrap_or(AngleExpr::Degrees(0.0));
                        Ok(Expr::new(
                            ExprKind::Pow(
                                Box::new(Expr::new(
                                    ExprKind::QLit {
                                        chars,
                                        phase: Some(AngleExpr::Add(
                                            Box::new(base),
                                            Box::new(AngleExpr::Degrees(180.0)),
                                        )),
                                    },
                                    inner_expr.span,
                                )),
                                dim,
                            ),
                            span,
                        ))
                    }
                    other => self.error(format!("cannot negate {other:?}")),
                },
                other => self.error(format!("cannot negate {other:?}")),
            }
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        let mut expr = self.atom()?;
        loop {
            if self.eat(&TokenKind::LBracket) {
                let dim = self.dim_expr()?;
                self.expect(TokenKind::RBracket)?;
                let kind = match expr.kind {
                    // `std[2]`: dimension of a built-in basis.
                    ExprKind::BuiltinBasis(prim, DimExpr::Const(1)) => {
                        ExprKind::BuiltinBasis(prim, dim)
                    }
                    other => ExprKind::Pow(Box::new(Expr::new(other, expr.span)), dim),
                };
                expr = self.spanned(start, kind);
            } else if self.eat(&TokenKind::Dot) {
                let method = self.ident()?;
                let kind = match method.as_str() {
                    "measure" => ExprKind::Measure(Box::new(expr)),
                    "flip" => ExprKind::Flip(Box::new(expr)),
                    "sign" => ExprKind::Sign(Box::new(expr)),
                    "xor" => ExprKind::Xor(Box::new(expr)),
                    "discard" => ExprKind::Discard(Box::new(expr)),
                    other => {
                        return self.error(format!("unknown qpu method .{other}"));
                    }
                };
                expr = self.spanned(start, kind);
            } else if self.eat(&TokenKind::At) {
                let angle = self.angle_atom()?;
                let kind = match expr.kind {
                    ExprKind::QLit { chars, phase: None } => {
                        ExprKind::QLit { chars, phase: Some(angle) }
                    }
                    other => {
                        return self
                            .error(format!("@phase applies to qubit literals, not {other:?}"));
                    }
                };
                expr = self.spanned(start, kind);
            } else {
                return Ok(expr);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, FrontendError> {
        let token_span = self.span_here();
        let start = token_span.start;
        match self.peek().clone() {
            TokenKind::QLit(body) => {
                self.bump();
                let chars = parse_qlit_chars(&body)
                    .map_err(|message| FrontendError::Parse { span: token_span, message })?;
                Ok(self.spanned(start, ExprKind::QLit { chars, phase: None }))
            }
            TokenKind::LBrace => self.basis_literal(),
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if let Some(prim) = builtin_basis_keyword(&name) {
                    self.bump();
                    Ok(self.spanned(start, ExprKind::BuiltinBasis(prim, DimExpr::Const(1))))
                } else if name == "id" {
                    self.bump();
                    let dim = self.opt_bracket_dim()?;
                    Ok(self.spanned(start, ExprKind::Id(dim)))
                } else {
                    self.bump();
                    Ok(self.spanned(start, ExprKind::Var(name)))
                }
            }
            other => self.error(format!("expected an expression, found {}", other.describe())),
        }
    }

    fn basis_literal(&mut self) -> Result<Expr, FrontendError> {
        let start = self.offset();
        self.expect(TokenKind::LBrace)?;
        let mut vectors = Vec::new();
        loop {
            let negated = self.eat(&TokenKind::Minus);
            let TokenKind::QLit(body) = self.peek().clone() else {
                return self.error("expected a qubit literal inside a basis literal");
            };
            let vector_span = self.span_here();
            self.bump();
            let chars = parse_qlit_chars(&body)
                .map_err(|message| FrontendError::Parse { span: vector_span, message })?;
            let power = if self.eat(&TokenKind::LBracket) {
                let d = self.dim_expr()?;
                self.expect(TokenKind::RBracket)?;
                Some(d)
            } else {
                None
            };
            let phase = if self.eat(&TokenKind::At) { Some(self.angle_atom()?) } else { None };
            vectors.push(VectorSyntax { chars, power, negated, phase });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RBrace)?;
        Ok(self.spanned(start, ExprKind::BasisLit(vectors)))
    }

    // ------------------------------------------------------------------
    // classical expressions
    // ------------------------------------------------------------------

    fn cexpr(&mut self) -> Result<CExpr, FrontendError> {
        let mut lhs = self.cxor()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.cxor()?;
            lhs = CExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cxor(&mut self) -> Result<CExpr, FrontendError> {
        let mut lhs = self.cand()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.cand()?;
            lhs = CExpr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cand(&mut self) -> Result<CExpr, FrontendError> {
        let mut lhs = self.cunary()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.cunary()?;
            lhs = CExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cunary(&mut self) -> Result<CExpr, FrontendError> {
        if self.eat(&TokenKind::Tilde) {
            Ok(CExpr::Not(Box::new(self.cunary()?)))
        } else {
            self.cpostfix()
        }
    }

    fn cpostfix(&mut self) -> Result<CExpr, FrontendError> {
        let mut expr = self.catom()?;
        loop {
            if self.eat(&TokenKind::LBracket) {
                let idx = self.dim_expr()?;
                self.expect(TokenKind::RBracket)?;
                expr = CExpr::Index(Box::new(expr), idx);
            } else if self.eat(&TokenKind::Dot) {
                let method = self.ident()?;
                self.expect(TokenKind::LParen)?;
                expr = match method.as_str() {
                    "xor_reduce" => {
                        self.expect(TokenKind::RParen)?;
                        CExpr::XorReduce(Box::new(expr))
                    }
                    "and_reduce" => {
                        self.expect(TokenKind::RParen)?;
                        CExpr::AndReduce(Box::new(expr))
                    }
                    "repeat" => {
                        let n = self.dim_expr()?;
                        self.expect(TokenKind::RParen)?;
                        CExpr::Repeat(Box::new(expr), n)
                    }
                    other => {
                        return self.error(format!("unknown classical method .{other}"));
                    }
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn catom(&mut self) -> Result<CExpr, FrontendError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(CExpr::Var(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.cexpr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                self.error(format!("expected a classical expression, found {}", other.describe()))
            }
        }
    }

    // ------------------------------------------------------------------
    // dimension and angle expressions
    // ------------------------------------------------------------------

    fn dim_expr(&mut self) -> Result<DimExpr, FrontendError> {
        let mut lhs = self.dim_term()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                lhs = DimExpr::Add(Box::new(lhs), Box::new(self.dim_term()?));
            } else if self.eat(&TokenKind::Minus) {
                lhs = DimExpr::Sub(Box::new(lhs), Box::new(self.dim_term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn dim_term(&mut self) -> Result<DimExpr, FrontendError> {
        let mut lhs = self.dim_atom_expr()?;
        while self.eat(&TokenKind::Star) {
            lhs = DimExpr::Mul(Box::new(lhs), Box::new(self.dim_atom_expr()?));
        }
        Ok(lhs)
    }

    fn dim_atom_expr(&mut self) -> Result<DimExpr, FrontendError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(DimExpr::Const(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(DimExpr::Var(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.dim_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                self.error(format!("expected a dimension expression, found {}", other.describe()))
            }
        }
    }

    /// An angle after `@`: either a bare number/identifier or a
    /// parenthesized arithmetic expression.
    fn angle_atom(&mut self) -> Result<AngleExpr, FrontendError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(AngleExpr::Degrees(v as f64))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(AngleExpr::Degrees(v))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(AngleExpr::Neg(Box::new(self.angle_atom()?)))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(AngleExpr::Dim(DimExpr::Var(name)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.angle_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => self.error(format!("expected an angle, found {}", other.describe())),
        }
    }

    fn angle_expr(&mut self) -> Result<AngleExpr, FrontendError> {
        let mut lhs = self.angle_term()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                lhs = AngleExpr::Add(Box::new(lhs), Box::new(self.angle_term()?));
            } else if self.eat(&TokenKind::Minus) {
                lhs = AngleExpr::Sub(Box::new(lhs), Box::new(self.angle_term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn angle_term(&mut self) -> Result<AngleExpr, FrontendError> {
        let mut lhs = self.angle_atom()?;
        loop {
            if self.eat(&TokenKind::Star) {
                lhs = AngleExpr::Mul(Box::new(lhs), Box::new(self.angle_atom()?));
            } else if self.eat(&TokenKind::Slash) {
                lhs = AngleExpr::Div(Box::new(lhs), Box::new(self.angle_atom()?));
            } else {
                return Ok(lhs);
            }
        }
    }
}

fn builtin_basis_keyword(name: &str) -> Option<PrimitiveBasis> {
    match name {
        "std" => Some(PrimitiveBasis::Std),
        "pm" => Some(PrimitiveBasis::Pm),
        "ij" => Some(PrimitiveBasis::Ij),
        "fourier" => Some(PrimitiveBasis::Fourier),
        _ => None,
    }
}

fn parse_qlit_chars(body: &str) -> Result<Vec<QubitChar>, String> {
    body.chars()
        .map(|c| {
            PrimitiveBasis::from_char(c).ok_or_else(|| format!("invalid qubit character {c:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_program() {
        let src = r"
            classical f[N](secret: bit[N], x: bit[N]) -> bit {
                (secret & x).xor_reduce()
            }

            qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
                'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
            }
        ";
        let program = parse_program(src).unwrap();
        assert_eq!(program.items.len(), 2);
        let kernel = program.qpu("kernel").unwrap();
        assert_eq!(kernel.dim_vars, vec!["N".to_string()]);
        assert_eq!(kernel.params.len(), 1);
        let Stmt::Expr(body) = &kernel.body[0] else { panic!() };
        // Pipe is left-associative: ((prep | sign) | trans) | measure.
        let ExprKind::Pipe(lhs, rhs) = &body.kind else { panic!("got {body:?}") };
        assert!(matches!(rhs.kind, ExprKind::Measure(_)));
        let ExprKind::Pipe(lhs2, rhs2) = &lhs.kind else { panic!() };
        assert!(matches!(rhs2.kind, ExprKind::Translation(_, _)));
        let ExprKind::Pipe(prep, sign) = &lhs2.kind else { panic!() };
        assert!(matches!(prep.kind, ExprKind::Pow(_, _)));
        assert!(matches!(sign.kind, ExprKind::Sign(_)));
    }

    #[test]
    fn precedence_pred_binds_tighter_than_pipe() {
        let e = parse_expr("'p0' | '1' & std.flip").unwrap();
        let ExprKind::Pipe(_, rhs) = e.kind else { panic!() };
        assert!(matches!(rhs.kind, ExprKind::Pred(_, _)));
    }

    #[test]
    fn precedence_tensor_inside_pred() {
        // {'111'} + b & f parses as ({'111'} + b) & f.
        let e = parse_expr("{'111'} + std & id").unwrap();
        let ExprKind::Pred(lhs, _) = e.kind else { panic!() };
        assert!(matches!(lhs.kind, ExprKind::Tensor(_, _)));
    }

    #[test]
    fn parses_teleport_shapes() {
        let src = r"
            qpu teleport(secret: qubit) -> qubit {
                let alice, bob = 'p0' | '1' & std.flip;
                let m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure;
                bob | (pm.flip if m_std else id) | (std.flip if m_pm else id)
            }
        ";
        let program = parse_program(src).unwrap();
        let teleport = program.qpu("teleport").unwrap();
        assert_eq!(teleport.body.len(), 3);
        assert!(matches!(
            teleport.body[0],
            Stmt::Let { ref names, .. } if names == &["alice", "bob"]
        ));
    }

    #[test]
    fn parses_repeat_and_adjoint() {
        let e = parse_expr("(f.sign | {'p'[3]} >> {-'p'[3]}) ** 12").unwrap();
        assert!(matches!(e.kind, ExprKind::Repeat(_, DimExpr::Const(12))));
        let e = parse_expr("~f").unwrap();
        assert!(matches!(e.kind, ExprKind::Adjoint(_)));
        let e = parse_expr("~~f").unwrap();
        let ExprKind::Adjoint(inner) = e.kind else { panic!() };
        assert!(matches!(inner.kind, ExprKind::Adjoint(_)));
    }

    #[test]
    fn parses_vector_phases() {
        let e = parse_expr("{'1'@45} >> {'1'@(180/N)}").unwrap();
        let ExprKind::Translation(lhs, rhs) = e.kind else { panic!() };
        let ExprKind::BasisLit(vl) = lhs.kind else { panic!() };
        assert_eq!(vl[0].phase, Some(AngleExpr::Degrees(45.0)));
        let ExprKind::BasisLit(vr) = rhs.kind else { panic!() };
        assert!(matches!(vr[0].phase, Some(AngleExpr::Div(_, _))));
    }

    #[test]
    fn parses_negated_vectors_and_literals() {
        let e = parse_expr("{-'11', '10'}").unwrap();
        let ExprKind::BasisLit(vs) = e.kind else { panic!() };
        assert!(vs[0].negated);
        assert!(!vs[1].negated);
        // Negated state prep.
        let e = parse_expr("-'p'").unwrap();
        assert!(matches!(e.kind, ExprKind::QLit { phase: Some(_), .. }));
    }

    #[test]
    fn parses_classical_body() {
        let src = r"
            classical g[N](s: bit[N], x: bit[N]) -> bit[N] {
                x ^ (x[0].repeat(N) & s) | ~x & s
            }
        ";
        let program = parse_program(src).unwrap();
        let g = program.classical("g").unwrap();
        assert!(matches!(g.body, CExpr::Or(_, _)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_program("qpu {").is_err());
        assert!(parse_expr("'p' |").is_err());
        assert!(parse_expr("{'0q'}").is_err());
        assert!(parse_expr("f if g").is_err());
        assert!(parse_expr("x.unknown").is_err());
    }

    #[test]
    fn expressions_carry_source_spans() {
        let src = "'p0' | std[2].measure";
        let e = parse_expr(src).unwrap();
        // The whole pipe covers the whole input.
        assert_eq!((e.span.start, e.span.end), (0, src.len()));
        let ExprKind::Pipe(lhs, rhs) = &e.kind else { panic!() };
        assert_eq!(&src[lhs.span.start..lhs.span.end], "'p0'");
        assert_eq!(&src[rhs.span.start..rhs.span.end], "std[2].measure");
        let ExprKind::Measure(basis) = &rhs.kind else { panic!() };
        assert_eq!(&src[basis.span.start..basis.span.end], "std[2]");
    }

    #[test]
    fn parse_errors_carry_token_spans() {
        let src = "qpu k() -> bit {\n    '0' | %\n}";
        // `%` is a lex error on line 2.
        let err = parse_program(src).unwrap_err();
        let span = err.span().expect("lex/parse errors always have spans");
        assert_eq!(&src[span.start..span.end], "%");
    }

    #[test]
    fn fourier_dim() {
        let e = parse_expr("fourier[2*N+1]").unwrap();
        let ExprKind::BuiltinBasis(PrimitiveBasis::Fourier, d) = e.kind else { panic!() };
        let mut vars = Vec::new();
        d.vars(&mut vars);
        assert_eq!(vars, vec!["N".to_string()]);
    }
}
