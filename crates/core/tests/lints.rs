//! End-to-end lint tests: correct kernels lint clean through the full
//! pipeline, and sabotaged pipelines (a "pass" that skips resets or
//! reorders gates past measurements) trip the measurement/ancilla lints
//! with their stable codes — the true-positive half of the soundness
//! story the differential sweep's `--lint` mode proves from the other
//! side (zero false positives on generated-correct programs).

use asdf_analysis::{lint_module, LintOptions};
use asdf_core::{CompileOptions, CompileRequest, Session};
use asdf_ir::{GateKind, Module, Op, OpKind, Type};

const SRC: &str = "qpu k() -> bit[1] { '1' | std.measure }";

/// Compiles the kernel with lints on and hands back the session and the
/// post-pipeline module (the exact IR the lints ran over).
fn compiled_module() -> (Session, Module) {
    let session = Session::new(SRC).expect("parse");
    let artifact = session
        .compile(
            &CompileRequest::kernel("k").with_options(CompileOptions::default().with_lints(true)),
        )
        .expect("compile");
    assert!(
        artifact.lints.is_empty(),
        "a correct kernel lints clean, got: {:?}",
        session.render_lints(&artifact)
    );
    let module = artifact.module.clone();
    (session, module)
}

#[test]
fn skipping_resets_trips_the_dirty_release_lint() {
    let (_session, mut module) = compiled_module();
    // The sabotaged "pass": downgrade every reset-release to a bare
    // |0>-asserting release. The kernel measured |1>, so the released
    // wire is provably dirty.
    let mut func = module.expect_func("k").expect("entry").clone();
    for op in &mut func.body.ops {
        if matches!(op.kind, OpKind::QFree) {
            op.kind = OpKind::QFreeZ;
        }
    }
    module.add_func(func);
    let warnings = lint_module(&module, &LintOptions::default());
    assert!(
        warnings.iter().any(|d| d.code == "W0003"),
        "expected W0003 dirty-zero-release, got {:?}",
        warnings.iter().map(|d| d.code).collect::<Vec<_>>()
    );
}

#[test]
fn reordering_a_gate_past_a_measurement_trips_w0001() {
    let (_session, mut module) = compiled_module();
    // The sabotaged "pass": slide an X gate onto the post-measurement
    // wire (as a buggy commutation rewrite would), keeping linearity by
    // re-pointing the release at the gate's result.
    let mut func = module.expect_func("k").expect("entry").clone();
    let measured = func
        .body
        .ops
        .iter()
        .find(|op| matches!(op.kind, OpKind::Measure))
        .expect("kernel measures")
        .results[0];
    let fresh = func.new_value(Type::Qubit);
    let release = func
        .body
        .ops
        .iter()
        .position(|op| op.operands.contains(&measured))
        .expect("measured wire is released");
    func.body.ops[release] =
        Op::new(OpKind::Gate { gate: GateKind::X, num_controls: 0 }, vec![measured], vec![fresh]);
    func.body.ops.insert(release + 1, Op::new(OpKind::QFree, vec![fresh], vec![]));
    module.add_func(func);
    let warnings = lint_module(&module, &LintOptions::default());
    assert!(
        warnings.iter().any(|d| d.code == "W0001"),
        "expected W0001 gate-after-measure, got {:?}",
        warnings.iter().map(|d| d.code).collect::<Vec<_>>()
    );
}
