//! Multi-controlled-gate decomposition for fault-tolerant gate sets
//! (§6.5): "multi-controlled gates are decomposed using Selinger's
//! controlled-iX scheme to reduce T gate counts on fault-tolerant
//! hardware".
//!
//! Two styles, used respectively by ASDF/Q# and by the Qiskit-style
//! baseline in the evaluation (§8.3 explains the Grover gap through this
//! choice):
//!
//! - [`DecomposeStyle::Selinger`]: V-chain whose compute/uncompute
//!   Toffolis are relative-phase (Margolus) gates costing 4 T each — the
//!   relative phases cancel between the compute and uncompute halves, so
//!   the overall unitary is exact. T count for a k-controlled X:
//!   `8(k-2) + 7`.
//! - [`DecomposeStyle::VChain`]: the textbook V-chain with full 7-T
//!   Toffolis throughout: `7(2(k-2) + 1)` T.
//!
//! Controlled Cliffords and rotations (`CH`, `CS`, `CP`, `CRy`, controlled
//! SWAP, ...) needed by conditional (de)standardization (Fig. 7) and
//! predication cleanup (Fig. 5) are decomposed here too.

use crate::circuit::{Circuit, CircuitOp};
use asdf_ir::GateKind;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// Which multi-control decomposition to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecomposeStyle {
    /// Relative-phase (controlled-iX / Margolus) compute-uncompute chains.
    Selinger,
    /// Full Toffolis everywhere (Qiskit-style baseline).
    VChain,
}

/// Rewrites every gate of `circuit` into the fault-tolerant set
/// {1-qubit gates, CX, CZ, CP}. Multi-controlled gates allocate reusable
/// ancilla registers appended after the original registers.
pub fn decompose(circuit: &Circuit, style: DecomposeStyle) -> Circuit {
    let mut out =
        Decomposer { circuit: Circuit::new(circuit.num_qubits), free_ancillas: Vec::new(), style };
    for op in &circuit.ops {
        match op {
            CircuitOp::Gate { gate, controls, targets } => {
                out.controlled_gate(*gate, controls, targets);
            }
            CircuitOp::Measure { qubit, bit } => out.circuit.measure(*qubit, *bit),
            CircuitOp::Reset { qubit } => out.circuit.reset(*qubit),
        }
    }
    out.circuit
}

struct Decomposer {
    circuit: Circuit,
    free_ancillas: Vec<usize>,
    style: DecomposeStyle,
}

impl Decomposer {
    fn get_ancilla(&mut self) -> usize {
        self.free_ancillas.pop().unwrap_or_else(|| self.circuit.add_qubit())
    }

    fn put_ancilla(&mut self, q: usize) {
        self.free_ancillas.push(q);
    }

    fn g(&mut self, gate: GateKind, controls: &[usize], targets: &[usize]) {
        self.circuit.gate(gate, controls, targets);
    }

    /// Entry: any gate with any number of controls.
    fn controlled_gate(&mut self, gate: GateKind, controls: &[usize], targets: &[usize]) {
        match (gate, controls.len()) {
            // Native gates pass through.
            (_, 0) => self.g(gate, &[], targets),
            (GateKind::X, 1) | (GateKind::Z, 1) => self.g(gate, controls, targets),
            (GateKind::X, _) => self.mcx(controls, targets[0]),
            (GateKind::Z, _) => {
                // MCZ = H-conjugated MCX on the last qubit.
                self.g(GateKind::H, &[], &[targets[0]]);
                self.mcx(controls, targets[0]);
                self.g(GateKind::H, &[], &[targets[0]]);
            }
            (GateKind::Y, _) => {
                // Y = S X Sdg, so CY = Sdg_t; MCX; S_t.
                self.g(GateKind::Sdg, &[], &[targets[0]]);
                self.controlled_gate(GateKind::X, controls, targets);
                self.g(GateKind::S, &[], &[targets[0]]);
            }
            (GateKind::S, _) => self.controlled_gate(GateKind::P(FRAC_PI_2), controls, targets),
            (GateKind::Sdg, _) => self.controlled_gate(GateKind::P(-FRAC_PI_2), controls, targets),
            (GateKind::T, _) => self.controlled_gate(GateKind::P(FRAC_PI_4), controls, targets),
            (GateKind::Tdg, _) => self.controlled_gate(GateKind::P(-FRAC_PI_4), controls, targets),
            (GateKind::P(theta), 1) => self.cp(theta, controls[0], targets[0]),
            (GateKind::P(theta), _) => {
                // Multi-controlled phase: AND the controls into an ancilla,
                // then a singly-controlled phase, then uncompute.
                self.with_and_ancilla(controls, |d, anc| {
                    d.cp(theta, anc, targets[0]);
                });
            }
            (GateKind::H, _) => {
                // H = Ry(pi/4) Z Ry(-pi/4) exactly, so
                // CH = Ry(pi/4)_t ; CZ ; Ry(-pi/4)_t.
                let t = targets[0];
                self.reduce_to_single_control(controls, |d, c| {
                    d.g(GateKind::Ry(-FRAC_PI_4), &[], &[t]);
                    d.g(GateKind::Z, &[c], &[t]);
                    d.g(GateKind::Ry(FRAC_PI_4), &[], &[t]);
                });
            }
            (GateKind::Sx, _) => {
                // Sx = H P(pi/2) H exactly.
                let t = targets[0];
                self.g(GateKind::H, &[], &[t]);
                self.controlled_gate(GateKind::P(FRAC_PI_2), controls, &[t]);
                self.g(GateKind::H, &[], &[t]);
            }
            (GateKind::Sxdg, _) => {
                let t = targets[0];
                self.g(GateKind::H, &[], &[t]);
                self.controlled_gate(GateKind::P(-FRAC_PI_2), controls, &[t]);
                self.g(GateKind::H, &[], &[t]);
            }
            (GateKind::Rz(theta), _) => {
                let t = targets[0];
                self.reduce_to_single_control(controls, |d, c| {
                    d.g(GateKind::Rz(theta / 2.0), &[], &[t]);
                    d.g(GateKind::X, &[c], &[t]);
                    d.g(GateKind::Rz(-theta / 2.0), &[], &[t]);
                    d.g(GateKind::X, &[c], &[t]);
                });
            }
            (GateKind::Ry(theta), _) => {
                let t = targets[0];
                self.reduce_to_single_control(controls, |d, c| {
                    d.g(GateKind::Ry(theta / 2.0), &[], &[t]);
                    d.g(GateKind::X, &[c], &[t]);
                    d.g(GateKind::Ry(-theta / 2.0), &[], &[t]);
                    d.g(GateKind::X, &[c], &[t]);
                });
            }
            (GateKind::Rx(theta), _) => {
                // Rx = H Rz H.
                let t = targets[0];
                self.g(GateKind::H, &[], &[t]);
                self.controlled_gate(GateKind::Rz(theta), controls, &[t]);
                self.g(GateKind::H, &[], &[t]);
            }
            (GateKind::Swap, _) => {
                // Fredkin: CSWAP(c; a, b) = CX(b,a); CCX(c, a -> b); CX(b,a).
                let (a, b) = (targets[0], targets[1]);
                self.g(GateKind::X, &[b], &[a]);
                let mut with_a = controls.to_vec();
                with_a.push(a);
                self.controlled_gate(GateKind::X, &with_a, &[b]);
                self.g(GateKind::X, &[b], &[a]);
            }
        }
    }

    /// Reduces a multi-control to a single control via an AND ancilla, then
    /// runs `body` with that control.
    fn reduce_to_single_control(
        &mut self,
        controls: &[usize],
        body: impl FnOnce(&mut Self, usize),
    ) {
        if controls.len() == 1 {
            body(self, controls[0]);
        } else {
            self.with_and_ancilla(controls, body);
        }
    }

    /// Computes the AND of `controls` into a fresh ancilla, runs `body`
    /// with the ancilla, then uncomputes and releases it.
    fn with_and_ancilla(&mut self, controls: &[usize], body: impl FnOnce(&mut Self, usize)) {
        let anc = self.get_ancilla();
        self.mcx(controls, anc);
        body(self, anc);
        self.mcx(controls, anc);
        self.put_ancilla(anc);
    }

    /// CP(theta) with one control: P(theta/2) on both, CX-conjugated
    /// P(-theta/2).
    fn cp(&mut self, theta: f64, c: usize, t: usize) {
        self.g(GateKind::P(theta / 2.0), &[], &[c]);
        self.g(GateKind::P(theta / 2.0), &[], &[t]);
        self.g(GateKind::X, &[c], &[t]);
        self.g(GateKind::P(-theta / 2.0), &[], &[t]);
        self.g(GateKind::X, &[c], &[t]);
    }

    /// Multi-controlled X.
    fn mcx(&mut self, controls: &[usize], target: usize) {
        match controls.len() {
            0 => self.g(GateKind::X, &[], &[target]),
            1 => self.g(GateKind::X, controls, &[target]),
            2 => self.ccx(controls[0], controls[1], target),
            _ => self.mcx_chain(controls, target),
        }
    }

    /// The V-chain: fold control pairs into ancillas, apply the final
    /// Toffoli, then uncompute. Compute/uncompute Toffolis are
    /// relative-phase under [`DecomposeStyle::Selinger`].
    fn mcx_chain(&mut self, controls: &[usize], target: usize) {
        let k = controls.len();
        let mut ancillas = Vec::with_capacity(k - 2);
        // Compute chain: a1 = c1 AND c2; a_i = a_{i-1} AND c_{i+1}.
        let mut carry = controls[0];
        for &c in &controls[1..k - 1] {
            let anc = self.get_ancilla();
            match self.style {
                DecomposeStyle::Selinger => self.rccx(carry, c, anc),
                DecomposeStyle::VChain => self.ccx(carry, c, anc),
            }
            ancillas.push(anc);
            carry = anc;
        }
        // The true Toffoli in the middle.
        self.ccx(carry, controls[k - 1], target);
        // Uncompute in reverse.
        let mut carries: Vec<usize> = Vec::with_capacity(k - 2);
        carries.push(controls[0]);
        carries.extend(ancillas.iter().take(k.saturating_sub(3)).copied());
        for i in (0..ancillas.len()).rev() {
            let carry_in = carries[i];
            let c = controls[i + 1];
            let anc = ancillas[i];
            match self.style {
                DecomposeStyle::Selinger => self.rccx_dagger(carry_in, c, anc),
                DecomposeStyle::VChain => self.ccx(carry_in, c, anc),
            }
            self.put_ancilla(anc);
        }
    }

    /// The exact 7-T Toffoli (Nielsen & Chuang Fig. 4.9).
    fn ccx(&mut self, c1: usize, c2: usize, t: usize) {
        self.g(GateKind::H, &[], &[t]);
        self.g(GateKind::X, &[c2], &[t]);
        self.g(GateKind::Tdg, &[], &[t]);
        self.g(GateKind::X, &[c1], &[t]);
        self.g(GateKind::T, &[], &[t]);
        self.g(GateKind::X, &[c2], &[t]);
        self.g(GateKind::Tdg, &[], &[t]);
        self.g(GateKind::X, &[c1], &[t]);
        self.g(GateKind::T, &[], &[c2]);
        self.g(GateKind::T, &[], &[t]);
        self.g(GateKind::H, &[], &[t]);
        self.g(GateKind::X, &[c1], &[c2]);
        self.g(GateKind::T, &[], &[c1]);
        self.g(GateKind::Tdg, &[], &[c2]);
        self.g(GateKind::X, &[c1], &[c2]);
    }

    /// The relative-phase (Margolus) Toffoli: 4 T gates. Exact X-on-target
    /// action, with a phase of -1 on the |101> branch that cancels against
    /// [`Self::rccx_dagger`].
    fn rccx(&mut self, c1: usize, c2: usize, t: usize) {
        self.g(GateKind::H, &[], &[t]);
        self.g(GateKind::T, &[], &[t]);
        self.g(GateKind::X, &[c2], &[t]);
        self.g(GateKind::Tdg, &[], &[t]);
        self.g(GateKind::X, &[c1], &[t]);
        self.g(GateKind::T, &[], &[t]);
        self.g(GateKind::X, &[c2], &[t]);
        self.g(GateKind::Tdg, &[], &[t]);
        self.g(GateKind::H, &[], &[t]);
    }

    /// Inverse of [`Self::rccx`].
    fn rccx_dagger(&mut self, c1: usize, c2: usize, t: usize) {
        self.g(GateKind::H, &[], &[t]);
        self.g(GateKind::T, &[], &[t]);
        self.g(GateKind::X, &[c2], &[t]);
        self.g(GateKind::Tdg, &[], &[t]);
        self.g(GateKind::X, &[c1], &[t]);
        self.g(GateKind::T, &[], &[t]);
        self.g(GateKind::X, &[c2], &[t]);
        self.g(GateKind::Tdg, &[], &[t]);
        self.g(GateKind::H, &[], &[t]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mcx_circuit(k: usize) -> Circuit {
        let mut c = Circuit::new(k + 1);
        let controls: Vec<usize> = (0..k).collect();
        c.gate(GateKind::X, &controls, &[k]);
        c
    }

    #[test]
    fn ccx_has_7_t() {
        let out = decompose(&mcx_circuit(2), DecomposeStyle::Selinger);
        assert_eq!(out.t_count(), 7);
        assert_eq!(out.num_qubits, 3, "no ancilla for a plain Toffoli");
    }

    #[test]
    fn selinger_t_counts_follow_8k_minus_9() {
        for k in 3..=8 {
            let out = decompose(&mcx_circuit(k), DecomposeStyle::Selinger);
            assert_eq!(out.t_count(), 8 * k - 9, "k = {k}");
            assert_eq!(out.num_qubits, (k + 1) + (k - 2), "ancilla count for k = {k}");
        }
    }

    #[test]
    fn vchain_t_counts_follow_14k_minus_21() {
        for k in 3..=8 {
            let out = decompose(&mcx_circuit(k), DecomposeStyle::VChain);
            assert_eq!(out.t_count(), 14 * k - 21, "k = {k}");
        }
    }

    #[test]
    fn selinger_beats_vchain() {
        for k in 3..=10 {
            let s = decompose(&mcx_circuit(k), DecomposeStyle::Selinger).t_count();
            let v = decompose(&mcx_circuit(k), DecomposeStyle::VChain).t_count();
            assert!(s < v, "k = {k}: {s} vs {v}");
        }
    }

    #[test]
    fn ancillas_are_reused_across_gates() {
        let mut c = Circuit::new(5);
        c.gate(GateKind::X, &[0, 1, 2, 3], &[4]);
        c.gate(GateKind::X, &[0, 1, 2, 3], &[4]);
        let out = decompose(&c, DecomposeStyle::Selinger);
        assert_eq!(out.num_qubits, 5 + 2, "second MCX reuses the pool");
    }

    #[test]
    fn mcz_and_mcp_decompose() {
        let mut c = Circuit::new(3);
        c.gate(GateKind::Z, &[0, 1], &[2]);
        c.gate(GateKind::P(0.4), &[0, 1], &[2]);
        let out = decompose(&c, DecomposeStyle::Selinger);
        // Everything is now <= 1 control.
        for op in &out.ops {
            if let CircuitOp::Gate { controls, .. } = op {
                assert!(controls.len() <= 1);
            }
        }
        assert_eq!(out.rotation_count(), 3, "CP leaves three P(theta/2) rotations");
    }

    #[test]
    fn cswap_uses_fredkin() {
        let mut c = Circuit::new(3);
        c.gate(GateKind::Swap, &[0], &[1, 2]);
        let out = decompose(&c, DecomposeStyle::Selinger);
        assert!(out.ops.len() > 3);
        for op in &out.ops {
            if let CircuitOp::Gate { gate, controls, .. } = op {
                assert!(controls.len() <= 1, "no multi-controls remain: {gate}");
            }
        }
    }

    #[test]
    fn ch_decomposes_via_ry_conjugation() {
        let mut c = Circuit::new(2);
        c.gate(GateKind::H, &[0], &[1]);
        let out = decompose(&c, DecomposeStyle::Selinger);
        assert!(out
            .ops
            .iter()
            .any(|op| matches!(op, CircuitOp::Gate { gate: GateKind::Ry(_), .. })));
        assert!(out
            .ops
            .iter()
            .any(|op| matches!(op, CircuitOp::Gate { gate: GateKind::Z, controls, .. } if controls.len() == 1)));
    }
}
