//! Baseline benchmark circuits (§8.1): the five algorithms in each
//! circuit-oriented style.
//!
//! "For all benchmarks, oracles are expressed as classical logic in both
//! Quipper and Qwerty, but as gates in Qiskit and Q#." Accordingly, the
//! Qiskit/Q# builders write oracle gates directly, while the Quipper
//! builder synthesizes oracles from logic networks with an ancilla per
//! node. Q# and Qiskit differ in multi-control decomposition (Selinger vs
//! full-Toffoli V-chain); Quipper additionally uses renaming-based IQFT
//! swaps rather than SWAP gates.

use asdf_ir::GateKind;
use asdf_logic::{embed, EmbedStyle, McxGate, Signal, Xag};
use asdf_qcircuit::decompose::{decompose, DecomposeStyle};
use asdf_qcircuit::Circuit;
use std::f64::consts::PI;

/// One of the paper's five benchmarks, with its oracle parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Benchmark {
    /// Bernstein–Vazirani with the given secret string.
    Bv {
        /// The secret bits.
        secret: Vec<bool>,
    },
    /// Deutsch–Jozsa with the balanced XOR-all-bits oracle on `n` bits.
    Dj {
        /// Oracle input size.
        n: usize,
    },
    /// Grover's search for the all-ones item.
    Grover {
        /// Oracle input size.
        n: usize,
        /// Number of iterations (the paper caps this at 12).
        iterations: usize,
    },
    /// Simon's algorithm with a nonzero secret string.
    Simon {
        /// The secret bits (first bit must be 1 for this oracle family).
        secret: Vec<bool>,
    },
    /// QFT-based period finding with a bitmask oracle.
    Period {
        /// Register size.
        n: usize,
        /// The oracle mask (low bits kept).
        mask: Vec<bool>,
    },
}

impl Benchmark {
    /// The paper's parameterization at oracle input size `n` (§8.1):
    /// alternating secret for BV, balanced XOR oracle for DJ, all-ones
    /// oracle with ≤ 12 iterations for Grover, a nonzero secret for Simon,
    /// and a bitmask for period finding.
    pub fn paper_suite(n: usize) -> Vec<(&'static str, Benchmark)> {
        let alternating: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut simon_secret = vec![false; n];
        simon_secret[0] = true;
        if n > 1 {
            simon_secret[1] = true;
        }
        let grover_iters =
            (((PI / 4.0) * ((1u64 << n.min(20)) as f64).sqrt()) as usize).clamp(1, 12);
        let mask: Vec<bool> = (0..n).map(|i| i >= n / 2).collect();
        vec![
            ("bv", Benchmark::Bv { secret: alternating }),
            ("dj", Benchmark::Dj { n }),
            ("grover", Benchmark::Grover { n, iterations: grover_iters }),
            ("simon", Benchmark::Simon { secret: simon_secret }),
            ("period", Benchmark::Period { n, mask }),
        ]
    }
}

/// Which circuit-oriented baseline to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineStyle {
    /// Textbook circuits, gate oracles, V-chain Toffoli decomposition.
    Qiskit,
    /// Gate oracles with Selinger decomposition (like ASDF's backend).
    QSharp,
    /// Logic-network oracles with an ancilla per node; renaming IQFT.
    Quipper,
}

impl BaselineStyle {
    fn decompose_style(self) -> DecomposeStyle {
        match self {
            BaselineStyle::QSharp => DecomposeStyle::Selinger,
            BaselineStyle::Qiskit | BaselineStyle::Quipper => DecomposeStyle::VChain,
        }
    }
}

/// Builds the decomposed circuit for a benchmark in a given style.
pub fn build_circuit(benchmark: &Benchmark, style: BaselineStyle) -> Circuit {
    let raw = match benchmark {
        Benchmark::Bv { secret } => bv(secret, style),
        Benchmark::Dj { n } => bv(&vec![true; *n], style),
        Benchmark::Grover { n, iterations } => grover(*n, *iterations, style),
        Benchmark::Simon { secret } => simon(secret, style),
        Benchmark::Period { n, mask } => period(*n, mask, style),
    };
    decompose(&raw, style.decompose_style())
}

// ---------------------------------------------------------------------
// Oracle builders
// ---------------------------------------------------------------------

/// Appends a classical reversible cascade mapping logic lines to circuit
/// qubits, conjugating negative controls with X.
fn append_mcx(circuit: &mut Circuit, gates: &[McxGate], line_to_qubit: &[usize]) {
    for gate in gates {
        let mut flips = Vec::new();
        let mut controls = Vec::new();
        for &(line, positive) in &gate.controls {
            let q = line_to_qubit[line];
            if !positive {
                flips.push(q);
            }
            controls.push(q);
        }
        for &q in &flips {
            circuit.gate(GateKind::X, &[], &[q]);
        }
        circuit.gate(GateKind::X, &controls, &[line_to_qubit[gate.target]]);
        for &q in &flips {
            circuit.gate(GateKind::X, &[], &[q]);
        }
    }
}

/// Quipper-style phase oracle via an ancilla-per-node Bennett embedding
/// into a |−⟩ target.
fn quipper_oracle_sign(circuit: &mut Circuit, xag: &Xag, inputs: &[usize], minus: usize) {
    let embedding =
        embed::embed_xor(xag, EmbedStyle::AncillaPerNode).expect("benchmark oracles embed");
    let mut line_to_qubit: Vec<usize> = Vec::with_capacity(embedding.circuit.lines);
    line_to_qubit.extend(inputs.iter().copied());
    line_to_qubit.push(minus);
    for _ in &embedding.ancilla_lines {
        line_to_qubit.push(circuit.add_qubit());
    }
    append_mcx(circuit, &embedding.circuit.gates, &line_to_qubit);
}

/// Quipper-style XOR oracle writing into an output register.
fn quipper_oracle_xor(circuit: &mut Circuit, xag: &Xag, inputs: &[usize], outputs: &[usize]) {
    let embedding =
        embed::embed_xor(xag, EmbedStyle::AncillaPerNode).expect("benchmark oracles embed");
    let mut line_to_qubit: Vec<usize> = Vec::with_capacity(embedding.circuit.lines);
    line_to_qubit.extend(inputs.iter().copied());
    line_to_qubit.extend(outputs.iter().copied());
    for _ in &embedding.ancilla_lines {
        line_to_qubit.push(circuit.add_qubit());
    }
    append_mcx(circuit, &embedding.circuit.gates, &line_to_qubit);
}

// ---------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------

fn bv(secret: &[bool], style: BaselineStyle) -> Circuit {
    let n = secret.len();
    let mut c = Circuit::new(n + 1);
    let minus = n;
    c.gate(GateKind::X, &[], &[minus]);
    c.gate(GateKind::H, &[], &[minus]);
    for q in 0..n {
        c.gate(GateKind::H, &[], &[q]);
    }
    match style {
        BaselineStyle::Qiskit | BaselineStyle::QSharp => {
            for (i, &bit) in secret.iter().enumerate() {
                if bit {
                    c.gate(GateKind::X, &[i], &[minus]);
                }
            }
        }
        BaselineStyle::Quipper => {
            let mut xag = Xag::new(n);
            let terms: Vec<Signal> =
                secret.iter().enumerate().filter(|(_, &s)| s).map(|(i, _)| xag.input(i)).collect();
            let out = xag.xor_many(terms);
            xag.set_outputs(vec![out]);
            let inputs: Vec<usize> = (0..n).collect();
            quipper_oracle_sign(&mut c, &xag, &inputs, minus);
        }
    }
    for q in 0..n {
        c.gate(GateKind::H, &[], &[q]);
    }
    c.gate(GateKind::H, &[], &[minus]);
    c.gate(GateKind::X, &[], &[minus]);
    for q in 0..n {
        c.measure(q, q);
    }
    c
}

fn grover(n: usize, iterations: usize, style: BaselineStyle) -> Circuit {
    let mut c = Circuit::new(n + 1);
    let minus = n;
    c.gate(GateKind::X, &[], &[minus]);
    c.gate(GateKind::H, &[], &[minus]);
    for q in 0..n {
        c.gate(GateKind::H, &[], &[q]);
    }
    let controls: Vec<usize> = (0..n).collect();
    for _ in 0..iterations {
        // Oracle: flip phase of |1...1>.
        match style {
            BaselineStyle::Qiskit | BaselineStyle::QSharp => {
                c.gate(GateKind::X, &controls, &[minus]);
            }
            BaselineStyle::Quipper => {
                let mut xag = Xag::new(n);
                let inputs: Vec<Signal> = (0..n).map(|i| xag.input(i)).collect();
                let out = xag.and_many(inputs);
                xag.set_outputs(vec![out]);
                quipper_oracle_sign(&mut c, &xag, &controls, minus);
            }
        }
        // Diffuser: H X (MCZ) X H.
        for q in 0..n {
            c.gate(GateKind::H, &[], &[q]);
            c.gate(GateKind::X, &[], &[q]);
        }
        c.gate(GateKind::Z, &controls[..n - 1], &[n - 1]);
        for q in 0..n {
            c.gate(GateKind::X, &[], &[q]);
            c.gate(GateKind::H, &[], &[q]);
        }
    }
    for q in 0..n {
        c.measure(q, q);
    }
    c
}

fn simon(secret: &[bool], style: BaselineStyle) -> Circuit {
    let n = secret.len();
    let mut c = Circuit::new(2 * n);
    for q in 0..n {
        c.gate(GateKind::H, &[], &[q]);
    }
    let k = secret.iter().position(|&b| b).expect("nonzero secret");
    match style {
        BaselineStyle::Qiskit | BaselineStyle::QSharp => {
            // f(x) = x XOR (x_k ? s : 0): copy then conditional XOR.
            for i in 0..n {
                c.gate(GateKind::X, &[i], &[n + i]);
            }
            for (i, &bit) in secret.iter().enumerate() {
                if bit {
                    c.gate(GateKind::X, &[k], &[n + i]);
                }
            }
        }
        BaselineStyle::Quipper => {
            let mut xag = Xag::new(n);
            let xk = xag.input(k);
            let outs: Vec<Signal> = (0..n)
                .map(|i| {
                    let xi = xag.input(i);
                    if secret[i] {
                        xag.xor2(xi, xk)
                    } else {
                        xi
                    }
                })
                .collect();
            xag.set_outputs(outs);
            let inputs: Vec<usize> = (0..n).collect();
            let outputs: Vec<usize> = (n..2 * n).collect();
            quipper_oracle_xor(&mut c, &xag, &inputs, &outputs);
        }
    }
    for q in 0..n {
        c.gate(GateKind::H, &[], &[q]);
    }
    for q in 0..2 * n {
        c.measure(q, q);
    }
    c
}

fn period(n: usize, mask: &[bool], style: BaselineStyle) -> Circuit {
    let mut c = Circuit::new(2 * n);
    for q in 0..n {
        c.gate(GateKind::H, &[], &[q]);
    }
    match style {
        BaselineStyle::Qiskit | BaselineStyle::QSharp => {
            for (i, &bit) in mask.iter().enumerate() {
                if bit {
                    c.gate(GateKind::X, &[i], &[n + i]);
                }
            }
        }
        BaselineStyle::Quipper => {
            let mut xag = Xag::new(n);
            let outs: Vec<Signal> =
                (0..n).map(|i| if mask[i] { xag.input(i) } else { xag.const_false() }).collect();
            xag.set_outputs(outs);
            let inputs: Vec<usize> = (0..n).collect();
            let outputs: Vec<usize> = (n..2 * n).collect();
            quipper_oracle_xor(&mut c, &xag, &inputs, &outputs);
        }
    }
    // IQFT on the first register.
    let positions: Vec<usize> = (0..n).collect();
    iqft(&mut c, &positions, style);
    for q in 0..2 * n {
        c.measure(q, q);
    }
    c
}

/// IQFT: Qiskit/Q# emit SWAP gates; Quipper uses renaming-based swaps —
/// "this difference is Quipper using renaming-based swaps for IQFT rather
/// than SWAP gates" (§8.3) — realized by permuting the gate indices
/// instead of emitting SWAPs.
fn iqft(c: &mut Circuit, positions: &[usize], style: BaselineStyle) {
    let n = positions.len();
    let logical: Vec<usize> = match style {
        BaselineStyle::Quipper => (0..n).rev().map(|i| positions[i]).collect(),
        _ => positions.to_vec(),
    };
    if !matches!(style, BaselineStyle::Quipper) {
        for i in 0..n / 2 {
            c.gate(GateKind::Swap, &[], &[positions[i], positions[n - 1 - i]]);
        }
    }
    for i in (0..n).rev() {
        for j in (i + 1..n).rev() {
            let theta = -PI / (1u64 << (j - i)) as f64;
            c.gate(GateKind::P(theta), &[logical[j]], &[logical[i]]);
        }
        c.gate(GateKind::H, &[], &[logical[i]]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpiler::optimize;
    use asdf_sim::sample;

    #[test]
    fn bv_baselines_recover_secret() {
        let secret = vec![true, false, true, true];
        for style in [BaselineStyle::Qiskit, BaselineStyle::QSharp, BaselineStyle::Quipper] {
            let circuit = build_circuit(&Benchmark::Bv { secret: secret.clone() }, style);
            let counts = sample(&optimize(&circuit), 16, 5);
            assert_eq!(counts.len(), 1, "style {style:?}: {counts:?}");
            assert!(counts.contains_key("1011"), "style {style:?}: {counts:?}");
        }
    }

    #[test]
    fn grover_baselines_amplify() {
        for style in [BaselineStyle::Qiskit, BaselineStyle::QSharp, BaselineStyle::Quipper] {
            let circuit = build_circuit(&Benchmark::Grover { n: 4, iterations: 3 }, style);
            let counts = sample(&optimize(&circuit), 100, 7);
            let hits = counts.get("1111").copied().unwrap_or(0);
            assert!(hits > 75, "style {style:?}: {counts:?}");
        }
    }

    #[test]
    fn simon_baselines_orthogonal() {
        let secret = vec![true, true, false];
        for style in [BaselineStyle::Qiskit, BaselineStyle::QSharp, BaselineStyle::Quipper] {
            let circuit = build_circuit(&Benchmark::Simon { secret: secret.clone() }, style);
            let counts = sample(&optimize(&circuit), 64, 11);
            for bits in counts.keys() {
                let y: Vec<bool> = bits[..3].chars().map(|c| c == '1').collect();
                let dot = y.iter().zip(&secret).fold(false, |acc, (&a, &b)| acc ^ (a && b));
                assert!(!dot, "style {style:?}: sample {bits}");
            }
        }
    }

    #[test]
    fn quipper_uses_more_qubits_on_xor_oracles() {
        let secret: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let qiskit =
            build_circuit(&Benchmark::Bv { secret: secret.clone() }, BaselineStyle::Qiskit);
        let quipper = build_circuit(&Benchmark::Bv { secret }, BaselineStyle::Quipper);
        assert!(
            quipper.num_qubits > qiskit.num_qubits,
            "quipper {} vs qiskit {}",
            quipper.num_qubits,
            qiskit.num_qubits
        );
    }

    #[test]
    fn qsharp_beats_qiskit_on_grover_t_counts() {
        let qiskit =
            build_circuit(&Benchmark::Grover { n: 8, iterations: 4 }, BaselineStyle::Qiskit);
        let qsharp =
            build_circuit(&Benchmark::Grover { n: 8, iterations: 4 }, BaselineStyle::QSharp);
        assert!(
            qsharp.t_count() < qiskit.t_count(),
            "qsharp {} vs qiskit {}",
            qsharp.t_count(),
            qiskit.t_count()
        );
    }

    #[test]
    fn quipper_period_avoids_swaps() {
        let mask: Vec<bool> = (0..4).map(|i| i >= 2).collect();
        let quipper =
            build_circuit(&Benchmark::Period { n: 4, mask: mask.clone() }, BaselineStyle::Quipper);
        // Renaming-based IQFT means no SWAP gates even pre-decomposition;
        // after decomposition there are no 3-CX swap expansions either.
        let qiskit = build_circuit(&Benchmark::Period { n: 4, mask }, BaselineStyle::Qiskit);
        assert!(quipper.gate_count() < qiskit.gate_count());
    }

    #[test]
    fn paper_suite_has_all_five() {
        let suite = Benchmark::paper_suite(16);
        let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["bv", "dj", "grover", "simon", "period"]);
        if let Benchmark::Grover { iterations, .. } = &suite[2].1 {
            assert_eq!(*iterations, 12, "capped at 12 (§8.1)");
        }
    }
}
