//! Assembling the circuit for a basis translation (Fig. 6):
//!
//! ```text
//! Standardize(uncond) · Standardize(cond) · Phases(left)
//!   · Permute std vectors · Phases(right)
//!   · Destandardize(cond) · Destandardize(uncond)
//! ```
//!
//! Conditional stages are controlled on the translation's *predicates* —
//! the aligned identical literal pairs — with X-conjugation to control on
//! 0-eigenbits. Span checking guarantees predicates always sit under
//! unconditional standardizations (§6.3), so predicate controls are plain
//! computational-basis controls here.

use super::align::{align, AlignedPair};
use super::standardize::{standardizations, StdEntry, StdKind};
use crate::error::CoreError;
use asdf_basis::{Basis, BasisElem, BasisLiteral, Phase, PrimitiveBasis};
use asdf_ir::func::BlockBuilder;
use asdf_ir::{GateKind, Value};
use asdf_logic::{synth as revsynth, Permutation};
use std::f64::consts::PI;

/// Emits the gates realizing `b_in >> b_out` on `qubits` (one SSA qubit
/// value per position), returning the new qubit values.
///
/// `resolve_phase` maps `Phase::Operand(k)` references to concrete angles
/// (the op's `f64` operands, which must be constants by synthesis time).
///
/// # Errors
///
/// Returns [`CoreError::Synthesis`] when alignment or permutation
/// construction fails (which well-typed translations do not trigger).
pub fn emit_translation(
    bb: &mut BlockBuilder<'_>,
    qubits: Vec<Value>,
    b_in: &Basis,
    b_out: &Basis,
    resolve_phase: &dyn Fn(u32) -> Result<f64, CoreError>,
) -> Result<Vec<Value>, CoreError> {
    assert_eq!(qubits.len(), b_in.dim(), "qubit count must match basis dim");
    let phases_in = collect_phases(b_in, resolve_phase)?;
    let phases_out = collect_phases(b_out, resolve_phase)?;
    let (lstd, rstd) = standardizations(b_in, b_out);
    let aligned = align(b_in, b_out)?;
    let predicates: Vec<&AlignedPair> = aligned.iter().filter(|p| p.is_predicate()).collect();
    let combos = predicate_combinations(&predicates);

    let mut ctx = GateCtx { bb, values: qubits };

    // 1. Unconditional standardizations.
    for entry in lstd.iter().filter(|e| e.kind == StdKind::Unconditional) {
        ctx.standardize(entry, &[], false);
    }
    // 2. Conditional standardizations, once per predicate combination.
    for entry in lstd.iter().filter(|e| e.kind == StdKind::Conditional) {
        for combo in &combos {
            ctx.under_controls(combo.clone(), |ctx, controls| {
                ctx.standardize(entry, controls, false);
            });
        }
    }
    // 3. Left vector phases: translate std-with-phases to plain std.
    for (offset, eigenbits, theta) in &phases_in {
        ctx.vector_phase(*offset, eigenbits, -theta, &combos);
    }
    // 4. Permutation of std basis vectors per aligned pair (Fig. 9).
    for pair in aligned.iter().filter(|p| !p.is_predicate() && !p.is_identity()) {
        let perm = pair_permutation(pair)?;
        let cascade = revsynth::synthesize(&perm);
        for combo in &combos {
            ctx.under_controls(combo.clone(), |ctx, controls| {
                for gate in &cascade.gates {
                    debug_assert!(gate.controls.iter().all(|(_, pos)| *pos));
                    let mut all_controls: Vec<usize> = controls.to_vec();
                    all_controls.extend(gate.controls.iter().map(|(line, _)| pair.offset + line));
                    ctx.gate(GateKind::X, &all_controls, &[pair.offset + gate.target]);
                }
            });
        }
    }
    // 5. Right vector phases: reintroduce output phases.
    for (offset, eigenbits, theta) in &phases_out {
        ctx.vector_phase(*offset, eigenbits, *theta, &combos);
    }
    // 6. Conditional destandardizations.
    for entry in rstd.iter().filter(|e| e.kind == StdKind::Conditional) {
        for combo in &combos {
            ctx.under_controls(combo.clone(), |ctx, controls| {
                ctx.standardize(entry, controls, true);
            });
        }
    }
    // 7. Unconditional destandardizations.
    for entry in rstd.iter().filter(|e| e.kind == StdKind::Unconditional) {
        ctx.standardize(entry, &[], true);
    }

    Ok(ctx.values)
}

/// `(offset, eigenbits, theta)` for every phased vector in the basis.
fn collect_phases(
    basis: &Basis,
    resolve: &dyn Fn(u32) -> Result<f64, CoreError>,
) -> Result<Vec<(usize, Vec<bool>, f64)>, CoreError> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    for elem in basis.elements() {
        if let BasisElem::Literal(lit) = elem {
            for v in lit.vectors() {
                let theta = match v.phase {
                    None => continue,
                    Some(Phase::Const(t)) => t,
                    Some(Phase::Operand(k)) => resolve(k)?,
                };
                out.push((offset, v.eigenbits.iter().collect(), theta));
            }
        }
        offset += elem.dim();
    }
    Ok(out)
}

/// Cartesian product of predicate vectors: each combination is a control
/// pattern `(position, required bit)`. With no predicates there is one
/// empty combination (everything unconditioned).
fn predicate_combinations(predicates: &[&AlignedPair]) -> Vec<Vec<(usize, bool)>> {
    let mut combos: Vec<Vec<(usize, bool)>> = vec![Vec::new()];
    for pred in predicates {
        let BasisElem::Literal(lit) = &pred.elem_in else {
            continue;
        };
        let mut next = Vec::new();
        for combo in &combos {
            for vector in lit.vectors() {
                let mut extended = combo.clone();
                extended.extend(
                    vector.eigenbits.iter().enumerate().map(|(i, bit)| (pred.offset + i, bit)),
                );
                next.push(extended);
            }
        }
        combos = next;
    }
    combos
}

/// The partial permutation an aligned literal pair defines: in-vector k
/// maps to out-vector k; everything else is fixed (§2.2).
fn pair_permutation(pair: &AlignedPair) -> Result<Permutation, CoreError> {
    let (BasisElem::Literal(l), BasisElem::Literal(r)) = (&pair.elem_in, &pair.elem_out) else {
        return Err(CoreError::Synthesis(
            "aligned non-identity pair must be literal vs literal".to_string(),
        ));
    };
    let pairs: Vec<(usize, usize)> = l
        .vectors()
        .iter()
        .zip(r.vectors())
        .map(|(a, b)| (a.eigenbits.value() as usize, b.eigenbits.value() as usize))
        .collect();
    Permutation::from_partial(pair.dim(), &pairs)
        .map_err(|e| CoreError::Synthesis(format!("permutation construction failed: {e}")))
}

use crate::gates::GateCtx;

impl GateCtx<'_, '_> {
    /// Emits the (de)standardization for one Algorithm E6 entry, with
    /// extra controls on every gate.
    fn standardize(&mut self, entry: &StdEntry, controls: &[usize], inverse: bool) {
        let positions: Vec<usize> = (entry.offset..entry.offset + entry.dim).collect();
        match (entry.prim, inverse) {
            (PrimitiveBasis::Std, _) => {}
            (PrimitiveBasis::Pm, _) => {
                for &p in &positions {
                    self.gate(GateKind::H, controls, &[p]);
                }
            }
            (PrimitiveBasis::Ij, false) => {
                // |i> = S H |0>, so standardizing applies Sdg then H.
                for &p in &positions {
                    self.gate(GateKind::Sdg, controls, &[p]);
                    self.gate(GateKind::H, controls, &[p]);
                }
            }
            (PrimitiveBasis::Ij, true) => {
                for &p in &positions {
                    self.gate(GateKind::H, controls, &[p]);
                    self.gate(GateKind::S, controls, &[p]);
                }
            }
            (PrimitiveBasis::Fourier, false) => self.iqft(&positions, controls),
            (PrimitiveBasis::Fourier, true) => self.qft(&positions, controls),
        }
    }

    /// The quantum Fourier transform over `positions` (position 0 most
    /// significant), ending with explicit SWAP gates — ASDF emits real
    /// SWAPs here, unlike Quipper's renaming (§8.3).
    fn qft(&mut self, positions: &[usize], controls: &[usize]) {
        let n = positions.len();
        for i in 0..n {
            self.gate(GateKind::H, controls, &[positions[i]]);
            for j in i + 1..n {
                let theta = PI / (1u64 << (j - i)) as f64;
                let mut all = controls.to_vec();
                all.push(positions[j]);
                self.gate(GateKind::P(theta), &all, &[positions[i]]);
            }
        }
        for i in 0..n / 2 {
            self.gate(GateKind::Swap, controls, &[positions[i], positions[n - 1 - i]]);
        }
    }

    /// Inverse QFT: the exact adjoint of [`Self::qft`].
    fn iqft(&mut self, positions: &[usize], controls: &[usize]) {
        let n = positions.len();
        for i in 0..n / 2 {
            self.gate(GateKind::Swap, controls, &[positions[i], positions[n - 1 - i]]);
        }
        for i in (0..n).rev() {
            for j in (i + 1..n).rev() {
                let theta = -PI / (1u64 << (j - i)) as f64;
                let mut all = controls.to_vec();
                all.push(positions[j]);
                self.gate(GateKind::P(theta), &all, &[positions[i]]);
            }
            self.gate(GateKind::H, controls, &[positions[i]]);
        }
    }

    /// An X-conjugated multi-controlled P(theta) applying the phase to the
    /// std basis state `eigenbits` at `offset` (Fig. 8), under every
    /// predicate combination.
    fn vector_phase(
        &mut self,
        offset: usize,
        eigenbits: &[bool],
        theta: f64,
        combos: &[Vec<(usize, bool)>],
    ) {
        if eigenbits.is_empty() {
            return;
        }
        for combo in combos {
            let mut pattern: Vec<(usize, bool)> = combo.clone();
            pattern.extend(eigenbits.iter().enumerate().map(|(i, &b)| (offset + i, b)));
            // Conflict check happens in under_controls; the phase target is
            // the vector's last qubit.
            let target = offset + eigenbits.len() - 1;
            self.under_controls(pattern, |ctx, positive| {
                let controls: Vec<usize> =
                    positive.iter().copied().filter(|&p| p != target).collect();
                ctx.gate(GateKind::P(theta), &controls, &[target]);
            });
        }
    }
}

/// Convenience for lowering `qbmeas` (§6.1): measuring in basis `b` is the
/// translation `b >> std[n]` followed by standard-basis measurement, which
/// is valid whenever `b` fully spans.
pub fn emit_measurement_rotation(
    bb: &mut BlockBuilder<'_>,
    qubits: Vec<Value>,
    basis: &Basis,
) -> Result<Vec<Value>, CoreError> {
    if !basis.fully_spans() {
        return Err(CoreError::Unsupported(format!(
            "measurement basis {basis} does not fully span"
        )));
    }
    let std_basis = Basis::built_in(PrimitiveBasis::Std, basis.dim());
    emit_translation(bb, qubits, basis, &std_basis, &|_| {
        Err(CoreError::Synthesis("measurement bases have no phase operands".into()))
    })
}

/// Materializing helper used in tests: a one-element literal basis.
#[allow(dead_code)]
pub(crate) fn literal_basis(lit: BasisLiteral) -> Basis {
    Basis::literal(lit)
}
