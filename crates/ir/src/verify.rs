//! Module verification: op signatures, structural rules, and qubit
//! linearity.
//!
//! The Qwerty type system enforces linear use of qubits at the AST level
//! (§4); the IR verifier re-enforces the same invariant after every pass,
//! which catches transformation bugs early: any quantum value must be used
//! exactly once and cannot be discarded.

use crate::block::{Block, BlockPath};
use crate::error::IrError;
use crate::func::Func;
use crate::module::Module;
use crate::op::{Op, OpKind};
use crate::print::op_line;
use crate::types::{FuncType, Type};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Verifies a whole module.
///
/// # Errors
///
/// Returns [`IrError::Verify`] naming the offending function and op on the
/// first violation found.
pub fn verify_module(module: &Module) -> Result<(), IrError> {
    for func in module.funcs() {
        verify_func(func, Some(module))?;
    }
    Ok(())
}

/// Verifies one function. Pass the module when available so symbol
/// references (`call`, `func_const`, `callable_create`) are checked too.
///
/// # Errors
///
/// Returns [`IrError::Verify`] on the first violation.
pub fn verify_func(func: &Func, module: Option<&Module>) -> Result<(), IrError> {
    let ctx = Ctx { func, module };
    ctx.verify_block(&func.body, &func.ty.results, &HashSet::new(), &HashSet::new(), &Vec::new())
        .map_err(IrError::Verify)
}

struct Ctx<'a> {
    func: &'a Func,
    module: Option<&'a Module>,
}

impl Ctx<'_> {
    fn ty(&self, v: Value) -> &Type {
        self.func.value_type(v)
    }

    /// The `func:block:op` coordinates of an op, using the same preorder
    /// block numbering the rewrite trace and `--fuel-bisect` print.
    fn location(&self, path: &BlockPath, op_idx: usize) -> String {
        let block_no = self
            .func
            .block_paths()
            .iter()
            .position(|p| p == path)
            .map_or_else(|| "?".to_string(), |n| n.to_string());
        format!("{}:{}:{}", self.func.name, block_no, op_idx)
    }

    /// Renders a violation at `path[op_idx]`: the message, the op's
    /// `func:block:op` coordinates, and the pretty-printed op itself.
    fn op_err(&self, path: &BlockPath, op_idx: usize, op: &Op, msg: String) -> String {
        format!("at {}: {msg}\n  in op: {}", self.location(path, op_idx), op_line(op))
    }

    /// Verifies a block given the result types its terminator must return,
    /// the classical values visible from enclosing scopes, and any outer
    /// *linear* values this block is responsible for consuming exactly once
    /// (`scf.if` branch regions receive the linear values the branch
    /// consumes, per the Appendix C inlining pattern).
    fn verify_block(
        &self,
        block: &Block,
        expected_results: &[Type],
        outer_classical: &HashSet<Value>,
        outer_linear: &HashSet<Value>,
        path: &BlockPath,
    ) -> Result<(), String> {
        // Structural: non-empty, terminator last and only last.
        let Some(last) = block.ops.last() else {
            return Err(format!("at {}: block has no terminator", self.location(path, 0)));
        };
        if !last.is_terminator() {
            return Err(self.op_err(
                path,
                block.ops.len() - 1,
                last,
                format!("block does not end in a terminator (ends in {})", last.kind.mnemonic()),
            ));
        }
        for (idx, op) in block.ops[..block.ops.len() - 1].iter().enumerate() {
            if op.is_terminator() {
                return Err(self.op_err(
                    path,
                    idx,
                    op,
                    format!("terminator {} in the middle of a block", op.kind.mnemonic()),
                ));
            }
        }

        // Definedness + linearity bookkeeping. Outer linear values lent to
        // this block must be consumed exactly once, like block arguments.
        let mut defined: HashSet<Value> = block.args.iter().copied().collect();
        defined.extend(outer_linear.iter().copied());
        // Per linear value: (use count, op index of the latest use), the
        // latter so over-use errors can print the offending op.
        let mut linear_uses: HashMap<Value, (usize, Option<usize>)> = block
            .args
            .iter()
            .chain(outer_linear.iter())
            .filter(|v| self.ty(**v).is_linear())
            .map(|v| (*v, (0usize, None)))
            .collect();

        for (idx, op) in block.ops.iter().enumerate() {
            for &operand in &op.operands {
                if operand.index() >= self.func.num_values() {
                    return Err(self.op_err(
                        path,
                        idx,
                        op,
                        format!("uses out-of-arena value {operand}"),
                    ));
                }
                if !defined.contains(&operand) {
                    if self.ty(operand).is_linear() {
                        return Err(self.op_err(
                            path,
                            idx,
                            op,
                            format!("uses linear value {operand} not defined in this block"),
                        ));
                    }
                    if !outer_classical.contains(&operand) {
                        return Err(self.op_err(
                            path,
                            idx,
                            op,
                            format!("uses undefined value {operand}"),
                        ));
                    }
                }
                if let Some((count, last_use)) = linear_uses.get_mut(&operand) {
                    *count += 1;
                    *last_use = Some(idx);
                }
            }

            self.check_op(op, expected_results).map_err(|e| self.op_err(path, idx, op, e))?;

            if !op.regions.is_empty() {
                // Linear values from enclosing scopes may flow into scf.if
                // branch regions (each branch consumes them exactly once,
                // and both branches must agree); lambdas may never capture
                // linear values (their bodies run later).
                let mut outer_linear_used: Vec<Value> = op
                    .transitive_uses()
                    .into_iter()
                    .filter(|v| {
                        !op.operands.contains(v) && defined.contains(v) && self.ty(*v).is_linear()
                    })
                    .collect();
                // A value consumed once per branch is one use of the
                // scf.if as a whole.
                outer_linear_used.sort_unstable();
                outer_linear_used.dedup();
                if matches!(op.kind, OpKind::Lambda { .. }) && !outer_linear_used.is_empty() {
                    return Err(self.op_err(
                        path,
                        idx,
                        op,
                        format!(
                            "lambda captures linear value {} inside its region",
                            outer_linear_used[0]
                        ),
                    ));
                }
                if matches!(op.kind, OpKind::ScfIf) && !outer_linear_used.is_empty() {
                    // Each branch must use exactly the same outer linear
                    // values; verified per-region below. Count once here.
                    let mut sets: Vec<HashSet<Value>> = Vec::new();
                    for region in &op.regions {
                        let mut set = HashSet::new();
                        for b in &region.blocks {
                            collect_outer_uses(b, &mut set);
                        }
                        set.retain(|v| outer_linear_used.contains(v));
                        sets.push(set);
                    }
                    if sets.len() == 2 && sets[0] != sets[1] {
                        return Err(self.op_err(
                            path,
                            idx,
                            op,
                            "branches consume different linear values".to_string(),
                        ));
                    }
                    for v in &outer_linear_used {
                        if let Some((count, last_use)) = linear_uses.get_mut(v) {
                            *count += 1;
                            *last_use = Some(idx);
                        }
                    }
                }
                let mut visible: HashSet<Value> = outer_classical.clone();
                visible.extend(defined.iter().filter(|v| !self.ty(**v).is_linear()));
                let lent: HashSet<Value> = if matches!(op.kind, OpKind::ScfIf) {
                    outer_linear_used.iter().copied().collect()
                } else {
                    HashSet::new()
                };
                let nested_results: Vec<Type> = match &op.kind {
                    OpKind::ScfIf => op.results.iter().map(|v| self.ty(*v).clone()).collect(),
                    OpKind::Lambda { func_ty } => func_ty.results.clone(),
                    _ => Vec::new(),
                };
                for (region_idx, region) in op.regions.iter().enumerate() {
                    for (block_idx, nested) in region.blocks.iter().enumerate() {
                        // Nested violations already carry their own
                        // `func:block:op` coordinates; propagate unchanged.
                        let mut nested_path = path.clone();
                        nested_path.push((idx, region_idx, block_idx));
                        self.verify_block(nested, &nested_results, &visible, &lent, &nested_path)?;
                    }
                }
            }

            for &result in &op.results {
                if !defined.insert(result) {
                    return Err(self.op_err(path, idx, op, format!("redefines value {result}")));
                }
                if self.ty(result).is_linear() {
                    linear_uses.insert(result, (0, None));
                }
            }
        }

        for (value, (count, last_use)) in linear_uses {
            if count != 1 {
                let msg = format!(
                    "linear value {value} ({}) used {count} times; must be exactly once",
                    self.ty(value)
                );
                // Over-use points at the offending (latest) use; under-use
                // points at the terminator, where the value should have
                // been consumed by.
                let idx = last_use.unwrap_or(block.ops.len() - 1);
                return Err(self.op_err(path, idx, &block.ops[idx], msg));
            }
        }
        Ok(())
    }

    /// Per-op signature checks.
    fn check_op(&self, op: &Op, expected_results: &[Type]) -> Result<(), String> {
        let operand_tys: Vec<&Type> = op.operands.iter().map(|v| self.ty(*v)).collect();
        let result_tys: Vec<&Type> = op.results.iter().map(|v| self.ty(*v)).collect();
        let expect = |cond: bool, msg: &str| -> Result<(), String> {
            if cond {
                Ok(())
            } else {
                Err(msg.to_string())
            }
        };

        match &op.kind {
            OpKind::QbPrep { dim, .. } => {
                expect(op.operands.is_empty(), "qbprep takes no operands")?;
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::QBundle(*dim),
                    "qbprep yields one qbundle of its dimension",
                )
            }
            OpKind::QbDiscard | OpKind::QbDiscardZ => {
                expect(
                    operand_tys.len() == 1 && matches!(operand_tys[0], Type::QBundle(_)),
                    "discard takes one qbundle",
                )?;
                expect(op.results.is_empty(), "discard yields nothing")
            }
            OpKind::QbTrans { basis_in, basis_out } => {
                let Some(Type::QBundle(n)) = operand_tys.first().copied() else {
                    return Err("qbtrans operand 0 must be a qbundle".to_string());
                };
                expect(
                    basis_in.dim() == *n && basis_out.dim() == *n,
                    "qbtrans basis dimensions must match the qbundle",
                )?;
                expect(
                    operand_tys[1..].iter().all(|t| **t == Type::F64),
                    "qbtrans phase operands must be f64",
                )?;
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::QBundle(*n),
                    "qbtrans yields one qbundle of the same dimension",
                )
            }
            OpKind::QbMeas { basis } => {
                let Some(Type::QBundle(n)) = operand_tys.first().copied() else {
                    return Err("qbmeas takes a qbundle".to_string());
                };
                expect(basis.dim() == *n, "qbmeas basis dimension must match")?;
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::BitBundle(*n),
                    "qbmeas yields a bitbundle of the same dimension",
                )
            }
            OpKind::QbPack => {
                // Zero operands produce the unit bundle qbundle[0] (the
                // result of `discard`).
                expect(operand_tys.iter().all(|t| **t == Type::Qubit), "qbpack takes qubits")?;
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::QBundle(op.operands.len()),
                    "qbpack yields qbundle[N]",
                )
            }
            OpKind::QbUnpack => {
                let Some(Type::QBundle(n)) = operand_tys.first().copied() else {
                    return Err("qbunpack takes a qbundle".to_string());
                };
                expect(
                    result_tys.len() == *n && result_tys.iter().all(|t| **t == Type::Qubit),
                    "qbunpack yields N qubits",
                )
            }
            OpKind::BitPack => {
                expect(operand_tys.iter().all(|t| **t == Type::I1), "bitpack takes i1s")?;
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::BitBundle(op.operands.len()),
                    "bitpack yields bitbundle[N]",
                )
            }
            OpKind::BitUnpack => {
                let Some(Type::BitBundle(n)) = operand_tys.first().copied() else {
                    return Err("bitunpack takes a bitbundle".to_string());
                };
                expect(
                    result_tys.len() == *n && result_tys.iter().all(|t| **t == Type::I1),
                    "bitunpack yields N i1s",
                )
            }
            OpKind::FuncConst { symbol } => {
                if let Some(module) = self.module {
                    let target = module
                        .func(symbol)
                        .ok_or_else(|| format!("func_const references unknown @{symbol}"))?;
                    expect(
                        result_tys.len() == 1 && *result_tys[0] == Type::func(target.ty.clone()),
                        "func_const result type must match the symbol's signature",
                    )?;
                }
                Ok(())
            }
            OpKind::FuncAdj => {
                let Some(Type::Func(ft)) = operand_tys.first().copied() else {
                    return Err("func_adj takes a function value".to_string());
                };
                expect(ft.reversible, "func_adj requires a reversible function")?;
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::Func(ft.clone()),
                    "func_adj preserves the function type",
                )
            }
            OpKind::FuncPred { pred } => {
                let Some(Type::Func(ft)) = operand_tys.first().copied() else {
                    return Err("func_pred takes a function value".to_string());
                };
                let n =
                    rev_qbundle_dim(ft).ok_or("func_pred requires qbundle[N] -rev-> qbundle[N]")?;
                let m = pred.dim();
                expect(
                    result_tys.len() == 1
                        && *result_tys[0] == Type::func(FuncType::rev_qbundle(m + n)),
                    "func_pred yields qbundle[M+N] -rev-> qbundle[M+N]",
                )
            }
            OpKind::Call { callee, adj, pred } => {
                let Some(module) = self.module else { return Ok(()) };
                let target = module
                    .func(callee)
                    .ok_or_else(|| format!("call references unknown @{callee}"))?;
                let effective = effective_call_type(&target.ty, *adj, pred.as_ref())?;
                check_signature(&effective, &operand_tys, &result_tys)
            }
            OpKind::CallIndirect => {
                let Some(Type::Func(ft)) = operand_tys.first().copied() else {
                    return Err("call_indirect operand 0 must be a function value".to_string());
                };
                check_signature(ft, &operand_tys[1..], &result_tys)
            }
            OpKind::Lambda { func_ty } => {
                expect(op.regions.len() == 1, "lambda has one region")?;
                let block = op.regions[0].only_block();
                expect(
                    block.args.len() == op.operands.len() + func_ty.inputs.len(),
                    "lambda block args must be captures ++ params",
                )?;
                for (cap, arg) in op.operands.iter().zip(&block.args) {
                    expect(self.ty(*cap) == self.ty(*arg), "lambda capture/arg type mismatch")?;
                    expect(!self.ty(*cap).is_linear(), "lambda cannot capture linear values")?;
                }
                for (input, arg) in func_ty.inputs.iter().zip(&block.args[op.operands.len()..]) {
                    expect(input == self.ty(*arg), "lambda param type mismatch")?;
                }
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::func(func_ty.clone()),
                    "lambda yields its function type",
                )
            }
            OpKind::Return | OpKind::Yield => {
                expect(op.results.is_empty(), "terminators yield nothing")?;
                expect(
                    operand_tys.len() == expected_results.len()
                        && operand_tys.iter().zip(expected_results).all(|(a, b)| **a == *b),
                    "terminator operands must match the enclosing result types",
                )
            }
            OpKind::ScfIf => {
                expect(
                    operand_tys.len() == 1 && *operand_tys[0] == Type::I1,
                    "scf.if takes one i1",
                )?;
                expect(op.regions.len() == 2, "scf.if has then and else regions")
            }
            OpKind::ConstF64 { .. } => expect(
                op.operands.is_empty() && result_tys.len() == 1 && *result_tys[0] == Type::F64,
                "f64 constant",
            ),
            OpKind::ConstI1 { .. } => expect(
                op.operands.is_empty() && result_tys.len() == 1 && *result_tys[0] == Type::I1,
                "i1 constant",
            ),
            OpKind::FAdd | OpKind::FSub | OpKind::FMul | OpKind::FDiv => expect(
                operand_tys.len() == 2
                    && operand_tys.iter().all(|t| **t == Type::F64)
                    && result_tys.len() == 1
                    && *result_tys[0] == Type::F64,
                "binary f64 arithmetic",
            ),
            OpKind::FNeg => expect(
                operand_tys.len() == 1
                    && *operand_tys[0] == Type::F64
                    && result_tys.len() == 1
                    && *result_tys[0] == Type::F64,
                "unary f64 negation",
            ),
            OpKind::XorI1 | OpKind::AndI1 => expect(
                operand_tys.len() == 2
                    && operand_tys.iter().all(|t| **t == Type::I1)
                    && result_tys.len() == 1
                    && *result_tys[0] == Type::I1,
                "binary i1 logic",
            ),
            OpKind::NotI1 => expect(
                operand_tys.len() == 1
                    && *operand_tys[0] == Type::I1
                    && result_tys.len() == 1
                    && *result_tys[0] == Type::I1,
                "unary i1 logic",
            ),
            OpKind::QAlloc => expect(
                op.operands.is_empty() && result_tys.len() == 1 && *result_tys[0] == Type::Qubit,
                "qalloc yields one qubit",
            ),
            OpKind::QFree | OpKind::QFreeZ => expect(
                operand_tys.len() == 1 && *operand_tys[0] == Type::Qubit && op.results.is_empty(),
                "qfree takes one qubit",
            ),
            OpKind::Gate { gate, num_controls } => {
                let total = num_controls + gate.num_targets();
                expect(
                    operand_tys.len() == total && operand_tys.iter().all(|t| **t == Type::Qubit),
                    "gate takes controls + targets qubits",
                )?;
                expect(
                    result_tys.len() == total && result_tys.iter().all(|t| **t == Type::Qubit),
                    "gate yields a new state per operand qubit",
                )
            }
            OpKind::Measure => expect(
                operand_tys.len() == 1
                    && *operand_tys[0] == Type::Qubit
                    && result_tys.len() == 2
                    && *result_tys[0] == Type::Qubit
                    && *result_tys[1] == Type::I1,
                "measure yields (qubit, i1)",
            ),
            OpKind::ArrPack => {
                let Some(first) = operand_tys.first() else {
                    return Err("arrpack needs at least one element".to_string());
                };
                expect(
                    operand_tys.iter().all(|t| t == first),
                    "arrpack elements must share a type",
                )?;
                expect(
                    result_tys.len() == 1
                        && *result_tys[0]
                            == Type::Array(Box::new((*first).clone()), op.operands.len()),
                    "arrpack yields array<T>[N]",
                )
            }
            OpKind::ArrUnpack => {
                let Some(Type::Array(elem, n)) = operand_tys.first().copied() else {
                    return Err("arrunpack takes an array".to_string());
                };
                expect(
                    result_tys.len() == *n && result_tys.iter().all(|t| *t == &**elem),
                    "arrunpack yields N elements",
                )
            }
            OpKind::CallableCreate { symbol } => {
                if let Some(module) = self.module {
                    if !module.contains(symbol) {
                        return Err(format!("callable_create references unknown @{symbol}"));
                    }
                }
                expect(
                    result_tys.len() == 1 && *result_tys[0] == Type::Callable,
                    "callable_create yields a callable",
                )
            }
            OpKind::CallableAdjoint | OpKind::CallableControl { .. } => expect(
                operand_tys.len() == 1
                    && *operand_tys[0] == Type::Callable
                    && result_tys.len() == 1
                    && *result_tys[0] == Type::Callable,
                "callable modifiers take and yield a callable",
            ),
            OpKind::CallableInvoke => expect(
                !operand_tys.is_empty() && *operand_tys[0] == Type::Callable,
                "callable_invoke operand 0 must be a callable",
            ),
        }
    }
}

/// Collects values used in `block` (transitively through regions) that are
/// not defined inside it.
fn collect_outer_uses(block: &Block, out: &mut HashSet<Value>) {
    let mut defined: HashSet<Value> = block.args.iter().copied().collect();
    for op in &block.ops {
        for v in &op.operands {
            if !defined.contains(v) {
                out.insert(*v);
            }
        }
        for region in &op.regions {
            for nested in &region.blocks {
                // Nested defines shadow; approximate by recursing with the
                // same accumulator and filtering at the call site.
                collect_outer_uses(nested, out);
            }
        }
        defined.extend(op.results.iter().copied());
    }
    out.retain(|v| !defined.contains(v));
}

/// For `qbundle[N] -rev-> qbundle[N]` types, returns `N`.
pub fn rev_qbundle_dim(ft: &FuncType) -> Option<usize> {
    if !ft.reversible {
        return None;
    }
    match (ft.inputs.as_slice(), ft.results.as_slice()) {
        ([Type::QBundle(a)], [Type::QBundle(b)]) if a == b => Some(*a),
        _ => None,
    }
}

/// The signature a `call [adj] [pred(b)] @f` must satisfy (§5, §6.2): `adj`
/// preserves the type; `pred(b)` widens `qbundle[N]` to `qbundle[M+N]`.
///
/// # Errors
///
/// Returns a message when `adj`/`pred` are applied to an incompatible
/// signature.
pub fn effective_call_type(
    base: &FuncType,
    adj: bool,
    pred: Option<&asdf_basis::Basis>,
) -> Result<FuncType, String> {
    let mut ty = base.clone();
    if adj && !ty.reversible {
        return Err("adjoint call of an irreversible function".to_string());
    }
    if let Some(pred) = pred {
        let n =
            rev_qbundle_dim(&ty).ok_or("predicated call requires qbundle[N] -rev-> qbundle[N]")?;
        ty = FuncType::rev_qbundle(pred.dim() + n);
    }
    Ok(ty)
}

fn check_signature(ft: &FuncType, args: &[&Type], results: &[&Type]) -> Result<(), String> {
    if args.len() != ft.inputs.len() || args.iter().zip(&ft.inputs).any(|(a, b)| **a != *b) {
        return Err("call arguments do not match the callee signature".to_string());
    }
    if results.len() != ft.results.len() || results.iter().zip(&ft.results).any(|(a, b)| **a != *b)
    {
        return Err("call results do not match the callee signature".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncBuilder, Visibility};
    use asdf_basis::{Basis, PrimitiveBasis};

    fn verify(func: Func) -> Result<(), IrError> {
        verify_func(&func, None)
    }

    #[test]
    fn accepts_simple_kernel() {
        let mut b = FuncBuilder::new(
            "k",
            FuncType::new(vec![], vec![Type::BitBundle(1)], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        let q = bb.push(
            OpKind::QbPrep {
                prim: PrimitiveBasis::Std,
                eigenstate: asdf_basis::Eigenstate::Plus,
                dim: 1,
            },
            vec![],
            vec![Type::QBundle(1)],
        );
        let m = bb.push(
            OpKind::QbMeas { basis: Basis::built_in(PrimitiveBasis::Std, 1) },
            vec![q[0]],
            vec![Type::BitBundle(1)],
        );
        bb.push(OpKind::Return, vec![m[0]], vec![]);
        verify(b.finish()).unwrap();
    }

    #[test]
    fn rejects_double_use_of_qubit() {
        let mut b = FuncBuilder::new(
            "k",
            FuncType::new(vec![Type::QBundle(1)], vec![], false),
            Visibility::Public,
        );
        let arg = b.args()[0];
        let mut bb = b.block();
        bb.push(OpKind::QbDiscard, vec![arg], vec![]);
        bb.push(OpKind::QbDiscard, vec![arg], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let err = verify(b.finish()).unwrap_err();
        assert!(err.to_string().contains("used 2 times"), "{err}");
    }

    #[test]
    fn rejects_dropped_qubit() {
        let mut b = FuncBuilder::new(
            "k",
            FuncType::new(vec![Type::QBundle(1)], vec![], false),
            Visibility::Public,
        );
        let mut bb = b.block();
        bb.push(OpKind::Return, vec![], vec![]);
        let err = verify(b.finish()).unwrap_err();
        assert!(err.to_string().contains("used 0 times"), "{err}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut b = FuncBuilder::new("k", FuncType::new(vec![], vec![], false), Visibility::Public);
        b.block().push(OpKind::QAlloc, vec![], vec![Type::Qubit]);
        let err = verify(b.finish()).unwrap_err();
        assert!(err.to_string().contains("terminator"), "{err}");
    }

    #[test]
    fn rejects_basis_dim_mismatch() {
        let mut b = FuncBuilder::new("k", FuncType::rev_qbundle(2), Visibility::Public);
        let arg = b.args()[0];
        let mut bb = b.block();
        let t = bb.push(
            OpKind::QbTrans {
                basis_in: Basis::built_in(PrimitiveBasis::Std, 1),
                basis_out: Basis::built_in(PrimitiveBasis::Pm, 1),
            },
            vec![arg],
            vec![Type::QBundle(2)],
        );
        bb.push(OpKind::Return, vec![t[0]], vec![]);
        let err = verify(b.finish()).unwrap_err();
        assert!(err.to_string().contains("dimensions"), "{err}");
    }

    #[test]
    fn verify_error_renders_op_and_path() {
        // Over-use points at the second discard, with the same
        // `func:block:op` coordinates the rewrite trace / `--fuel-bisect`
        // print, plus the pretty-printed offending op.
        let mut b = FuncBuilder::new(
            "k",
            FuncType::new(vec![Type::QBundle(1)], vec![], false),
            Visibility::Public,
        );
        let arg = b.args()[0];
        let mut bb = b.block();
        bb.push(OpKind::QbDiscard, vec![arg], vec![]);
        bb.push(OpKind::QbDiscard, vec![arg], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let err = verify(b.finish()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("at k:0:1:"), "{msg}");
        assert!(msg.contains("used 2 times"), "{msg}");
        assert!(msg.contains("in op: qwerty.qbdiscard %0"), "{msg}");
    }

    #[test]
    fn verify_error_locates_ops_in_nested_regions() {
        // A bad yield inside the then-region reports preorder block 1
        // (entry = 0, then = 1, else = 2), not the enclosing scf.if.
        let mut b = FuncBuilder::new(
            "k2",
            FuncType::new(vec![Type::I1], vec![], false),
            Visibility::Public,
        );
        let cond = b.args()[0];
        let mut bb = b.block();
        let t = bb.subblock(vec![], |sb| {
            let c = sb.push(OpKind::ConstF64 { value: 1.0 }, vec![], vec![Type::F64]);
            sb.push(OpKind::Yield, vec![c[0]], vec![]);
        });
        let e = bb.subblock(vec![], |sb| {
            sb.push(OpKind::Yield, vec![], vec![]);
        });
        bb.push_with_regions(
            OpKind::ScfIf,
            vec![cond],
            vec![],
            vec![crate::block::Region::single(t), crate::block::Region::single(e)],
        );
        bb.push(OpKind::Return, vec![], vec![]);
        let err = verify(b.finish()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("at k2:1:1:"), "{msg}");
        assert!(msg.contains("in op: scf.yield %1"), "{msg}");
    }

    #[test]
    fn rejects_call_to_unknown_symbol() {
        let mut b = FuncBuilder::new("k", FuncType::new(vec![], vec![], false), Visibility::Public);
        let mut bb = b.block();
        bb.push(OpKind::Call { callee: "ghost".into(), adj: false, pred: None }, vec![], vec![]);
        bb.push(OpKind::Return, vec![], vec![]);
        let mut m = Module::new();
        m.add_func(b.finish());
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn gate_signature_checked() {
        let mut b = FuncBuilder::new(
            "k",
            FuncType::new(vec![Type::Qubit, Type::Qubit], vec![Type::Qubit, Type::Qubit], false),
            Visibility::Public,
        );
        let (c, t) = (b.args()[0], b.args()[1]);
        let mut bb = b.block();
        let out = bb.push(
            OpKind::Gate { gate: crate::gate::GateKind::X, num_controls: 1 },
            vec![c, t],
            vec![Type::Qubit, Type::Qubit],
        );
        bb.push(OpKind::Return, vec![out[0], out[1]], vec![]);
        verify(b.finish()).unwrap();
    }

    #[test]
    fn pred_call_type_widens() {
        let base = FuncType::rev_qbundle(2);
        let pred = Basis::built_in(PrimitiveBasis::Std, 3);
        let ty = effective_call_type(&base, false, Some(&pred)).unwrap();
        assert_eq!(ty, FuncType::rev_qbundle(5));
        let irrev = FuncType::new(vec![Type::QBundle(1)], vec![Type::BitBundle(1)], false);
        assert!(effective_call_type(&irrev, true, None).is_err());
    }
}
