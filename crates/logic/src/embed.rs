//! Bennett embeddings of classical logic networks (§6.4).
//!
//! Given a network for `f : B^n -> B^m`, builds the reversible circuit
//! `U_f |x>|y>|0> = |x>|y XOR f(x)>|0>` by compute-copy-uncompute
//! (Bennett \[5\]). Two styles:
//!
//! - [`EmbedStyle::InPlaceXor`] — the tweedledum-style embedding ASDF
//!   uses: one ancilla per AND node; XOR chains are computed in place with
//!   CNOTs and uncomputed around each AND. §8.3 credits exactly this for
//!   beating Quipper's oracles.
//! - [`EmbedStyle::AncillaPerNode`] — the Quipper-style embedding used by
//!   the baseline: every logic node (XOR included) materializes on its own
//!   ancilla line.

use crate::gate::{McxGate, RevCircuit};
use crate::xag::Xag;
use std::collections::HashMap;

/// Which embedding discipline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedStyle {
    /// Ancilla per AND node only; XORs in place (tweedledum / ASDF).
    InPlaceXor,
    /// Ancilla per node, XORs included (Quipper baseline).
    AncillaPerNode,
}

/// A Bennett embedding: the circuit plus its line layout.
///
/// Line layout: inputs first, then outputs, then ancillas; `run` semantics
/// follow [`RevCircuit`]. After execution, input lines are unchanged,
/// output lines hold `y XOR f(x)`, and ancilla lines are returned to zero.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The reversible circuit.
    pub circuit: RevCircuit,
    /// Lines carrying the primary inputs.
    pub input_lines: Vec<usize>,
    /// Lines carrying the XOR-accumulated outputs.
    pub output_lines: Vec<usize>,
    /// Scratch lines (zero before and after).
    pub ancilla_lines: Vec<usize>,
}

impl Embedding {
    /// Convenience: computes `f(x)` by running the circuit with `y = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the number of input lines.
    pub fn compute(&self, x: &[bool]) -> Vec<bool> {
        assert_eq!(x.len(), self.input_lines.len(), "input width mismatch");
        let mut bits = vec![false; self.circuit.lines];
        for (line, &v) in self.input_lines.iter().zip(x) {
            bits[*line] = v;
        }
        let out = self.circuit.run(&bits);
        self.output_lines.iter().map(|&l| out[l]).collect()
    }
}

/// Builds the Bennett embedding of `xag` in the requested style.
///
/// # Errors
///
/// Returns a message if the network cannot be embedded (e.g. an AND whose
/// operands cannot receive distinct pivot lines, which folded networks do
/// not produce).
pub fn embed_xor(xag: &Xag, style: EmbedStyle) -> Result<Embedding, String> {
    match style {
        EmbedStyle::InPlaceXor => embed_in_place(xag),
        EmbedStyle::AncillaPerNode => embed_per_node(xag),
    }
}

// ---------------------------------------------------------------------
// tweedledum-style: ancilla per AND; XOR via in-place CNOT chains.
// ---------------------------------------------------------------------

fn embed_in_place(xag: &Xag) -> Result<Embedding, String> {
    let n = xag.num_inputs();
    let m = xag.outputs().len();
    let and_nodes = xag.live_and_nodes();
    // Extra scratch lines may be appended past the per-AND ancillas when
    // pivot scheduling deadlocks; count lines at the end.
    let mut next_line = n + m + and_nodes.len();

    // node -> line holding its value (inputs and computed ANDs).
    let mut node_line: HashMap<usize, usize> = HashMap::new();
    for i in 0..n {
        node_line.insert(xag.input(i).node(), i);
    }

    // Compute phase: one ancilla per AND node, in topological order.
    let mut compute_gates: Vec<McxGate> = Vec::new();
    for (k, &node) in and_nodes.iter().enumerate() {
        let ancilla = n + m + k;
        let operands = xag.node_operands(node).to_vec();
        let mut supports: Vec<(Vec<usize>, bool)> = Vec::with_capacity(operands.len());
        for signal in &operands {
            let (support, parity) = xag.parity_support(*signal);
            if support.is_empty() {
                return Err("AND operand folded to a constant; fold the network first".into());
            }
            let wires: Vec<usize> = support.iter().map(|node| node_line[node]).collect();
            supports.push((wires, parity));
        }

        // Realize each operand's parity on a pivot line. In-place
        // realization (CNOT chain into a support wire) mutates exactly the
        // pivot wire, so schedule operands so none reads a wire an
        // earlier-realized operand used as its pivot. When that deadlocks,
        // demote operands to fresh scratch lines — scratch realizations go
        // *first* (they only read pristine wires and write scratch, which
        // no support contains).
        let mut scratch_ops: Vec<usize> = Vec::new();
        let schedule = loop {
            match schedule_in_place(&supports, &scratch_ops) {
                Ok(order) => break order,
                Err(blocked) => {
                    // Demote a blocked operand to a scratch line and retry.
                    scratch_ops.push(blocked[0]);
                }
            }
        };

        let mut prep: Vec<McxGate> = Vec::new();
        let mut pivots: Vec<Option<usize>> = vec![None; supports.len()];
        for &op_idx in &scratch_ops {
            let scratch = next_line;
            next_line += 1;
            let (wires, parity) = &supports[op_idx];
            for &w in wires {
                prep.push(McxGate::cnot(w, scratch));
            }
            if *parity {
                prep.push(McxGate::not(scratch));
            }
            pivots[op_idx] = Some(scratch);
        }
        for (op_idx, pivot) in schedule {
            let (wires, parity) = &supports[op_idx];
            for &w in wires {
                if w != pivot {
                    prep.push(McxGate::cnot(w, pivot));
                }
            }
            if *parity {
                prep.push(McxGate::not(pivot));
            }
            pivots[op_idx] = Some(pivot);
        }
        let pivots: Vec<usize> = pivots.into_iter().map(Option::unwrap).collect();

        compute_gates.extend(prep.iter().cloned());
        compute_gates.push(McxGate::mcx(pivots, ancilla));
        compute_gates.extend(prep.into_iter().rev());
        node_line.insert(node, ancilla);
    }

    let mut circuit = RevCircuit::new(next_line);
    for g in &compute_gates {
        circuit.push(g.clone());
    }

    // Copy phase: XOR each output's parity into its output line.
    for (k, &signal) in xag.outputs().iter().enumerate() {
        let out = n + k;
        let (support, parity) = xag.parity_support(signal);
        for node in support {
            circuit.push(McxGate::cnot(node_line[&node], out));
        }
        if parity {
            circuit.push(McxGate::not(out));
        }
    }

    // Uncompute phase: reverse of the compute phase restores ancillas.
    for g in compute_gates.iter().rev() {
        circuit.push(g.clone());
    }

    Ok(Embedding {
        circuit,
        input_lines: (0..n).collect(),
        output_lines: (n..n + m).collect(),
        ancilla_lines: (n + m..next_line).collect(),
    })
}

/// Greedy scheduler for in-place operand realization: returns the
/// realization order with chosen pivots, or the blocked operand set on
/// deadlock. Operands in `scratch_ops` are excluded (they use scratch
/// lines).
///
/// Heuristic: among schedulable operands (support disjoint from used
/// pivots), prefer one with a *free* pivot — a support wire no other
/// pending operand reads — since realizing it cannot block anyone. An
/// operand without a free pivot is deferred as long as possible.
fn schedule_in_place(
    supports: &[(Vec<usize>, bool)],
    scratch_ops: &[usize],
) -> Result<Vec<(usize, usize)>, Vec<usize>> {
    let mut pending: Vec<usize> =
        (0..supports.len()).filter(|k| !scratch_ops.contains(k)).collect();
    let mut used_pivots: Vec<usize> = Vec::new();
    let mut order: Vec<(usize, usize)> = Vec::new();
    while !pending.is_empty() {
        let schedulable: Vec<usize> = pending
            .iter()
            .copied()
            .filter(|&k| supports[k].0.iter().all(|w| !used_pivots.contains(w)))
            .collect();
        if schedulable.is_empty() {
            return Err(pending);
        }
        let free_pivot =
            |k: usize| -> Option<usize> {
                supports[k].0.iter().copied().find(|w| {
                    !pending.iter().any(|&other| other != k && supports[other].0.contains(w))
                })
            };
        let (op_idx, pivot) =
            schedulable.iter().copied().find_map(|k| free_pivot(k).map(|p| (k, p))).unwrap_or_else(
                || {
                    let k = schedulable[0];
                    (k, supports[k].0[0])
                },
            );
        pending.retain(|&k| k != op_idx);
        used_pivots.push(pivot);
        order.push((op_idx, pivot));
    }
    Ok(order)
}

// ---------------------------------------------------------------------
// Quipper-style: every node gets an ancilla, XOR nodes included.
// ---------------------------------------------------------------------

fn embed_per_node(xag: &Xag) -> Result<Embedding, String> {
    let n = xag.num_inputs();
    let m = xag.outputs().len();
    let gate_nodes: Vec<usize> =
        xag.live_nodes().into_iter().filter(|&node| xag.is_and(node) || xag.is_xor(node)).collect();
    let lines = n + m + gate_nodes.len();
    let mut circuit = RevCircuit::new(lines);

    let mut node_line: HashMap<usize, usize> = HashMap::new();
    for i in 0..n {
        node_line.insert(xag.input(i).node(), i);
    }

    let mut compute_gates: Vec<McxGate> = Vec::new();
    for (k, &node) in gate_nodes.iter().enumerate() {
        let ancilla = n + m + k;
        let operands = xag.node_operands(node);
        if xag.is_xor(node) {
            // CNOT every operand line into the fresh ancilla.
            for s in operands {
                compute_gates.push(McxGate::cnot(node_line[&s.node()], ancilla));
                if s.is_inverted() {
                    compute_gates.push(McxGate::not(ancilla));
                }
            }
        } else {
            // MCX with per-operand polarity.
            let controls =
                operands.iter().map(|s| (node_line[&s.node()], !s.is_inverted())).collect();
            compute_gates.push(McxGate { controls, target: ancilla });
        }
        node_line.insert(node, ancilla);
    }
    for g in &compute_gates {
        circuit.push(g.clone());
    }

    for (k, &signal) in xag.outputs().iter().enumerate() {
        let out = n + k;
        if let Some(value) = xag.as_const(signal) {
            if value {
                circuit.push(McxGate::not(out));
            }
            continue;
        }
        circuit.push(McxGate::cnot(node_line[&signal.node()], out));
        if signal.is_inverted() {
            circuit.push(McxGate::not(out));
        }
    }

    for g in compute_gates.iter().rev() {
        circuit.push(g.clone());
    }

    Ok(Embedding {
        circuit,
        input_lines: (0..n).collect(),
        output_lines: (n..n + m).collect(),
        ancilla_lines: (n + m..lines).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xag::Signal;

    /// Checks an embedding against direct network evaluation on every
    /// input, including the y-accumulation and ancilla-restoration
    /// contracts.
    fn check(xag: &Xag, style: EmbedStyle) -> Embedding {
        let emb = embed_xor(xag, style).unwrap();
        let n = xag.num_inputs();
        assert!(n <= 10, "exhaustive check is exponential");
        for x in 0..(1usize << n) {
            let bits: Vec<bool> = (0..n).map(|i| (x >> (n - 1 - i)) & 1 == 1).collect();
            let expected = xag.eval(&bits);
            assert_eq!(emb.compute(&bits), expected, "style {style:?}, x={x:b}");

            // y-accumulation: run with y = 1...1 and check complement.
            let mut state = vec![false; emb.circuit.lines];
            for (line, &v) in emb.input_lines.iter().zip(&bits) {
                state[*line] = v;
            }
            for &line in &emb.output_lines {
                state[line] = true;
            }
            let out = emb.circuit.run(&state);
            for (k, &line) in emb.output_lines.iter().enumerate() {
                assert_eq!(out[line], !expected[k], "y xor f(x)");
            }
            for (&line, &v) in emb.input_lines.iter().zip(&bits) {
                assert_eq!(out[line], v, "inputs preserved");
            }
            for &line in &emb.ancilla_lines {
                assert!(!out[line], "ancilla restored to zero");
            }
        }
        emb
    }

    fn and_reduce(n: usize) -> Xag {
        let mut g = Xag::new(n);
        let inputs: Vec<Signal> = (0..n).map(|i| g.input(i)).collect();
        let out = g.and_many(inputs);
        g.set_outputs(vec![out]);
        g
    }

    fn xor_reduce(n: usize) -> Xag {
        let mut g = Xag::new(n);
        let inputs: Vec<Signal> = (0..n).map(|i| g.input(i)).collect();
        let out = g.xor_many(inputs);
        g.set_outputs(vec![out]);
        g
    }

    #[test]
    fn and_reduce_is_one_big_mcx() {
        let emb = check(&and_reduce(5), EmbedStyle::InPlaceXor);
        // Exactly: compute MCX, copy CNOT, uncompute MCX.
        assert_eq!(emb.ancilla_lines.len(), 1);
        let mcx_count = emb.circuit.gates.iter().filter(|g| g.controls.len() == 5).count();
        assert_eq!(mcx_count, 2);
    }

    #[test]
    fn xor_reduce_needs_no_ancilla_in_tweedledum_style() {
        let emb = check(&xor_reduce(6), EmbedStyle::InPlaceXor);
        assert!(emb.ancilla_lines.is_empty());
        assert!(emb.circuit.gates.iter().all(|g| g.controls.len() <= 1));
    }

    #[test]
    fn xor_reduce_costs_ancillas_in_quipper_style() {
        let emb = check(&xor_reduce(6), EmbedStyle::AncillaPerNode);
        assert_eq!(emb.ancilla_lines.len(), 1, "one XOR node materialized");
        // The quipper-style circuit is strictly larger than the in-place one.
        let tweedledum = embed_xor(&xor_reduce(6), EmbedStyle::InPlaceXor).unwrap();
        assert!(emb.circuit.gates.len() > tweedledum.circuit.gates.len());
    }

    #[test]
    fn mixed_network_both_styles() {
        // f(a,b,c,d) = (a AND b) XOR (NOT c) XOR (b AND NOT d)
        let mut g = Xag::new(4);
        let (a, b, c, d) = (g.input(0), g.input(1), g.input(2), g.input(3));
        let ab = g.and2(a, b);
        let bd = g.and2(b, d.not());
        let t = g.xor2(ab, c.not());
        let out = g.xor2(t, bd);
        g.set_outputs(vec![out]);
        check(&g, EmbedStyle::InPlaceXor);
        check(&g, EmbedStyle::AncillaPerNode);
    }

    #[test]
    fn multi_output_network() {
        // Simon-style oracle: f(x) = x XOR (x_0 AND s) with s = 110.
        let mut g = Xag::new(3);
        let x0 = g.input(0);
        let mut outs = Vec::new();
        for i in 0..3 {
            let xi = g.input(i);
            let s_bit = i < 2; // s = 110
            let masked = if s_bit { x0 } else { g.const_false() };
            let out = g.xor2(xi, masked);
            outs.push(out);
        }
        g.set_outputs(outs);
        check(&g, EmbedStyle::InPlaceXor);
        check(&g, EmbedStyle::AncillaPerNode);
    }

    #[test]
    fn conflicting_supports_schedule_without_scratch() {
        // And(x0, x2, Xor(x2, x3)): realizing x2 in place before the XOR
        // operand would clobber the XOR's support. The free-pivot-first
        // heuristic realizes the XOR on x3 instead; no scratch ancilla.
        let mut g = Xag::new(4);
        let (x0, x2, x3) = (g.input(0), g.input(2), g.input(3));
        let x23 = g.xor2(x2, x3);
        let out = g.and_many(vec![x0, x2, x23]);
        g.set_outputs(vec![out]);
        let emb = check(&g, EmbedStyle::InPlaceXor);
        assert_eq!(emb.ancilla_lines.len(), g.live_and_nodes().len());
    }

    #[test]
    fn output_can_be_constant() {
        let mut g = Xag::new(2);
        let t = g.const_true();
        let a = g.input(0);
        let aa = g.xor2(a, a); // folds to const false
        let f = g.xor2(aa, t);
        g.set_outputs(vec![f]);
        check(&g, EmbedStyle::InPlaceXor);
        check(&g, EmbedStyle::AncillaPerNode);
    }
}
