//! Simulation-engine bench: the SIMD + multithreaded kernel path against
//! its own history, on seeded random circuits.
//!
//! Two measurements:
//!
//! - **single_state**, over a qubit grid (12/16/20 full, 8/10 smoke) with
//!   a threads axis — the pre-SIMD kernel path (unfused program, scalar
//!   per-pair loops: exactly what earlier revisions shipped) vs the fused
//!   SIMD run kernels on one thread vs the same kernels with the pair
//!   enumeration split over all cores;
//! - **unitary** — extracting all `2^n` unitary columns at the smallest
//!   grid size (the difftest oracle's hottest loop), naive per-column
//!   re-simulation vs [`asdf_sim::batched_columns`].
//!
//! Each run appends a trajectory point to `BENCH_sim.json` at the repo
//! root, so speedups are tracked across commits. `--smoke` (or env
//! `SIM_KERNELS_SMOKE=1`) shrinks the workload for CI.

use asdf_ir::GateKind;
use asdf_qcircuit::{Circuit, CircuitOp};
use asdf_sim::{batched_columns, columns_equivalent, KernelProgram, StateVector};
use criterion::black_box;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use threadpool::ThreadPool;

const SEED: u64 = 0xC0FF_EE00;

/// A seeded random circuit with the gate mix of compiled Qwerty programs:
/// mostly single-qubit Cliffords+T and rotations, a third controlled ops.
fn random_circuit(num_qubits: usize, gates: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 3, "the gate mix needs 3 distinct wires");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(num_qubits);
    let distinct = |rng: &mut StdRng, n: usize, taken: &[usize]| -> usize {
        loop {
            let q = rng.gen_range_usize(n);
            if !taken.contains(&q) {
                return q;
            }
        }
    };
    for _ in 0..gates {
        let roll = rng.gen_f64();
        if roll < 0.62 {
            let gate = match rng.gen_range_usize(8) {
                0 => GateKind::H,
                1 => GateKind::T,
                2 => GateKind::Tdg,
                3 => GateKind::S,
                4 => GateKind::X,
                5 => GateKind::Z,
                6 => GateKind::Rz(rng.gen_f64() * std::f64::consts::TAU),
                _ => GateKind::P(rng.gen_f64() * std::f64::consts::TAU),
            };
            circuit.gate(gate, &[], &[rng.gen_range_usize(num_qubits)]);
        } else if roll < 0.90 {
            let c = rng.gen_range_usize(num_qubits);
            let t = distinct(&mut rng, num_qubits, &[c]);
            circuit.gate(GateKind::X, &[c], &[t]);
        } else if roll < 0.96 {
            let c0 = rng.gen_range_usize(num_qubits);
            let c1 = distinct(&mut rng, num_qubits, &[c0]);
            let t = distinct(&mut rng, num_qubits, &[c0, c1]);
            circuit.gate(GateKind::X, &[c0, c1], &[t]);
        } else {
            let a = rng.gen_range_usize(num_qubits);
            let b = distinct(&mut rng, num_qubits, &[a]);
            circuit.gate(GateKind::Swap, &[], &[a, b]);
        }
    }
    circuit
}

fn naive_columns(circuit: &Circuit, inputs: &[usize]) -> Vec<StateVector> {
    inputs
        .iter()
        .map(|&input| {
            let mut state = StateVector::basis(circuit.num_qubits, input);
            for op in &circuit.ops {
                if let CircuitOp::Gate { gate, controls, targets } = op {
                    state.apply_naive(*gate, controls, targets);
                }
            }
            state
        })
        .collect()
}

/// Minimum wall-clock of `samples` runs (after one warmup) — the least
/// noise-contaminated estimate of the true cost on a shared machine.
fn min_time<O>(samples: usize, mut f: impl FnMut() -> O) -> Duration {
    black_box(f());
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .min()
        .expect("samples >= 1")
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn append_trajectory_point(point: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim.json");
    let rewritten = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) => {
                    let body = body.trim_end();
                    if body.ends_with('[') {
                        format!("{body}\n  {point}\n]\n")
                    } else {
                        format!("{body},\n  {point}\n]\n")
                    }
                }
                None => format!("[\n  {point}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {point}\n]\n"),
    };
    match std::fs::write(&path, rewritten) {
        Ok(()) => println!("trajectory point appended to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("SIM_KERNELS_SMOKE").is_ok_and(|v| v == "1");
    // (qubits, gates, single-state samples) per grid size.
    let grid: &[(usize, usize, usize)] = if smoke {
        &[(8, 100, 20), (10, 150, 10)]
    } else {
        &[(12, 200, 60), (16, 200, 25), (20, 200, 9)]
    };
    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "sim_kernels: {} grid, {threads} hardware threads",
        if smoke { "smoke" } else { "full" }
    );

    // Correctness cross-check at the smallest size before timing anything.
    let (check_qubits, check_gates, _) = grid[0];
    let check = random_circuit(check_qubits, check_gates, SEED);
    let inputs: Vec<usize> = (0..(1usize << check_qubits)).collect();
    assert!(
        columns_equivalent(
            &batched_columns(&check, &inputs),
            &naive_columns(&check, &inputs),
            1e-9
        ),
        "kernel engine disagrees with the naive reference"
    );

    // single_state grid: the pre-SIMD kernel path (unfused + scalar pair
    // loops) vs the fused SIMD kernels serially vs across all cores.
    let serial = ThreadPool::new(1);
    let wide = ThreadPool::new(threads);
    let mut grid_points = Vec::new();
    for &(num_qubits, gates, samples) in grid {
        let circuit = random_circuit(num_qubits, gates, SEED);
        let unfused = KernelProgram::compile_unfused(&circuit);
        let fused = KernelProgram::compile(&circuit);
        let pr3 = min_time(samples, || {
            let mut state = StateVector::zero(num_qubits);
            unfused.apply_gates_scalar(&mut state);
            state
        });
        let simd = min_time(samples, || {
            let mut state = StateVector::zero(num_qubits);
            fused.apply_gates_pooled(&mut state, &serial);
            state
        });
        let simd_mt = min_time(samples, || {
            let mut state = StateVector::zero(num_qubits);
            fused.apply_gates_pooled(&mut state, &wide);
            state
        });
        let speedup = pr3.as_secs_f64() / simd.as_secs_f64();
        let speedup_mt = pr3.as_secs_f64() / simd_mt.as_secs_f64();
        let scaling = simd.as_secs_f64() / simd_mt.as_secs_f64();
        println!(
            "single_state {num_qubits:>2}q ({} ops -> {} fused): scalar {:>9.3?} | simd(1t) \
             {:>9.3?} ({speedup:.2}x) | simd({threads}t) {:>9.3?} ({speedup_mt:.2}x, 1->{threads}t \
             scaling {scaling:.2}x)",
            unfused.ops().len(),
            fused.ops().len(),
            pr3,
            simd,
            simd_mt,
        );
        grid_points.push(format!(
            "{{\"qubits\": {num_qubits}, \"gates\": {}, \"kernel_ops\": {}, \
             \"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \"simd_mt_ms\": {:.3}, \
             \"speedup\": {speedup:.2}, \"speedup_mt\": {speedup_mt:.2}, \
             \"scaling\": {scaling:.2}}}",
            circuit.ops.len(),
            fused.ops().len(),
            ms(pr3),
            ms(simd),
            ms(simd_mt),
        ));
    }

    // unitary extraction at the smallest grid size (naive per-column
    // re-simulation is intractable beyond ~12 qubits).
    let unitary_samples = if smoke { 2 } else { 3 };
    let naive_unitary = min_time(unitary_samples, || naive_columns(&check, &inputs));
    let kernel_unitary = min_time(unitary_samples, || batched_columns(&check, &inputs));
    let unitary_speedup = naive_unitary.as_secs_f64() / kernel_unitary.as_secs_f64();
    println!(
        "unitary {check_qubits:>2}q: naive {:>10.3?} | batched {:>10.3?}   speedup {unitary_speedup:.2}x",
        naive_unitary, kernel_unitary
    );

    let point = format!(
        "{{\"bench\": \"sim_kernels\", \"mode\": \"{}\", \"threads\": {threads}, \
         \"single_state_grid\": [{}], \
         \"unitary\": {{\"qubits\": {check_qubits}, \"naive_ms\": {:.3}, \"kernel_ms\": {:.3}, \
         \"speedup\": {:.2}}}}}",
        if smoke { "smoke" } else { "full" },
        grid_points.join(", "),
        ms(naive_unitary),
        ms(kernel_unitary),
        unitary_speedup,
    );
    append_trajectory_point(&point);
}
