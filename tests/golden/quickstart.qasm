OPENQASM 3.0;
include "stdgates.inc";

qubit[5] q;
bit[4] c;

h q[0];
h q[1];
h q[3];
x q[4];
h q[4];
cx q[0], q[4];
cx q[1], q[4];
cx q[3], q[4];
h q[4];
x q[4];
h q[0];
h q[1];
h q[3];
c[0] = measure q[0];
reset q[0];
c[1] = measure q[1];
reset q[1];
c[2] = measure q[2];
reset q[2];
c[3] = measure q[3];
reset q[3];
